//! `dlperf` — command-line front end to the performance model.
//!
//! ```text
//! dlperf devices
//! dlperf calibrate  --device v100 --out v100.assets.json [--effort quick|full]
//! dlperf predict    --model dlrm-default --batch 2048 [--device v100] [--assets FILE]
//! dlperf breakdown  --model dlrm-mlperf  --batch 2048 [--device v100]
//! dlperf memory     --model dlrm-mlperf  --batch 2048
//! dlperf trace      --model dlrm-ddp     --batch 512 --out trace.json
//! dlperf shard      --gpus 4 --batch 2048
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use dlrm_perf_model::core::codesign::{
    greedy_by_predicted_cost, greedy_lpt, imbalance, round_robin, shard_costs,
};
use dlrm_perf_model::core::pipeline::Pipeline;
use dlrm_perf_model::gpusim::DeviceSpec;
use dlrm_perf_model::graph::{memory, Graph};
use dlrm_perf_model::kernels::{CalibrationEffort, ModelRegistry, RegistryBundle};
use dlrm_perf_model::models::criteo::KAGGLE_TABLE_ROWS;
use dlrm_perf_model::trace::breakdown::DeviceBreakdown;
use dlrm_perf_model::trace::engine::ExecutionEngine;

/// Parsed `--key value` options.
struct Opts(HashMap<String, String>);

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --option, got `{a}`"))?;
            let val = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            map.insert(key.to_string(), val.clone());
        }
        Ok(Opts(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required --{key}"))
    }

    fn batch(&self) -> Result<u64, String> {
        self.required("batch")?
            .parse()
            .map_err(|e| format!("invalid --batch: {e}"))
    }

    fn device(&self) -> Result<DeviceSpec, String> {
        let name = self.get("device").unwrap_or("v100");
        DeviceSpec::by_name(name).ok_or_else(|| format!("unknown device `{name}`"))
    }

    fn effort(&self) -> CalibrationEffort {
        match self.get("effort") {
            Some("full") | Some("FULL") => CalibrationEffort::Full,
            _ => CalibrationEffort::Quick,
        }
    }
}

fn build_model(name: &str, batch: u64) -> Result<Graph, String> {
    dlrm_perf_model::models::zoo::build(name, batch)
}

fn registry_for(opts: &Opts, device: &DeviceSpec) -> Result<ModelRegistry, String> {
    if let Some(path) = opts.get("assets") {
        let bundle = RegistryBundle::load(path).map_err(|e| format!("cannot load assets: {e}"))?;
        if bundle.device.name != device.name {
            return Err(format!(
                "assets calibrated for {} but --device is {}",
                bundle.device.name, device.name
            ));
        }
        Ok(bundle.into_registry())
    } else {
        eprintln!("calibrating {} ({:?}) ...", device.name, opts.effort());
        Ok(ModelRegistry::calibrate(device, opts.effort(), 42))
    }
}

fn cmd_devices() -> Result<(), String> {
    println!(
        "{:12} {:>5} {:>10} {:>10} {:>8} {:>8} {:>10}",
        "device", "SMs", "GFLOP/s", "DRAM GB/s", "L2 MB", "mem GB", "link GB/s"
    );
    for d in DeviceSpec::paper_devices() {
        println!(
            "{:12} {:>5} {:>10.0} {:>10.1} {:>8.1} {:>8.0} {:>10.0}",
            d.name,
            d.sm_count,
            d.fp32_gflops,
            d.dram_bw_gbs,
            d.l2_size_bytes as f64 / 1048576.0,
            d.memory_bytes as f64 / (1u64 << 30) as f64,
            d.interconnect_bw_gbs
        );
    }
    Ok(())
}

fn cmd_calibrate(opts: &Opts) -> Result<(), String> {
    let device = opts.device()?;
    let out = opts.required("out")?;
    eprintln!("calibrating {} ({:?}) ...", device.name, opts.effort());
    let bundle = ModelRegistry::calibrate_bundle(&device, opts.effort(), 42);
    bundle.save(out).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("assets written to {out}");
    Ok(())
}

fn cmd_predict(opts: &Opts) -> Result<(), String> {
    let device = opts.device()?;
    let batch = opts.batch()?;
    let graph = build_model(opts.required("model")?, batch)?;
    let registry = registry_for(opts, &device)?;
    // Overheads: extract from a short profiled run of this workload.
    let mut engine = ExecutionEngine::new(device.clone(), 1);
    let runs = engine.run_iterations(&graph, 20).map_err(|e| e.to_string())?;
    let traces: Vec<_> = runs.into_iter().map(|r| r.trace).collect();
    let overheads = dlrm_perf_model::trace::OverheadStats::extract(&traces, true);
    let pipeline = Pipeline::from_assets(device, registry, overheads);
    let p = pipeline.predict(&graph).map_err(|e| e.to_string())?;
    println!("workload        : {}", graph.name);
    println!("batch size      : {batch}");
    println!("predicted e2e   : {:.1} us/batch ({:.3} ms)", p.e2e_us, p.e2e_us / 1e3);
    println!("  gpu active    : {:.1} us", p.active_us);
    println!("  gpu clock     : {:.1} us", p.gpu_us);
    println!("  cpu clock     : {:.1} us", p.cpu_us);
    println!("  utilization   : {:.1}%", p.utilization() * 100.0);
    Ok(())
}

fn cmd_breakdown(opts: &Opts) -> Result<(), String> {
    let device = opts.device()?;
    let graph = build_model(opts.required("model")?, opts.batch()?)?;
    let mut engine = ExecutionEngine::new(device, 1);
    engine.set_profiling(false);
    let run = engine.run(&graph).map_err(|e| e.to_string())?;
    let b = DeviceBreakdown::from_run(&run);
    println!("{} — total {:.0} us, utilization {:.1}%", b.workload, b.total_us, b.utilization() * 100.0);
    for (label, share) in b.stacked_rows(12) {
        println!("{:32} {:5.1}%  {}", label, share * 100.0, "#".repeat((share * 60.0) as usize));
    }
    Ok(())
}

fn cmd_memory(opts: &Opts) -> Result<(), String> {
    let graph = build_model(opts.required("model")?, opts.batch()?)?;
    let r = memory::estimate(&graph);
    println!("workload          : {}", graph.name);
    println!("parameters        : {:.2} GB", r.weight_bytes as f64 / 1e9);
    println!("peak activations  : {:.2} GB (at node {})", r.peak_activation_bytes as f64 / 1e9, r.peak_node);
    println!("peak total        : {:.2} GB", r.peak_bytes() as f64 / 1e9);
    for d in DeviceSpec::paper_devices() {
        println!(
            "  fits {:12}: {}",
            d.name,
            if r.fits(d.memory_bytes, 0.1) { "yes" } else { "NO" }
        );
    }
    Ok(())
}

fn cmd_trace(opts: &Opts) -> Result<(), String> {
    let device = opts.device()?;
    let graph = build_model(opts.required("model")?, opts.batch()?)?;
    let out = opts.required("out")?;
    let mut engine = ExecutionEngine::new(device, 1);
    let run = engine.run(&graph).map_err(|e| e.to_string())?;
    std::fs::write(out, run.trace.to_chrome_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "chrome trace with {} events written to {out} (open in chrome://tracing)",
        run.trace.events.len()
    );
    Ok(())
}

fn cmd_inspect(opts: &Opts) -> Result<(), String> {
    let graph = build_model(opts.required("model")?, opts.batch()?)?;
    let s = dlrm_perf_model::graph::stats::summarize(&graph).map_err(|e| e.to_string())?;
    println!("workload            : {}", graph.name);
    println!("ops                 : {} ({} launch kernels)", s.node_count, s.device_op_count);
    println!("kernels             : {}", s.kernel_count);
    println!("flops / iteration   : {:.2} GFLOP", s.total_flops / 1e9);
    println!("traffic / iteration : {:.2} GB", s.total_bytes / 1e9);
    println!("arithmetic intensity: {:.2} FLOP/byte", s.arithmetic_intensity());
    println!("top op types:");
    for (op, n) in s.op_histogram.iter().take(10) {
        println!("  {op:34} x{n}");
    }
    Ok(())
}

fn cmd_gaps(opts: &Opts) -> Result<(), String> {
    let device = opts.device()?;
    let graph = build_model(opts.required("model")?, opts.batch()?)?;
    let mut engine = ExecutionEngine::new(device, 1);
    engine.set_profiling(false);
    let run = engine.run(&graph).map_err(|e| e.to_string())?;
    let report = dlrm_perf_model::trace::gaps::attribute_idle(&run, 1.0);
    println!(
        "{}: {:.0} us idle across {} gaps (>= 1 us); worst offenders:",
        graph.name,
        report.total_idle_us,
        report.gaps.len()
    );
    for (op, idle) in report.per_op.iter().take(10) {
        println!("  {op:34} {idle:8.1} us idle caused");
    }
    Ok(())
}

fn cmd_shard(opts: &Opts) -> Result<(), String> {
    let gpus: usize = opts
        .required("gpus")?
        .parse()
        .map_err(|e| format!("invalid --gpus: {e}"))?;
    let batch = opts.batch()?;
    let device = opts.device()?;
    let registry = registry_for(opts, &device)?;
    let tables = KAGGLE_TABLE_ROWS;
    println!("{:24} {:>10}", "scheme", "imbalance");
    for (name, a) in [
        ("round-robin", round_robin(&tables, gpus)),
        ("LPT by rows", greedy_lpt(&tables, gpus)),
        ("LPT by predicted cost", greedy_by_predicted_cost(&registry, &tables, gpus, batch, 1, 32)),
    ] {
        let costs = shard_costs(&registry, &tables, &a, gpus, batch, 1, 32);
        println!("{name:24} {:>10.3}", imbalance(&costs));
    }
    Ok(())
}

const USAGE: &str = "usage: dlperf <devices|calibrate|predict|breakdown|memory|trace|shard|inspect|gaps> [--option value]...
  devices                                        list the device catalog
  calibrate --device D --out FILE [--effort E]   calibrate + save kernel models
  predict   --model M --batch N [--device D] [--assets FILE]
  breakdown --model M --batch N [--device D]
  memory    --model M --batch N
  trace     --model M --batch N --out FILE [--device D]
  shard     --gpus G --batch N [--device D]
  inspect   --model M --batch N                  graph statistics
  gaps      --model M --batch N [--device D]     idle-gap attribution
models: dlrm-default dlrm-mlperf dlrm-ddp dlrm-default-infer dcn wide-deep
        resnet50 inception transformer
devices: v100 titan-xp p100";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "devices" => cmd_devices(),
        "calibrate" => cmd_calibrate(&opts),
        "predict" => cmd_predict(&opts),
        "breakdown" => cmd_breakdown(&opts),
        "memory" => cmd_memory(&opts),
        "trace" => cmd_trace(&opts),
        "shard" => cmd_shard(&opts),
        "inspect" => cmd_inspect(&opts),
        "gaps" => cmd_gaps(&opts),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strv(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn opts_parse_pairs() {
        let o = Opts::parse(&strv(&["--model", "dlrm-ddp", "--batch", "512"])).unwrap();
        assert_eq!(o.get("model"), Some("dlrm-ddp"));
        assert_eq!(o.batch().unwrap(), 512);
    }

    #[test]
    fn opts_reject_missing_value() {
        assert!(Opts::parse(&strv(&["--model"])).is_err());
        assert!(Opts::parse(&strv(&["model", "x"])).is_err());
    }

    #[test]
    fn model_names_resolve() {
        for m in [
            "dlrm-default", "dlrm-mlperf", "dlrm-ddp", "dlrm-default-infer", "dcn", "wide-deep",
            "resnet50", "inception", "transformer",
        ] {
            assert!(build_model(m, 64).is_ok(), "model {m}");
        }
        assert!(build_model("bert", 64).is_err());
    }

    #[test]
    fn default_device_is_v100() {
        let o = Opts::parse(&[]).unwrap();
        assert_eq!(o.device().unwrap().name, "Tesla V100");
    }
}
