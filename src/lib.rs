//! # dlrm-perf-model
//!
//! A Rust reproduction of *"Building a Performance Model for Deep Learning
//! Recommendation Model Training on GPUs"* (Lin et al., ISPASS 2022): an
//! end-to-end, critical-path-based performance model that predicts the
//! per-batch GPU training time of DLRM — a workload whose low GPU
//! utilization defeats the usual "sum the kernel times" approach — as well
//! as CV and NLP models.
//!
//! The original system measures real GPUs through PyTorch and Kineto; this
//! reproduction substitutes an analytic GPU timing simulator and a
//! discrete-event execution engine as the measurement substrate (see
//! `DESIGN.md` for the substitution argument) and rebuilds everything above
//! it from scratch:
//!
//! | Crate | Role |
//! |---|---|
//! | [`gpusim`] | simulated GPUs (V100 / TITAN Xp / P100): GEMM tile/wave quantization, L2 reuse for embedding lookups, bandwidth ramps, noise |
//! | [`graph`] | execution-graph IR with data dependencies, op→kernel lowering, and the resize/fuse/replace/parallelize transformations |
//! | [`models`] | DLRM (the three Table III configs), ResNet-50, Inception-V3, Transformer graph builders |
//! | [`trace`] | eager-execution engine, Kineto-like traces, event trees, device-time breakdowns, T1–T5 overhead extraction |
//! | [`nn`] | from-scratch MLP training (the Table II grid search) |
//! | [`kernels`] | kernel performance models: heuristic embedding + roofline, ML-based GEMM/transpose/tril/conv |
//! | [`core`] | Algorithm 1 E2E predictor, the Fig. 3 pipeline, baselines, co-design tools |
//! | [`distrib`] | multi-GPU hybrid-parallel DLRM: collectives, lockstep cluster engine, distributed predictor |
//! | [`faults`] | deterministic fault injection (stragglers, thermal throttling, flaky collectives, worker kill/panic/hang) and the graceful-degradation contracts |
//! | [`runtime`] | supervised runtime: checkpoint/resume jobs, deadlines, panic-isolated workers with restart budgets |
//! | [`serve`] | prediction-as-a-service: admission control, deadlines, load shedding, circuit breaking, bounded caches, the configuration recommender |
//!
//! ## Quickstart
//!
//! ```no_run
//! use dlrm_perf_model::core::pipeline::Pipeline;
//! use dlrm_perf_model::gpusim::DeviceSpec;
//! use dlrm_perf_model::kernels::CalibrationEffort;
//! use dlrm_perf_model::models::DlrmConfig;
//!
//! // Analysis track: profile workloads once, calibrate kernel models.
//! let workloads: Vec<_> = DlrmConfig::paper_configs(2048).iter().map(|c| c.build()).collect();
//! let pipeline = Pipeline::analyze(&DeviceSpec::v100(), &workloads, CalibrationEffort::Quick, 50, 42);
//!
//! // Prediction track: price any graph in milliseconds of compute.
//! let pred = pipeline.predict(&workloads[0]).unwrap();
//! println!("DLRM_default @2048: {:.2} ms/batch, {:.0}% GPU utilization",
//!          pred.e2e_us / 1e3, pred.utilization() * 100.0);
//! ```

pub use dlperf_core as core;
pub use dlperf_obs as obs;
pub use dlperf_distrib as distrib;
pub use dlperf_faults as faults;
pub use dlperf_gpusim as gpusim;
pub use dlperf_graph as graph;
pub use dlperf_kernels as kernels;
pub use dlperf_models as models;
pub use dlperf_nn as nn;
pub use dlperf_runtime as runtime;
pub use dlperf_serve as serve;
pub use dlperf_trace as trace;
