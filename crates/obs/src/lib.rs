//! # dlperf-obs
//!
//! The unified observability core of the workspace: one zero-dependency,
//! thread-safe recorder that every layer (`core`, `kernels`, `distrib`,
//! `runtime`, `trace`, `faults`) emits through, instead of the ad-hoc stat
//! structs each crate used to keep privately.
//!
//! Two kinds of signal, with different determinism contracts:
//!
//! * **Spans** — hierarchical wall-clock intervals (RAII guards over a
//!   monotonic epoch, nested via a thread-local stack). Span *timings* are
//!   wall-clock and therefore non-deterministic by design; they exist for
//!   self-profiling, never as model inputs. Spans cost nothing while the
//!   recorder is disabled: creating a guard is one relaxed atomic load, and
//!   any closure building the span name is never called.
//! * **Counters** — monotone `u64` event counts ([`Counter`] /
//!   [`CounterGroup`]). Counters are *always on* (they are the data the
//!   public stats views are built over) and bitwise-deterministic for a
//!   deterministic workload: they count events, never measure time, and are
//!   excluded from golden-snapshot inputs.
//!
//! Recorded spans and counter snapshots flow to pluggable [`Sink`]s on
//! [`flush`]. The `dlperf-trace` crate ships a `ChromeTraceSink` that turns
//! a flush into the same trace dialect its own analysis pipeline parses, so
//! the performance model can profile itself.
//!
//! The `noop` cargo feature compiles the span machinery out entirely:
//! [`enable`] becomes a no-op and [`enabled`] a constant `false`, letting
//! the optimizer delete instrumentation sites. Counters still count.
//!
//! ## Example
//!
//! ```
//! use dlperf_obs as obs;
//!
//! obs::enable();
//! {
//!     let _outer = obs::span("analyze", obs::SpanKind::Phase);
//!     let _inner = obs::span("walk", obs::SpanKind::Work);
//! } // guards record on drop
//! let snap = obs::flush();
//! assert_eq!(snap.spans.len(), 2);
//! obs::disable();
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

/// What a span represents, which decides how sinks render it.
///
/// `Phase` spans are bookkeeping intervals (a calibration, a prepare step,
/// a supervisor attempt). `Work` spans are units of priced work (a
/// critical-path walk, one sweep scenario): a trace sink emits a device-side
/// event for them so the self-trace gets a host/device breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Host-side orchestration interval.
    Phase,
    /// A unit of actual prediction work.
    Work,
}

/// One finished span, as delivered to sinks.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id (never 0).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root span.
    pub parent: u64,
    /// Recording-thread ordinal (assigned on each thread's first span).
    pub thread: u32,
    /// Span name.
    pub name: String,
    /// Phase or Work.
    pub kind: SpanKind,
    /// Start, microseconds since the recorder epoch (monotonic clock).
    pub start_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
}

impl SpanRecord {
    /// End timestamp.
    pub fn end_us(&self) -> f64 {
        self.start_us + self.dur_us
    }
}

/// One counter's value at flush time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Owning group name.
    pub group: String,
    /// Counter name within the group.
    pub name: &'static str,
    /// Current value.
    pub value: u64,
}

/// Everything a [`flush`] hands to sinks: the drained spans plus a snapshot
/// of every live counter group, sorted by (group, counter) name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Finished spans since the previous flush, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Counter values at flush time (cumulative, not deltas).
    pub counters: Vec<CounterSnapshot>,
}

/// A destination for flushed snapshots.
pub trait Sink: Send + Sync {
    /// Receives one flushed snapshot.
    fn consume(&self, snapshot: &Snapshot);
}

/// A single cache-line-padded atomic event counter.
///
/// Padding keeps two counters owned by different threads (e.g. memo-cache
/// hits bumped by sweep workers) off the same cache line.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter { v: AtomicU64::new(0) }
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }

    /// Resets to zero (for per-run stats views that clear between runs).
    pub fn reset(&self) {
        self.v.store(0, Ordering::Relaxed);
    }
}

/// A named set of counters owned by one component instance (a memo cache,
/// a registry, a supervisor). Creating a group registers it with the global
/// recorder via a weak reference, so flushes export whatever groups are
/// still alive without keeping dead instances around.
#[derive(Debug)]
pub struct CounterGroup {
    name: String,
    counters: Vec<(&'static str, Counter)>,
}

impl CounterGroup {
    /// Creates and globally registers a group with the given counters.
    pub fn register(name: impl Into<String>, counter_names: &[&'static str]) -> Arc<CounterGroup> {
        let group = Arc::new(CounterGroup {
            name: name.into(),
            counters: counter_names.iter().map(|&n| (n, Counter::new())).collect(),
        });
        let mut reg = recorder().groups.lock().expect("obs group registry poisoned");
        reg.push(Arc::downgrade(&group));
        // Opportunistically prune groups whose owners dropped.
        reg.retain(|w| w.strong_count() > 0);
        group
    }

    /// The group name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A cheap handle to one counter for hot-path increments.
    ///
    /// # Panics
    /// Panics if `name` was not in the list passed to [`register`] — a
    /// programming error at the instrumentation site.
    ///
    /// [`register`]: CounterGroup::register
    pub fn handle(self: &Arc<Self>, name: &'static str) -> CounterHandle {
        let idx = self
            .counters
            .iter()
            .position(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("counter `{name}` not registered in group `{}`", self.name));
        CounterHandle { group: Arc::clone(self), idx }
    }

    /// Current value of a counter, 0 for unknown names.
    pub fn value(&self, name: &'static str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, c)| c.get()).unwrap_or(0)
    }

    /// Snapshot of every counter in this group.
    pub fn snapshot(&self) -> Vec<CounterSnapshot> {
        self.counters
            .iter()
            .map(|(n, c)| CounterSnapshot { group: self.name.clone(), name: n, value: c.get() })
            .collect()
    }
}

/// Hot-path handle to one counter inside a [`CounterGroup`].
#[derive(Debug, Clone)]
pub struct CounterHandle {
    group: Arc<CounterGroup>,
    idx: usize,
}

impl CounterHandle {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.group.counters[self.idx].1.add(n);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.group.counters[self.idx].1.get()
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.group.counters[self.idx].1.reset()
    }
}

struct Recorder {
    enabled: AtomicBool,
    epoch: Instant,
    next_span_id: AtomicU64,
    next_thread: AtomicU32,
    spans: Mutex<Vec<SpanRecord>>,
    groups: Mutex<Vec<Weak<CounterGroup>>>,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
}

fn recorder() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(|| Recorder {
        enabled: AtomicBool::new(false),
        epoch: Instant::now(),
        next_span_id: AtomicU64::new(1),
        next_thread: AtomicU32::new(0),
        spans: Mutex::new(Vec::new()),
        groups: Mutex::new(Vec::new()),
        sinks: Mutex::new(Vec::new()),
    })
}

thread_local! {
    /// Per-thread (ordinal, open-span-id stack). Ordinal u32::MAX = unassigned.
    static THREAD_CTX: RefCell<(u32, Vec<u64>)> = const { RefCell::new((u32::MAX, Vec::new())) };
}

/// Turns span recording on. No-op under the `noop` feature.
pub fn enable() {
    if cfg!(feature = "noop") {
        return;
    }
    recorder().enabled.store(true, Ordering::Release);
}

/// Turns span recording off. Guards already open become inert only for
/// future spans; open guards still record on drop.
pub fn disable() {
    recorder().enabled.store(false, Ordering::Release);
}

/// Whether spans are currently recorded. Constant `false` under `noop`.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    recorder().enabled.load(Ordering::Relaxed)
}

/// Installs a sink; every subsequent [`flush`] feeds it.
pub fn install_sink(sink: Box<dyn Sink>) {
    recorder().sinks.lock().expect("obs sink registry poisoned").push(sink);
}

/// Removes every installed sink (tests and examples that scope a sink's
/// lifetime call this when done).
pub fn clear_sinks() {
    recorder().sinks.lock().expect("obs sink registry poisoned").clear();
}

/// Drains finished spans, snapshots live counter groups, feeds every
/// installed sink, and returns the snapshot.
pub fn flush() -> Snapshot {
    let rec = recorder();
    let spans = std::mem::take(&mut *rec.spans.lock().expect("obs span buffer poisoned"));
    let mut counters = Vec::new();
    {
        let mut groups = rec.groups.lock().expect("obs group registry poisoned");
        groups.retain(|w| w.strong_count() > 0);
        for g in groups.iter().filter_map(Weak::upgrade) {
            counters.extend(g.snapshot());
        }
    }
    counters.sort_by(|a, b| (a.group.as_str(), a.name).cmp(&(b.group.as_str(), b.name)));
    let snapshot = Snapshot { spans, counters };
    for sink in rec.sinks.lock().expect("obs sink registry poisoned").iter() {
        sink.consume(&snapshot);
    }
    snapshot
}

/// Starts a span with a static name. When the recorder is disabled this is
/// a single relaxed atomic load returning an inert guard.
#[inline]
pub fn span(name: &'static str, kind: SpanKind) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    start_span(name.to_string(), kind)
}

/// Starts a span whose name is built lazily — the closure only runs when
/// the recorder is enabled, so dynamic labels cost nothing when disabled.
#[inline]
pub fn span_with<F: FnOnce() -> String>(kind: SpanKind, make_name: F) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    start_span(make_name(), kind)
}

fn start_span(name: String, kind: SpanKind) -> SpanGuard {
    let rec = recorder();
    let id = rec.next_span_id.fetch_add(1, Ordering::Relaxed);
    let (thread, parent) = THREAD_CTX.with(|ctx| {
        let mut ctx = ctx.borrow_mut();
        if ctx.0 == u32::MAX {
            ctx.0 = rec.next_thread.fetch_add(1, Ordering::Relaxed);
        }
        let parent = ctx.1.last().copied().unwrap_or(0);
        ctx.1.push(id);
        (ctx.0, parent)
    });
    let start_us = rec.epoch.elapsed().as_secs_f64() * 1e6;
    SpanGuard(Some(ActiveSpan { id, parent, thread, name, kind, start_us }))
}

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    parent: u64,
    thread: u32,
    name: String,
    kind: SpanKind,
    start_us: f64,
}

/// RAII guard: the span is recorded when the guard drops.
#[derive(Debug)]
#[must_use = "a span guard records on drop; binding it to _ ends the span immediately"]
pub struct SpanGuard(Option<ActiveSpan>);

impl SpanGuard {
    /// Whether this guard records anything (false when the recorder was
    /// disabled at creation).
    pub fn is_recording(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let rec = recorder();
        let dur_us = (rec.epoch.elapsed().as_secs_f64() * 1e6 - active.start_us).max(0.0);
        THREAD_CTX.with(|ctx| {
            let stack = &mut ctx.borrow_mut().1;
            // RAII makes this a pop from the top; tolerate out-of-order
            // drops of moved guards by removing wherever the id sits.
            if let Some(pos) = stack.iter().rposition(|&sid| sid == active.id) {
                stack.remove(pos);
            }
        });
        rec.spans.lock().expect("obs span buffer poisoned").push(SpanRecord {
            id: active.id,
            parent: active.parent,
            thread: active.thread,
            name: active.name,
            kind: active.kind,
            start_us: active.start_us,
            dur_us,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is global; tests that toggle it serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing_and_build_no_name() {
        let _l = TEST_LOCK.lock().unwrap();
        disable();
        let _ = flush();
        let g = span_with(SpanKind::Phase, || panic!("name closure must not run"));
        assert!(!g.is_recording());
        drop(g);
        assert!(flush().spans.is_empty());
    }

    #[test]
    fn nesting_and_parentage_are_recorded() {
        let _l = TEST_LOCK.lock().unwrap();
        disable();
        let _ = flush();
        enable();
        {
            let _outer = span("outer", SpanKind::Phase);
            let _inner = span("inner", SpanKind::Work);
        }
        disable();
        let snap = flush();
        assert_eq!(snap.spans.len(), 2);
        // Inner drops (and records) first.
        let inner = &snap.spans[0];
        let outer = &snap.spans[1];
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.thread, outer.thread);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.end_us() <= outer.end_us() + 1e-9);
    }

    #[test]
    fn sibling_spans_share_a_parent_and_do_not_overlap() {
        let _l = TEST_LOCK.lock().unwrap();
        disable();
        let _ = flush();
        enable();
        {
            let _root = span("root", SpanKind::Phase);
            drop(span("a", SpanKind::Work));
            drop(span("b", SpanKind::Work));
        }
        disable();
        let snap = flush();
        let root = snap.spans.iter().find(|s| s.name == "root").unwrap();
        let a = snap.spans.iter().find(|s| s.name == "a").unwrap();
        let b = snap.spans.iter().find(|s| s.name == "b").unwrap();
        assert_eq!(a.parent, root.id);
        assert_eq!(b.parent, root.id);
        assert!(a.end_us() <= b.start_us + 1e-9, "siblings are sequential");
    }

    #[test]
    fn counters_count_while_spans_are_disabled() {
        let group = CounterGroup::register("test.counters", &["hits", "misses"]);
        let hits = group.handle("hits");
        hits.add(3);
        hits.incr();
        assert_eq!(group.value("hits"), 4);
        assert_eq!(group.value("misses"), 0);
        let snap = group.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().any(|c| c.name == "hits" && c.value == 4));
    }

    #[test]
    fn flush_exports_live_groups_sorted_and_drops_dead_ones() {
        let _l = TEST_LOCK.lock().unwrap();
        let keep = CounterGroup::register("zz.keep", &["n"]);
        keep.handle("n").add(7);
        {
            let dead = CounterGroup::register("aa.dead", &["n"]);
            dead.handle("n").incr();
        }
        let snap = flush();
        assert!(snap.counters.iter().any(|c| c.group == "zz.keep" && c.value == 7));
        assert!(!snap.counters.iter().any(|c| c.group == "aa.dead"));
        let zz: Vec<_> = snap.counters.iter().map(|c| c.group.clone()).collect();
        let mut sorted = zz.clone();
        sorted.sort();
        assert_eq!(zz, sorted, "counter export is name-sorted");
    }

    #[test]
    fn threads_get_distinct_ordinals() {
        let _l = TEST_LOCK.lock().unwrap();
        disable();
        let _ = flush();
        enable();
        drop(span("main-thread", SpanKind::Phase));
        std::thread::spawn(|| drop(span("worker", SpanKind::Phase)))
            .join()
            .unwrap();
        disable();
        let snap = flush();
        let m = snap.spans.iter().find(|s| s.name == "main-thread").unwrap();
        let w = snap.spans.iter().find(|s| s.name == "worker").unwrap();
        assert_ne!(m.thread, w.thread);
    }

    struct CollectSink(Mutex<usize>);
    impl Sink for CollectSink {
        fn consume(&self, snapshot: &Snapshot) {
            *self.0.lock().unwrap() += snapshot.spans.len();
        }
    }

    #[test]
    fn sinks_receive_flushes() {
        let _l = TEST_LOCK.lock().unwrap();
        disable();
        let _ = flush();
        clear_sinks();
        let sink = Arc::new(CollectSink(Mutex::new(0)));
        struct Fwd(Arc<CollectSink>);
        impl Sink for Fwd {
            fn consume(&self, s: &Snapshot) {
                self.0.consume(s)
            }
        }
        install_sink(Box::new(Fwd(Arc::clone(&sink))));
        enable();
        drop(span("x", SpanKind::Work));
        disable();
        let _ = flush();
        clear_sinks();
        assert_eq!(*sink.0.lock().unwrap(), 1);
    }
}
