//! Prints the recorder's per-span cost, enabled vs disabled — the numbers
//! behind the overhead budget the bench gate enforces (`obs_overhead_pct`
//! in `BENCH_sweep.json`).
//!
//! Run with `cargo run --release -p dlperf-obs --example span_cost`.

fn main() {
    const N: u32 = 100_000;
    dlperf_obs::enable();
    for _ in 0..1_000 {
        drop(dlperf_obs::span("warm", dlperf_obs::SpanKind::Work));
    }

    let t0 = std::time::Instant::now();
    for _ in 0..N {
        drop(dlperf_obs::span("static-name", dlperf_obs::SpanKind::Work));
    }
    let static_ns = t0.elapsed().as_nanos() as f64 / f64::from(N);

    let t0 = std::time::Instant::now();
    for i in 0..N {
        drop(dlperf_obs::span_with(dlperf_obs::SpanKind::Work, || format!("scenario:{i}")));
    }
    let with_ns = t0.elapsed().as_nanos() as f64 / f64::from(N);

    dlperf_obs::disable();
    let drained = dlperf_obs::flush().spans.len();

    let t0 = std::time::Instant::now();
    for i in 0..N {
        drop(dlperf_obs::span_with(dlperf_obs::SpanKind::Work, || format!("scenario:{i}")));
    }
    let off_ns = t0.elapsed().as_nanos() as f64 / f64::from(N);

    println!("enabled, static name:    {static_ns:>7.0} ns/span");
    println!("enabled, formatted name: {with_ns:>7.0} ns/span");
    println!("disabled:                {off_ns:>7.1} ns/span (name closure never runs)");
    println!("spans drained at flush:  {drained}");
}
