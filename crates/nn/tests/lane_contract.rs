//! Property tests for the lane-reduction accumulation contract.
//!
//! The pinned numeric contract of every dot product in this crate (and
//! therefore of training, inference, and the persisted-model envelope) is
//! the W=4 lane reduction: lane `l` accumulates elements `k ≡ l (mod 4)`
//! in ascending `k`, exact-zero *left* operands are skipped per lane, and
//! the four partials reduce in the fixed tree `(a0+a1) + (a2+a3)`. These
//! tests pin the SIMD-friendly kernel to the scalar emulation bit for bit
//! across the shapes that historically break such contracts: remainder
//! tails of every residue, zeros landing on every lane, non-finite
//! right-hand operands under a zero left, and empty inputs.

use dlperf_nn::matrix::Matrix;
use dlperf_nn::{lane_dot, lane_dot_reference, LANES};
use proptest::prelude::*;

/// Values that include exact zeros often enough to exercise the skip on
/// every lane, alongside ordinary magnitudes.
fn element() -> impl Strategy<Value = f64> {
    prop_oneof![-10.0f64..10.0, Just(0.0f64), Just(-0.0f64)]
}

fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0..=max_len).prop_flat_map(|k| {
        (
            proptest::collection::vec(element(), k),
            proptest::collection::vec(-10.0f64..10.0, k),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The batched kernel and the scalar lane emulation agree bitwise on
    /// every length — chunked bodies and remainder tails of all residues
    /// mod W.
    #[test]
    fn lane_dot_matches_reference_bitwise((x, w) in vec_pair(41)) {
        prop_assert_eq!(
            lane_dot(&x, &w).to_bits(),
            lane_dot_reference(&x, &w).to_bits(),
            "lane kernel diverged from scalar emulation at k={}", x.len()
        );
    }

    /// Zero-skip is a *true* skip on every lane: with an exact-zero left
    /// operand, the right operand never enters the arithmetic — even when
    /// it is inf or NaN, which `acc + 0.0 * w` would poison.
    #[test]
    fn zero_left_skips_nonfinite_right_on_every_lane(
        (x, mut w) in vec_pair(4 * LANES + 3),
        poison in proptest::collection::vec(
            prop_oneof![Just(f64::INFINITY), Just(f64::NEG_INFINITY), Just(f64::NAN)],
            0..8,
        ),
    ) {
        let clean = lane_dot(&x, &w);
        let zero_positions: Vec<usize> =
            (0..x.len()).filter(|&i| x[i] == 0.0).collect();
        for (j, p) in poison.into_iter().enumerate() {
            if let Some(&i) = zero_positions.get(j) {
                w[i] = p;
            }
        }
        prop_assert_eq!(
            lane_dot(&x, &w).to_bits(),
            clean.to_bits(),
            "a zero-skipped slot leaked its right operand into the sum"
        );
        prop_assert_eq!(lane_dot(&x, &w).to_bits(), lane_dot_reference(&x, &w).to_bits());
    }

    /// Remainder elements keep their lane assignment: padding both vectors
    /// with `(0.0, finite)` pairs up to the next multiple of W changes
    /// nothing — the pad slots are skipped in whatever lane they fall.
    #[test]
    fn zero_padding_to_full_width_is_invisible((x, w) in vec_pair(33), pad_w in -10.0f64..10.0) {
        let base = lane_dot(&x, &w);
        let (mut xp, mut wp) = (x, w);
        while !xp.len().is_multiple_of(LANES) {
            xp.push(0.0);
            wp.push(pad_w);
        }
        prop_assert_eq!(lane_dot(&xp, &wp).to_bits(), base.to_bits());
    }

    /// The batched matmul is *defined* as the lane contract applied per
    /// output element: it matches an element-by-element `lane_dot` over
    /// transposed stripes bitwise, for every shape including empty batches
    /// (zero rows).
    #[test]
    fn matmul_is_lane_dot_per_element_bitwise(
        (m, k, n) in (0usize..5, 1usize..9, 1usize..6),
        seed in 0u64..u64::MAX,
    ) {
        // Deterministic fill with planted zeros, from the seed.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            match (s >> 60) & 3 {
                0 => 0.0,
                _ => ((s >> 11) as f64 / (1u64 << 53) as f64) * 8.0 - 4.0,
            }
        };
        let a = Matrix::from_fn(m, k, |_, _| next());
        let b = Matrix::from_fn(k, n, |_, _| next());
        let c = a.matmul(&b);
        prop_assert_eq!(c.rows(), m);
        prop_assert_eq!(c.cols(), n);
        let bt = b.transpose();
        for i in 0..m {
            for j in 0..n {
                prop_assert_eq!(
                    c.at(i, j).to_bits(),
                    lane_dot(a.row(i), bt.row(j)).to_bits(),
                    "element ({}, {}) broke the lane contract", i, j
                );
            }
        }
    }
}

#[test]
fn empty_inputs_are_exactly_zero() {
    assert_eq!(lane_dot(&[], &[]).to_bits(), 0.0f64.to_bits());
    assert_eq!(lane_dot_reference(&[], &[]).to_bits(), 0.0f64.to_bits());
    let empty = Matrix::zeros(0, 3).matmul(&Matrix::zeros(3, 2));
    assert_eq!((empty.rows(), empty.cols()), (0, 2));
}
