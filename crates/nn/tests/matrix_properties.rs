//! Property-based tests for the dense linear algebra under the MLP.

use dlperf_nn::matrix::Matrix;
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols).prop_map(move |data| {
        let mut m = Matrix::zeros(rows, cols);
        m.as_mut_slice().copy_from_slice(&data);
        m
    })
}

/// Two chain-compatible matrices A (m×k) and B (k×n).
fn pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..8, 1usize..8, 1usize..8)
        .prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
}

/// Three chain-compatible matrices A (m×k), B (k×n), C (n×p).
fn triple() -> impl Strategy<Value = (Matrix, Matrix, Matrix)> {
    (1usize..6, 1usize..6, 1usize..6, 1usize..6)
        .prop_flat_map(|(m, k, n, p)| (matrix(m, k), matrix(k, n), matrix(n, p)))
}

/// Two same-shape matrices.
fn same_shape() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..8, 1usize..8).prop_flat_map(|(m, n)| (matrix(m, n), matrix(m, n)))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_of_product((a, b) in pair()) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&left, &right, 1e-9));
    }

    /// Associativity: (A·B)·C = A·(B·C).
    #[test]
    fn matmul_associative((a, b, c) in triple()) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(approx_eq(&left, &right, 1e-8));
    }

    /// Column sums distribute over axpy.
    #[test]
    fn col_sums_linear((a, b) in same_shape(), alpha in -4.0f64..4.0) {
        let mut combined = a.clone();
        combined.axpy(alpha, &b);
        let lhs = combined.col_sums();
        let (sa, sb) = (a.col_sums(), b.col_sums());
        for (i, v) in lhs.iter().enumerate() {
            prop_assert!((v - (sa[i] + alpha * sb[i])).abs() < 1e-8);
        }
    }

    /// Selecting all rows in order is the identity.
    #[test]
    fn select_all_rows_identity((a, _) in same_shape()) {
        let idx: Vec<usize> = (0..a.rows()).collect();
        prop_assert_eq!(a.select_rows(&idx), a);
    }

    /// Hadamard with all-ones is the identity.
    #[test]
    fn hadamard_identity((a, _) in same_shape()) {
        let ones = Matrix::from_fn(a.rows(), a.cols(), |_, _| 1.0);
        let mut h = a.clone();
        h.hadamard_inplace(&ones);
        prop_assert_eq!(h, a);
    }
}
