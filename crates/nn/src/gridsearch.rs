//! Hyperparameter grid search over the paper's Table II space.
//!
//! "We conduct a grid search over a universal search space ... by training a
//! series of MLP models over the microbenchmark data and keeping the one
//! with the lowest prediction error." The full space has 5×4×2×7 = 280
//! configurations; [`SearchSpace::reduced`] provides a small subset for
//! tests and quick runs. Search is parallelized across worker threads with
//! `crossbeam`.

use crossbeam::channel;
use serde::{Deserialize, Serialize};

use dlperf_runtime::{
    JobContext, JobError, ResumableJob, RunReport, StepOutcome, Supervisor, SupervisorError,
};

use crate::dataset::Dataset;
use crate::optim::OptimizerKind;
use crate::train::{train, TrainConfig, TrainedModel};

/// One point of the hyperparameter grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperParams {
    /// Number of hidden layers.
    pub num_layers: usize,
    /// Neurons per hidden layer.
    pub width: usize,
    /// Optimizer.
    pub optimizer: OptimizerKind,
    /// Base learning rate (before the paper's ×10 SGD scaling).
    pub learning_rate: f64,
}

/// The grid to search.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Candidate hidden-layer counts.
    pub layers: Vec<usize>,
    /// Candidate widths.
    pub widths: Vec<usize>,
    /// Candidate optimizers.
    pub optimizers: Vec<OptimizerKind>,
    /// Candidate learning rates.
    pub learning_rates: Vec<f64>,
}

impl SearchSpace {
    /// The full Table II search space (280 configurations).
    pub fn paper() -> Self {
        SearchSpace {
            layers: vec![3, 4, 5, 6, 7],
            widths: vec![128, 256, 512, 1024],
            optimizers: vec![OptimizerKind::Adam, OptimizerKind::Sgd],
            learning_rates: vec![1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2],
        }
    }

    /// A small space for tests and fast iterations (8 configurations).
    pub fn reduced() -> Self {
        SearchSpace {
            layers: vec![3, 4],
            widths: vec![32, 64],
            optimizers: vec![OptimizerKind::Adam],
            learning_rates: vec![1e-3, 5e-3],
        }
    }

    /// Enumerates every configuration in the grid.
    pub fn configurations(&self) -> Vec<HyperParams> {
        let mut out = Vec::new();
        for &num_layers in &self.layers {
            for &width in &self.widths {
                for &optimizer in &self.optimizers {
                    for &learning_rate in &self.learning_rates {
                        out.push(HyperParams { num_layers, width, optimizer, learning_rate });
                    }
                }
            }
        }
        out
    }
}

/// Result of a grid search: the winning configuration, its fitted model,
/// and the validation MAPE of every configuration tried.
#[derive(Debug)]
pub struct SearchResult {
    /// The best hyperparameters found.
    pub best: HyperParams,
    /// The model fitted with [`SearchResult::best`].
    pub model: TrainedModel,
    /// `(config, validation MAPE)` for every configuration, search order.
    pub trials: Vec<(HyperParams, f64)>,
}

/// Runs the grid search with `threads` parallel workers, each training on a
/// clone of `data` for `epochs` epochs, and returns the configuration with
/// the lowest validation MAPE.
///
/// # Panics
/// Panics if the space is empty, `threads` is zero, or the dataset is empty.
pub fn grid_search(
    data: &Dataset,
    space: &SearchSpace,
    epochs: usize,
    threads: usize,
    seed: u64,
) -> SearchResult {
    assert!(threads > 0, "grid_search needs at least one worker");
    let configs = space.configurations();
    assert!(!configs.is_empty(), "empty search space");

    let (job_tx, job_rx) = channel::unbounded::<(usize, HyperParams)>();
    let (res_tx, res_rx) = channel::unbounded::<(usize, HyperParams, TrainedModel)>();
    for item in configs.iter().cloned().enumerate() {
        job_tx.send(item).expect("channel open");
    }
    drop(job_tx);

    crossbeam::scope(|s| {
        for _ in 0..threads.min(configs.len()) {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            s.spawn(move |_| {
                while let Ok((i, hp)) = job_rx.recv() {
                    let cfg = TrainConfig {
                        hidden_layers: hp.num_layers,
                        width: hp.width,
                        optimizer: hp.optimizer,
                        learning_rate: hp.learning_rate,
                        epochs,
                        ..TrainConfig::default()
                    };
                    let model = train(data, &cfg, seed.wrapping_add(i as u64));
                    res_tx.send((i, hp, model)).expect("result channel open");
                }
            });
        }
        drop(res_tx);
    })
    .expect("grid-search workers do not panic");

    let mut results: Vec<(usize, HyperParams, TrainedModel)> = res_rx.iter().collect();
    results.sort_by_key(|(i, _, _)| *i);
    let trials: Vec<(HyperParams, f64)> =
        results.iter().map(|(_, hp, m)| (hp.clone(), m.val_mape)).collect();
    let (_, best, model) = results
        .into_iter()
        .min_by(|a, b| a.2.val_mape.total_cmp(&b.2.val_mape))
        .expect("at least one configuration ran");
    SearchResult { best, model, trials }
}

/// The grid search as a checkpointable [`ResumableJob`]: one step trains
/// one configuration.
///
/// Each configuration trains with the independent seed
/// `seed.wrapping_add(i)` — exactly the seeds [`grid_search`] hands its
/// worker threads — so the supervised search produces bitwise-identical
/// trials to the unsupervised one regardless of where (or whether) a kill
/// and resume happened.
#[derive(Debug)]
pub struct GridSearchJob<'a> {
    data: &'a Dataset,
    configs: Vec<HyperParams>,
    epochs: usize,
    seed: u64,
}

impl<'a> GridSearchJob<'a> {
    /// A job covering every configuration of `space`.
    ///
    /// # Panics
    /// Panics if the space or the dataset is empty, mirroring
    /// [`grid_search`].
    pub fn new(data: &'a Dataset, space: &SearchSpace, epochs: usize, seed: u64) -> Self {
        let configs = space.configurations();
        assert!(!configs.is_empty(), "empty search space");
        GridSearchJob { data, configs, epochs, seed }
    }

    /// Number of configurations (= steps) in the job.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the job has no configurations (never true: `new` rejects
    /// empty spaces).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }
}

impl ResumableJob for GridSearchJob<'_> {
    /// Completed trials, in configuration order: `(config, fitted model)`.
    type State = Vec<(HyperParams, TrainedModel)>;
    type Output = SearchResult;

    fn name(&self) -> &str {
        "nn.grid-search"
    }

    fn initial_state(&self) -> Self::State {
        Vec::new()
    }

    fn step(&self, state: &mut Self::State, ctx: &JobContext) -> Result<StepOutcome, JobError> {
        let i = state.len();
        let hp = self.configs.get(i).cloned().ok_or_else(|| {
            JobError::Failed(format!(
                "checkpoint has {i} trials but the space has only {} configurations",
                self.configs.len()
            ))
        })?;
        debug_assert_eq!(ctx.step as usize, i, "one step per configuration");
        let cfg = TrainConfig {
            hidden_layers: hp.num_layers,
            width: hp.width,
            optimizer: hp.optimizer,
            learning_rate: hp.learning_rate,
            epochs: self.epochs,
            ..TrainConfig::default()
        };
        let model = train(self.data, &cfg, self.seed.wrapping_add(i as u64));
        state.push((hp, model));
        Ok(if state.len() == self.configs.len() {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }

    fn finish(&self, state: Self::State) -> SearchResult {
        let trials: Vec<(HyperParams, f64)> =
            state.iter().map(|(hp, m)| (hp.clone(), m.val_mape)).collect();
        let (best, model) = state
            .into_iter()
            .min_by(|a, b| a.1.val_mape.total_cmp(&b.1.val_mape))
            .expect("grid-search jobs always have at least one configuration");
        SearchResult { best, model, trials }
    }
}

/// Runs the grid search under `supervisor`: progress is checkpointed per
/// completed configuration, worker panics are contained and retried, and a
/// killed process resumes from its last snapshot with bitwise-identical
/// results.
pub fn grid_search_supervised(
    data: &Dataset,
    space: &SearchSpace,
    epochs: usize,
    seed: u64,
    supervisor: &mut Supervisor,
) -> (Result<SearchResult, SupervisorError>, RunReport) {
    supervisor.run(&GridSearchJob::new(data, space, epochs, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic() -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 3..10 {
            for j in 3..10 {
                let (x0, x1) = ((1u64 << i) as f64, (1u64 << j) as f64);
                rows.push(vec![x0, x1]);
                ys.push(1.0 + 2e-4 * x0 * x1);
            }
        }
        Dataset::from_rows(&rows, &ys).unwrap()
    }

    #[test]
    fn paper_space_has_280_configs() {
        assert_eq!(SearchSpace::paper().configurations().len(), 280);
    }

    #[test]
    fn search_returns_best_of_trials() {
        let data = synthetic();
        let space = SearchSpace {
            layers: vec![3],
            widths: vec![16, 32],
            optimizers: vec![OptimizerKind::Adam],
            learning_rates: vec![1e-3],
        };
        let res = grid_search(&data, &space, 60, 2, 42);
        assert_eq!(res.trials.len(), 2);
        let min = res.trials.iter().map(|(_, e)| *e).fold(f64::INFINITY, f64::min);
        assert_eq!(res.model.val_mape, min);
        assert!(space.configurations().contains(&res.best));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        grid_search(&synthetic(), &SearchSpace::reduced(), 1, 0, 0);
    }

    #[test]
    fn supervised_search_matches_threaded_search_bitwise() {
        let data = synthetic();
        let space = SearchSpace {
            layers: vec![3],
            widths: vec![16, 32],
            optimizers: vec![OptimizerKind::Adam],
            learning_rates: vec![1e-3],
        };
        let plain = grid_search(&data, &space, 40, 2, 7);
        let mut sup = Supervisor::new(dlperf_runtime::SupervisorConfig::default());
        let (res, report) = grid_search_supervised(&data, &space, 40, 7, &mut sup);
        let res = res.expect("supervised search completes");
        assert_eq!(report.steps_run, 2);
        assert_eq!(res.best, plain.best);
        assert_eq!(res.model.val_mape.to_bits(), plain.model.val_mape.to_bits());
        for ((hp_a, e_a), (hp_b, e_b)) in res.trials.iter().zip(&plain.trials) {
            assert_eq!(hp_a, hp_b);
            assert_eq!(e_a.to_bits(), e_b.to_bits(), "per-trial error must match bitwise");
        }
    }
}
