//! Dense row-major `f64` matrices with exactly the operations MLP training
//! needs. No BLAS, no unsafe — clarity over peak speed; the datasets here
//! are thousands of rows, not millions.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a generator called as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from rows of equal length.
    ///
    /// Returns `None` if rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Option<Self> {
        let cols = rows.first()?.len();
        if cols == 0 || rows.iter().any(|r| r.len() != cols) {
            return None;
        }
        Some(Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// A view of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying data, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying data, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self × rhs`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dims: {}x{} × {}x{}", self.rows, self.cols, rhs.rows, rhs.cols);
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.at(c, r))
    }

    /// Adds a row vector to every row (bias broadcast).
    ///
    /// # Panics
    /// Panics if `bias.len() != cols`.
    pub fn add_row(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_mut(self.cols) {
            for (v, b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Element-wise map, in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise product (Hadamard), in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard_inplace(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "hadamard shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
    }

    /// Column sums (gradient of a broadcast bias).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.data.chunks(self.cols) {
            for (o, v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// `self += alpha * rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Copy of selected rows, in the given order.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        Matrix::from_fn(idx.len(), self.cols, |r, c| self.at(idx[r], c))
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![4.0], vec![5.0], vec![6.0]]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.at(0, 0), 32.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row(&[1.0, -2.0]);
        assert_eq!(a.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_none());
        assert!(Matrix::from_rows(&[]).is_none());
    }

    #[test]
    fn select_rows_orders() {
        let a = Matrix::from_fn(4, 1, |r, _| r as f64);
        let s = a.select_rows(&[3, 1]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn batched_rows_match_per_row_matmul_bitwise() {
        // Awkward magnitudes on purpose: any reassociation of the
        // accumulation order shows up in the low mantissa bits.
        let a = Matrix::from_fn(7, 5, |r, c| {
            if (r + c) % 3 == 0 { 0.0 } else { (1.0 + r as f64) * 10f64.powi(c as i32 - 2) + 0.1 }
        });
        let b = Matrix::from_fn(5, 4, |r, c| (r as f64 - 1.7) * 3f64.powi(c as i32) + 1e-9);
        let batched = a.matmul(&b);
        for r in 0..a.rows() {
            let single = Matrix::from_rows(&[a.row(r).to_vec()]).unwrap().matmul(&b);
            let bits = |row: &[f64]| row.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(batched.row(r)), bits(single.row(0)), "row {r}");
        }
    }
}
