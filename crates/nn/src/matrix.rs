//! Dense row-major `f64` matrices with exactly the operations MLP training
//! needs. No BLAS, no unsafe — clarity over peak speed; the datasets here
//! are thousands of rows, not millions.
//!
//! Every dot product in this crate — training forward/backward, scalar
//! inference, and the packed [`InferencePlan`](crate::net::InferencePlan)
//! batch path — goes through [`lane_dot`], the *lane-reduction accumulation
//! contract* (DESIGN.md §9.3). The contract pins bitwise-exact results
//! across all execution strategies, so the SIMD-friendly batched kernel is
//! the definition rather than an approximation of the scalar path.

use serde::{Deserialize, Serialize};

/// Lane width of the accumulation contract: dot products run [`LANES`]
/// independent partial sums (lane `l` takes terms with `k ≡ l (mod LANES)`
/// in ascending `k`) reduced in a fixed tree at the end.
///
/// `LANES` is frozen into the persisted model envelope
/// (`dlperf-kernels::persist`); changing it is a bit-visible contract break
/// and requires a bundle-version story, not just a recompile.
pub const LANES: usize = 4;

/// The lane-reduction dot product — the single definition of floating-point
/// accumulation order for this crate (DESIGN.md §9.3).
///
/// Semantics, in order:
/// 1. `LANES` partial sums; lane `l` accumulates terms `x[k] * w[k]` for
///    `k ≡ l (mod LANES)` in ascending `k` (remainder elements land in
///    lanes `0..len % LANES` — they are just the tail of each lane's
///    arithmetic sequence).
/// 2. Terms whose **left** operand is exactly `0.0` (either sign) are
///    skipped: the lane accumulator is left untouched, even if `w[k]` is
///    infinite or NaN. This mirrors sparse activations after ReLU and is a
///    branchless select, so it vectorizes as a blend.
/// 3. Fixed reduction tree: `(acc0 + acc1) + (acc2 + acc3)`.
///
/// # Panics
/// Panics in debug builds if lengths disagree.
#[inline]
pub fn lane_dot(x: &[f64], w: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), w.len(), "lane_dot length mismatch");
    let mut acc = [0.0f64; LANES];
    let mut xc = x.chunks_exact(LANES);
    let mut wc = w.chunks_exact(LANES);
    for (cx, cw) in (&mut xc).zip(&mut wc) {
        for l in 0..LANES {
            let a = cx[l];
            // Select, not branch: `acc + a * cw[l]` would differ from a
            // true skip when a == 0.0 and cw[l] is inf/NaN, and a branch
            // would block vectorization.
            acc[l] = if a == 0.0 { acc[l] } else { acc[l] + a * cw[l] };
        }
    }
    for (l, (&a, &b)) in xc.remainder().iter().zip(wc.remainder()).enumerate() {
        acc[l] = if a == 0.0 { acc[l] } else { acc[l] + a * b };
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// Scalar emulation of [`lane_dot`]: per-lane strided serial passes, no
/// chunking. Structurally different code that must produce bitwise-identical
/// results — the property test that pins the contract compares the two.
pub fn lane_dot_reference(x: &[f64], w: &[f64]) -> f64 {
    assert_eq!(x.len(), w.len(), "lane_dot length mismatch");
    let mut acc = [0.0f64; LANES];
    for (l, lane) in acc.iter_mut().enumerate() {
        let mut k = l;
        while k < x.len() {
            let a = x[k];
            if a != 0.0 {
                *lane += a * w[k];
            }
            k += LANES;
        }
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a generator called as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from rows of equal length.
    ///
    /// Returns `None` if rows are ragged or empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Option<Self> {
        let cols = rows.first()?.len();
        if cols == 0 || rows.iter().any(|r| r.len() != cols) {
            return None;
        }
        Some(Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        })
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec length mismatch");
        Matrix { rows, cols, data }
    }

    /// Consumes the matrix, returning its row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    ///
    /// # Panics
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// A view of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying data, row-major.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying data, row-major.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self × rhs`.
    ///
    /// Every output element is a [`lane_dot`] of a row of `self` against a
    /// column of `rhs` (materialized once via an internal transpose for
    /// contiguity) — so each element's bits are independent of which other
    /// rows/columns are computed alongside it, and batch results match
    /// per-row results exactly.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dims: {}x{} × {}x{}", self.rows, self.cols, rhs.rows, rhs.cols);
        let rt = rhs.transpose();
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let xrow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = lane_dot(xrow, rt.row(j));
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.at(c, r))
    }

    /// Adds a row vector to every row (bias broadcast).
    ///
    /// # Panics
    /// Panics if `bias.len() != cols`.
    pub fn add_row(&mut self, bias: &[f64]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for row in self.data.chunks_mut(self.cols) {
            for (v, b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Element-wise map, in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise product (Hadamard), in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn hadamard_inplace(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "hadamard shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a *= b;
        }
    }

    /// Column sums (gradient of a broadcast bias).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.data.chunks(self.cols) {
            for (o, v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// `self += alpha * rhs`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Copy of selected rows, in the given order.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        Matrix::from_fn(idx.len(), self.cols, |r, c| self.at(idx[r], c))
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![4.0], vec![5.0], vec![6.0]]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.at(0, 0), 32.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row(&[1.0, -2.0]);
        assert_eq!(a.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_none());
        assert!(Matrix::from_rows(&[]).is_none());
    }

    #[test]
    fn select_rows_orders() {
        let a = Matrix::from_fn(4, 1, |r, _| r as f64);
        let s = a.select_rows(&[3, 1]);
        assert_eq!(s.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dims")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn lane_dot_matches_reference_on_all_remainders() {
        // k % LANES ∈ {0, 1, 2, 3} all exercised, with awkward magnitudes
        // so any reassociation flips low mantissa bits.
        for k in 0..=13 {
            let x: Vec<f64> = (0..k)
                .map(|i| if i % 3 == 0 { 0.0 } else { (i as f64 + 0.3) * 10f64.powi(i % 5 - 2) })
                .collect();
            let w: Vec<f64> = (0..k).map(|i| (i as f64 - 1.7) * 3f64.powi(i % 4) + 1e-9).collect();
            assert_eq!(
                lane_dot(&x, &w).to_bits(),
                lane_dot_reference(&x, &w).to_bits(),
                "k={k}"
            );
        }
    }

    #[test]
    fn lane_dot_zero_left_skips_even_nonfinite_right() {
        // A true skip: 0.0 * inf would be NaN if the term were computed.
        let x = [0.0, 2.0, -0.0, 1.0, 0.0];
        let w = [f64::INFINITY, 3.0, f64::NAN, 5.0, f64::NEG_INFINITY];
        let got = lane_dot(&x, &w);
        assert_eq!(got.to_bits(), lane_dot_reference(&x, &w).to_bits());
        assert_eq!(got, 11.0);
    }

    #[test]
    fn lane_dot_empty_is_zero() {
        assert_eq!(lane_dot(&[], &[]).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn batched_rows_match_per_row_matmul_bitwise() {
        // Awkward magnitudes on purpose: any reassociation of the
        // accumulation order shows up in the low mantissa bits.
        let a = Matrix::from_fn(7, 5, |r, c| {
            if (r + c) % 3 == 0 { 0.0 } else { (1.0 + r as f64) * 10f64.powi(c as i32 - 2) + 0.1 }
        });
        let b = Matrix::from_fn(5, 4, |r, c| (r as f64 - 1.7) * 3f64.powi(c as i32) + 1e-9);
        let batched = a.matmul(&b);
        for r in 0..a.rows() {
            let single = Matrix::from_rows(&[a.row(r).to_vec()]).unwrap().matmul(&b);
            let bits = |row: &[f64]| row.iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(batched.row(r)), bits(single.row(0)), "row {r}");
        }
    }
}
