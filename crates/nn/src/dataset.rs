//! Regression datasets: feature rows plus scalar targets.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::matrix::Matrix;

/// A regression dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Features, one row per sample.
    pub x: Matrix,
    /// Targets, one per sample.
    pub y: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset from rows and targets.
    ///
    /// Returns `None` if shapes disagree, rows are ragged, or empty.
    pub fn from_rows(rows: &[Vec<f64>], targets: &[f64]) -> Option<Self> {
        if rows.len() != targets.len() || rows.is_empty() {
            return None;
        }
        Some(Dataset { x: Matrix::from_rows(rows)?, y: targets.to_vec() })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features.
    pub fn feature_count(&self) -> usize {
        self.x.cols()
    }

    /// Copy of selected samples, in order.
    pub fn select(&self, idx: &[usize]) -> Dataset {
        Dataset { x: self.x.select_rows(idx), y: idx.iter().map(|&i| self.y[i]).collect() }
    }

    /// Deterministic shuffled split into `(train, validation)` with the
    /// given validation fraction.
    ///
    /// # Panics
    /// Panics if `val_frac` is outside `(0, 1)` or either side would be
    /// empty.
    pub fn split(&self, val_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(val_frac > 0.0 && val_frac < 1.0, "val_frac must be in (0, 1)");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        let n_val = ((self.len() as f64 * val_frac).round() as usize).clamp(1, self.len() - 1);
        let (val_idx, train_idx) = idx.split_at(n_val);
        (self.select(train_idx), self.select(val_idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
        Dataset::from_rows(&rows, &ys).unwrap()
    }

    #[test]
    fn split_is_partition() {
        let d = toy(100);
        let (tr, va) = d.split(0.2, 9);
        assert_eq!(tr.len() + va.len(), 100);
        assert_eq!(va.len(), 20);
        let mut all: Vec<i64> = tr
            .y
            .iter()
            .chain(va.y.iter())
            .map(|&v| v as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn split_deterministic() {
        let d = toy(50);
        let (a, _) = d.split(0.3, 7);
        let (b, _) = d.split(0.3, 7);
        assert_eq!(a.y, b.y);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(Dataset::from_rows(&[vec![1.0]], &[1.0, 2.0]).is_none());
        assert!(Dataset::from_rows(&[], &[]).is_none());
    }

    #[test]
    #[should_panic(expected = "val_frac")]
    fn bad_val_frac_panics() {
        toy(10).split(1.0, 0);
    }
}
