//! The MLP: a stack of fully connected layers with ReLU activations and a
//! linear output, trained by explicit backpropagation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::arena::ScratchArena;
use crate::matrix::{lane_dot, Matrix};

/// One fully connected layer with its parameter gradients.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weights, `in × out`.
    pub w: Matrix,
    /// Bias, length `out`.
    pub b: Vec<f64>,
    /// Gradient of `w` from the last backward pass.
    pub grad_w: Matrix,
    /// Gradient of `b` from the last backward pass.
    pub grad_b: Vec<f64>,
    input_cache: Option<Matrix>,
}

impl Linear {
    /// Xavier-uniform initialized layer.
    pub fn new(inputs: usize, outputs: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (inputs + outputs) as f64).sqrt();
        Linear {
            w: Matrix::from_fn(inputs, outputs, |_, _| rng.gen_range(-limit..limit)),
            b: vec![0.0; outputs],
            grad_w: Matrix::zeros(inputs, outputs),
            grad_b: vec![0.0; outputs],
            input_cache: None,
        }
    }

    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if train {
            self.input_cache = Some(x.clone());
        }
        let mut y = x.matmul(&self.w);
        y.add_row(&self.b);
        y
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient w.r.t. the layer input.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self
            .input_cache
            .take()
            .expect("backward called without a preceding training forward");
        self.grad_w = x.transpose().matmul(grad_out);
        self.grad_b = grad_out.col_sums();
        grad_out.matmul(&self.w.transpose())
    }
}

/// A multilayer perceptron regressor: `num_layers` hidden ReLU layers of
/// uniform width plus a scalar linear output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    /// ReLU masks cached during training forward passes.
    #[serde(skip)]
    relu_masks: Vec<Matrix>,
}

impl Mlp {
    /// Creates an MLP with `hidden_layers` hidden layers of width `width`,
    /// `inputs` input features, and a single output.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(inputs: usize, hidden_layers: usize, width: usize, seed: u64) -> Self {
        assert!(inputs > 0 && hidden_layers > 0 && width > 0, "MLP dims must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(hidden_layers + 1);
        let mut prev = inputs;
        for _ in 0..hidden_layers {
            layers.push(Linear::new(prev, width, &mut rng));
            prev = width;
        }
        layers.push(Linear::new(prev, 1, &mut rng));
        Mlp { layers, relu_masks: Vec::new() }
    }

    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.layers[0].w.rows()
    }

    /// The layers (for optimizers).
    pub fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Forward pass. With `train = true`, caches activations for
    /// [`Mlp::backward`].
    pub fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        assert_eq!(x.cols(), self.inputs(), "feature count mismatch");
        if train {
            self.relu_masks.clear();
        }
        let mut h = x.clone();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            h = layer.forward(&h, train);
            if i + 1 < n {
                // ReLU on hidden layers only.
                let mut mask = h.clone();
                mask.map_inplace(|v| if v > 0.0 { 1.0 } else { 0.0 });
                h.map_inplace(|v| v.max(0.0));
                if train {
                    self.relu_masks.push(mask);
                }
            }
        }
        h
    }

    /// Backpropagates `grad_out` (dL/d prediction) through the network,
    /// filling each layer's parameter gradients.
    ///
    /// # Panics
    /// Panics if no training forward pass preceded this call.
    pub fn backward(&mut self, grad_out: &Matrix) {
        let mut grad = grad_out.clone();
        let n = self.layers.len();
        for (rev, layer) in self.layers.iter_mut().rev().enumerate() {
            let i = n - 1 - rev;
            grad = layer.backward(&grad);
            if i > 0 {
                let mask = &self.relu_masks[i - 1];
                grad.hadamard_inplace(mask);
            }
        }
    }

    /// Inference forward pass: no caching, immutable receiver.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.inputs(), "feature count mismatch");
        let mut h = x.clone();
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let mut y = h.matmul(&layer.w);
            y.add_row(&layer.b);
            if i + 1 < n {
                y.map_inplace(|v| v.max(0.0));
            }
            h = y;
        }
        h
    }

    /// Predicts one sample.
    pub fn predict_one(&self, features: &[f64]) -> f64 {
        let x = Matrix::from_rows(&[features.to_vec()]).expect("non-empty feature row");
        self.infer(&x).at(0, 0)
    }

    /// Predicts a batch, returning one value per row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        let y = self.infer(x);
        (0..y.rows()).map(|r| y.at(r, 0)).collect()
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.w.rows() * l.w.cols() + l.b.len())
            .sum()
    }

    /// Freezes the weights into an [`InferencePlan`] for batched inference.
    pub fn plan(&self) -> InferencePlan {
        InferencePlan {
            layers: self
                .layers
                .iter()
                .map(|l| PlanLayer::pack(&l.w, &l.b))
                .collect(),
        }
    }
}

/// One packed inference layer: weights transposed to output-major
/// (`wt[j * inputs + k] == w[k][j]`) so each output neuron's dot product
/// reads a contiguous stripe, plus its bias.
#[derive(Debug, Clone)]
struct PlanLayer {
    wt: Vec<f64>,
    bias: Vec<f64>,
    inputs: usize,
    outputs: usize,
}

impl PlanLayer {
    fn pack(w: &Matrix, b: &[f64]) -> PlanLayer {
        let (inputs, outputs) = (w.rows(), w.cols());
        let mut wt = Vec::with_capacity(inputs * outputs);
        for j in 0..outputs {
            for k in 0..inputs {
                wt.push(w.at(k, j));
            }
        }
        PlanLayer { wt, bias: b.to_vec(), inputs, outputs }
    }
}

/// Frozen inference-only weights for batched prediction: an N-row batch is
/// one forward pass per layer instead of N scalar forwards, amortising loop
/// overhead across the batch and — through a [`ScratchArena`] — reusing the
/// forward ping/pong buffers so steady-state batches allocate nothing.
///
/// Weights are packed *transposed* (output-major) at plan build time, so
/// every output element is one contiguous [`lane_dot`]. That is bitwise
/// identical to [`Mlp::infer`]'s `matmul` path because the lane-reduction
/// contract (DESIGN.md §9.3) defines the accumulation order per output
/// element, independent of operand layout: `matmul` materializes the same
/// transposed stripes internally and feeds them to the same `lane_dot`.
/// Same dot, same bias add, same ReLU, in the same order.
#[derive(Debug, Clone)]
pub struct InferencePlan {
    layers: Vec<PlanLayer>,
}

impl InferencePlan {
    /// Number of input features.
    pub fn inputs(&self) -> usize {
        self.layers[0].inputs
    }

    /// The forward pass shared by every entry point: consumes a row-major
    /// `rows × inputs` activation buffer, returns the final `rows ×
    /// last_outputs` activations. All intermediates come from (and return
    /// to) `arena`.
    fn forward_flat(&self, x: Vec<f64>, rows: usize, arena: &mut ScratchArena) -> Vec<f64> {
        assert_eq!(x.len(), rows * self.inputs(), "feature count mismatch");
        let n = self.layers.len();
        let mut cur = x;
        for (i, layer) in self.layers.iter().enumerate() {
            let mut next = arena.take();
            next.reserve(rows * layer.outputs);
            for r in 0..rows {
                let xrow = &cur[r * layer.inputs..(r + 1) * layer.inputs];
                for j in 0..layer.outputs {
                    let wrow = &layer.wt[j * layer.inputs..(j + 1) * layer.inputs];
                    let mut v = lane_dot(xrow, wrow) + layer.bias[j];
                    if i + 1 < n {
                        v = v.max(0.0);
                    }
                    next.push(v);
                }
            }
            arena.give(cur);
            cur = next;
        }
        cur
    }

    /// Batched prediction into a caller buffer, allocation-free in steady
    /// state: consumes a row-major preprocessed feature buffer (returned to
    /// `arena` when done) and appends one prediction per row to `out`.
    ///
    /// # Panics
    /// Panics if `feats.len() != rows * inputs`.
    pub fn predict_flat_into(
        &self,
        feats: Vec<f64>,
        rows: usize,
        arena: &mut ScratchArena,
        out: &mut Vec<f64>,
    ) {
        let y = self.forward_flat(feats, rows, arena);
        let w = self.layers.last().expect("plan has layers").outputs;
        for r in 0..rows {
            out.push(y[r * w]);
        }
        arena.give(y);
    }

    /// Batched inference forward pass.
    ///
    /// # Panics
    /// Panics if `x` has the wrong feature count.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        self.infer_owned(x.clone())
    }

    /// Batched inference forward pass, consuming the input batch (no copy).
    ///
    /// # Panics
    /// Panics if `x` has the wrong feature count.
    pub fn infer_owned(&self, x: Matrix) -> Matrix {
        let rows = x.rows();
        let mut arena = ScratchArena::new();
        let y = self.forward_flat(x.into_vec(), rows, &mut arena);
        let w = self.layers.last().expect("plan has layers").outputs;
        Matrix::from_vec(rows, w, y)
    }

    /// Batched prediction: one value per row of `x`.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        self.predict_owned(x.clone())
    }

    /// Batched prediction, consuming the input batch: one value per row.
    pub fn predict_owned(&self, x: Matrix) -> Vec<f64> {
        let rows = x.rows();
        let mut arena = ScratchArena::new();
        let mut out = Vec::with_capacity(rows);
        self.predict_flat_into(x.into_vec(), rows, &mut arena, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_flow_through() {
        let mut mlp = Mlp::new(4, 3, 16, 1);
        let x = Matrix::zeros(10, 4);
        let y = mlp.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (10, 1));
    }

    #[test]
    fn param_count_formula() {
        let mlp = Mlp::new(4, 2, 8, 1);
        // 4*8+8 + 8*8+8 + 8*1+1 = 40 + 72 + 9 = 121.
        assert_eq!(mlp.param_count(), 121);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let mut mlp = Mlp::new(2, 2, 5, 7);
        let x = Matrix::from_rows(&[vec![0.3, -0.7], vec![1.1, 0.4]]).unwrap();
        // Loss = sum of outputs; dL/dy = 1.
        let y = mlp.forward(&x, true);
        let grad = Matrix::from_fn(y.rows(), 1, |_, _| 1.0);
        mlp.backward(&grad);
        let analytic = mlp.layers[0].grad_w.at(0, 0);

        let eps = 1e-6;
        let mut plus = mlp.clone();
        *plus.layers_mut()[0].w.at_mut(0, 0) += eps;
        let mut minus = mlp.clone();
        *minus.layers_mut()[0].w.at_mut(0, 0) -= eps;
        let f = |m: &mut Mlp| m.forward(&x, false).as_slice().iter().sum::<f64>();
        let numeric = (f(&mut plus) - f(&mut minus)) / (2.0 * eps);
        assert!(
            (analytic - numeric).abs() < 1e-5,
            "analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_feature_count_panics() {
        let mut mlp = Mlp::new(3, 1, 4, 0);
        let x = Matrix::zeros(1, 2);
        mlp.forward(&x, false);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Mlp::new(3, 2, 8, 99);
        let mut b = Mlp::new(3, 2, 8, 99);
        let x = Matrix::from_rows(&[vec![0.1, 0.2, 0.3]]).unwrap();
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    // The sweep engine shares one calibrated registry (and hence the
    // Mlp-backed kernel models inside it) across worker threads through
    // `&` references: the inference path must be `Sync` and remain so.
    #[test]
    fn inference_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mlp>();
        assert_send_sync::<Matrix>();
        assert_send_sync::<crate::train::TrainedModel>();
    }

    // ...and pure: concurrent `infer` through a shared reference must be
    // bitwise identical to sequential calls (no interior mutability, no
    // global state). This is the property the memo cache's determinism
    // contract stands on.
    // Batched inference through a packed plan must agree bit-for-bit with
    // the scalar path — this is what lets the kernel registry batch
    // memo-cache misses without perturbing any prediction.
    #[test]
    fn planned_batch_matches_scalar_inference_bitwise() {
        let mlp = Mlp::new(5, 3, 32, 41);
        let rows: Vec<Vec<f64>> = (0..17)
            .map(|i| {
                (0..5)
                    .map(|j| (i as f64 + 1.0) * 2f64.powi(j - 2) + 0.37 * j as f64)
                    .collect()
            })
            .collect();
        let plan = mlp.plan();
        let x = Matrix::from_rows(&rows).unwrap();
        let batch = plan.predict(&x);
        for (row, got) in rows.iter().zip(&batch) {
            assert_eq!(
                got.to_bits(),
                mlp.predict_one(row).to_bits(),
                "planned batch diverged from scalar inference"
            );
        }
    }

    #[test]
    fn shared_concurrent_inference_is_bitwise_pure() {
        let mlp = Mlp::new(4, 1, 16, 7);
        let xs: Vec<Matrix> = (0..8)
            .map(|i| {
                Matrix::from_rows(&[vec![i as f64, 0.5, -1.25, 2.0_f64.powi(i)]]).unwrap()
            })
            .collect();
        let sequential: Vec<u64> =
            xs.iter().map(|x| mlp.infer(x).at(0, 0).to_bits()).collect();
        let concurrent: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = xs
                .iter()
                .map(|x| {
                    let mlp = &mlp;
                    s.spawn(move || mlp.infer(x).at(0, 0).to_bits())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sequential, concurrent);
    }
}
