//! Log + z-score preprocessing.
//!
//! The paper: "As the input sizes of the benchmark are chosen in an almost
//! exponential scale, e.g., 32, 64, 128, etc., we preprocess the dataset by
//! taking logarithm values of both the sizes and the results." On top of the
//! log we standardize to zero mean / unit variance, which keeps the MLP's
//! Xavier-initialized first layer in its linear regime.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::matrix::Matrix;

/// `log2(x + 1)` — safe for zero-valued features.
pub fn log2p1(x: f64) -> f64 {
    (x + 1.0).log2()
}

/// Inverse of [`log2p1`].
pub fn exp2m1(x: f64) -> f64 {
    x.exp2() - 1.0
}

/// Fitted preprocessing pipeline: log transform + per-feature z-score, and
/// the same for the target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Preprocessor {
    feat_mean: Vec<f64>,
    feat_std: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

impl Preprocessor {
    /// Fits the pipeline on a raw dataset.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn fit(data: &Dataset) -> Self {
        assert!(!data.is_empty(), "cannot fit a preprocessor on an empty dataset");
        let n = data.len() as f64;
        let f = data.feature_count();
        let mut mean = vec![0.0; f];
        let mut sq = vec![0.0; f];
        for r in 0..data.len() {
            for (c, (m, s)) in mean.iter_mut().zip(sq.iter_mut()).enumerate() {
                let v = log2p1(data.x.at(r, c));
                *m += v;
                *s += v * v;
            }
        }
        let mut std = vec![0.0; f];
        for c in 0..f {
            mean[c] /= n;
            std[c] = (sq[c] / n - mean[c] * mean[c]).max(1e-12).sqrt();
        }
        let ylog: Vec<f64> = data.y.iter().map(|&v| log2p1(v)).collect();
        let y_mean = ylog.iter().sum::<f64>() / n;
        let y_std = (ylog.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n)
            .max(1e-12)
            .sqrt();
        Preprocessor { feat_mean: mean, feat_std: std, y_mean, y_std }
    }

    /// Transforms one raw feature row into model space.
    ///
    /// # Panics
    /// Panics if the feature count differs from the fitted one.
    pub fn transform_features(&self, raw: &[f64]) -> Vec<f64> {
        assert_eq!(raw.len(), self.feat_mean.len(), "feature count mismatch");
        raw.iter()
            .enumerate()
            .map(|(c, &v)| (log2p1(v) - self.feat_mean[c]) / self.feat_std[c])
            .collect()
    }

    /// Transforms a matrix of raw feature rows into model space, in place.
    /// Applies exactly the per-element operations of
    /// [`Preprocessor::transform_features`] (same log, same mean/std, same
    /// order), so the result is bitwise identical to transforming each row
    /// separately — without one allocation per row.
    ///
    /// # Panics
    /// Panics if the column count differs from the fitted feature count.
    pub fn transform_features_inplace(&self, m: &mut crate::matrix::Matrix) {
        assert_eq!(m.cols(), self.feat_mean.len(), "feature count mismatch");
        let cols = m.cols();
        for row in m.as_mut_slice().chunks_mut(cols) {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (log2p1(*v) - self.feat_mean[c]) / self.feat_std[c];
            }
        }
    }

    /// Transforms a flat row-major buffer of raw feature rows into model
    /// space, in place — the zero-allocation sibling of
    /// [`Preprocessor::transform_features_inplace`] for arena-backed
    /// buffers. Identical per-element operations, so bitwise identical
    /// results.
    ///
    /// # Panics
    /// Panics if `data.len()` is not a multiple of the fitted feature count.
    pub fn transform_flat_inplace(&self, data: &mut [f64]) {
        let cols = self.feat_mean.len();
        assert_eq!(data.len() % cols, 0, "feature count mismatch");
        for row in data.chunks_mut(cols) {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (log2p1(*v) - self.feat_mean[c]) / self.feat_std[c];
            }
        }
    }

    /// Transforms a whole raw dataset into model space.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let rows: Vec<Vec<f64>> =
            (0..data.len()).map(|r| self.transform_features(data.x.row(r))).collect();
        let ys: Vec<f64> = data.y.iter().map(|&v| (log2p1(v) - self.y_mean) / self.y_std).collect();
        Dataset { x: Matrix::from_rows(&rows).expect("non-empty dataset"), y: ys }
    }

    /// Maps a model-space prediction back to the original target scale.
    pub fn inverse_target(&self, pred: f64) -> f64 {
        exp2m1(pred * self.y_std + self.y_mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let rows: Vec<Vec<f64>> = (1..=64).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let ys: Vec<f64> = (1..=64).map(|i| (i * 3) as f64).collect();
        Dataset::from_rows(&rows, &ys).unwrap()
    }

    #[test]
    fn transformed_features_standardized() {
        let d = toy();
        let p = Preprocessor::fit(&d);
        let t = p.transform(&d);
        for c in 0..t.feature_count() {
            let n = t.len() as f64;
            let mean: f64 = (0..t.len()).map(|r| t.x.at(r, c)).sum::<f64>() / n;
            let var: f64 = (0..t.len()).map(|r| (t.x.at(r, c) - mean).powi(2)).sum::<f64>() / n;
            assert!(mean.abs() < 1e-9, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-6, "col {c} var {var}");
        }
    }

    #[test]
    fn target_roundtrip() {
        let d = toy();
        let p = Preprocessor::fit(&d);
        let t = p.transform(&d);
        for (raw, model) in d.y.iter().zip(&t.y) {
            let back = p.inverse_target(*model);
            assert!((back - raw).abs() / raw < 1e-9);
        }
    }

    #[test]
    fn log_helpers_inverse() {
        for v in [0.0, 0.5, 1.0, 100.0, 1e6] {
            assert!((exp2m1(log2p1(v)) - v).abs() < 1e-6 * (v + 1.0));
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_fit_panics() {
        let d = Dataset { x: Matrix::zeros(0, 1), y: vec![] };
        Preprocessor::fit(&d);
    }
}
