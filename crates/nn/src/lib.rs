//! # dlperf-nn
//!
//! A small, dependency-free MLP training library, built from scratch to
//! reproduce the paper's *ML-based kernel performance models*.
//!
//! The paper trains one MLP regressor per opaque kernel family (cuBLAS GEMM,
//! JIT-generated transpose, tril forward/backward), selecting its
//! architecture by grid search over the space of Table II:
//!
//! | hyperparameter          | range                                      |
//! |-------------------------|--------------------------------------------|
//! | `num_layers`            | 3, 4, 5, 6, 7                              |
//! | `num_neurons_per_layer` | 128, 256, 512, 1024                        |
//! | `optimizer`             | Adam, SGD                                  |
//! | `learning_rate`         | 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2   |
//!
//! with MSE loss, log-transformed inputs and outputs, and the learning rate
//! scaled ×10 when SGD is chosen. All of that is implemented here:
//! [`matrix`] (dense linear algebra), [`net`] (forward/backward), [`optim`]
//! (SGD and Adam), [`train()`] (mini-batch training with early stopping),
//! [`preprocess`] (log + z-score pipelines) and [`gridsearch`].
//!
//! ## Example
//!
//! ```
//! use dlperf_nn::dataset::Dataset;
//! use dlperf_nn::train::{train, TrainConfig};
//!
//! // Learn y = x0 + 2*x1 from a few samples.
//! let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 64.0, (63 - i) as f64 / 64.0]).collect();
//! let ys: Vec<f64> = xs.iter().map(|v| v[0] + 2.0 * v[1]).collect();
//! let data = Dataset::from_rows(&xs, &ys).unwrap();
//! let cfg = TrainConfig { epochs: 200, ..TrainConfig::default() };
//! let model = train(&data, &cfg, 42);
//! let pred = model.predict_one(&[0.5, 0.5]);
//! assert!((pred - 1.5).abs() < 0.3);
//! ```

pub mod arena;
pub mod dataset;
pub mod gridsearch;
pub mod matrix;
pub mod net;
pub mod optim;
pub mod preprocess;
pub mod train;

pub use arena::{ArenaStats, ScratchArena};
pub use dataset::Dataset;
pub use matrix::{lane_dot, lane_dot_reference, LANES};
pub use gridsearch::{
    grid_search, grid_search_supervised, GridSearchJob, HyperParams, SearchSpace,
};
pub use matrix::Matrix;
pub use net::{InferencePlan, Mlp};
pub use optim::OptimizerKind;
pub use train::{train, TrainConfig, TrainedModel};
