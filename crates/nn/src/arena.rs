//! Reusable scratch buffers for the allocation-free inference hot path.
//!
//! Steady-state sweep and incremental iterations must not touch the heap:
//! every transient `Vec<f64>` on the batched-inference path (family-grouped
//! feature matrices, `InferencePlan` forward ping/pong buffers) is checked
//! out of a [`ScratchArena`] and returned when done, so capacity survives
//! across scenarios. Whether reuse actually happens is observable — the
//! arena keeps local [`ArenaStats`] (high-water-marked) and mirrors
//! take/miss events into the process-wide `nn.arena` counter group exported
//! through the `dlperf-obs` recorder.

use std::sync::{Arc, OnceLock};

use dlperf_obs::{CounterGroup, CounterHandle};

/// Process-wide counters aggregated across every [`ScratchArena`]: `takes`
/// (checkouts), `misses` (checkouts that had to allocate because the pool
/// was empty), `gives` (returns). The group lives for the whole process so
/// the obs recorder can export it on flush.
pub fn arena_counters() -> &'static Arc<CounterGroup> {
    static GROUP: OnceLock<Arc<CounterGroup>> = OnceLock::new();
    GROUP.get_or_init(|| CounterGroup::register("nn.arena", &["takes", "misses", "gives"]))
}

/// Point-in-time view of one arena's reuse behaviour.
///
/// The zero-allocation proof for steady state is `misses` staying flat
/// while `takes` keeps climbing: every checkout was served from pooled
/// capacity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Buffers checked out over the arena's lifetime.
    pub takes: u64,
    /// Checkouts that allocated a fresh buffer (pool was empty).
    pub misses: u64,
    /// Largest total `f64` capacity ever resident in the pool at once.
    pub high_water_f64s: usize,
    /// Buffers currently parked in the pool.
    pub pooled: usize,
}

/// A checkout/return pool of `Vec<f64>` scratch buffers.
///
/// Not thread-safe by design: each sweep worker owns one (the pool is hot
/// enough that a lock would show up). `take` hands back a *cleared* buffer
/// that keeps whatever capacity it grew to on earlier iterations; `give`
/// parks it for the next checkout.
#[derive(Debug)]
pub struct ScratchArena {
    pool: Vec<Vec<f64>>,
    takes: u64,
    misses: u64,
    high_water_f64s: usize,
    obs_takes: CounterHandle,
    obs_misses: CounterHandle,
    obs_gives: CounterHandle,
}

impl ScratchArena {
    /// An empty arena; the first few `take`s will miss and allocate, after
    /// which capacity recirculates.
    pub fn new() -> Self {
        let group = arena_counters();
        ScratchArena {
            pool: Vec::new(),
            takes: 0,
            misses: 0,
            high_water_f64s: 0,
            obs_takes: group.handle("takes"),
            obs_misses: group.handle("misses"),
            obs_gives: group.handle("gives"),
        }
    }

    /// Checks out a cleared buffer, reusing pooled capacity when available.
    pub fn take(&mut self) -> Vec<f64> {
        self.takes += 1;
        self.obs_takes.incr();
        match self.pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => {
                self.misses += 1;
                self.obs_misses.incr();
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool, keeping its capacity for the next
    /// [`take`](Self::take).
    pub fn give(&mut self, buf: Vec<f64>) {
        self.obs_gives.incr();
        self.pool.push(buf);
        let resident: usize = self.pool.iter().map(|b| b.capacity()).sum();
        if resident > self.high_water_f64s {
            self.high_water_f64s = resident;
        }
    }

    /// Current reuse stats for this arena.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            takes: self.takes,
            misses: self.misses,
            high_water_f64s: self.high_water_f64s,
            pooled: self.pool.len(),
        }
    }
}

impl Default for ScratchArena {
    fn default() -> Self {
        ScratchArena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_take_give_never_misses_again() {
        let mut arena = ScratchArena::new();
        let mut a = arena.take();
        a.resize(1024, 0.0);
        let mut b = arena.take();
        b.resize(512, 0.0);
        assert_eq!(arena.stats().misses, 2);
        arena.give(a);
        arena.give(b);
        for _ in 0..100 {
            let x = arena.take();
            let y = arena.take();
            assert!(x.capacity() >= 512 && y.capacity() >= 512);
            arena.give(x);
            arena.give(y);
        }
        let stats = arena.stats();
        assert_eq!(stats.misses, 2, "steady state must reuse pooled capacity");
        assert_eq!(stats.takes, 202);
        assert!(stats.high_water_f64s >= 1536);
        assert_eq!(stats.pooled, 2);
    }

    #[test]
    fn taken_buffers_come_back_cleared() {
        let mut arena = ScratchArena::new();
        let mut a = arena.take();
        a.extend_from_slice(&[1.0, 2.0, 3.0]);
        arena.give(a);
        let b = arena.take();
        assert!(b.is_empty());
        assert!(b.capacity() >= 3);
    }

    #[test]
    fn global_counters_mirror_local_stats() {
        let group = arena_counters();
        let takes_before = group.value("takes");
        let mut arena = ScratchArena::new();
        let buf = arena.take();
        arena.give(buf);
        assert!(group.value("takes") > takes_before);
    }
}
