//! Optimizers: plain SGD and Adam, the two choices in the paper's Table II
//! search space.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;
use crate::net::Linear;

/// Which optimizer to use (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OptimizerKind {
    /// Stochastic gradient descent. The paper scales the learning rate ×10
    /// when SGD is selected; [`mod@crate::train`] applies that scaling.
    Sgd,
    /// Adam with the standard (0.9, 0.999) betas.
    Adam,
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizerKind::Sgd => f.write_str("SGD"),
            OptimizerKind::Adam => f.write_str("Adam"),
        }
    }
}

/// Per-layer first/second moment state for Adam.
#[derive(Debug, Clone)]
struct Moments {
    m_w: Matrix,
    v_w: Matrix,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

/// An optimizer instance bound to a fixed network architecture.
#[derive(Debug, Clone)]
pub struct Optimizer {
    kind: OptimizerKind,
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    moments: Vec<Moments>,
}

impl Optimizer {
    /// Creates an optimizer of the given kind and learning rate.
    ///
    /// # Panics
    /// Panics if `lr` is not positive and finite.
    pub fn new(kind: OptimizerKind, lr: f64) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Optimizer { kind, lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, moments: Vec::new() }
    }

    /// Applies one update step using the gradients stored on the layers.
    pub fn step(&mut self, layers: &mut [Linear]) {
        match self.kind {
            OptimizerKind::Sgd => {
                for layer in layers {
                    let gw = layer.grad_w.clone();
                    layer.w.axpy(-self.lr, &gw);
                    for (b, g) in layer.b.iter_mut().zip(&layer.grad_b) {
                        *b -= self.lr * g;
                    }
                }
            }
            OptimizerKind::Adam => {
                if self.moments.len() != layers.len() {
                    self.moments = layers
                        .iter()
                        .map(|l| Moments {
                            m_w: Matrix::zeros(l.w.rows(), l.w.cols()),
                            v_w: Matrix::zeros(l.w.rows(), l.w.cols()),
                            m_b: vec![0.0; l.b.len()],
                            v_b: vec![0.0; l.b.len()],
                        })
                        .collect();
                }
                self.t += 1;
                let (b1, b2) = (self.beta1, self.beta2);
                let bc1 = 1.0 - b1.powi(self.t as i32);
                let bc2 = 1.0 - b2.powi(self.t as i32);
                for (layer, mom) in layers.iter_mut().zip(&mut self.moments) {
                    let gw = layer.grad_w.as_slice().to_vec();
                    for (i, g) in gw.iter().enumerate() {
                        let m = &mut mom.m_w.as_mut_slice()[i];
                        *m = b1 * *m + (1.0 - b1) * g;
                        let v = &mut mom.v_w.as_mut_slice()[i];
                        *v = b2 * *v + (1.0 - b2) * g * g;
                        let m_hat = *m / bc1;
                        let v_hat = *v / bc2;
                        layer.w.as_mut_slice()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                    }
                    for (i, g) in layer.grad_b.iter().enumerate() {
                        let m = &mut mom.m_b[i];
                        *m = b1 * *m + (1.0 - b1) * g;
                        let v = &mut mom.v_b[i];
                        *v = b2 * *v + (1.0 - b2) * g * g;
                        let m_hat = *m / bc1;
                        let v_hat = *v / bc2;
                        layer.b[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;
    use crate::net::Mlp;

    fn loss_after_steps(kind: OptimizerKind, lr: f64, steps: usize) -> f64 {
        let mut mlp = Mlp::new(1, 1, 8, 3);
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let target = [2.0, 4.0, 6.0];
        let mut opt = Optimizer::new(kind, lr);
        let mut last = f64::INFINITY;
        for _ in 0..steps {
            let y = mlp.forward(&x, true);
            let n = y.rows() as f64;
            last = (0..y.rows())
                .map(|r| (y.at(r, 0) - target[r]).powi(2))
                .sum::<f64>()
                / n;
            let grad = Matrix::from_fn(y.rows(), 1, |r, _| 2.0 * (y.at(r, 0) - target[r]) / n);
            mlp.backward(&grad);
            opt.step(mlp.layers_mut());
        }
        last
    }

    #[test]
    fn sgd_reduces_loss() {
        let l = loss_after_steps(OptimizerKind::Sgd, 0.01, 200);
        assert!(l < 0.1, "SGD did not converge: loss {l}");
    }

    #[test]
    fn adam_reduces_loss() {
        let l = loss_after_steps(OptimizerKind::Adam, 0.02, 800);
        assert!(l < 0.1, "Adam did not converge: loss {l}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_lr_panics() {
        Optimizer::new(OptimizerKind::Sgd, 0.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(OptimizerKind::Sgd.to_string(), "SGD");
        assert_eq!(OptimizerKind::Adam.to_string(), "Adam");
    }
}
