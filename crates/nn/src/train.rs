//! Mini-batch MLP training with validation-based early stopping.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::arena::ScratchArena;
use crate::dataset::Dataset;
use crate::matrix::Matrix;
use crate::net::Mlp;
use crate::optim::{Optimizer, OptimizerKind};
use crate::preprocess::Preprocessor;

/// Training configuration for one MLP fit.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of hidden layers (`num_layers` in Table II).
    pub hidden_layers: usize,
    /// Neurons per hidden layer (`num_neurons_per_layer` in Table II).
    pub width: usize,
    /// Optimizer choice.
    pub optimizer: OptimizerKind,
    /// Base learning rate. Scaled ×10 when SGD is chosen, as the paper does.
    pub learning_rate: f64,
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Validation fraction held out of the dataset.
    pub val_frac: f64,
    /// Early stopping: stop after this many epochs without validation
    /// improvement. `0` disables early stopping.
    pub patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            hidden_layers: 3,
            width: 128,
            optimizer: OptimizerKind::Adam,
            learning_rate: 1e-3,
            epochs: 120,
            batch_size: 64,
            val_frac: 0.15,
            patience: 20,
        }
    }
}

/// A fitted model: the MLP plus its preprocessing pipeline, predicting in
/// the original (raw) feature/target scale.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TrainedModel {
    mlp: Mlp,
    pre: Preprocessor,
    /// Mean absolute percentage error on the held-out validation split, in
    /// the original target scale.
    pub val_mape: f64,
    /// Frozen inference weights, built on first batched prediction.
    /// Skipped by serde (it is derived state) and rebuilt lazily.
    #[serde(skip)]
    plan: std::sync::OnceLock<crate::net::InferencePlan>,
}

impl TrainedModel {
    /// Assembles a trained model from its parts.
    pub fn new(mlp: Mlp, pre: Preprocessor, val_mape: f64) -> Self {
        TrainedModel { mlp, pre, val_mape, plan: std::sync::OnceLock::new() }
    }

    /// Predicts the target for one raw feature row.
    pub fn predict_one(&self, raw_features: &[f64]) -> f64 {
        let feats = self.pre.transform_features(raw_features);
        let pred = self.mlp.predict_one(&feats);
        self.pre.inverse_target(pred)
    }

    /// Predicts targets for many raw feature rows.
    pub fn predict(&self, raw_rows: &[Vec<f64>]) -> Vec<f64> {
        raw_rows.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Predicts targets for many raw feature rows through the frozen
    /// inference plan: one blocked forward pass for the whole batch.
    /// Bitwise identical to [`TrainedModel::predict`] (preprocessing is
    /// row-wise, the planned MLP forward is bitwise equal to the scalar
    /// one, and the inverse target map is element-wise).
    pub fn predict_batch(&self, raw_rows: &[Vec<f64>]) -> Vec<f64> {
        if raw_rows.is_empty() {
            return Vec::new();
        }
        let x = Matrix::from_rows(raw_rows).expect("uniform non-empty feature rows");
        let mut arena = ScratchArena::new();
        let mut out = Vec::with_capacity(raw_rows.len());
        self.predict_flat_into(x.into_vec(), raw_rows.len(), &mut arena, &mut out);
        out
    }

    /// The zero-allocation batch path: consumes a flat row-major buffer of
    /// *raw* feature rows (checked out of `arena`, returned when done) and
    /// appends one prediction per row to `out`. Bitwise identical to
    /// [`TrainedModel::predict_batch`] / [`TrainedModel::predict`] — same
    /// per-element preprocessing, same planned forward, same inverse map.
    ///
    /// # Panics
    /// Panics if `feats.len() != rows * feature_count`.
    pub fn predict_flat_into(
        &self,
        mut feats: Vec<f64>,
        rows: usize,
        arena: &mut ScratchArena,
        out: &mut Vec<f64>,
    ) {
        if rows == 0 {
            assert!(feats.is_empty(), "feature count mismatch");
            arena.give(feats);
            return;
        }
        let plan = self.plan.get_or_init(|| self.mlp.plan());
        self.pre.transform_flat_inplace(&mut feats);
        let start = out.len();
        plan.predict_flat_into(feats, rows, arena, out);
        for v in &mut out[start..] {
            *v = self.pre.inverse_target(*v);
        }
    }
}

fn mape(pred: &[f64], actual: &[f64]) -> f64 {
    let n = pred.len() as f64;
    pred.iter()
        .zip(actual)
        .map(|(p, a)| ((p - a) / a.max(1e-12)).abs())
        .sum::<f64>()
        / n
}

/// Trains an MLP regressor on a raw dataset (features and targets in their
/// natural units; log + z-score preprocessing is applied internally).
///
/// # Panics
/// Panics if the dataset is empty or the configuration is degenerate
/// (zero epochs / batch size).
pub fn train(raw: &Dataset, cfg: &TrainConfig, seed: u64) -> TrainedModel {
    assert!(!raw.is_empty(), "cannot train on an empty dataset");
    assert!(cfg.epochs > 0 && cfg.batch_size > 0, "degenerate training config");

    let pre = Preprocessor::fit(raw);
    let data = pre.transform(raw);
    let (train_set, val_raw_idx) = {
        // Split raw to keep validation MAPE in original scale.
        let mut idx: Vec<usize> = (0..raw.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed ^ 0xbeef));
        let n_val = ((raw.len() as f64 * cfg.val_frac).round() as usize).clamp(1, raw.len() - 1);
        let (val_idx, train_idx) = idx.split_at(n_val);
        (data.select(train_idx), val_idx.to_vec())
    };
    let val_x_raw: Vec<Vec<f64>> = val_raw_idx.iter().map(|&i| raw.x.row(i).to_vec()).collect();
    let val_y_raw: Vec<f64> = val_raw_idx.iter().map(|&i| raw.y[i]).collect();

    let lr = match cfg.optimizer {
        OptimizerKind::Sgd => cfg.learning_rate * 10.0,
        OptimizerKind::Adam => cfg.learning_rate,
    };
    let mut mlp = Mlp::new(raw.feature_count(), cfg.hidden_layers, cfg.width, seed);
    let mut opt = Optimizer::new(cfg.optimizer, lr);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);

    let mut best: Option<(f64, Mlp)> = None;
    let mut stale = 0usize;

    for _epoch in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..train_set.len()).collect();
        order.shuffle(&mut rng);
        for chunk in order.chunks(cfg.batch_size) {
            let batch = train_set.select(chunk);
            let y = mlp.forward(&batch.x, true);
            let n = y.rows() as f64;
            // MSE gradient.
            let grad = Matrix::from_fn(y.rows(), 1, |r, _| 2.0 * (y.at(r, 0) - batch.y[r]) / n);
            mlp.backward(&grad);
            opt.step(mlp.layers_mut());
        }

        // Validation in the original scale.
        let probe = TrainedModel::new(mlp.clone(), pre.clone(), 0.0);
        let preds = probe.predict(&val_x_raw);
        let err = mape(&preds, &val_y_raw);
        if best.as_ref().is_none_or(|(b, _)| err < *b) {
            best = Some((err, mlp.clone()));
            stale = 0;
        } else {
            stale += 1;
            if cfg.patience > 0 && stale >= cfg.patience {
                break;
            }
        }
    }

    let (val_mape, mlp) = best.expect("at least one epoch ran");
    TrainedModel::new(mlp, pre, val_mape)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic kernel-like dataset: t = a*x0 + b*x0*x1 with exponential
    /// size sweeps, mimicking a microbenchmark.
    fn synthetic() -> Dataset {
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for i in 3..12 {
            for j in 3..12 {
                let (x0, x1) = ((1u64 << i) as f64, (1u64 << j) as f64);
                rows.push(vec![x0, x1]);
                ys.push(0.5 + 1e-4 * x0 + 3e-7 * x0 * x1);
            }
        }
        Dataset::from_rows(&rows, &ys).unwrap()
    }

    #[test]
    fn learns_power_law_surface() {
        let cfg = TrainConfig { epochs: 300, width: 32, hidden_layers: 3, ..Default::default() };
        let model = train(&synthetic(), &cfg, 6);
        assert!(model.val_mape < 0.12, "val MAPE too high: {}", model.val_mape);
        // Interpolation at an unseen point inside the training grid.
        let pred = model.predict_one(&[700.0, 900.0]);
        let truth = 0.5 + 1e-4 * 700.0 + 3e-7 * 700.0 * 900.0;
        assert!(
            (pred - truth).abs() / truth < 0.3,
            "pred {pred} vs truth {truth}"
        );
    }

    #[test]
    fn sgd_variant_trains() {
        let cfg = TrainConfig {
            epochs: 200,
            width: 32,
            optimizer: OptimizerKind::Sgd,
            learning_rate: 1e-4, // scaled x10 internally
            ..Default::default()
        };
        let model = train(&synthetic(), &cfg, 5);
        assert!(model.val_mape < 0.5, "SGD val MAPE: {}", model.val_mape);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = TrainConfig { epochs: 10, width: 16, ..Default::default() };
        let a = train(&synthetic(), &cfg, 3).val_mape;
        let b = train(&synthetic(), &cfg, 3).val_mape;
        assert_eq!(a, b);
    }

    #[test]
    fn batched_prediction_matches_scalar_bitwise() {
        let cfg = TrainConfig { epochs: 15, width: 16, ..Default::default() };
        let model = train(&synthetic(), &cfg, 9);
        let rows: Vec<Vec<f64>> =
            (0..13).map(|i| vec![100.0 + 37.0 * i as f64, 650.0 / (i + 1) as f64]).collect();
        let scalar: Vec<u64> = model.predict(&rows).iter().map(|v| v.to_bits()).collect();
        let batch: Vec<u64> = model.predict_batch(&rows).iter().map(|v| v.to_bits()).collect();
        assert_eq!(batch, scalar);
        assert!(model.predict_batch(&[]).is_empty());
        // A serde roundtrip drops the cached plan; it must rebuild identically.
        let json = serde_json::to_string(&model).unwrap();
        let back: TrainedModel = serde_json::from_str(&json).unwrap();
        let again: Vec<u64> = back.predict_batch(&rows).iter().map(|v| v.to_bits()).collect();
        assert_eq!(again, scalar);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_epochs_panics() {
        let cfg = TrainConfig { epochs: 0, ..Default::default() };
        train(&synthetic(), &cfg, 0);
    }
}
