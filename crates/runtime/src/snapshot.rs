//! Versioned, checksummed snapshot envelopes.
//!
//! Every artifact the supervised runtime persists — job checkpoints, and
//! (via `dlperf-kernels`) calibrated model bundles — travels inside an
//! [`Envelope`]: a small JSON wrapper carrying a schema name, a format
//! version, and an FNV-1a checksum of the payload. Snapshots are untrusted
//! input on the way back in (they may be truncated by a kill mid-write,
//! hand-edited, or produced by an incompatible build), so [`open`] verifies
//! all three before a single payload byte reaches the caller.

use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// Why a snapshot could not be sealed or opened.
#[derive(Debug)]
pub enum SnapshotError {
    /// The envelope or payload is not valid JSON (e.g. a file truncated by
    /// a kill mid-write).
    Parse(serde_json::Error),
    /// The envelope belongs to a different artifact kind.
    SchemaMismatch {
        /// Schema the caller expected.
        expected: String,
        /// Schema found in the envelope.
        found: String,
    },
    /// The envelope's format version is not the supported one.
    VersionMismatch {
        /// Version the caller supports.
        supported: u32,
        /// Version found in the envelope.
        found: u32,
    },
    /// The payload does not hash to the recorded checksum (bit rot,
    /// truncation past the JSON parser, or manual edits).
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        recorded: String,
        /// Checksum of the payload as found.
        computed: String,
    },
    /// Reading or writing the snapshot file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Parse(e) => write!(f, "snapshot is not valid JSON: {e}"),
            SnapshotError::SchemaMismatch { expected, found } => {
                write!(f, "snapshot schema mismatch: expected `{expected}`, found `{found}`")
            }
            SnapshotError::VersionMismatch { supported, found } => {
                write!(f, "snapshot version {found} unsupported (this build reads {supported})")
            }
            SnapshotError::ChecksumMismatch { recorded, computed } => {
                write!(f, "snapshot checksum mismatch: recorded {recorded}, computed {computed}")
            }
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Parse(e) => Some(e),
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(e: serde_json::Error) -> Self {
        SnapshotError::Parse(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a over `bytes`, the checksum the envelope records. Not
/// cryptographic — it detects truncation and corruption, not tampering.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The serialized wrapper around every persisted artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Envelope {
    /// Artifact kind, e.g. `"dlperf.checkpoint"`.
    pub schema: String,
    /// Format version of the payload.
    pub version: u32,
    /// Hex FNV-1a checksum of the payload string.
    pub checksum: String,
    /// The payload, as a JSON string (kept opaque so the checksum is over
    /// exactly the bytes that deserialize).
    pub payload: String,
}

/// Serializes `value` into a sealed envelope string.
///
/// # Errors
/// [`SnapshotError::Parse`] if `value` cannot be serialized (non-string map
/// keys and the like).
pub fn seal<T: Serialize>(schema: &str, version: u32, value: &T) -> Result<String, SnapshotError> {
    let payload = serde_json::to_string(value)?;
    let env = Envelope {
        schema: schema.to_string(),
        version,
        checksum: format!("{:016x}", fnv1a64(payload.as_bytes())),
        payload,
    };
    Ok(serde_json::to_string(&env)?)
}

/// Opens a sealed envelope, verifying schema, version, and checksum before
/// deserializing the payload.
///
/// # Errors
/// Any [`SnapshotError`] variant except `Io`.
pub fn open<T: DeserializeOwned>(schema: &str, version: u32, s: &str) -> Result<T, SnapshotError> {
    let env: Envelope = serde_json::from_str(s)?;
    if env.schema != schema {
        return Err(SnapshotError::SchemaMismatch {
            expected: schema.to_string(),
            found: env.schema,
        });
    }
    if env.version != version {
        return Err(SnapshotError::VersionMismatch { supported: version, found: env.version });
    }
    let computed = format!("{:016x}", fnv1a64(env.payload.as_bytes()));
    if computed != env.checksum {
        return Err(SnapshotError::ChecksumMismatch { recorded: env.checksum, computed });
    }
    Ok(serde_json::from_str(&env.payload)?)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn seal_open_round_trips() {
        let v = vec![(1u64, 2.5f64), (3, 4.75)];
        let sealed = seal("dlperf.test", 1, &v).unwrap();
        let back: Vec<(u64, f64)> = open("dlperf.test", 1, &sealed).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn truncated_snapshot_is_a_parse_error() {
        let sealed = seal("dlperf.test", 1, &vec![1u64; 100]).unwrap();
        let truncated = &sealed[..sealed.len() / 2];
        match open::<Vec<u64>>("dlperf.test", 1, truncated) {
            Err(SnapshotError::Parse(_)) => {}
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_schema_and_version_are_typed() {
        let sealed = seal("dlperf.a", 2, &7u64).unwrap();
        match open::<u64>("dlperf.b", 2, &sealed) {
            Err(SnapshotError::SchemaMismatch { expected, found }) => {
                assert_eq!(expected, "dlperf.b");
                assert_eq!(found, "dlperf.a");
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
        match open::<u64>("dlperf.a", 3, &sealed) {
            Err(SnapshotError::VersionMismatch { supported: 3, found: 2 }) => {}
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let sealed = seal("dlperf.test", 1, &vec![10u64, 20, 30]).unwrap();
        // Flip a digit inside the payload without breaking the JSON.
        let corrupted = sealed.replace("20", "21");
        assert_ne!(sealed, corrupted, "corruption must hit the payload");
        match open::<Vec<u64>>("dlperf.test", 1, &corrupted) {
            Err(SnapshotError::ChecksumMismatch { .. }) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn f64_payloads_round_trip_bitwise() {
        let xs = vec![0.1f64, 1.0 / 3.0, 1e-300, 123_456_789.123_456_78];
        let sealed = seal("dlperf.test", 1, &xs).unwrap();
        let back: Vec<f64> = open("dlperf.test", 1, &sealed).unwrap();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
