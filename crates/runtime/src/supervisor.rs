//! The supervisor: panic-isolated, deadline-bounded, checkpointed
//! execution of [`ResumableJob`]s.
//!
//! One attempt runs the job's steps inside `catch_unwind`; a panic (or an
//! injected kill) costs one unit of the restart budget, triggers
//! exponential backoff, and restarts from the last checkpoint — one
//! poisoned unit of work can therefore never take down a whole sweep. Two
//! watchdog levels bound time: the *run deadline* covers the entire
//! supervised run (attempts, backoff and all), while the *attempt timeout*
//! is a hang detector — a worker that stops making progress is cancelled
//! and restarted rather than wedging the sweep forever.
//!
//! Chaos testing composes through [`dlperf_faults::FaultInjector`]: the
//! plan's worker-fault probabilities are evaluated at the stateless site
//! `(job key, step, attempt)`, so a chaos run kills, hangs and panics
//! workers at exactly the same points on every replay.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use serde::Serialize;

use dlperf_faults::{site_key, FaultInjector, WorkerFault};

use crate::job::{JobContext, JobError, ResumableJob, StepOutcome};
use crate::snapshot::{self, SnapshotError};
use crate::store::{CheckpointStore, MemoryStore};
use crate::token::{CancellationToken, Watchdog};

/// Format version of the checkpoint payload.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Supervision policy for one run.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Snapshot the state every `checkpoint_every` completed steps
    /// (minimum 1: checkpoint after every step).
    pub checkpoint_every: u64,
    /// Restarts allowed after the first attempt before the run is declared
    /// failed.
    pub max_restarts: u32,
    /// Backoff before restart `n` is `backoff_base × 2^(n-1)`, capped at
    /// [`SupervisorConfig::backoff_max`].
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_max: Duration,
    /// Wall-clock bound on the whole run, including restarts and backoff.
    pub deadline: Option<Duration>,
    /// Per-attempt hang detector: an attempt exceeding this is cancelled
    /// and restarted from the last checkpoint (spending restart budget).
    pub attempt_timeout: Option<Duration>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            checkpoint_every: 1,
            max_restarts: 3,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(250),
            deadline: None,
            attempt_timeout: None,
        }
    }
}

/// Why one attempt ended early and a restart was scheduled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestartRecord {
    /// The attempt that failed (1-based).
    pub attempt: u32,
    /// Progress (completed steps) at the moment of failure.
    pub at_step: u64,
    /// Human-readable cause (panic payload, "worker killed", "attempt
    /// timed out", …).
    pub cause: String,
}

/// What a supervised run did, successful or not.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Job name.
    pub job: String,
    /// Attempts made (1 = no restart was needed).
    pub attempts: u32,
    /// Steps executed in this process, including steps repeated after a
    /// restart rolled back to an older checkpoint.
    pub steps_run: u64,
    /// Final progress in completed steps.
    pub steps_completed: u64,
    /// Snapshots written.
    pub checkpoints_written: u64,
    /// If the run started from a pre-existing checkpoint, the step it
    /// resumed at.
    pub resumed_from_step: Option<u64>,
    /// One record per restart, in order.
    pub restarts: Vec<RestartRecord>,
    /// Worker faults injected by the fault plan during this run.
    pub injected_faults: u32,
    /// Total time spent in restart backoff.
    pub backoff_total: Duration,
}

impl RunReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "job `{}`: {} attempt(s), {} step(s) run, {} checkpoint(s)",
            self.job, self.attempts, self.steps_run, self.checkpoints_written
        );
        if let Some(step) = self.resumed_from_step {
            s.push_str(&format!(", resumed from step {step}"));
        }
        if !self.restarts.is_empty() {
            s.push_str(&format!(", {} restart(s): ", self.restarts.len()));
            let causes: Vec<&str> = self.restarts.iter().map(|r| r.cause.as_str()).collect();
            s.push_str(&causes.join("; "));
        }
        s
    }
}

/// Why a supervised run produced no output.
#[derive(Debug)]
pub enum SupervisorError {
    /// Every allowed attempt failed; the last failure is carried.
    RestartBudgetExhausted {
        /// Job name.
        job: String,
        /// Attempts made.
        attempts: u32,
        /// Cause of the final failure.
        last_failure: String,
    },
    /// The run deadline expired before the job completed.
    DeadlineExceeded {
        /// Job name.
        job: String,
        /// Progress when the deadline fired.
        steps_completed: u64,
    },
    /// The run token was cancelled externally.
    Cancelled {
        /// Job name.
        job: String,
        /// Progress at cancellation.
        steps_completed: u64,
    },
    /// A checkpoint could not be written or read back.
    Snapshot(SnapshotError),
    /// The job returned a typed, non-retryable failure.
    Failed {
        /// Job name.
        job: String,
        /// The job's failure message.
        why: String,
    },
}

impl std::fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SupervisorError::RestartBudgetExhausted { job, attempts, last_failure } => write!(
                f,
                "job `{job}` exhausted its restart budget after {attempts} attempt(s); last failure: {last_failure}"
            ),
            SupervisorError::DeadlineExceeded { job, steps_completed } => {
                write!(f, "job `{job}` hit its run deadline at step {steps_completed}")
            }
            SupervisorError::Cancelled { job, steps_completed } => {
                write!(f, "job `{job}` was cancelled at step {steps_completed}")
            }
            SupervisorError::Snapshot(e) => write!(f, "checkpoint failure: {e}"),
            SupervisorError::Failed { job, why } => write!(f, "job `{job}` failed: {why}"),
        }
    }
}

impl std::error::Error for SupervisorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SupervisorError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapshotError> for SupervisorError {
    fn from(e: SnapshotError) -> Self {
        SupervisorError::Snapshot(e)
    }
}

/// Serializes a checkpoint payload: `(completed steps, state JSON)`. The
/// state rides as a JSON string because the vendored serde derive cannot
/// handle generic payload structs; the envelope checksum still covers it.
fn seal_checkpoint<S: Serialize>(
    schema: &str,
    step: u64,
    state: &S,
) -> Result<String, SnapshotError> {
    let state_json = serde_json::to_string(state)?;
    snapshot::seal(schema, CHECKPOINT_VERSION, &(step, state_json))
}

/// Inverse of [`seal_checkpoint`].
fn open_checkpoint<S: serde::de::DeserializeOwned>(
    schema: &str,
    sealed: &str,
) -> Result<(u64, S), SnapshotError> {
    let (step, state_json): (u64, String) =
        snapshot::open(schema, CHECKPOINT_VERSION, sealed)?;
    Ok((step, serde_json::from_str(&state_json)?))
}

/// Process-wide supervisor counters — attempt/checkpoint totals across
/// every [`Supervisor`] instance; the per-run numbers stay in [`RunReport`].
struct SupervisorCounters {
    _group: std::sync::Arc<dlperf_obs::CounterGroup>,
    attempts: dlperf_obs::CounterHandle,
    steps: dlperf_obs::CounterHandle,
    checkpoints_written: dlperf_obs::CounterHandle,
    restarts: dlperf_obs::CounterHandle,
}

fn supervisor_counters() -> &'static SupervisorCounters {
    static G: std::sync::OnceLock<SupervisorCounters> = std::sync::OnceLock::new();
    G.get_or_init(|| {
        let group = dlperf_obs::CounterGroup::register(
            "runtime.supervisor",
            &["attempts", "steps", "checkpoints_written", "restarts"],
        );
        SupervisorCounters {
            attempts: group.handle("attempts"),
            steps: group.handle("steps"),
            checkpoints_written: group.handle("checkpoints_written"),
            restarts: group.handle("restarts"),
            _group: group,
        }
    })
}

/// How one attempt ended (internal).
enum AttemptEnd<S> {
    Done(S),
    Retry(String),
    Fatal(SupervisorError),
}

/// Distinguishes a run-deadline expiry from an external cancel.
fn run_ended_error(
    config: &SupervisorConfig,
    job: &str,
    steps_completed: u64,
    run_started: Instant,
) -> SupervisorError {
    match config.deadline {
        Some(d) if run_started.elapsed() >= d => {
            SupervisorError::DeadlineExceeded { job: job.to_string(), steps_completed }
        }
        _ => SupervisorError::Cancelled { job: job.to_string(), steps_completed },
    }
}

/// Runs [`ResumableJob`]s under a supervision policy.
pub struct Supervisor {
    config: SupervisorConfig,
    store: Box<dyn CheckpointStore>,
    injector: Option<FaultInjector>,
    run_token: CancellationToken,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor")
            .field("config", &self.config)
            .field("faults", &self.injector.is_some())
            .finish()
    }
}

impl Supervisor {
    /// A supervisor with the given policy and an in-memory checkpoint
    /// store.
    pub fn new(config: SupervisorConfig) -> Self {
        Self::with_store(config, Box::new(MemoryStore::new()))
    }

    /// A supervisor persisting checkpoints to `store`.
    pub fn with_store(config: SupervisorConfig, store: Box<dyn CheckpointStore>) -> Self {
        let mut config = config;
        config.checkpoint_every = config.checkpoint_every.max(1);
        Supervisor { config, store, injector: None, run_token: CancellationToken::new() }
    }

    /// Installs a fault injector: worker faults from its plan are applied
    /// at the deterministic site `(job key, step, attempt)`.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// A handle that cancels the current/next run when triggered.
    pub fn cancellation_token(&self) -> CancellationToken {
        self.run_token.clone()
    }

    /// The active policy.
    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    fn checkpoint_schema(job_name: &str) -> String {
        format!("dlperf.checkpoint/{job_name}")
    }

    /// Loads the job's checkpoint, or its initial state when none exists.
    fn load_state<J: ResumableJob>(&self, job: &J) -> Result<(u64, J::State), SupervisorError> {
        match self.store.load()? {
            Some(sealed) => {
                open_checkpoint(&Self::checkpoint_schema(job.name()), &sealed)
                    .map_err(SupervisorError::from)
            }
            None => Ok((0, job.initial_state())),
        }
    }

    /// Runs `job` to completion under the supervision policy.
    ///
    /// Always returns the [`RunReport`], whether the run succeeded or not —
    /// panics, restarts, resumes and injected faults are surfaced there.
    pub fn run<J: ResumableJob>(
        &mut self,
        job: &J,
    ) -> (Result<J::Output, SupervisorError>, RunReport) {
        let _span =
            dlperf_obs::span_with(dlperf_obs::SpanKind::Phase, || format!("supervise:{}", job.name()));
        let mut report = RunReport { job: job.name().to_string(), ..RunReport::default() };
        let run_started = Instant::now();
        let job_key = site_key(job.name());

        // A token cancelled by a previous run must not poison this one.
        if self.run_token.is_cancelled() {
            self.run_token = CancellationToken::new();
        }
        let run_token = self.run_token.clone();
        let _run_watchdog =
            self.config.deadline.map(|d| Watchdog::arm(run_token.clone(), d));

        let mut attempt: u32 = 0;
        loop {
            // (Re)load progress: the initial load detects resume; later
            // loads roll back to the last checkpoint after a failure.
            let (step0, state) = match self.load_state(job) {
                Ok(s) => s,
                Err(e) => return (Err(e), report),
            };
            if attempt == 0 && step0 > 0 {
                report.resumed_from_step = Some(step0);
            }
            attempt += 1;
            report.attempts = attempt;
            report.steps_completed = report.steps_completed.max(step0);
            supervisor_counters().attempts.incr();
            let _attempt_span =
                dlperf_obs::span_with(dlperf_obs::SpanKind::Phase, || format!("attempt:{attempt}"));

            let attempt_token = CancellationToken::new();
            let _attempt_watchdog = self
                .config
                .attempt_timeout
                .map(|t| Watchdog::arm(attempt_token.clone(), t));

            let end = self.run_attempt(
                job,
                job_key,
                attempt,
                step0,
                state,
                run_started,
                &run_token,
                &attempt_token,
                &mut report,
            );

            match end {
                Ok(AttemptEnd::Done(state)) => {
                    if let Err(e) = self.store.clear() {
                        return (Err(e.into()), report);
                    }
                    return (Ok(job.finish(state)), report);
                }
                Ok(AttemptEnd::Fatal(e)) => return (Err(e), report),
                Ok(AttemptEnd::Retry(cause)) | Err(cause) => {
                    supervisor_counters().restarts.incr();
                    report.restarts.push(RestartRecord {
                        attempt,
                        at_step: report.steps_completed,
                        cause: cause.clone(),
                    });
                    if attempt > self.config.max_restarts {
                        return (
                            Err(SupervisorError::RestartBudgetExhausted {
                                job: job.name().to_string(),
                                attempts: attempt,
                                last_failure: cause,
                            }),
                            report,
                        );
                    }
                    // Exponential backoff, capped; counted against the run
                    // deadline like any other wall-clock time.
                    let exp = attempt.saturating_sub(1).min(16);
                    let backoff = self
                        .config
                        .backoff_base
                        .saturating_mul(1u32 << exp)
                        .min(self.config.backoff_max);
                    report.backoff_total += backoff;
                    std::thread::sleep(backoff);
                    if run_token.is_cancelled() {
                        let e = run_ended_error(
                            &self.config,
                            job.name(),
                            report.steps_completed,
                            run_started,
                        );
                        return (Err(e), report);
                    }
                }
            }
        }
    }

    /// One panic-isolated attempt. `Err(cause)` means the worker panicked.
    #[allow(clippy::too_many_arguments)]
    fn run_attempt<J: ResumableJob>(
        &mut self,
        job: &J,
        job_key: u64,
        attempt: u32,
        step0: u64,
        state: J::State,
        run_started: Instant,
        run_token: &CancellationToken,
        attempt_token: &CancellationToken,
        report: &mut RunReport,
    ) -> Result<AttemptEnd<J::State>, String> {
        let config = self.config.clone();
        let injector = self.injector.clone();
        let store = &mut self.store;
        let job_name = job.name().to_string();
        let schema = Self::checkpoint_schema(&job_name);

        let mut steps_run = 0u64;
        let mut checkpoints = 0u64;
        let mut injected = 0u32;
        let mut completed = step0;

        let _quiet = QuietPanicGuard::engage();
        let caught = catch_unwind(AssertUnwindSafe(|| -> AttemptEnd<J::State> {
            let mut state = state;
            let mut step = step0;
            let mut dirty = 0u64;
            loop {
                if run_token.is_cancelled() {
                    return AttemptEnd::Fatal(run_ended_error(
                        &config,
                        &job_name,
                        step,
                        run_started,
                    ));
                }
                if attempt_token.is_cancelled() {
                    return AttemptEnd::Retry("attempt timed out (hang watchdog)".into());
                }

                // Deterministic chaos: evaluate the worker-fault site for
                // this (step, attempt) before running the step.
                if let Some(inj) = &injector {
                    match inj.worker_fault(job_key, step, attempt) {
                        Some(WorkerFault::Panic) => {
                            injected += 1;
                            panic!("injected worker panic at step {step} attempt {attempt}");
                        }
                        Some(WorkerFault::Kill) => {
                            injected += 1;
                            return AttemptEnd::Retry(format!(
                                "worker killed at step {step} (injected)"
                            ));
                        }
                        Some(WorkerFault::Hang) => {
                            injected += 1;
                            // A hung worker makes no progress; only a
                            // watchdog gets it unstuck.
                            loop {
                                if run_token.is_cancelled() {
                                    return AttemptEnd::Fatal(run_ended_error(
                                        &config,
                                        &job_name,
                                        step,
                                        run_started,
                                    ));
                                }
                                if attempt_token.is_cancelled() {
                                    return AttemptEnd::Retry(format!(
                                        "worker hung at step {step} (injected), watchdog fired"
                                    ));
                                }
                                std::thread::sleep(Duration::from_micros(500));
                            }
                        }
                        None => {}
                    }
                }

                let ctx = JobContext {
                    run_token: run_token.clone(),
                    attempt_token: attempt_token.clone(),
                    step,
                    attempt,
                };
                let outcome = match job.step(&mut state, &ctx) {
                    Ok(o) => o,
                    Err(JobError::Cancelled) => {
                        return AttemptEnd::Fatal(run_ended_error(
                            &config,
                            &job_name,
                            step,
                            run_started,
                        ))
                    }
                    Err(JobError::AttemptTimedOut) => {
                        return AttemptEnd::Retry("attempt timed out (hang watchdog)".into())
                    }
                    Err(JobError::Killed) => {
                        return AttemptEnd::Retry(format!("worker killed at step {step}"))
                    }
                    Err(JobError::Failed(why)) => {
                        return AttemptEnd::Fatal(SupervisorError::Failed {
                            job: job_name.clone(),
                            why,
                        })
                    }
                };
                steps_run += 1;
                step += 1;
                completed = step;
                dirty += 1;
                match outcome {
                    StepOutcome::Done => return AttemptEnd::Done(state),
                    StepOutcome::Continue => {
                        if dirty >= config.checkpoint_every {
                            let sealed = match seal_checkpoint(&schema, step, &state) {
                                Ok(s) => s,
                                Err(e) => return AttemptEnd::Fatal(e.into()),
                            };
                            if let Err(e) = store.save(&sealed) {
                                return AttemptEnd::Fatal(e.into());
                            }
                            checkpoints += 1;
                            dirty = 0;
                        }
                    }
                }
            }
        }));

        report.steps_run += steps_run;
        report.checkpoints_written += checkpoints;
        report.injected_faults += injected;
        let counters = supervisor_counters();
        counters.steps.add(steps_run);
        counters.checkpoints_written.add(checkpoints);
        report.steps_completed = report.steps_completed.max(completed);

        match caught {
            Ok(end) => Ok(end),
            Err(payload) => Err(format!("worker panicked: {}", panic_message(&*payload))),
        }
    }
}

thread_local! {
    /// Whether a supervised attempt is running on this thread — contained
    /// panics are the supervisor's to report, so the default hook's
    /// message + backtrace would be pure noise.
    static SUPERVISED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Suppresses the panic hook's output for panics on the current thread
/// while a supervised attempt runs; panics on other threads (and on this
/// thread outside an attempt) still reach the previous hook untouched.
struct QuietPanicGuard;

impl QuietPanicGuard {
    fn engage() -> Self {
        static INSTALL: std::sync::Once = std::sync::Once::new();
        INSTALL.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !SUPERVISED.with(|s| s.get()) {
                    prev(info);
                }
            }));
        });
        SUPERVISED.with(|s| s.set(true));
        QuietPanicGuard
    }
}

impl Drop for QuietPanicGuard {
    fn drop(&mut self) {
        SUPERVISED.with(|s| s.set(false));
    }
}

/// Best-effort extraction of a panic payload message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::store::FileStore;
    use dlperf_faults::FaultPlan;

    /// Counts to `total`, accumulating `step²` into the state. Individual
    /// steps can be told to panic, die, or hang on a given attempt.
    struct CountJob {
        total: u64,
        panic_step: Option<u64>,
        kill_step: Option<u64>,
        hang_step: Option<u64>,
        /// Restrict the configured failure to this attempt (None = always).
        fail_attempt: Option<u32>,
        step_sleep: Duration,
    }

    impl CountJob {
        fn to(total: u64) -> Self {
            CountJob {
                total,
                panic_step: None,
                kill_step: None,
                hang_step: None,
                fail_attempt: None,
                step_sleep: Duration::ZERO,
            }
        }
    }

    impl ResumableJob for CountJob {
        type State = Vec<u64>;
        type Output = u64;

        fn name(&self) -> &str {
            "count-job"
        }

        fn initial_state(&self) -> Vec<u64> {
            Vec::new()
        }

        fn step(&self, state: &mut Vec<u64>, ctx: &JobContext) -> Result<StepOutcome, JobError> {
            let applies =
                self.fail_attempt.is_none_or_default(ctx.attempt);
            if applies && self.panic_step == Some(ctx.step) {
                panic!("test panic at step {}", ctx.step);
            }
            if applies && self.kill_step == Some(ctx.step) {
                return Err(JobError::Killed);
            }
            if applies && self.hang_step == Some(ctx.step) {
                loop {
                    ctx.check_cancelled()?;
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            if !self.step_sleep.is_zero() {
                std::thread::sleep(self.step_sleep);
            }
            state.push(ctx.step * ctx.step);
            Ok(if state.len() as u64 >= self.total { StepOutcome::Done } else { StepOutcome::Continue })
        }

        fn finish(&self, state: Vec<u64>) -> u64 {
            state.iter().sum()
        }
    }

    /// `None` (no attempt restriction) or the given attempt.
    trait AttemptFilter {
        fn is_none_or_default(&self, attempt: u32) -> bool;
    }
    impl AttemptFilter for Option<u32> {
        fn is_none_or_default(&self, attempt: u32) -> bool {
            self.is_none_or(|a| a == attempt)
        }
    }

    fn expected_sum(total: u64) -> u64 {
        (0..total).map(|s| s * s).sum()
    }

    #[test]
    fn happy_path_completes_in_one_attempt() {
        let mut sup = Supervisor::new(SupervisorConfig {
            checkpoint_every: 2,
            ..SupervisorConfig::default()
        });
        let (out, report) = sup.run(&CountJob::to(5));
        assert_eq!(out.expect("job completes"), expected_sum(5));
        assert_eq!(report.attempts, 1);
        assert_eq!(report.steps_run, 5);
        assert_eq!(report.checkpoints_written, 2); // after steps 2 and 4
        assert!(report.restarts.is_empty());
        assert!(report.resumed_from_step.is_none());
    }

    #[test]
    fn panic_restarts_from_checkpoint_with_identical_output() {
        let mut job = CountJob::to(6);
        job.panic_step = Some(3);
        job.fail_attempt = Some(1);
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let (out, report) = sup.run(&job);
        assert_eq!(out.expect("job recovers"), expected_sum(6), "recovered run is bit-identical");
        assert_eq!(report.attempts, 2);
        assert_eq!(report.restarts.len(), 1);
        assert!(report.restarts[0].cause.contains("panicked"), "{}", report.restarts[0].cause);
        assert_eq!(report.restarts[0].at_step, 3, "checkpoint caught steps 0..3");
        // Steps 0..3 ran once, 3..6 ran once: no step repeated (checkpoint_every=1).
        assert_eq!(report.steps_run, 6);
    }

    #[test]
    fn restart_budget_exhaustion_is_typed_and_reported() {
        let mut job = CountJob::to(6);
        job.panic_step = Some(2); // every attempt
        let mut sup = Supervisor::new(SupervisorConfig {
            max_restarts: 2,
            backoff_base: Duration::from_millis(1),
            ..SupervisorConfig::default()
        });
        let (out, report) = sup.run(&job);
        match out {
            Err(SupervisorError::RestartBudgetExhausted { attempts: 3, last_failure, .. }) => {
                assert!(last_failure.contains("panicked"));
            }
            other => panic!("expected RestartBudgetExhausted, got {other:?}"),
        }
        assert_eq!(report.restarts.len(), 3);
        assert!(report.summary().contains("3 restart(s)"));
    }

    #[test]
    fn hang_watchdog_restarts_the_attempt() {
        let mut job = CountJob::to(4);
        job.hang_step = Some(2);
        job.fail_attempt = Some(1);
        let mut sup = Supervisor::new(SupervisorConfig {
            attempt_timeout: Some(Duration::from_millis(30)),
            ..SupervisorConfig::default()
        });
        let (out, report) = sup.run(&job);
        assert_eq!(out.expect("watchdog unwedges the job"), expected_sum(4));
        assert_eq!(report.attempts, 2);
        assert!(report.restarts[0].cause.contains("timed out"), "{}", report.restarts[0].cause);
    }

    #[test]
    fn run_deadline_is_fatal() {
        let mut job = CountJob::to(10_000);
        job.step_sleep = Duration::from_millis(5);
        let mut sup = Supervisor::new(SupervisorConfig {
            deadline: Some(Duration::from_millis(40)),
            ..SupervisorConfig::default()
        });
        let (out, report) = sup.run(&job);
        match out {
            Err(SupervisorError::DeadlineExceeded { steps_completed, .. }) => {
                assert!(steps_completed < 10_000);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(report.steps_run < 10_000);
    }

    #[test]
    fn external_cancellation_is_distinguished_from_deadline() {
        let mut job = CountJob::to(10_000);
        job.step_sleep = Duration::from_millis(2);
        let mut sup = Supervisor::new(SupervisorConfig::default());
        let token = sup.cancellation_token();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            token.cancel();
        });
        let (out, _report) = sup.run(&job);
        canceller.join().expect("canceller thread");
        match out {
            Err(SupervisorError::Cancelled { .. }) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn kill_resume_across_supervisors_is_bitwise_identical() {
        let dir = std::env::temp_dir().join(format!("dlperf-sup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("count.ckpt");

        // Uninterrupted baseline.
        let (baseline, _) = Supervisor::new(SupervisorConfig::default()).run(&CountJob::to(8));
        let baseline = baseline.expect("baseline completes");

        // First process: dies at step 5 on every attempt, no restarts left.
        let mut dying = CountJob::to(8);
        dying.kill_step = Some(5);
        let mut sup1 = Supervisor::with_store(
            SupervisorConfig { max_restarts: 0, ..SupervisorConfig::default() },
            Box::new(FileStore::new(&path)),
        );
        let (out1, _r1) = sup1.run(&dying);
        assert!(out1.is_err(), "first process dies");
        assert!(path.exists(), "checkpoint survives the death");

        // Second process resumes from the snapshot and finishes.
        let mut sup2 = Supervisor::with_store(
            SupervisorConfig::default(),
            Box::new(FileStore::new(&path)),
        );
        let (out2, r2) = sup2.run(&CountJob::to(8));
        assert_eq!(out2.expect("resumed run completes"), baseline, "bitwise-identical result");
        assert_eq!(r2.resumed_from_step, Some(5));
        assert_eq!(r2.steps_run, 3, "only the remaining steps run");
        assert!(!path.exists(), "checkpoint cleared after success");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_checkpoint_is_a_typed_snapshot_error() {
        let dir = std::env::temp_dir().join(format!("dlperf-sup-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("count.ckpt");
        let mut dying = CountJob::to(8);
        dying.kill_step = Some(4);
        let mut sup1 = Supervisor::with_store(
            SupervisorConfig { max_restarts: 0, ..SupervisorConfig::default() },
            Box::new(FileStore::new(&path)),
        );
        let _ = sup1.run(&dying);
        // Truncate the snapshot, as an interrupted copy or bit rot would.
        let sealed = std::fs::read_to_string(&path).expect("checkpoint exists");
        std::fs::write(&path, &sealed[..sealed.len() / 2]).expect("truncate");
        let mut sup2 = Supervisor::with_store(
            SupervisorConfig::default(),
            Box::new(FileStore::new(&path)),
        );
        let (out, _) = sup2.run(&CountJob::to(8));
        match out {
            Err(SupervisorError::Snapshot(SnapshotError::Parse(_))) => {}
            other => panic!("expected Snapshot(Parse), got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_worker_faults_are_deterministic_across_runs() {
        let plan = FaultPlan::healthy(99).with_worker_faults(0.05, 0.1, 0.0);
        let config = SupervisorConfig {
            max_restarts: 100,
            backoff_base: Duration::from_micros(100),
            backoff_max: Duration::from_millis(1),
            ..SupervisorConfig::default()
        };
        let run = || {
            let mut sup = Supervisor::new(config.clone());
            sup.set_fault_injector(FaultInjector::new(plan.clone()));
            sup.run(&CountJob::to(40))
        };
        let (out_a, rep_a) = run();
        let (out_b, rep_b) = run();
        let out_a = out_a.expect("chaos run completes");
        assert_eq!(out_a, out_b.expect("chaos run completes"));
        assert_eq!(out_a, expected_sum(40), "faults never change the result");
        assert!(rep_a.injected_faults > 0, "plan should actually fire at these odds");
        assert_eq!(rep_a.injected_faults, rep_b.injected_faults);
        assert_eq!(rep_a.restarts, rep_b.restarts, "identical failure timeline");
    }

    #[test]
    fn injected_hang_is_recovered_by_the_attempt_watchdog() {
        let plan = FaultPlan::healthy(3).with_worker_faults(0.0, 0.0, 0.08);
        let mut sup = Supervisor::new(SupervisorConfig {
            attempt_timeout: Some(Duration::from_millis(25)),
            max_restarts: 100,
            backoff_base: Duration::from_micros(100),
            ..SupervisorConfig::default()
        });
        sup.set_fault_injector(FaultInjector::new(plan));
        let (out, report) = sup.run(&CountJob::to(30));
        assert_eq!(out.expect("hangs are recovered"), expected_sum(30));
        assert!(report.injected_faults > 0, "at least one hang should fire at these odds");
        assert!(report.restarts.iter().any(|r| r.cause.contains("hung")));
    }
}
