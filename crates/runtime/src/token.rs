//! Cooperative cancellation and wall-clock deadlines.
//!
//! The runtime never kills a worker thread preemptively — Rust offers no
//! safe way to do that. Instead every supervised job receives a
//! [`CancellationToken`] and is expected to poll it between units of work;
//! a [`Watchdog`] thread flips the token when a wall-clock deadline
//! expires, which is what turns a hang into a bounded failure.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation flag. Cloning yields another handle to the
/// same flag; cancellation is one-way and permanent.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    flag: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A watchdog thread that cancels a token when a deadline passes.
///
/// Dropping the watchdog disarms it (the thread exits promptly without
/// cancelling), so scoping the watchdog to an attempt gives per-attempt
/// hang detection while a longer-lived watchdog bounds the whole run.
#[derive(Debug)]
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Arms a watchdog: after `deadline` elapses, `token` is cancelled.
    pub fn arm(token: CancellationToken, deadline: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::spawn(move || {
            let due = Instant::now() + deadline;
            loop {
                if stop2.load(Ordering::SeqCst) {
                    return;
                }
                let now = Instant::now();
                if now >= due {
                    token.cancel();
                    return;
                }
                // Short sleeps keep disarm latency low without burning CPU.
                std::thread::sleep((due - now).min(Duration::from_millis(5)));
            }
        });
        Watchdog { stop, handle: Some(handle) }
    }

    /// Disarms the watchdog without cancelling the token.
    pub fn disarm(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_cancels_once() {
        let t = CancellationToken::new();
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t2.cancel();
        assert!(t.is_cancelled(), "clones share the flag");
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn watchdog_fires_after_deadline() {
        let t = CancellationToken::new();
        let _w = Watchdog::arm(t.clone(), Duration::from_millis(10));
        let start = Instant::now();
        while !t.is_cancelled() {
            assert!(start.elapsed() < Duration::from_secs(5), "watchdog never fired");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn disarmed_watchdog_never_fires() {
        let t = CancellationToken::new();
        let w = Watchdog::arm(t.clone(), Duration::from_millis(20));
        w.disarm();
        std::thread::sleep(Duration::from_millis(40));
        assert!(!t.is_cancelled());
    }
}
