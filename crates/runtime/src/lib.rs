//! Supervised runtime for long-running dlperf jobs.
//!
//! Sweeps in this codebase — hyperparameter grid searches, microbenchmark
//! calibration, multi-workload analysis — run for a long time and die for
//! boring reasons: a panic on one degenerate config, a hang, a preempted
//! machine. This crate makes those failures recoverable instead of fatal:
//!
//! - [`Supervisor`] runs a [`ResumableJob`] with panic isolation
//!   (`catch_unwind` around every attempt), a restart budget with
//!   exponential backoff, and cooperative deadlines enforced by
//!   [`Watchdog`] threads flipping [`CancellationToken`]s.
//! - Progress is persisted as versioned, checksummed [`snapshot`]
//!   envelopes through a [`CheckpointStore`] ([`FileStore`] for durable
//!   kill-resume, [`MemoryStore`] for tests). Writes are atomic
//!   (temp-file + rename), so a kill mid-write never corrupts the latest
//!   snapshot.
//! - Because job steps are deterministic and any randomness is keyed by a
//!   stateless hash of the step index (the `dlperf-faults` scheme), a
//!   killed run resumed from its last checkpoint produces **bitwise
//!   identical** final results to an uninterrupted run.
//! - Chaos composes: hand the supervisor a `dlperf_faults::FaultInjector`
//!   and its plan's worker faults (panic / kill / hang) fire at
//!   deterministic `(job, step, attempt)` sites, exercising every
//!   recovery path reproducibly.

pub mod job;
pub mod snapshot;
pub mod store;
pub mod supervisor;
pub mod token;

pub use job::{JobContext, JobError, ResumableJob, StepOutcome};
pub use snapshot::{fnv1a64, open, seal, Envelope, SnapshotError};
pub use store::{CheckpointStore, FileStore, MemoryStore};
pub use supervisor::{
    RestartRecord, RunReport, Supervisor, SupervisorConfig, SupervisorError, CHECKPOINT_VERSION,
};
pub use token::{CancellationToken, Watchdog};
