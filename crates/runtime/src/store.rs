//! Checkpoint storage backends.
//!
//! A [`CheckpointStore`] holds at most one sealed snapshot (the latest).
//! [`FileStore`] is the durable backend: it writes through a temp file and
//! renames, so a kill mid-write leaves either the old snapshot or the new
//! one, never a half-written file. [`MemoryStore`] backs tests and
//! in-process resume without touching disk.

use std::path::{Path, PathBuf};

use crate::snapshot::SnapshotError;

/// Storage for the latest sealed checkpoint of one job.
pub trait CheckpointStore {
    /// Replaces the stored snapshot.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on backend failure.
    fn save(&mut self, sealed: &str) -> Result<(), SnapshotError>;

    /// The stored snapshot, if any.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on backend failure.
    fn load(&self) -> Result<Option<String>, SnapshotError>;

    /// Removes the stored snapshot (called after a successful run so a
    /// later job under the same store starts fresh).
    ///
    /// # Errors
    /// [`SnapshotError::Io`] on backend failure.
    fn clear(&mut self) -> Result<(), SnapshotError>;
}

/// In-memory single-slot store.
#[derive(Debug, Default)]
pub struct MemoryStore {
    slot: Option<String>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The raw stored snapshot (for tests that corrupt it deliberately).
    pub fn raw(&self) -> Option<&str> {
        self.slot.as_deref()
    }

    /// Overwrites the raw slot (for tests that inject corruption).
    pub fn set_raw(&mut self, sealed: Option<String>) {
        self.slot = sealed;
    }
}

impl CheckpointStore for MemoryStore {
    fn save(&mut self, sealed: &str) -> Result<(), SnapshotError> {
        self.slot = Some(sealed.to_string());
        Ok(())
    }

    fn load(&self) -> Result<Option<String>, SnapshotError> {
        Ok(self.slot.clone())
    }

    fn clear(&mut self) -> Result<(), SnapshotError> {
        self.slot = None;
        Ok(())
    }
}

/// Durable single-file store with atomic replace.
#[derive(Debug)]
pub struct FileStore {
    path: PathBuf,
}

impl FileStore {
    /// A store persisting to `path`. The file need not exist yet.
    pub fn new(path: impl AsRef<Path>) -> Self {
        FileStore { path: path.as_ref().to_path_buf() }
    }

    /// The checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads the stored envelope and opens it in one step, verifying
    /// schema, version, and checksum before touching the payload. A
    /// missing file is `Ok(None)`; *any* corruption — truncation, bit
    /// flips, a stray editor save — is a typed [`SnapshotError`], never a
    /// panic, so a damaged checkpoint degrades to "start fresh or alert",
    /// the caller's choice.
    ///
    /// # Errors
    /// [`SnapshotError::Io`] when the file cannot be read; otherwise
    /// whatever [`crate::snapshot::open`] diagnoses.
    pub fn open_snapshot<T: serde::de::DeserializeOwned>(
        &self,
        schema: &str,
        version: u32,
    ) -> Result<Option<T>, SnapshotError> {
        match self.load()? {
            Some(sealed) => Ok(Some(crate::snapshot::open(schema, version, &sealed)?)),
            None => Ok(None),
        }
    }
}

impl CheckpointStore for FileStore {
    fn save(&mut self, sealed: &str) -> Result<(), SnapshotError> {
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, sealed)?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }

    fn load(&self) -> Result<Option<String>, SnapshotError> {
        match std::fs::read_to_string(&self.path) {
            Ok(s) => Ok(Some(s)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(SnapshotError::Io(e)),
        }
    }

    fn clear(&mut self) -> Result<(), SnapshotError> {
        match std::fs::remove_file(&self.path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(SnapshotError::Io(e)),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_single_slot() {
        let mut s = MemoryStore::new();
        assert!(s.load().unwrap().is_none());
        s.save("a").unwrap();
        s.save("b").unwrap();
        assert_eq!(s.load().unwrap().as_deref(), Some("b"));
        s.clear().unwrap();
        assert!(s.load().unwrap().is_none());
    }

    #[test]
    fn open_snapshot_round_trips_and_types_every_corruption() {
        use crate::snapshot::seal;

        let dir =
            std::env::temp_dir().join(format!("dlperf-open-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut s = FileStore::new(&path);

        // Missing file: clean None.
        let none: Option<Vec<u64>> = s.open_snapshot("t.schema", 1).unwrap();
        assert!(none.is_none());

        // Intact envelope round-trips.
        let payload: Vec<u64> = vec![1, 2, 3];
        let sealed = seal("t.schema", 1, &payload).unwrap();
        s.save(&sealed).unwrap();
        let back: Option<Vec<u64>> = s.open_snapshot("t.schema", 1).unwrap();
        assert_eq!(back.as_deref(), Some(&payload[..]));

        // Truncated file: typed error, not a panic.
        std::fs::write(&path, &sealed[..sealed.len() / 2]).unwrap();
        let err = s.open_snapshot::<Vec<u64>>("t.schema", 1).unwrap_err();
        assert!(matches!(err, SnapshotError::Parse(_)), "got {err:?}");

        // Bit-flipped payload byte: the checksum catches it.
        let mut bytes = sealed.clone().into_bytes();
        let flip = sealed.rfind("payload").unwrap() + 12;
        bytes[flip] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        match s.open_snapshot::<Vec<u64>>("t.schema", 1) {
            Ok(_) => panic!("corruption must not open cleanly"),
            Err(e) => {
                let _ = e.to_string(); // typed and printable
            }
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_store_round_trips_and_clears() {
        let dir = std::env::temp_dir().join(format!("dlperf-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        let mut s = FileStore::new(&path);
        assert!(s.load().unwrap().is_none(), "missing file is a clean start, not an error");
        s.save("snapshot-1").unwrap();
        assert_eq!(s.load().unwrap().as_deref(), Some("snapshot-1"));
        s.save("snapshot-2").unwrap();
        assert_eq!(s.load().unwrap().as_deref(), Some("snapshot-2"));
        s.clear().unwrap();
        assert!(s.load().unwrap().is_none());
        s.clear().unwrap(); // clearing twice is fine
        std::fs::remove_dir_all(&dir).ok();
    }
}
