//! The resumable-job abstraction.
//!
//! A [`ResumableJob`] factors a long-running computation into a serializable
//! `State` advanced one *step* at a time. The step is the checkpoint
//! granularity: the supervisor may snapshot the state after any step and
//! rebuild it from the snapshot after a crash, so steps must be
//! deterministic functions of `(job, state)` — any randomness keyed by a
//! stateless hash of the step index, never by a stateful RNG carried
//! between steps (the `dlperf-faults` determinism scheme). That is the
//! property that makes a killed-and-resumed run bitwise identical to an
//! uninterrupted one.

use serde::de::DeserializeOwned;
use serde::Serialize;

use crate::token::CancellationToken;

/// What one step of a job reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More steps remain.
    Continue,
    /// The job is complete; `finish` may be called on the state.
    Done,
}

/// Why a job step could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The run-level token was cancelled (run deadline or external cancel).
    Cancelled,
    /// The attempt-level token was cancelled: the hang watchdog fired. The
    /// supervisor restarts the attempt from the last checkpoint.
    AttemptTimedOut,
    /// The worker was killed (e.g. an injected chaos fault). The supervisor
    /// restarts from the last checkpoint.
    Killed,
    /// A typed, non-retryable failure: retrying would fail identically.
    Failed(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::AttemptTimedOut => write!(f, "attempt timed out (hang watchdog)"),
            JobError::Killed => write!(f, "worker killed"),
            JobError::Failed(why) => write!(f, "job failed: {why}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Per-step execution context handed to [`ResumableJob::step`].
#[derive(Debug)]
pub struct JobContext {
    pub(crate) run_token: CancellationToken,
    pub(crate) attempt_token: CancellationToken,
    /// Index of the step being executed (0-based, monotonic across resumes).
    pub step: u64,
    /// Attempt number (1 = first try).
    pub attempt: u32,
}

impl JobContext {
    /// Polls both cancellation levels; long steps should call this at
    /// convenient internal boundaries.
    ///
    /// # Errors
    /// [`JobError::Cancelled`] if the run token fired,
    /// [`JobError::AttemptTimedOut`] if only the attempt token fired.
    pub fn check_cancelled(&self) -> Result<(), JobError> {
        if self.run_token.is_cancelled() {
            Err(JobError::Cancelled)
        } else if self.attempt_token.is_cancelled() {
            Err(JobError::AttemptTimedOut)
        } else {
            Ok(())
        }
    }

    /// Whether either cancellation level has fired.
    pub fn is_cancelled(&self) -> bool {
        self.run_token.is_cancelled() || self.attempt_token.is_cancelled()
    }
}

/// A checkpointable unit of long-running work.
pub trait ResumableJob {
    /// Serializable progress. Everything a resume needs must live here.
    type State: Serialize + DeserializeOwned;
    /// The final product assembled from a completed state.
    type Output;

    /// Stable job name: names the checkpoint schema and keys injected
    /// worker faults, so it should not vary between runs of the same job.
    fn name(&self) -> &str;

    /// The state before any step has run.
    fn initial_state(&self) -> Self::State;

    /// Advances the state by one unit of work. Must be deterministic given
    /// `(self, state)`; `ctx.step` is the unit's index for hash-keyed
    /// seeding.
    ///
    /// # Errors
    /// [`JobError`] to stop (cancellation, typed failure); panics are
    /// caught and retried by the supervisor.
    fn step(&self, state: &mut Self::State, ctx: &JobContext) -> Result<StepOutcome, JobError>;

    /// Builds the output from a completed state.
    fn finish(&self, state: Self::State) -> Self::Output;
}
