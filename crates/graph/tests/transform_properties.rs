//! Property-based tests: graph transformations preserve validity on
//! randomly generated graphs.

use dlperf_graph::transform::{remove_node_rewire, replace_op, resize_batch};
use dlperf_graph::{Graph, NodeId, OpKind, TensorMeta};
use proptest::prelude::*;

/// A random valid chain of unary element-wise ops with a batch dimension.
fn chain_strategy() -> impl Strategy<Value = Graph> {
    (1u64..512, 1usize..20, proptest::collection::vec(0usize..3, 1..20)).prop_map(
        |(batch, width_pow, kinds)| {
            let width = 1u64 << width_pow;
            let mut g = Graph::new("prop-chain");
            let mut x = g.add_tensor(TensorMeta::activation(&[batch, width]).with_batch_dim(0));
            for k in kinds {
                let op = match k {
                    0 => OpKind::Relu,
                    1 => OpKind::Sigmoid,
                    _ => OpKind::Gelu,
                };
                let y = g.add_tensor(TensorMeta::activation(&[batch, width]).with_batch_dim(0));
                g.add_op(op, vec![x], vec![y]);
                x = y;
            }
            g
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resize_preserves_validity_and_lowering(g in chain_strategy(), b in 1u64..8192) {
        let mut g = g;
        resize_batch(&mut g, b).unwrap();
        prop_assert!(g.validate().is_ok());
        prop_assert!(dlperf_graph::lower::lower_graph(&g).is_ok());
        // Every batch-annotated tensor now has the new batch size.
        for (_, t) in g.tensors() {
            if let Some(bs) = t.batch_size() {
                prop_assert_eq!(bs, b);
            }
        }
    }

    #[test]
    fn replace_preserves_validity(g in chain_strategy(), idx in 0usize..20) {
        let mut g = g;
        let n = g.node_count();
        let target = NodeId(idx % n);
        replace_op(&mut g, target, OpKind::Relu, "aten::relu").unwrap();
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn remove_rewire_preserves_validity(g in chain_strategy(), idx in 0usize..20) {
        let mut g = g;
        let n = g.node_count();
        let target = NodeId(idx % n);
        remove_node_rewire(&mut g, target).unwrap();
        prop_assert!(g.validate().is_ok());
        prop_assert_eq!(g.node_count(), n - 1);
        prop_assert!(dlperf_graph::lower::lower_graph(&g).is_ok());
    }

    #[test]
    fn json_round_trip_any_chain(g in chain_strategy()) {
        let back = Graph::from_json(&g.to_json()).unwrap();
        prop_assert_eq!(back.node_count(), g.node_count());
        prop_assert_eq!(back.tensor_count(), g.tensor_count());
        for (a, b) in g.nodes().iter().zip(back.nodes()) {
            prop_assert_eq!(a.op, b.op);
        }
    }

    #[test]
    fn memory_estimate_never_negative_and_bounded(g in chain_strategy()) {
        let r = dlperf_graph::memory::estimate(&g);
        let total_bytes: u64 = g.tensors().map(|(_, t)| t.bytes()).sum();
        prop_assert!(r.peak_bytes() <= total_bytes);
        prop_assert_eq!(r.occupancy.len(), g.node_count());
    }
}
