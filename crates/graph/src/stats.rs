//! Graph summary statistics: the at-a-glance workload characterization the
//! CLI's `inspect` view and the examples print.

use std::collections::HashMap;

use crate::graph::Graph;
use crate::lower;

/// Aggregate statistics of one execution graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Total ops.
    pub node_count: usize,
    /// Ops that launch at least one kernel.
    pub device_op_count: usize,
    /// Total kernels launched.
    pub kernel_count: usize,
    /// Total floating-point operations per iteration.
    pub total_flops: f64,
    /// Total memory traffic per iteration (bytes).
    pub total_bytes: f64,
    /// Op count per op-type key, descending.
    pub op_histogram: Vec<(String, usize)>,
}

impl GraphStats {
    /// Arithmetic intensity (FLOP per byte) of the whole iteration.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.total_bytes > 0.0 {
            self.total_flops / self.total_bytes
        } else {
            0.0
        }
    }
}

/// Computes summary statistics of `graph`.
///
/// # Errors
/// Returns a lowering error if the graph is malformed.
pub fn summarize(graph: &Graph) -> Result<GraphStats, lower::LowerError> {
    let mut kernel_count = 0usize;
    let mut device_op_count = 0usize;
    let (mut flops, mut bytes) = (0.0f64, 0.0f64);
    let mut hist: HashMap<String, usize> = HashMap::new();
    for node in graph.nodes() {
        *hist.entry(node.op.overhead_key().to_string()).or_insert(0) += 1;
        let kernels = lower::try_kernels(graph, node)?;
        if !kernels.is_empty() {
            device_op_count += 1;
        }
        kernel_count += kernels.len();
        for k in kernels {
            flops += k.flops();
            bytes += k.bytes();
        }
    }
    let mut op_histogram: Vec<(String, usize)> = hist.into_iter().collect();
    op_histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    Ok(GraphStats {
        node_count: graph.node_count(),
        device_op_count,
        kernel_count,
        total_flops: flops,
        total_bytes: bytes,
        op_histogram,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::tensor::TensorMeta;

    fn toy() -> Graph {
        let mut g = Graph::new("toy");
        let x = g.add_tensor(TensorMeta::activation(&[64, 32]));
        let w = g.add_tensor(TensorMeta::weight(&[16, 32]));
        let bias = g.add_tensor(TensorMeta::weight(&[16]));
        let y = g.add_tensor(TensorMeta::activation(&[64, 16]));
        let z = g.add_tensor(TensorMeta::activation(&[64, 16]));
        let v = g.add_tensor(TensorMeta::activation(&[1024]));
        g.add_op(OpKind::AddMm, vec![x, w, bias], vec![y]);
        g.add_op(OpKind::Relu, vec![y], vec![z]);
        g.add_op(OpKind::Reshape, vec![z], vec![v]);
        g
    }

    #[test]
    fn counts_and_flops() {
        let s = summarize(&toy()).unwrap();
        assert_eq!(s.node_count, 3);
        assert_eq!(s.device_op_count, 2); // reshape is host-only
        assert_eq!(s.kernel_count, 2);
        // GEMM flops 2*64*16*32 + relu 1024.
        assert_eq!(s.total_flops, 2.0 * 64.0 * 16.0 * 32.0 + 1024.0);
        assert!(s.arithmetic_intensity() > 0.0);
    }

    #[test]
    fn histogram_sorted_desc() {
        let s = summarize(&toy()).unwrap();
        assert_eq!(s.op_histogram.len(), 3);
        for w in s.op_histogram.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }
}
