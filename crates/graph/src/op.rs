//! Operator kinds.
//!
//! Each variant corresponds to a (family of) PyTorch operator(s) appearing
//! in DLRM or CV/NLP training iterations. Shape information lives on the
//! tensors, not here, so graph transformations that rewrite tensor metadata
//! (e.g. *resize*) automatically change every op's lowered kernels.

use dlperf_gpusim::MemcpyKind;
use serde::{Deserialize, Serialize};

/// The kind of operator a [`crate::Node`] executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `aten::addmm` — fully connected forward (bias + x·Wᵀ).
    AddMm,
    /// `AddmmBackward` — dominated by two GEMM kernels (dgrad + wgrad).
    AddMmBackward,
    /// `aten::bmm` — batched matrix multiply (feature interaction).
    Bmm,
    /// `BmmBackward0` — two batched GEMM kernels.
    BmmBackward,
    /// `aten::embedding_bag` — one table lookup.
    EmbeddingBag,
    /// `EmbeddingBagBackward` — one table lookup backward + SGD.
    EmbeddingBagBackward,
    /// Tulloch-style batched embedding lookup over all tables in one kernel.
    BatchedEmbedding,
    /// Batched embedding lookup backward with fused SGD.
    BatchedEmbeddingBackward,
    /// `aten::cat` along dimension `dim`.
    Cat { dim: usize },
    /// Backward of `cat` (materializes the per-input gradient slices).
    CatBackward { dim: usize },
    /// `aten::relu`.
    Relu,
    /// `ReluBackward0`.
    ReluBackward,
    /// `aten::sigmoid` (final CTR prediction).
    Sigmoid,
    /// `SigmoidBackward0`.
    SigmoidBackward,
    /// `aten::mse_loss`.
    MseLoss,
    /// `MseLossBackward0`.
    MseLossBackward,
    /// Batched matrix transpose (permutation of the last two axes — the only
    /// permutation that occurs in DLRM).
    Transpose,
    /// Lower-triangular extraction + flatten (feature interaction gather).
    Tril,
    /// `IndexBackward` — scatter of the interaction gradient.
    TrilBackward,
    /// `aten::to` / `aten::copy_` — a memory copy of the given kind.
    To { kind: MemcpyKind },
    /// `aten::conv2d` with square-symmetric stride/padding.
    Conv2d { stride: u64, pad: u64 },
    /// `CudnnConvolutionBackward` — dgrad + wgrad kernels.
    Conv2dBackward { stride: u64, pad: u64 },
    /// `aten::batch_norm`.
    BatchNorm,
    /// `CudnnBatchNormBackward`.
    BatchNormBackward,
    /// `aten::max_pool2d` with a `k × k` window.
    MaxPool { k: u64, stride: u64 },
    /// `MaxPool2DWithIndicesBackward0`.
    MaxPoolBackward,
    /// `aten::adaptive_avg_pool2d` (global average pooling).
    AvgPool,
    /// `aten::add` (residual connections).
    Add,
    /// `AddBackward0` — gradient pass-through, no device kernels.
    AddBackward,
    /// `aten::softmax` (attention).
    Softmax,
    /// `SoftmaxBackward0`.
    SoftmaxBackward,
    /// `aten::layer_norm`.
    LayerNorm,
    /// `LayerNormBackward0`.
    LayerNormBackward,
    /// `aten::gelu`.
    Gelu,
    /// `GeluBackward0`.
    GeluBackward,
    /// `aten::dropout`.
    Dropout,
    /// `DropoutBackward0`.
    DropoutBackward,
    /// `aten::sum` — reduction (bias-gradient accumulation in backward).
    Sum,
    /// Fused optimizer step over all parameter inputs (`Optimizer.step()`,
    /// lowered to a series of element-wise kernels as the paper observes).
    OptimizerStep,
    /// `aten::reshape` / `aten::view` / `aten::flatten` — host-only
    /// bookkeeping with no device kernels (contributes overheads only).
    Reshape,
}

impl OpKind {
    /// Canonical operator-type key used for overhead statistics.
    ///
    /// The paper's overhead model assumes "same types of overheads of the
    /// same op have the same stats on the same machine"; this key defines
    /// what "same op" means.
    pub fn overhead_key(&self) -> &'static str {
        match self {
            OpKind::AddMm => "aten::addmm",
            OpKind::AddMmBackward => "AddmmBackward",
            OpKind::Bmm => "aten::bmm",
            OpKind::BmmBackward => "BmmBackward0",
            OpKind::EmbeddingBag => "aten::embedding_bag",
            OpKind::EmbeddingBagBackward => "EmbeddingBagBackward",
            OpKind::BatchedEmbedding => "batched_embedding",
            OpKind::BatchedEmbeddingBackward => "batched_embedding_backward",
            OpKind::Cat { .. } => "aten::cat",
            OpKind::CatBackward { .. } => "CatBackward",
            OpKind::Relu => "aten::relu",
            OpKind::ReluBackward => "ReluBackward0",
            OpKind::Sigmoid => "aten::sigmoid",
            OpKind::SigmoidBackward => "SigmoidBackward0",
            OpKind::MseLoss => "aten::mse_loss",
            OpKind::MseLossBackward => "MseLossBackward0",
            OpKind::Transpose => "aten::transpose",
            // `aten::tril` is lowered to index kernels, but its host-side
            // overhead stats must not alias genuine `aten::index` ops.
            OpKind::Tril => "aten::tril",
            OpKind::TrilBackward => "IndexBackward",
            OpKind::To { .. } => "aten::to",
            OpKind::Conv2d { .. } => "aten::conv2d",
            OpKind::Conv2dBackward { .. } => "CudnnConvolutionBackward",
            OpKind::BatchNorm => "aten::batch_norm",
            OpKind::BatchNormBackward => "CudnnBatchNormBackward",
            OpKind::MaxPool { .. } => "aten::max_pool2d",
            OpKind::MaxPoolBackward => "MaxPool2DWithIndicesBackward0",
            OpKind::AvgPool => "aten::adaptive_avg_pool2d",
            OpKind::Add => "aten::add",
            OpKind::AddBackward => "AddBackward0",
            OpKind::Softmax => "aten::softmax",
            OpKind::SoftmaxBackward => "SoftmaxBackward0",
            OpKind::LayerNorm => "aten::layer_norm",
            OpKind::LayerNormBackward => "LayerNormBackward0",
            OpKind::Gelu => "aten::gelu",
            OpKind::GeluBackward => "GeluBackward0",
            OpKind::Dropout => "aten::dropout",
            OpKind::DropoutBackward => "DropoutBackward0",
            OpKind::Sum => "aten::sum",
            OpKind::OptimizerStep => "Optimizer.step",
            OpKind::Reshape => "aten::reshape",
        }
    }

    /// Whether this op belongs to the backward pass.
    pub fn is_backward(&self) -> bool {
        matches!(
            self,
            OpKind::AddMmBackward
                | OpKind::BmmBackward
                | OpKind::EmbeddingBagBackward
                | OpKind::BatchedEmbeddingBackward
                | OpKind::CatBackward { .. }
                | OpKind::ReluBackward
                | OpKind::SigmoidBackward
                | OpKind::MseLossBackward
                | OpKind::TrilBackward
                | OpKind::Conv2dBackward { .. }
                | OpKind::BatchNormBackward
                | OpKind::MaxPoolBackward
                | OpKind::AddBackward
                | OpKind::SoftmaxBackward
                | OpKind::LayerNormBackward
                | OpKind::GeluBackward
                | OpKind::DropoutBackward
        )
    }

    /// Whether this op launches any device kernels at all. Ops that do not
    /// (views, `AddBackward0`) still contribute host overheads.
    pub fn has_device_work(&self) -> bool {
        !matches!(self, OpKind::Reshape | OpKind::AddBackward)
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.overhead_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backward_classification() {
        assert!(!OpKind::AddMm.is_backward());
        assert!(OpKind::AddMmBackward.is_backward());
        assert!(OpKind::TrilBackward.is_backward());
        assert!(!OpKind::OptimizerStep.is_backward());
    }

    #[test]
    fn host_only_ops() {
        assert!(!OpKind::Reshape.has_device_work());
        assert!(!OpKind::AddBackward.has_device_work());
        assert!(OpKind::Relu.has_device_work());
    }

    #[test]
    fn overhead_keys_unique_for_distinct_kinds() {
        let kinds = [
            OpKind::AddMm,
            OpKind::AddMmBackward,
            OpKind::Bmm,
            OpKind::EmbeddingBag,
            OpKind::BatchedEmbedding,
            OpKind::Cat { dim: 1 },
            OpKind::Relu,
            OpKind::Tril,
            OpKind::TrilBackward,
            OpKind::OptimizerStep,
        ];
        let mut keys: Vec<_> = kinds.iter().map(|k| k.overhead_key()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), kinds.len());
    }

    #[test]
    fn display_matches_key() {
        assert_eq!(OpKind::AddMm.to_string(), "aten::addmm");
    }
}
