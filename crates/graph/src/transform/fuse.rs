//! The *fuse* transformation: separate embedding-bag ops → one batched
//! embedding op (Fig. 11 of the paper).
//!
//! Left side of Fig. 11: `T` individual `embedding_bag` ops, each with its
//! own host overheads, feeding a `cat`. Right side: one fused
//! `batched_embedding` op producing the concatenated output directly. The
//! fusion removes `T − 1` op overheads plus the whole `cat`, and replaces
//! `T` small kernels with one large one — the speedup the performance model
//! is asked to predict without running anything.

use crate::graph::{Graph, Node, NodeId};
use crate::op::OpKind;
use crate::tensor::TensorMeta;
use crate::transform::TransformError;

/// What a call to [`fuse_embedding_bags`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionReport {
    /// Number of forward `embedding_bag` ops fused away.
    pub forward_bags_fused: usize,
    /// Number of backward ops fused away.
    pub backward_bags_fused: usize,
    /// Whether the downstream `cat` op was absorbed.
    pub cat_removed: bool,
    /// Whether the upstream `CatBackward` op was absorbed.
    pub cat_backward_removed: bool,
}

fn mean_u64(vals: &[u64]) -> u64 {
    (vals.iter().sum::<u64>() as f64 / vals.len() as f64).round().max(1.0) as u64
}

/// Fuses all `EmbeddingBag` ops that feed a common `Cat` into one
/// `BatchedEmbedding` op, and (if present) the matching
/// `EmbeddingBagBackward` group fed by a common `CatBackward` into one
/// `BatchedEmbeddingBackward`.
///
/// Per-table row counts and lookup counts may differ; the fused op uses
/// their means, exactly as the paper's performance model does for the
/// MLPerf model's non-constant table sizes.
///
/// # Errors
/// * [`TransformError::NothingToTransform`] if fewer than two forward bags
///   exist;
/// * [`TransformError::Precondition`] if the bags do not share one `Cat`
///   consumer or disagree on embedding dimension / batch size.
pub fn fuse_embedding_bags(graph: &mut Graph) -> Result<FusionReport, TransformError> {
    let fwd_ids: Vec<NodeId> = graph
        .nodes()
        .iter()
        .filter(|n| n.op == OpKind::EmbeddingBag)
        .map(|n| n.id)
        .collect();
    if fwd_ids.len() < 2 {
        return Err(TransformError::NothingToTransform(format!(
            "found {} embedding_bag op(s); need at least 2",
            fwd_ids.len()
        )));
    }

    // --- Forward group: all bags must feed one Cat. ---
    let mut cat_id: Option<NodeId> = None;
    for &id in &fwd_ids {
        let out = graph.node(id).expect("fwd id valid").outputs[0];
        let consumers = graph.consumers(out);
        let cat = consumers
            .iter()
            .find(|&&c| matches!(graph.node(c).expect("consumer valid").op, OpKind::Cat { .. }))
            .copied()
            .ok_or_else(|| {
                TransformError::Precondition("an embedding_bag output does not feed a cat".into())
            })?;
        match cat_id {
            None => cat_id = Some(cat),
            Some(prev) if prev != cat => {
                return Err(TransformError::Precondition(
                    "embedding_bag ops feed different cat ops".into(),
                ));
            }
            _ => {}
        }
    }
    let cat_id = cat_id.expect("at least two bags checked");

    // Collect per-table parameters.
    let mut e_rows = Vec::new();
    let mut lookups = Vec::new();
    let mut dims = Vec::new();
    let mut batches = Vec::new();
    for &id in &fwd_ids {
        let n = graph.node(id).expect("valid").clone();
        let w = graph.tensor(n.inputs[0]);
        let idx = graph.tensor(n.inputs[1]);
        if w.shape.len() != 2 || idx.shape.len() != 2 {
            return Err(TransformError::Precondition(format!(
                "embedding_bag `{}` has unexpected ranks",
                n.name
            )));
        }
        e_rows.push(w.shape[0]);
        dims.push(w.shape[1]);
        batches.push(idx.shape[0]);
        lookups.push(idx.shape[1]);
    }
    if dims.windows(2).any(|w| w[0] != w[1]) {
        return Err(TransformError::Precondition("embedding dims differ across tables".into()));
    }
    if batches.windows(2).any(|w| w[0] != w[1]) {
        return Err(TransformError::Precondition("batch sizes differ across tables".into()));
    }
    let (t, d, b) = (fwd_ids.len() as u64, dims[0], batches[0]);
    let e_avg = mean_u64(&e_rows);
    let l_avg = mean_u64(&lookups);

    let cat_out = graph.node(cat_id).expect("cat valid").outputs[0];

    // --- Backward group (optional): bags' backward fed by one CatBackward. ---
    let bwd_ids: Vec<NodeId> = graph
        .nodes()
        .iter()
        .filter(|n| n.op == OpKind::EmbeddingBagBackward)
        .map(|n| n.id)
        .collect();
    let mut cat_bwd_id: Option<NodeId> = None;
    if bwd_ids.len() == fwd_ids.len() {
        let mut common: Option<NodeId> = None;
        let mut ok = true;
        for &id in &bwd_ids {
            let n = graph.node(id).expect("valid");
            let grad_in = n.inputs[0];
            match graph.producer(grad_in) {
                Some(p)
                    if matches!(
                        graph.node(p).expect("producer valid").op,
                        OpKind::CatBackward { .. }
                    ) =>
                {
                    if common.is_none() {
                        common = Some(p);
                    } else if common != Some(p) {
                        ok = false;
                    }
                }
                _ => ok = false,
            }
        }
        if ok {
            cat_bwd_id = common;
        }
    }

    // --- Rebuild the node list. ---
    let fused_w = graph.add_tensor(TensorMeta::weight(&[t, e_avg, d]));
    let fused_idx = graph.add_tensor({
        let mut m = TensorMeta::index(&[t, b, l_avg]);
        m.batch_dim = Some(1);
        m
    });

    let mut fused_bwd_grad: Option<(crate::TensorId, crate::TensorId)> = None;
    if let Some(cb) = cat_bwd_id {
        let grad_src = graph.node(cb).expect("valid").inputs[0];
        fused_bwd_grad = Some((grad_src, fused_idx));
    }

    let skip_fwd: Vec<NodeId> = fwd_ids.iter().copied().chain([cat_id]).collect();
    let skip_bwd: Vec<NodeId> = if cat_bwd_id.is_some() {
        bwd_ids.iter().copied().chain(cat_bwd_id).collect()
    } else {
        Vec::new()
    };

    let first_fwd = fwd_ids.iter().map(|id| id.0).min().expect("non-empty");
    let first_bwd = skip_bwd.iter().map(|id| id.0).min();

    let old_nodes: Vec<Node> = graph.nodes().to_vec();
    let mut new_nodes: Vec<Node> = Vec::with_capacity(old_nodes.len());
    let mut fwd_count = 0usize;
    let mut bwd_count = 0usize;
    for n in old_nodes {
        if n.id.0 == first_fwd {
            // Insert the fused forward op where the first bag ran; it
            // produces the cat's output tensor directly (Fig. 11 right).
            new_nodes.push(Node {
                id: NodeId(0), // re-indexed by set_nodes
                uid: 0,        // assigned by set_nodes
                name: "batched_embedding".into(),
                op: OpKind::BatchedEmbedding,
                inputs: vec![fused_w, fused_idx],
                outputs: vec![cat_out],
                stream: 0,
            });
        }
        if Some(n.id.0) == first_bwd {
            let (grad_src, idx) = fused_bwd_grad.expect("first_bwd implies fused grad");
            new_nodes.push(Node {
                id: NodeId(0),
                uid: 0,
                name: "batched_embedding_backward".into(),
                op: OpKind::BatchedEmbeddingBackward,
                inputs: vec![fused_w, idx, grad_src],
                outputs: vec![],
                stream: 0,
            });
        }
        if skip_fwd.contains(&n.id) {
            fwd_count += usize::from(n.op == OpKind::EmbeddingBag);
            continue;
        }
        if skip_bwd.contains(&n.id) {
            bwd_count += usize::from(n.op == OpKind::EmbeddingBagBackward);
            continue;
        }
        new_nodes.push(n);
    }
    graph.set_nodes(new_nodes);

    // BatchedEmbedding reads the fused weights (t, e, d) but lowering only
    // needs e; validation keeps the graph structurally sound.
    graph.validate().map_err(|e| TransformError::DependencyViolation(e.to_string()))?;

    Ok(FusionReport {
        forward_bags_fused: fwd_count,
        backward_bags_fused: bwd_count,
        cat_removed: true,
        cat_backward_removed: cat_bwd_id.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower;

    /// Builds: T embedding bags -> cat -> relu, plus the backward chain
    /// relu_bwd -> cat_bwd -> T bag backwards.
    fn bags_graph(t: usize, b: u64, e: u64, l: u64, d: u64) -> Graph {
        let mut g = Graph::new("bags");
        let mut outs = Vec::new();
        let mut weights = Vec::new();
        let mut idxs = Vec::new();
        for i in 0..t {
            let w = g.add_tensor(TensorMeta::weight(&[e, d]));
            let idx = g.add_tensor(TensorMeta::index(&[b, l]).with_batch_dim(0));
            let o = g.add_tensor(TensorMeta::activation(&[b, d]).with_batch_dim(0));
            g.add_node(format!("embedding_bag_{i}"), OpKind::EmbeddingBag, vec![w, idx], vec![o]);
            outs.push(o);
            weights.push(w);
            idxs.push(idx);
        }
        let cat_out = g.add_tensor(TensorMeta::activation(&[b, t as u64 * d]).with_batch_dim(0));
        g.add_op(OpKind::Cat { dim: 1 }, outs.clone(), vec![cat_out]);
        let act = g.add_tensor(TensorMeta::activation(&[b, t as u64 * d]).with_batch_dim(0));
        g.add_op(OpKind::Relu, vec![cat_out], vec![act]);

        // Backward.
        let grad_act = g.add_tensor(TensorMeta::activation(&[b, t as u64 * d]).with_batch_dim(0));
        let grad_cat = g.add_tensor(TensorMeta::activation(&[b, t as u64 * d]).with_batch_dim(0));
        g.add_op(OpKind::ReluBackward, vec![grad_act], vec![grad_cat]);
        let mut grad_slices = Vec::new();
        for _ in 0..t {
            let s = g.add_tensor(TensorMeta::activation(&[b, d]).with_batch_dim(0));
            grad_slices.push(s);
        }
        g.add_op(OpKind::CatBackward { dim: 1 }, vec![grad_cat], grad_slices.clone());
        for i in 0..t {
            g.add_node(
                format!("embedding_bag_backward_{i}"),
                OpKind::EmbeddingBagBackward,
                vec![grad_slices[i], weights[i], idxs[i]],
                vec![],
            );
        }
        g
    }

    #[test]
    fn fuse_replaces_bags_and_cat() {
        let mut g = bags_graph(8, 512, 10_000, 10, 64);
        let before_nodes = g.node_count();
        let report = fuse_embedding_bags(&mut g).unwrap();
        assert_eq!(report.forward_bags_fused, 8);
        assert_eq!(report.backward_bags_fused, 8);
        assert!(report.cat_removed && report.cat_backward_removed);
        // 8 bags + cat -> 1 fused ; 8 bwd + cat_bwd -> 1 fused.
        assert_eq!(g.node_count(), before_nodes - 8 - 8);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn fused_graph_lowers_to_batched_kernels() {
        let mut g = bags_graph(4, 256, 50_000, 5, 32);
        fuse_embedding_bags(&mut g).unwrap();
        let fused = g
            .nodes()
            .iter()
            .find(|n| n.op == OpKind::BatchedEmbedding)
            .expect("fused node present");
        let ks = lower::kernels(&g, fused);
        assert_eq!(ks, vec![dlperf_gpusim::KernelSpec::embedding_forward(256, 50_000, 4, 5, 32)]);
    }

    #[test]
    fn single_bag_not_fusable() {
        let mut g = bags_graph(1, 64, 100, 2, 8);
        assert!(matches!(
            fuse_embedding_bags(&mut g),
            Err(TransformError::NothingToTransform(_))
        ));
    }

    #[test]
    fn uneven_tables_use_mean_sizes() {
        // Two tables with different row counts; mean should be used.
        let mut g = Graph::new("uneven");
        let mut outs = Vec::new();
        for e in [100u64, 300] {
            let w = g.add_tensor(TensorMeta::weight(&[e, 16]));
            let idx = g.add_tensor(TensorMeta::index(&[32, 4]).with_batch_dim(0));
            let o = g.add_tensor(TensorMeta::activation(&[32, 16]).with_batch_dim(0));
            g.add_op(OpKind::EmbeddingBag, vec![w, idx], vec![o]);
            outs.push(o);
        }
        let cat_out = g.add_tensor(TensorMeta::activation(&[32, 32]).with_batch_dim(0));
        g.add_op(OpKind::Cat { dim: 1 }, outs, vec![cat_out]);
        fuse_embedding_bags(&mut g).unwrap();
        let fused = g.nodes().iter().find(|n| n.op == OpKind::BatchedEmbedding).unwrap();
        let w = g.tensor(fused.inputs[0]);
        assert_eq!(w.shape, vec![2, 200, 16]);
    }

    #[test]
    fn dim_mismatch_rejected() {
        let mut g = Graph::new("mismatch");
        let mut outs = Vec::new();
        for d in [16u64, 32] {
            let w = g.add_tensor(TensorMeta::weight(&[100, d]));
            let idx = g.add_tensor(TensorMeta::index(&[32, 4]).with_batch_dim(0));
            let o = g.add_tensor(TensorMeta::activation(&[32, d]).with_batch_dim(0));
            g.add_op(OpKind::EmbeddingBag, vec![w, idx], vec![o]);
            outs.push(o);
        }
        let cat_out = g.add_tensor(TensorMeta::activation(&[32, 48]).with_batch_dim(0));
        g.add_op(OpKind::Cat { dim: 1 }, outs, vec![cat_out]);
        assert!(matches!(fuse_embedding_bags(&mut g), Err(TransformError::Precondition(_))));
    }
}
