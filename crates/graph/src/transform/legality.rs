//! Cheap, non-mutating legality predicates over the transform catalog.
//!
//! The optimization-search layer (`dlperf-core`'s `search` module) must
//! enumerate *legal* moves without paying clone-and-try for every
//! candidate it considers. Each predicate here answers "would the
//! corresponding transform succeed — and actually change the graph?" by
//! running the same precondition checks the transform runs, against an
//! immutable graph. The transforms stay the source of truth; each
//! predicate mirrors the precondition section of its transform and the
//! tests below pin the two against each other.

use crate::graph::Graph;
use crate::op::OpKind;

/// Whether [`super::fuse_embedding_bags`] would succeed: at least two
/// `EmbeddingBag` ops, every bag's output feeding one common `Cat`, and
/// the tables agreeing on embedding dimension and batch size.
pub fn can_fuse_embedding_bags(graph: &Graph) -> bool {
    let fwd: Vec<_> =
        graph.nodes().iter().filter(|n| n.op == OpKind::EmbeddingBag).map(|n| n.id).collect();
    if fwd.len() < 2 {
        return false;
    }
    let mut cat_id = None;
    for &id in &fwd {
        let Ok(n) = graph.node(id) else { return false };
        let out = n.outputs[0];
        let cat = graph
            .consumers(out)
            .iter()
            .find(|&&c| matches!(graph.node(c).map(|n| &n.op), Ok(OpKind::Cat { .. })))
            .copied();
        match (cat, cat_id) {
            (None, _) => return false,
            (Some(c), None) => cat_id = Some(c),
            (Some(c), Some(prev)) if c != prev => return false,
            _ => {}
        }
    }
    let mut dims = Vec::new();
    let mut batches = Vec::new();
    for &id in &fwd {
        let n = graph.node(id).expect("fwd id valid");
        let w = graph.tensor(n.inputs[0]);
        let idx = graph.tensor(n.inputs[1]);
        if w.shape.len() != 2 || idx.shape.len() != 2 {
            return false;
        }
        dims.push(w.shape[1]);
        batches.push(idx.shape[0]);
    }
    dims.windows(2).all(|w| w[0] == w[1]) && batches.windows(2).all(|w| w[0] == w[1])
}

/// Whether hoisting the node at `position` via [`super::hoist_earliest`]
/// would actually move it: some slot strictly earlier than its current
/// one sits after all of its producers.
pub fn can_hoist(graph: &Graph, position: usize) -> bool {
    if position >= graph.node_count() {
        return false;
    }
    let node = graph.nodes()[position].id;
    let earliest = graph.predecessors(node).iter().map(|p| p.0 + 1).max().unwrap_or(0);
    earliest < node.0
}

/// Positions whose hoist would move the node, ascending — the
/// deterministic enumeration order the search layer relies on.
pub fn hoistable_nodes(graph: &Graph) -> Vec<usize> {
    (0..graph.node_count()).filter(|&i| can_hoist(graph, i)).collect()
}

/// Whether [`super::resize_batch`] to `new_batch` would succeed *and*
/// change something: positive target, a consistent batch annotation to
/// rewrite, and a target different from the current batch.
pub fn can_resize_batch(graph: &Graph, new_batch: u64) -> bool {
    if new_batch == 0 {
        return false;
    }
    let mut old = None;
    for (_, t) in graph.tensors() {
        if let Some(b) = t.batch_size() {
            match old {
                None => old = Some(b),
                Some(prev) if prev != b => return false,
                _ => {}
            }
        }
    }
    old.is_some_and(|b| b != new_batch)
}

/// Whether [`super::replace_op`] at `position` would succeed (the node
/// exists). Swapping an op for itself is legal but pointless; callers
/// generating moves should also compare ops.
pub fn can_replace_op(graph: &Graph, position: usize) -> bool {
    position < graph.node_count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorMeta;
    use crate::transform::{fuse_embedding_bags, hoist_earliest, resize_batch};

    /// T embedding bags feeding one cat.
    fn bags_graph(t: usize) -> Graph {
        let mut g = Graph::new("bags");
        let mut outs = Vec::new();
        for _ in 0..t {
            let w = g.add_tensor(TensorMeta::weight(&[1000, 16]));
            let idx = g.add_tensor(TensorMeta::index(&[32, 4]).with_batch_dim(0));
            let out = g.add_tensor(TensorMeta::activation(&[32, 16]).with_batch_dim(0));
            g.add_op(OpKind::EmbeddingBag, vec![w, idx], vec![out]);
            outs.push(out);
        }
        let cat = g.add_tensor(TensorMeta::activation(&[32, 16 * t as u64]).with_batch_dim(0));
        g.add_op(OpKind::Cat { dim: 1 }, outs, vec![cat]);
        g
    }

    #[test]
    fn fuse_predicate_matches_transform() {
        for t in [1usize, 2, 4] {
            let g = bags_graph(t);
            let legal = can_fuse_embedding_bags(&g);
            let did = fuse_embedding_bags(&mut g.clone()).is_ok();
            assert_eq!(legal, did, "fuse predicate disagrees with transform at t={t}");
        }
    }

    #[test]
    fn hoist_predicate_matches_transform_motion() {
        let mut g = Graph::new("hoist");
        let in0 = g.add_tensor(TensorMeta::activation(&[8]));
        let a = g.add_tensor(TensorMeta::activation(&[8]));
        let b = g.add_tensor(TensorMeta::activation(&[8]));
        let in1 = g.add_tensor(TensorMeta::activation(&[8]));
        let c = g.add_tensor(TensorMeta::activation(&[8]));
        g.add_op(OpKind::Relu, vec![in0], vec![a]);
        g.add_op(OpKind::Relu, vec![a], vec![b]);
        g.add_op(OpKind::Sigmoid, vec![in1], vec![c]);
        for pos in 0..g.node_count() {
            let legal = can_hoist(&g, pos);
            let mut probe = g.clone();
            let id = probe.nodes()[pos].id;
            let before = probe.nodes().to_vec();
            let _ = hoist_earliest(&mut probe, id);
            let moved = probe.nodes() != &before[..];
            assert_eq!(legal, moved, "hoist predicate disagrees at position {pos}");
        }
        assert_eq!(hoistable_nodes(&g), vec![2]);
    }

    #[test]
    fn resize_predicate_matches_transform() {
        let g = bags_graph(2);
        assert!(can_resize_batch(&g, 64));
        assert!(resize_batch(&mut g.clone(), 64).is_ok());
        // Same batch: transform succeeds but is a no-op — predicate says no.
        assert!(!can_resize_batch(&g, 32));
        assert!(!can_resize_batch(&g, 0));
        let empty = Graph::new("empty");
        assert!(!can_resize_batch(&empty, 64));
    }

    #[test]
    fn replace_predicate_is_bounds_check() {
        let g = bags_graph(2);
        assert!(can_replace_op(&g, 0));
        assert!(!can_replace_op(&g, g.node_count()));
    }
}
