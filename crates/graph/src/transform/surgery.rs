//! Node-level surgery: *insert*, *remove*, and *replace* transformations.

use crate::graph::{Graph, Node, NodeId};
use crate::op::OpKind;
use crate::tensor::TensorId;
use crate::transform::TransformError;

/// Replaces the operator of `node` (keeping its tensors), e.g. swapping an
/// activation function or substituting a custom fused op.
///
/// # Errors
/// [`TransformError::Precondition`] if the node does not exist.
pub fn replace_op(
    graph: &mut Graph,
    node: NodeId,
    op: OpKind,
    name: impl Into<String>,
) -> Result<(), TransformError> {
    let n = graph.node_mut(node).map_err(|e| TransformError::Precondition(e.to_string()))?;
    n.op = op;
    n.name = name.into();
    Ok(())
}

/// Inserts a new node immediately after `after` in execution order.
///
/// # Errors
/// * [`TransformError::Precondition`] if `after` does not exist;
/// * [`TransformError::DependencyViolation`] if the resulting graph fails
///   validation (e.g. the new node consumes a tensor produced later).
pub fn insert_after(
    graph: &mut Graph,
    after: NodeId,
    name: impl Into<String>,
    op: OpKind,
    inputs: Vec<TensorId>,
    outputs: Vec<TensorId>,
) -> Result<NodeId, TransformError> {
    if graph.node(after).is_err() {
        return Err(TransformError::Precondition(format!("no such node {}", after.0)));
    }
    let mut nodes: Vec<Node> = graph.nodes().to_vec();
    let new = Node { id: NodeId(0), uid: 0, name: name.into(), op, inputs, outputs, stream: 0 };
    nodes.insert(after.0 + 1, new);
    graph.set_nodes(nodes);
    graph
        .validate()
        .map_err(|e| TransformError::DependencyViolation(e.to_string()))?;
    Ok(NodeId(after.0 + 1))
}

/// Removes a node whose single output is rewired to its single input: every
/// consumer of the output consumes the input instead. This is how a no-op
/// (e.g. a dropout disabled at inference, or an identity copy) is removed.
///
/// # Errors
/// * [`TransformError::Precondition`] if the node does not exist or does not
///   have exactly one input and one output;
/// * [`TransformError::DependencyViolation`] if removal breaks validation.
pub fn remove_node_rewire(graph: &mut Graph, node: NodeId) -> Result<(), TransformError> {
    let n = graph
        .node(node)
        .map_err(|e| TransformError::Precondition(e.to_string()))?
        .clone();
    if n.inputs.len() != 1 || n.outputs.len() != 1 {
        return Err(TransformError::Precondition(format!(
            "node `{}` has {} inputs / {} outputs; rewire removal needs exactly 1/1",
            n.name,
            n.inputs.len(),
            n.outputs.len()
        )));
    }
    let (src, dst) = (n.inputs[0], n.outputs[0]);
    let mut nodes: Vec<Node> = graph.nodes().to_vec();
    nodes.remove(node.0);
    for m in &mut nodes {
        for t in &mut m.inputs {
            if *t == dst {
                *t = src;
            }
        }
    }
    graph.set_nodes(nodes);
    graph
        .validate()
        .map_err(|e| TransformError::DependencyViolation(e.to_string()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorMeta;

    fn chain() -> (Graph, Vec<NodeId>, Vec<TensorId>) {
        let mut g = Graph::new("chain");
        let a = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let b = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let c = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let n0 = g.add_op(OpKind::Relu, vec![a], vec![b]);
        let n1 = g.add_op(OpKind::Sigmoid, vec![b], vec![c]);
        (g, vec![n0, n1], vec![a, b, c])
    }

    #[test]
    fn replace_swaps_kind() {
        let (mut g, ids, _) = chain();
        replace_op(&mut g, ids[0], OpKind::Gelu, "aten::gelu").unwrap();
        assert_eq!(g.nodes()[0].op, OpKind::Gelu);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn insert_after_keeps_order_valid() {
        let (mut g, ids, ts) = chain();
        let d = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let new = insert_after(&mut g, ids[0], "aten::dropout", OpKind::Dropout, vec![ts[1]], vec![d])
            .unwrap();
        assert_eq!(new, NodeId(1));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.nodes()[1].op, OpKind::Dropout);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn insert_with_future_input_rejected() {
        let (mut g, ids, ts) = chain();
        // Inserting after node 0 a node that consumes node 1's output.
        let d = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let r = insert_after(&mut g, ids[0], "bad", OpKind::Relu, vec![ts[2]], vec![d]);
        assert!(matches!(r, Err(TransformError::DependencyViolation(_))));
    }

    #[test]
    fn remove_rewires_consumers() {
        let (mut g, ids, ts) = chain();
        remove_node_rewire(&mut g, ids[0]).unwrap();
        assert_eq!(g.node_count(), 1);
        // The sigmoid now consumes the original input tensor.
        assert_eq!(g.nodes()[0].inputs, vec![ts[0]]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn remove_multi_io_rejected() {
        let mut g = Graph::new("multi");
        let a = g.add_tensor(TensorMeta::activation(&[4]));
        let b = g.add_tensor(TensorMeta::activation(&[4]));
        let c = g.add_tensor(TensorMeta::activation(&[8]));
        let n = g.add_op(OpKind::Cat { dim: 0 }, vec![a, b], vec![c]);
        assert!(matches!(
            remove_node_rewire(&mut g, n),
            Err(TransformError::Precondition(_))
        ));
    }
}
