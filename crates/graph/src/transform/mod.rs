//! Co-design graph transformations (§V-A of the paper).
//!
//! The paper's execution graph is "easily mutable": users apply *insert*,
//! *remove*, *replace*, *resize*, *fuse*, and *parallelize* transformations
//! and re-predict, without ever launching a training job. Each submodule
//! implements one of those mutations; all of them preserve graph validity
//! (checked by [`crate::Graph::validate`]) or fail with a
//! [`TransformError`].

pub mod fuse;
pub mod legality;
pub mod parallelize;
pub mod reorder;
pub mod resize;
pub mod surgery;

pub use fuse::{fuse_embedding_bags, FusionReport};
pub use legality::{
    can_fuse_embedding_bags, can_hoist, can_replace_op, can_resize_batch, hoistable_nodes,
};
pub use parallelize::{independent_groups, parallelize};
pub use reorder::{hoist_earliest, move_node};
pub use resize::resize_batch;
pub use surgery::{insert_after, remove_node_rewire, replace_op};

/// Errors raised by graph transformations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The transformation found nothing applicable in the graph.
    NothingToTransform(String),
    /// The graph does not satisfy a structural precondition.
    Precondition(String),
    /// The transformation would create a data-dependency violation.
    DependencyViolation(String),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::NothingToTransform(s) => write!(f, "nothing to transform: {s}"),
            TransformError::Precondition(s) => write!(f, "precondition failed: {s}"),
            TransformError::DependencyViolation(s) => write!(f, "dependency violation: {s}"),
        }
    }
}

impl std::error::Error for TransformError {}
