//! The *resize* transformation: change the batch size of a captured graph.
//!
//! The paper: "it is straightforward to change metadata of tensor shapes of
//! selected ops and their parent and child nodes in the graph for resize".
//! Because every batch-carrying tensor is annotated with its batch
//! dimension, resizing is a pure metadata rewrite — no node surgery needed.

use crate::graph::Graph;
use crate::transform::TransformError;

/// Rescales every batch-annotated tensor of `graph` to `new_batch`.
///
/// Returns the previous batch size.
///
/// # Errors
/// * [`TransformError::NothingToTransform`] if no tensor carries a batch
///   dimension;
/// * [`TransformError::Precondition`] if batch-annotated tensors disagree on
///   the current batch size (a malformed graph) or `new_batch` is zero.
pub fn resize_batch(graph: &mut Graph, new_batch: u64) -> Result<u64, TransformError> {
    if new_batch == 0 {
        return Err(TransformError::Precondition("batch size must be positive".into()));
    }
    let mut old: Option<u64> = None;
    for (_, t) in graph.tensors() {
        if let Some(b) = t.batch_size() {
            match old {
                None => old = Some(b),
                Some(prev) if prev != b => {
                    return Err(TransformError::Precondition(format!(
                        "inconsistent batch sizes in graph: {prev} vs {b}"
                    )));
                }
                _ => {}
            }
        }
    }
    let old = old.ok_or_else(|| {
        TransformError::NothingToTransform("no tensor carries a batch dimension".into())
    })?;

    let ids: Vec<_> = graph
        .tensors()
        .filter(|(_, t)| t.batch_dim.is_some())
        .map(|(id, _)| id)
        .collect();
    for id in ids {
        let t = graph.tensor_mut(id);
        let dim = t.batch_dim.expect("filtered on batch_dim");
        t.shape[dim] = new_batch;
    }
    Ok(old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::tensor::TensorMeta;

    fn graph_with_batch(b: u64) -> Graph {
        let mut g = Graph::new("t");
        let x = g.add_tensor(TensorMeta::activation(&[b, 64]).with_batch_dim(0));
        let w = g.add_tensor(TensorMeta::weight(&[128, 64]));
        let bias = g.add_tensor(TensorMeta::weight(&[128]));
        let y = g.add_tensor(TensorMeta::activation(&[b, 128]).with_batch_dim(0));
        g.add_op(OpKind::AddMm, vec![x, w, bias], vec![y]);
        g
    }

    #[test]
    fn resize_rescales_activations_not_weights() {
        let mut g = graph_with_batch(256);
        let old = resize_batch(&mut g, 1024).unwrap();
        assert_eq!(old, 256);
        assert_eq!(g.tensor(crate::TensorId(0)).shape, vec![1024, 64]);
        assert_eq!(g.tensor(crate::TensorId(1)).shape, vec![128, 64]); // weight untouched
        assert_eq!(g.tensor(crate::TensorId(3)).shape, vec![1024, 128]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn resize_changes_lowered_kernels() {
        let mut g = graph_with_batch(256);
        let before = crate::lower::kernels(&g, &g.nodes()[0].clone());
        resize_batch(&mut g, 512).unwrap();
        let after = crate::lower::kernels(&g, &g.nodes()[0].clone());
        assert_ne!(before, after);
    }

    #[test]
    fn zero_batch_rejected() {
        let mut g = graph_with_batch(256);
        assert!(matches!(resize_batch(&mut g, 0), Err(TransformError::Precondition(_))));
    }

    #[test]
    fn graph_without_batch_dims_rejected() {
        let mut g = Graph::new("t");
        g.add_tensor(TensorMeta::weight(&[4, 4]));
        assert!(matches!(resize_batch(&mut g, 8), Err(TransformError::NothingToTransform(_))));
    }

    #[test]
    fn inconsistent_batches_rejected() {
        let mut g = Graph::new("t");
        g.add_tensor(TensorMeta::activation(&[8, 4]).with_batch_dim(0));
        g.add_tensor(TensorMeta::activation(&[16, 4]).with_batch_dim(0));
        assert!(matches!(resize_batch(&mut g, 8), Err(TransformError::Precondition(_))));
    }

    #[test]
    fn resize_is_idempotent_at_same_batch() {
        let mut g = graph_with_batch(128);
        resize_batch(&mut g, 128).unwrap();
        assert_eq!(g.tensor(crate::TensorId(0)).shape, vec![128, 64]);
    }
}
