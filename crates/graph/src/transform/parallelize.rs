//! The *parallelize* transformation: assign independent branches to
//! different GPU streams.
//!
//! The paper: "assign ops in parallel branches with no data dependency to
//! different GPU streams for *parallel* ... This can only be performed with
//! our support of data dependencies between ops". Stream assignments are
//! stored on the nodes; the execution engine and the E2E predictor both
//! honour them.

use std::collections::HashSet;

use crate::graph::{Graph, NodeId};
use crate::transform::TransformError;

/// Computes the set of ancestor node indices for every node.
fn ancestor_sets(graph: &Graph) -> Vec<HashSet<usize>> {
    let n = graph.node_count();
    let mut anc: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (i, node) in graph.nodes().iter().enumerate() {
        for pred in graph.predecessors(node.id) {
            let p = pred.0;
            if p < i {
                let pa: Vec<usize> = anc[p].iter().copied().collect();
                anc[i].insert(p);
                anc[i].extend(pa);
            }
        }
    }
    anc
}

/// Groups the `candidates` into maximal sets of mutually *dependent* nodes
/// (connected through ancestor/descendant relations); different groups are
/// pairwise independent and can run on different streams.
pub fn independent_groups(graph: &Graph, candidates: &[NodeId]) -> Vec<Vec<NodeId>> {
    let anc = ancestor_sets(graph);
    let related = |a: NodeId, b: NodeId| anc[a.0].contains(&b.0) || anc[b.0].contains(&a.0);

    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    for &c in candidates {
        // Union-find style: merge into every group containing a related node.
        let mut hit: Vec<usize> = groups
            .iter()
            .enumerate()
            .filter(|(_, grp)| grp.iter().any(|&g| related(g, c)))
            .map(|(i, _)| i)
            .collect();
        match hit.len() {
            0 => groups.push(vec![c]),
            1 => groups[hit[0]].push(c),
            _ => {
                hit.sort_unstable();
                let mut merged = vec![c];
                for &i in hit.iter().rev() {
                    merged.extend(groups.remove(i));
                }
                merged.sort();
                groups.push(merged);
            }
        }
    }
    groups
}

/// Assigns each group of nodes to its own stream (1, 2, ...), keeping
/// everything else on the default stream 0.
///
/// # Errors
/// * [`TransformError::Precondition`] if `groups` is empty or any group is
///   empty;
/// * [`TransformError::DependencyViolation`] if two different groups are
///   data-dependent (running them concurrently would be incorrect).
pub fn parallelize(graph: &mut Graph, groups: &[Vec<NodeId>]) -> Result<(), TransformError> {
    if groups.is_empty() || groups.iter().any(Vec::is_empty) {
        return Err(TransformError::Precondition("groups must be non-empty".into()));
    }
    let anc = ancestor_sets(graph);
    for (i, ga) in groups.iter().enumerate() {
        for gb in groups.iter().skip(i + 1) {
            for &a in ga {
                for &b in gb {
                    if anc[a.0].contains(&b.0) || anc[b.0].contains(&a.0) {
                        return Err(TransformError::DependencyViolation(format!(
                            "node {} and node {} are data-dependent but in different groups",
                            a.0, b.0
                        )));
                    }
                }
            }
        }
    }
    for (stream_minus_1, grp) in groups.iter().enumerate() {
        for &id in grp {
            graph
                .node_mut(id)
                .map_err(|e| TransformError::Precondition(e.to_string()))?
                .stream = stream_minus_1 + 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::tensor::TensorMeta;

    /// Two independent chains a->b and c->d joined by a cat.
    fn diamond() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new("diamond");
        let x = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let a1 = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let a2 = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let b1 = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let b2 = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let out = g.add_tensor(TensorMeta::activation(&[8, 16]));
        let y = g.add_tensor(TensorMeta::activation(&[8, 8]));
        let n0 = g.add_op(OpKind::Relu, vec![x], vec![a1]);
        let n1 = g.add_op(OpKind::Sigmoid, vec![a1], vec![a2]);
        let n2 = g.add_op(OpKind::Relu, vec![y], vec![b1]);
        let n3 = g.add_op(OpKind::Sigmoid, vec![b1], vec![b2]);
        let n4 = g.add_op(OpKind::Cat { dim: 1 }, vec![a2, b2], vec![out]);
        (g, vec![n0, n1, n2, n3, n4])
    }

    #[test]
    fn independent_groups_split_branches() {
        let (g, ids) = diamond();
        let groups = independent_groups(&g, &ids[0..4]);
        assert_eq!(groups.len(), 2);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn parallelize_assigns_streams() {
        let (mut g, ids) = diamond();
        let groups = vec![vec![ids[0], ids[1]], vec![ids[2], ids[3]]];
        parallelize(&mut g, &groups).unwrap();
        assert_eq!(g.nodes()[ids[0].0].stream, 1);
        assert_eq!(g.nodes()[ids[2].0].stream, 2);
        assert_eq!(g.nodes()[ids[4].0].stream, 0); // cat stays on default
    }

    #[test]
    fn dependent_groups_rejected() {
        let (mut g, ids) = diamond();
        // n0 -> n1 are dependent; splitting them across groups must fail.
        let groups = vec![vec![ids[0]], vec![ids[1]]];
        assert!(matches!(
            parallelize(&mut g, &groups),
            Err(TransformError::DependencyViolation(_))
        ));
    }

    #[test]
    fn empty_groups_rejected() {
        let (mut g, _) = diamond();
        assert!(matches!(parallelize(&mut g, &[]), Err(TransformError::Precondition(_))));
        assert!(matches!(
            parallelize(&mut g, &[vec![]]),
            Err(TransformError::Precondition(_))
        ));
    }

    #[test]
    fn join_node_groups_with_both_branches() {
        let (g, ids) = diamond();
        // Including the cat (depends on both chains) merges everything.
        let groups = independent_groups(&g, &ids);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 5);
    }
}
