//! The *reorder* transformation: move an op earlier or later in execution
//! order without violating data dependencies.
//!
//! Eager execution order determines when each op's kernels are *enqueued*;
//! hoisting an independent, device-heavy op (e.g. the embedding lookup)
//! ahead of host-heavy ops lets its kernels overlap their overheads. The
//! paper lists reordering among the optimizations its execution graph can
//! evaluate ("operator fusion, reordering, and parallelization").

use crate::graph::{Graph, Node, NodeId};
use crate::transform::TransformError;

/// Moves the node at `from` so that it executes at position `to` (indices
/// into the current execution order), shifting everything in between.
///
/// # Errors
/// * [`TransformError::Precondition`] if either index is out of range;
/// * [`TransformError::DependencyViolation`] if the move would execute a
///   consumer before its producer.
pub fn move_node(graph: &mut Graph, from: NodeId, to: usize) -> Result<(), TransformError> {
    let n = graph.node_count();
    if from.0 >= n || to >= n {
        return Err(TransformError::Precondition(format!(
            "positions out of range: from {} to {to} with {n} nodes",
            from.0
        )));
    }
    if from.0 == to {
        return Ok(());
    }
    let mut nodes: Vec<Node> = graph.nodes().to_vec();
    let moved = nodes.remove(from.0);
    nodes.insert(to, moved);
    let old = graph.clone();
    graph.set_nodes(nodes);
    if let Err(e) = graph.validate() {
        *graph = old;
        return Err(TransformError::DependencyViolation(e.to_string()));
    }
    Ok(())
}

/// Hoists `node` as early as its data dependencies allow, returning its new
/// position.
///
/// # Errors
/// [`TransformError::Precondition`] if the node does not exist.
pub fn hoist_earliest(graph: &mut Graph, node: NodeId) -> Result<usize, TransformError> {
    if node.0 >= graph.node_count() {
        return Err(TransformError::Precondition(format!("no such node {}", node.0)));
    }
    // Earliest legal slot: right after the last producer of any input.
    let preds = graph.predecessors(node);
    let earliest = preds.iter().map(|p| p.0 + 1).max().unwrap_or(0);
    if earliest < node.0 {
        move_node(graph, node, earliest)?;
    }
    Ok(earliest.min(node.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::tensor::TensorMeta;

    /// in0 -> a -> b; in1 -> c (independent); c placed last.
    fn graph() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new("reorder");
        let in0 = g.add_tensor(TensorMeta::activation(&[8]));
        let a = g.add_tensor(TensorMeta::activation(&[8]));
        let b = g.add_tensor(TensorMeta::activation(&[8]));
        let in1 = g.add_tensor(TensorMeta::activation(&[8]));
        let c = g.add_tensor(TensorMeta::activation(&[8]));
        let n0 = g.add_op(OpKind::Relu, vec![in0], vec![a]);
        let n1 = g.add_op(OpKind::Relu, vec![a], vec![b]);
        let n2 = g.add_op(OpKind::Sigmoid, vec![in1], vec![c]);
        (g, vec![n0, n1, n2])
    }

    #[test]
    fn independent_node_hoists_to_front() {
        let (mut g, ids) = graph();
        let pos = hoist_earliest(&mut g, ids[2]).unwrap();
        assert_eq!(pos, 0);
        assert_eq!(g.nodes()[0].op, OpKind::Sigmoid);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn dependent_move_rejected_and_rolled_back() {
        let (mut g, ids) = graph();
        let before = g.nodes().to_vec();
        // Moving n1 (consumer of a) before n0 (producer) must fail...
        let r = move_node(&mut g, ids[1], 0);
        assert!(matches!(r, Err(TransformError::DependencyViolation(_))));
        // ...and leave the graph untouched.
        assert_eq!(g.nodes(), &before[..]);
    }

    #[test]
    fn hoist_respects_producers() {
        let (mut g, ids) = graph();
        // n1 depends on n0: earliest slot is 1 (its current position).
        let pos = hoist_earliest(&mut g, ids[1]).unwrap();
        assert_eq!(pos, 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut g, _) = graph();
        assert!(matches!(
            move_node(&mut g, NodeId(99), 0),
            Err(TransformError::Precondition(_))
        ));
    }

    #[test]
    fn noop_move_is_ok() {
        let (mut g, ids) = graph();
        move_node(&mut g, ids[1], 1).unwrap();
        assert!(g.validate().is_ok());
    }
}
