//! Device-memory footprint estimation.
//!
//! The paper motivates performance models that predict "speed, memory
//! usage, etc." and itself had to shrink *DLRM_MLPerf*'s sparse feature
//! size from 128 to 32 so the model fit into the TITAN Xp's and P100's
//! memory. This module answers that question from the execution graph
//! alone: weights are resident for the whole iteration, activations live
//! from their producer to their last consumer, and the peak of the
//! resulting occupancy curve is the device-memory requirement.

use std::collections::HashMap;

use crate::graph::Graph;
use crate::tensor::{TensorId, TensorKind};

/// A memory-usage report for one training iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryReport {
    /// Bytes of parameters (resident for the whole iteration).
    pub weight_bytes: u64,
    /// Peak bytes of live activations/gradients/indices.
    pub peak_activation_bytes: u64,
    /// Index of the node at which the activation peak occurs.
    pub peak_node: usize,
    /// Per-node live activation bytes (occupancy curve).
    pub occupancy: Vec<u64>,
}

impl MemoryReport {
    /// Total peak device memory: weights + peak activations.
    pub fn peak_bytes(&self) -> u64 {
        self.weight_bytes + self.peak_activation_bytes
    }

    /// Whether the iteration fits a device with the given memory capacity,
    /// leaving `reserve_frac` (e.g. 0.1) for the allocator and framework.
    pub fn fits(&self, capacity_bytes: u64, reserve_frac: f64) -> bool {
        (self.peak_bytes() as f64) <= capacity_bytes as f64 * (1.0 - reserve_frac)
    }
}

/// Estimates the device-memory footprint of one training iteration.
///
/// Weight tensors count once each (they are the model parameters);
/// activation and index tensors are counted while live — from the node that
/// produces them (or node 0 for external inputs) to their last consumer.
pub fn estimate(graph: &Graph) -> MemoryReport {
    let n = graph.node_count();
    let mut weight_bytes = 0u64;
    let mut first_use: HashMap<TensorId, usize> = HashMap::new();
    let mut last_use: HashMap<TensorId, usize> = HashMap::new();

    // Tensors produced by view ops (`reshape`/`t`/...) alias their input's
    // storage and allocate nothing.
    let mut is_alias = vec![false; graph.tensor_count()];
    for node in graph.nodes() {
        if node.op == crate::op::OpKind::Reshape {
            for &t in &node.outputs {
                is_alias[t.0] = true;
            }
        }
    }

    for (id, meta) in graph.tensors() {
        if meta.kind == TensorKind::Weight && !is_alias[id.0] {
            weight_bytes += meta.bytes();
        }
    }
    for (pos, node) in graph.nodes().iter().enumerate() {
        for &t in node.inputs.iter().chain(node.outputs.iter()) {
            if graph.tensor(t).kind == TensorKind::Weight || is_alias[t.0] {
                continue;
            }
            first_use.entry(t).or_insert(pos);
            last_use.insert(t, pos);
        }
    }
    // External (non-produced) activations are live from the start.
    for t in graph.external_inputs() {
        if graph.tensor(t).kind != TensorKind::Weight && first_use.contains_key(&t) {
            first_use.insert(t, 0);
        }
    }

    // Sweep: +bytes at first use, -bytes after last use.
    let mut delta = vec![0i128; n + 1];
    for (&t, &start) in &first_use {
        let end = last_use[&t];
        let bytes = graph.tensor(t).bytes() as i128;
        delta[start] += bytes;
        delta[end + 1] -= bytes;
    }
    let mut occupancy = Vec::with_capacity(n);
    let mut live: i128 = 0;
    let (mut peak, mut peak_node) = (0i128, 0usize);
    for (pos, d) in delta.iter().take(n).enumerate() {
        live += d;
        occupancy.push(live as u64);
        if live > peak {
            peak = live;
            peak_node = pos;
        }
    }

    MemoryReport {
        weight_bytes,
        peak_activation_bytes: peak as u64,
        peak_node,
        occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::tensor::TensorMeta;

    #[test]
    fn chain_occupancy_counts_live_tensors() {
        // a -> relu -> b -> relu -> c : at node 1, a is dead, b+c live? No:
        // a(16B) lives through node 0; b lives 0..1; c lives 1.
        let mut g = Graph::new("chain");
        let a = g.add_tensor(TensorMeta::activation(&[4])); // 16 B
        let b = g.add_tensor(TensorMeta::activation(&[4]));
        let c = g.add_tensor(TensorMeta::activation(&[4]));
        g.add_op(OpKind::Relu, vec![a], vec![b]);
        g.add_op(OpKind::Relu, vec![b], vec![c]);
        let r = estimate(&g);
        assert_eq!(r.weight_bytes, 0);
        assert_eq!(r.occupancy, vec![32, 32]); // (a+b) then (b+c)
        assert_eq!(r.peak_activation_bytes, 32);
    }

    #[test]
    fn weights_always_resident() {
        let mut g = Graph::new("w");
        let x = g.add_tensor(TensorMeta::activation(&[8, 4]));
        let w = g.add_tensor(TensorMeta::weight(&[16, 4])); // 256 B
        let bias = g.add_tensor(TensorMeta::weight(&[16])); // 64 B
        let y = g.add_tensor(TensorMeta::activation(&[8, 16]));
        g.add_op(OpKind::AddMm, vec![x, w, bias], vec![y]);
        let r = estimate(&g);
        assert_eq!(r.weight_bytes, 320);
        assert_eq!(r.peak_bytes(), 320 + 128 + 512);
    }

    #[test]
    fn fits_respects_reserve() {
        let mut g = Graph::new("f");
        let w = g.add_tensor(TensorMeta::weight(&[1024])); // 4096 B
        let x = g.add_tensor(TensorMeta::activation(&[256])); // 1024 B
        let y = g.add_tensor(TensorMeta::activation(&[256]));
        g.add_op(OpKind::Relu, vec![x], vec![y]);
        let _ = w;
        let r = estimate(&g);
        assert!(r.fits(8192, 0.1));
        assert!(!r.fits(6144, 0.1)); // 6144*0.9 = 5529 < 6144 bytes peak
    }

    #[test]
    fn peak_node_is_argmax() {
        let mut g = Graph::new("peak");
        let a = g.add_tensor(TensorMeta::activation(&[1024])); // big
        let b = g.add_tensor(TensorMeta::activation(&[1024]));
        let c = g.add_tensor(TensorMeta::activation(&[2])); // small
        g.add_op(OpKind::Relu, vec![a], vec![b]);
        g.add_op(OpKind::Sum, vec![b], vec![c]);
        let r = estimate(&g);
        assert_eq!(r.peak_node, 0);
    }
}
