//! Lowering of operators to the GPU kernels they launch.
//!
//! This is the mapping that lets ops sharing kernel types share performance
//! models (the paper's microbenchmark-cost-saving observation): `addmm`,
//! `bmm`, and both their backwards all lower to [`KernelSpec::Gemm`];
//! `embedding_bag` and the fused batched embedding both lower to the
//! embedding-lookup kernels; and every trivial op lowers to a generic
//! element-wise kernel.

use dlperf_gpusim::KernelSpec;

use crate::graph::{Graph, Node};
use crate::op::OpKind;
use crate::tensor::TensorMeta;

/// Errors raised when an op's tensor shapes do not match its kind.
///
/// Serializable so resilient-analysis reports that carry lower failures
/// can ride inside runtime checkpoints.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LowerError {
    /// Name of the offending node.
    pub node: String,
    /// What was wrong.
    pub reason: String,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot lower op `{}`: {}", self.node, self.reason)
    }
}

impl std::error::Error for LowerError {}

fn err(node: &Node, reason: impl Into<String>) -> LowerError {
    LowerError { node: node.name.clone(), reason: reason.into() }
}

fn input<'g>(graph: &'g Graph, node: &Node, i: usize) -> Result<&'g TensorMeta, LowerError> {
    let &t = node.inputs.get(i).ok_or_else(|| err(node, format!("missing input {i}")))?;
    graph
        .try_tensor(t)
        .ok_or_else(|| err(node, format!("input {i} references a tensor not in this graph")))
}

fn output<'g>(graph: &'g Graph, node: &Node, i: usize) -> Result<&'g TensorMeta, LowerError> {
    let &t = node.outputs.get(i).ok_or_else(|| err(node, format!("missing output {i}")))?;
    graph
        .try_tensor(t)
        .ok_or_else(|| err(node, format!("output {i} references a tensor not in this graph")))
}

fn dims<const N: usize>(t: &TensorMeta, node: &Node) -> Result<[u64; N], LowerError> {
    if t.shape.len() != N {
        return Err(err(node, format!("expected rank-{N} tensor, got shape {:?}", t.shape)));
    }
    let mut out = [0u64; N];
    out.copy_from_slice(&t.shape);
    Ok(out)
}

/// An element-wise kernel over `elems` elements.
fn ew(elems: u64, flops: f64, bytes: f64) -> KernelSpec {
    KernelSpec::Elementwise { elems: elems.max(1), flops_per_elem: flops, bytes_per_elem: bytes }
}

/// Lowers `node` to the kernels it launches, in launch order.
///
/// Host-only ops (`reshape`, `AddBackward0`) lower to an empty list.
///
/// # Errors
/// Returns [`LowerError`] if the node's tensor shapes are inconsistent with
/// its [`OpKind`] (for instance after a malformed manual graph edit).
pub fn try_kernels(graph: &Graph, node: &Node) -> Result<Vec<KernelSpec>, LowerError> {
    let k = match node.op {
        OpKind::AddMm => {
            let [b, kdim] = dims(input(graph, node, 0)?, node)?;
            let [n, k2] = dims(input(graph, node, 1)?, node)?;
            if kdim != k2 {
                return Err(err(node, format!("addmm inner dims differ: {kdim} vs {k2}")));
            }
            vec![KernelSpec::gemm(b, n, kdim)]
        }
        OpKind::AddMmBackward => {
            // inputs: grad_out (b, n), x (b, k), w (n, k) -> dgrad + wgrad.
            let [b, n] = dims(input(graph, node, 0)?, node)?;
            let [b2, kdim] = dims(input(graph, node, 1)?, node)?;
            if b != b2 {
                return Err(err(node, format!("addmm backward batch dims differ: {b} vs {b2}")));
            }
            vec![KernelSpec::gemm(b, kdim, n), KernelSpec::gemm(n, kdim, b)]
        }
        OpKind::Bmm => {
            let [batch, m, kdim] = dims(input(graph, node, 0)?, node)?;
            let [batch2, k2, n] = dims(input(graph, node, 1)?, node)?;
            if batch != batch2 || kdim != k2 {
                return Err(err(node, "bmm operand shapes incompatible"));
            }
            vec![KernelSpec::bmm(batch, m, n, kdim)]
        }
        OpKind::BmmBackward => {
            // inputs: grad_out (batch, m, n), a (batch, m, k), b (batch, k, n).
            let [batch, m, n] = dims(input(graph, node, 0)?, node)?;
            let [_, _, kdim] = dims(input(graph, node, 1)?, node)?;
            vec![KernelSpec::bmm(batch, m, kdim, n), KernelSpec::bmm(batch, kdim, n, m)]
        }
        OpKind::EmbeddingBag => {
            // inputs: weight (e, d), indices (b, l).
            let [e, d] = dims(input(graph, node, 0)?, node)?;
            let [b, l] = dims(input(graph, node, 1)?, node)?;
            vec![KernelSpec::embedding_forward(b, e, 1, l, d)]
        }
        OpKind::EmbeddingBagBackward => {
            // inputs: grad (b, d), weight (e, d), indices (b, l).
            let [e, d] = dims(input(graph, node, 1)?, node)?;
            let [b, l] = dims(input(graph, node, 2)?, node)?;
            vec![KernelSpec::embedding_backward(b, e, 1, l, d)]
        }
        OpKind::BatchedEmbedding | OpKind::BatchedEmbeddingBackward => {
            let [t, e, d] = dims(input(graph, node, 0)?, node)?;
            let [t2, b, l] = dims(input(graph, node, 1)?, node)?;
            if t != t2 {
                return Err(err(node, format!("table counts differ: {t} vs {t2}")));
            }
            let spec = if node.op == OpKind::BatchedEmbedding {
                KernelSpec::embedding_forward(b, e, t, l, d)
            } else {
                KernelSpec::embedding_backward(b, e, t, l, d)
            };
            vec![spec]
        }
        OpKind::Cat { .. } => {
            let bytes = output(graph, node, 0)?.bytes();
            vec![KernelSpec::Concat { bytes }]
        }
        OpKind::CatBackward { .. } => {
            let bytes = input(graph, node, 0)?.bytes();
            vec![KernelSpec::Concat { bytes }]
        }
        OpKind::Relu => vec![ew(output(graph, node, 0)?.numel(), 1.0, 8.0)],
        OpKind::ReluBackward => vec![ew(output(graph, node, 0)?.numel(), 1.0, 12.0)],
        OpKind::Sigmoid => vec![ew(output(graph, node, 0)?.numel(), 4.0, 8.0)],
        OpKind::SigmoidBackward => vec![ew(output(graph, node, 0)?.numel(), 3.0, 12.0)],
        OpKind::MseLoss => vec![ew(input(graph, node, 0)?.numel(), 3.0, 8.0)],
        OpKind::MseLossBackward => vec![ew(output(graph, node, 0)?.numel(), 2.0, 12.0)],
        OpKind::Transpose => {
            let t = input(graph, node, 0)?;
            let (batch, rows, cols) = match t.shape.as_slice() {
                [r, c] => (1, *r, *c),
                [b, r, c] => (*b, *r, *c),
                other => return Err(err(node, format!("transpose needs rank 2/3, got {other:?}"))),
            };
            vec![KernelSpec::Transpose { batch, rows, cols }]
        }
        OpKind::Tril => {
            let [b, n, n2] = dims(input(graph, node, 0)?, node)?;
            if n != n2 {
                return Err(err(node, "tril input must be square"));
            }
            vec![KernelSpec::TrilForward { batch: b, n }]
        }
        OpKind::TrilBackward => {
            let [b, n, n2] = dims(output(graph, node, 0)?, node)?;
            if n != n2 {
                return Err(err(node, "tril backward output must be square"));
            }
            vec![KernelSpec::TrilBackward { batch: b, n }]
        }
        OpKind::To { kind } => {
            let bytes = input(graph, node, 0)?.bytes();
            vec![KernelSpec::Memcpy { bytes, kind }]
        }
        OpKind::Conv2d { stride, pad } => {
            let [b, c, h, w] = dims(input(graph, node, 0)?, node)?;
            let [c_out, c2, kh, kw] = dims(input(graph, node, 1)?, node)?;
            if c != c2 {
                return Err(err(node, format!("conv channel mismatch: {c} vs {c2}")));
            }
            vec![KernelSpec::Conv2d { batch: b, c_in: c, h, w, c_out, kh, kw, stride, pad }]
        }
        OpKind::Conv2dBackward { stride, pad } => {
            // inputs: grad_out, x (b, c, h, w), w (c_out, c, kh, kw).
            let [b, c, h, w] = dims(input(graph, node, 1)?, node)?;
            let [c_out, _, kh, kw] = dims(input(graph, node, 2)?, node)?;
            let k = KernelSpec::Conv2d { batch: b, c_in: c, h, w, c_out, kh, kw, stride, pad };
            vec![k.clone(), k]
        }
        OpKind::BatchNorm => vec![ew(output(graph, node, 0)?.numel(), 4.0, 16.0)],
        OpKind::BatchNormBackward => vec![ew(output(graph, node, 0)?.numel(), 5.0, 16.0)],
        OpKind::MaxPool { k, .. } => {
            let out = output(graph, node, 0)?.numel();
            vec![ew(out, (k * k) as f64, 4.0 + 4.0 * (k * k) as f64 / 2.0)]
        }
        OpKind::MaxPoolBackward => vec![ew(output(graph, node, 0)?.numel(), 1.0, 12.0)],
        OpKind::AvgPool => vec![ew(input(graph, node, 0)?.numel(), 1.0, 5.0)],
        OpKind::Add => vec![ew(output(graph, node, 0)?.numel(), 1.0, 12.0)],
        OpKind::Softmax => vec![ew(output(graph, node, 0)?.numel(), 10.0, 16.0)],
        OpKind::SoftmaxBackward => vec![ew(output(graph, node, 0)?.numel(), 8.0, 16.0)],
        OpKind::LayerNorm => vec![ew(output(graph, node, 0)?.numel(), 8.0, 16.0)],
        OpKind::LayerNormBackward => vec![ew(output(graph, node, 0)?.numel(), 10.0, 20.0)],
        OpKind::Gelu => vec![ew(output(graph, node, 0)?.numel(), 12.0, 8.0)],
        OpKind::GeluBackward => vec![ew(output(graph, node, 0)?.numel(), 14.0, 12.0)],
        OpKind::Dropout => vec![ew(output(graph, node, 0)?.numel(), 2.0, 12.0)],
        OpKind::DropoutBackward => vec![ew(output(graph, node, 0)?.numel(), 1.0, 12.0)],
        OpKind::Sum => vec![ew(input(graph, node, 0)?.numel(), 1.0, 4.2)],
        OpKind::OptimizerStep => {
            // One element-wise SGD update kernel per parameter tensor, as in
            // the paper's observation that the optimizer is "dominated by a
            // series of element-wise kernels".
            node.inputs
                .iter()
                .map(|&t| {
                    graph
                        .try_tensor(t)
                        .map(|meta| ew(meta.numel(), 2.0, 12.0))
                        .ok_or_else(|| {
                            err(node, "optimizer parameter references a tensor not in this graph")
                        })
                })
                .collect::<Result<Vec<_>, _>>()?
        }
        OpKind::Reshape | OpKind::AddBackward => Vec::new(),
    };
    Ok(k)
}

/// Lowers `node`, panicking on malformed shapes.
///
/// # Panics
/// Panics if [`try_kernels`] would return an error. Use [`try_kernels`] when
/// lowering graphs that may have been hand-edited.
pub fn kernels(graph: &Graph, node: &Node) -> Vec<KernelSpec> {
    try_kernels(graph, node).unwrap_or_else(|e| panic!("{e}"))
}

/// Lowers every node of `graph`, returning `(node index, kernels)` pairs.
pub fn lower_graph(graph: &Graph) -> Result<Vec<(usize, Vec<KernelSpec>)>, LowerError> {
    graph
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| try_kernels(graph, n).map(|k| (i, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorMeta;
    use dlperf_gpusim::KernelFamily;

    #[test]
    fn addmm_lowers_to_one_gemm_and_backward_to_two() {
        let mut g = Graph::new("t");
        let x = g.add_tensor(TensorMeta::activation(&[32, 64]));
        let w = g.add_tensor(TensorMeta::weight(&[128, 64]));
        let bias = g.add_tensor(TensorMeta::weight(&[128]));
        let y = g.add_tensor(TensorMeta::activation(&[32, 128]));
        let fwd = g.add_op(OpKind::AddMm, vec![x, w, bias], vec![y]);

        let gy = g.add_tensor(TensorMeta::activation(&[32, 128]));
        let gx = g.add_tensor(TensorMeta::activation(&[32, 64]));
        let gw = g.add_tensor(TensorMeta::weight(&[128, 64]));
        let bwd = g.add_op(OpKind::AddMmBackward, vec![gy, x, w], vec![gx, gw]);

        let fk = kernels(&g, g.node(fwd).unwrap());
        assert_eq!(fk, vec![KernelSpec::gemm(32, 128, 64)]);
        let bk = kernels(&g, g.node(bwd).unwrap());
        assert_eq!(bk.len(), 2);
        assert!(bk.iter().all(|k| k.family() == KernelFamily::Gemm));
    }

    #[test]
    fn batched_embedding_shapes() {
        let mut g = Graph::new("t");
        let w = g.add_tensor(TensorMeta::weight(&[8, 100_000, 64]));
        let idx = g.add_tensor(TensorMeta::index(&[8, 2048, 10]).with_batch_dim(1));
        let out = g.add_tensor(TensorMeta::activation(&[2048, 8 * 64]).with_batch_dim(0));
        let n = g.add_op(OpKind::BatchedEmbedding, vec![w, idx], vec![out]);
        let k = kernels(&g, g.node(n).unwrap());
        assert_eq!(k, vec![KernelSpec::embedding_forward(2048, 100_000, 8, 10, 64)]);
    }

    #[test]
    fn host_only_ops_lower_to_nothing() {
        let mut g = Graph::new("t");
        let a = g.add_tensor(TensorMeta::activation(&[4, 4]));
        let b = g.add_tensor(TensorMeta::activation(&[16]));
        let n = g.add_op(OpKind::Reshape, vec![a], vec![b]);
        assert!(kernels(&g, g.node(n).unwrap()).is_empty());
    }

    #[test]
    fn optimizer_step_one_kernel_per_param() {
        let mut g = Graph::new("t");
        let p1 = g.add_tensor(TensorMeta::weight(&[128, 64]));
        let p2 = g.add_tensor(TensorMeta::weight(&[128]));
        let p3 = g.add_tensor(TensorMeta::weight(&[10, 128]));
        let n = g.add_op(OpKind::OptimizerStep, vec![p1, p2, p3], vec![]);
        assert_eq!(kernels(&g, g.node(n).unwrap()).len(), 3);
    }

    #[test]
    fn shape_mismatch_reported() {
        let mut g = Graph::new("t");
        let x = g.add_tensor(TensorMeta::activation(&[32, 64]));
        let w = g.add_tensor(TensorMeta::weight(&[128, 32])); // wrong inner dim
        let bias = g.add_tensor(TensorMeta::weight(&[128]));
        let y = g.add_tensor(TensorMeta::activation(&[32, 128]));
        let n = g.add_op(OpKind::AddMm, vec![x, w, bias], vec![y]);
        let e = try_kernels(&g, g.node(n).unwrap()).unwrap_err();
        assert!(e.reason.contains("inner dims"));
    }

    #[test]
    fn transpose_rank2_and_rank3() {
        let mut g = Graph::new("t");
        let a2 = g.add_tensor(TensorMeta::activation(&[64, 32]));
        let o2 = g.add_tensor(TensorMeta::activation(&[32, 64]));
        let n2 = g.add_op(OpKind::Transpose, vec![a2], vec![o2]);
        assert_eq!(
            kernels(&g, g.node(n2).unwrap()),
            vec![KernelSpec::Transpose { batch: 1, rows: 64, cols: 32 }]
        );
        let a3 = g.add_tensor(TensorMeta::activation(&[8, 64, 32]));
        let o3 = g.add_tensor(TensorMeta::activation(&[8, 32, 64]));
        let n3 = g.add_op(OpKind::Transpose, vec![a3], vec![o3]);
        assert_eq!(
            kernels(&g, g.node(n3).unwrap()),
            vec![KernelSpec::Transpose { batch: 8, rows: 64, cols: 32 }]
        );
    }

    #[test]
    fn out_of_range_tensor_id_is_a_typed_error_not_a_panic() {
        use crate::tensor::TensorId;
        let mut g = Graph::new("t");
        let a = g.add_tensor(TensorMeta::activation(&[4, 4]));
        let b = g.add_tensor(TensorMeta::activation(&[4, 4]));
        let n = g.add_op(OpKind::Relu, vec![a], vec![b]);
        assert!(g.try_tensor(TensorId(99)).is_none());
        // Forge a node referencing a tensor from "another graph".
        let mut node = g.node(n).unwrap().clone();
        node.inputs = vec![TensorId(99)];
        node.outputs = vec![TensorId(99)];
        let e = try_kernels(&g, &node).unwrap_err();
        assert!(e.reason.contains("not in this graph"), "reason: {}", e.reason);
        // The optimizer path is equally guarded.
        let mut opt = Graph::new("o");
        let p = opt.add_tensor(TensorMeta::weight(&[8]));
        let on = opt.add_op(OpKind::OptimizerStep, vec![p], vec![]);
        let mut node = opt.node(on).unwrap().clone();
        node.inputs = vec![TensorId(42)];
        let e = try_kernels(&opt, &node).unwrap_err();
        assert!(e.reason.contains("not in this graph"), "reason: {}", e.reason);
    }

    #[test]
    fn lower_graph_covers_all_nodes() {
        let mut g = Graph::new("t");
        let a = g.add_tensor(TensorMeta::activation(&[4, 4]));
        let b = g.add_tensor(TensorMeta::activation(&[4, 4]));
        let c = g.add_tensor(TensorMeta::activation(&[4, 4]));
        g.add_op(OpKind::Relu, vec![a], vec![b]);
        g.add_op(OpKind::Sigmoid, vec![b], vec![c]);
        let lowered = lower_graph(&g).unwrap();
        assert_eq!(lowered.len(), 2);
        assert_eq!(lowered[0].1.len(), 1);
    }
}
