//! Tensor metadata: shapes, element types, and roles.
//!
//! The execution graph stores only metadata, never data — exactly what the
//! paper's observer captures and what the performance model needs. The
//! `batch_dim` annotation is what makes the *resize* transformation (change
//! the batch size of a captured graph) a pure metadata rewrite.

use serde::{Deserialize, Serialize};

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit float (all weights/activations in the paper's benchmarks).
    F32,
    /// 64-bit integer (embedding indices and offsets).
    I64,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> u64 {
        match self {
            DType::F32 => 4,
            DType::I64 => 8,
        }
    }
}

/// Role of a tensor in the training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorKind {
    /// Learned parameter: unaffected by batch-size changes.
    Weight,
    /// Activation / gradient: carries the batch dimension.
    Activation,
    /// Integer index stream (sparse feature input).
    Index,
}

/// Opaque handle to a tensor inside a [`crate::Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TensorId(pub usize);

/// Shape, dtype, and role metadata of one tensor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorMeta {
    /// Dimensions, outermost first.
    pub shape: Vec<u64>,
    /// Element type.
    pub dtype: DType,
    /// Role (weight / activation / index).
    pub kind: TensorKind,
    /// Which dimension is the batch dimension, if any. Only tensors with a
    /// batch dimension are rescaled by the *resize* transformation.
    pub batch_dim: Option<usize>,
}

impl TensorMeta {
    /// A new FP32 activation tensor (no batch dimension annotated yet).
    pub fn activation(shape: &[u64]) -> Self {
        TensorMeta {
            shape: shape.to_vec(),
            dtype: DType::F32,
            kind: TensorKind::Activation,
            batch_dim: None,
        }
    }

    /// A new FP32 weight tensor.
    pub fn weight(shape: &[u64]) -> Self {
        TensorMeta { shape: shape.to_vec(), dtype: DType::F32, kind: TensorKind::Weight, batch_dim: None }
    }

    /// A new I64 index tensor.
    pub fn index(shape: &[u64]) -> Self {
        TensorMeta { shape: shape.to_vec(), dtype: DType::I64, kind: TensorKind::Index, batch_dim: None }
    }

    /// Annotates the batch dimension (builder style).
    ///
    /// # Panics
    /// Panics if `dim` is out of range for the shape.
    pub fn with_batch_dim(mut self, dim: usize) -> Self {
        assert!(dim < self.shape.len(), "batch_dim {dim} out of range for shape {:?}", self.shape);
        self.batch_dim = Some(dim);
        self
    }

    /// Number of elements.
    pub fn numel(&self) -> u64 {
        self.shape.iter().product()
    }

    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.numel() * self.dtype.size_bytes()
    }

    /// Size of the batch dimension, if annotated.
    pub fn batch_size(&self) -> Option<u64> {
        self.batch_dim.map(|d| self.shape[d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_bytes() {
        let t = TensorMeta::activation(&[64, 128]);
        assert_eq!(t.numel(), 8192);
        assert_eq!(t.bytes(), 32_768);
        let i = TensorMeta::index(&[64, 10]);
        assert_eq!(i.bytes(), 64 * 10 * 8);
    }

    #[test]
    fn scalar_tensor_numel_is_one() {
        let t = TensorMeta::activation(&[]);
        assert_eq!(t.numel(), 1);
    }

    #[test]
    fn batch_dim_annotation() {
        let t = TensorMeta::activation(&[2, 64, 16]).with_batch_dim(1);
        assert_eq!(t.batch_size(), Some(64));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_dim_out_of_range_panics() {
        TensorMeta::activation(&[4]).with_batch_dim(3);
    }

    #[test]
    fn serde_roundtrip() {
        let t = TensorMeta::weight(&[100, 64]);
        let s = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<TensorMeta>(&s).unwrap(), t);
    }
}
