//! # dlperf-graph
//!
//! The execution-graph intermediate representation at the heart of the
//! paper's prediction pipeline.
//!
//! The paper instruments PyTorch with an *execution graph observer* that
//! records every operator executed in a training iteration together with its
//! input/output tensors — i.e. full data dependencies, which trace-only
//! approaches such as Daydream lack. This crate is the Rust equivalent of
//! that captured artifact:
//!
//! * [`Graph`] — operators ([`Node`]) connected through tensors
//!   ([`TensorMeta`]), with validation and topological iteration;
//! * [`lower`] — lowering of each operator to the GPU kernels it launches
//!   (the mapping that lets ops like `addmm` and `AddmmBackward` share one
//!   GEMM kernel performance model);
//! * [`transform`] — the co-design mutations from §V of the paper:
//!   *resize*, *fuse* (embedding bags → batched embedding), *replace*,
//!   *insert*/*remove*, and *parallelize* (multi-stream assignment).
//!
//! Graphs serialize to JSON with `serde`, mirroring the paper's exported
//! execution-graph files.
//!
//! ## Example
//!
//! ```
//! use dlperf_graph::{Graph, OpKind, TensorKind, TensorMeta};
//!
//! let mut g = Graph::new("tiny-mlp");
//! let x = g.add_tensor(TensorMeta::activation(&[64, 128]).with_batch_dim(0));
//! let w = g.add_tensor(TensorMeta::weight(&[256, 128]));
//! let b = g.add_tensor(TensorMeta::weight(&[256]));
//! let y = g.add_tensor(TensorMeta::activation(&[64, 256]).with_batch_dim(0));
//! g.add_node("aten::addmm", OpKind::AddMm, vec![x, w, b], vec![y]);
//! assert!(g.validate().is_ok());
//! ```

pub mod delta;
pub mod graph;
pub mod lower;
pub mod memory;
pub mod op;
pub mod stats;
pub mod tensor;
pub mod transform;

pub use delta::{common_affix, node_signature, GraphDelta};
pub use graph::{Graph, GraphError, GraphIndex, Node, NodeId};
pub use op::OpKind;
pub use tensor::{DType, TensorId, TensorKind, TensorMeta};
