//! The execution graph: operators connected through tensors.
//!
//! Nodes are stored in *execution order* — the order the framework's
//! dispatcher ran them, which is what the observer captures. Validation
//! checks that this order is consistent with the data dependencies (every
//! input is either a graph input or produced by an earlier node) and that
//! each tensor has at most one producer.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::op::OpKind;
use crate::tensor::{TensorId, TensorMeta};

/// Opaque handle to a node inside a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// One executed operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Handle of this node in its graph.
    pub id: NodeId,
    /// Human-readable name (defaults to the op's overhead key).
    pub name: String,
    /// Operator kind.
    pub op: OpKind,
    /// Input tensors, in positional order.
    pub inputs: Vec<TensorId>,
    /// Output tensors.
    pub outputs: Vec<TensorId>,
    /// CUDA stream this op's kernels are enqueued on (0 = default stream).
    /// Set by the *parallelize* transformation.
    pub stream: usize,
}

/// Errors raised by graph construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node references a tensor id that does not exist.
    TensorOutOfRange { node: usize, tensor: usize },
    /// Two nodes both claim to produce the same tensor.
    MultipleProducers { tensor: usize, first: usize, second: usize },
    /// A node consumes a tensor produced by a *later* node.
    UseBeforeDef { node: usize, tensor: usize, producer: usize },
    /// A node lists the same tensor as both input and output.
    InPlaceAlias { node: usize, tensor: usize },
    /// The requested node does not exist.
    NoSuchNode { node: usize },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::TensorOutOfRange { node, tensor } => {
                write!(f, "node {node} references unknown tensor {tensor}")
            }
            GraphError::MultipleProducers { tensor, first, second } => {
                write!(f, "tensor {tensor} produced by both node {first} and node {second}")
            }
            GraphError::UseBeforeDef { node, tensor, producer } => {
                write!(f, "node {node} uses tensor {tensor} before its producer {producer} runs")
            }
            GraphError::InPlaceAlias { node, tensor } => {
                write!(f, "node {node} aliases tensor {tensor} as both input and output")
            }
            GraphError::NoSuchNode { node } => write!(f, "no such node {node}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An execution graph: tensors plus operators in execution order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    /// Workload name (e.g. `"DLRM_default"`).
    pub name: String,
    tensors: Vec<TensorMeta>,
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Graph { name: name.into(), tensors: Vec::new(), nodes: Vec::new() }
    }

    /// Adds a tensor and returns its handle.
    pub fn add_tensor(&mut self, meta: TensorMeta) -> TensorId {
        self.tensors.push(meta);
        TensorId(self.tensors.len() - 1)
    }

    /// Appends a node at the end of the execution order.
    ///
    /// # Panics
    /// Panics if any referenced tensor id is out of range; structural
    /// problems beyond that are reported by [`Graph::validate`].
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        inputs: Vec<TensorId>,
        outputs: Vec<TensorId>,
    ) -> NodeId {
        for t in inputs.iter().chain(outputs.iter()) {
            assert!(t.0 < self.tensors.len(), "tensor id {} out of range", t.0);
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { id, name: name.into(), op, inputs, outputs, stream: 0 });
        id
    }

    /// Appends a node named after its op kind.
    pub fn add_op(&mut self, op: OpKind, inputs: Vec<TensorId>, outputs: Vec<TensorId>) -> NodeId {
        self.add_node(op.overhead_key().to_string(), op, inputs, outputs)
    }

    /// Tensor metadata by handle.
    ///
    /// # Panics
    /// Panics if the handle came from a different graph and is out of range.
    pub fn tensor(&self, id: TensorId) -> &TensorMeta {
        &self.tensors[id.0]
    }

    /// Tensor metadata by handle, without panicking: `None` if the handle
    /// does not belong to this graph. The untrusted-input safe twin of
    /// [`Graph::tensor`] — callers add their own context (e.g. the
    /// referencing node) to the failure.
    pub fn try_tensor(&self, id: TensorId) -> Option<&TensorMeta> {
        self.tensors.get(id.0)
    }

    /// Mutable tensor metadata by handle.
    pub fn tensor_mut(&mut self, id: TensorId) -> &mut TensorMeta {
        &mut self.tensors[id.0]
    }

    /// All tensors with their handles.
    pub fn tensors(&self) -> impl Iterator<Item = (TensorId, &TensorMeta)> {
        self.tensors.iter().enumerate().map(|(i, t)| (TensorId(i), t))
    }

    /// Number of tensors.
    pub fn tensor_count(&self) -> usize {
        self.tensors.len()
    }

    /// Nodes in execution order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node by handle.
    pub fn node(&self, id: NodeId) -> Result<&Node, GraphError> {
        self.nodes.get(id.0).ok_or(GraphError::NoSuchNode { node: id.0 })
    }

    /// Mutable node by handle.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, GraphError> {
        self.nodes.get_mut(id.0).ok_or(GraphError::NoSuchNode { node: id.0 })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node that produces `tensor`, if any (graph inputs have none).
    pub fn producer(&self, tensor: TensorId) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.outputs.contains(&tensor)).map(|n| n.id)
    }

    /// All nodes that consume `tensor`.
    pub fn consumers(&self, tensor: TensorId) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.inputs.contains(&tensor)).map(|n| n.id).collect()
    }

    /// Tensors not produced by any node (the graph's external inputs:
    /// training data, weights).
    pub fn external_inputs(&self) -> Vec<TensorId> {
        let mut produced = vec![false; self.tensors.len()];
        for n in &self.nodes {
            for t in &n.outputs {
                produced[t.0] = true;
            }
        }
        (0..self.tensors.len()).filter(|&i| !produced[i]).map(TensorId).collect()
    }

    /// Replaces the node list (used by transformations that rebuild
    /// execution order). Re-indexes node ids to match positions.
    pub fn set_nodes(&mut self, mut nodes: Vec<Node>) {
        for (i, n) in nodes.iter_mut().enumerate() {
            n.id = NodeId(i);
        }
        self.nodes = nodes;
    }

    /// Direct data-dependency predecessors of `node` (producers of its
    /// inputs), deduplicated.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let mut preds: Vec<NodeId> = self.nodes[node.0]
            .inputs
            .iter()
            .filter_map(|&t| self.producer(t))
            .collect();
        preds.sort();
        preds.dedup();
        preds
    }

    /// Checks structural invariants; see [`GraphError`] for the cases.
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut producer: HashMap<usize, usize> = HashMap::new();
        for (pos, n) in self.nodes.iter().enumerate() {
            for t in n.inputs.iter().chain(n.outputs.iter()) {
                if t.0 >= self.tensors.len() {
                    return Err(GraphError::TensorOutOfRange { node: pos, tensor: t.0 });
                }
            }
            for t in &n.inputs {
                if n.outputs.contains(t) {
                    return Err(GraphError::InPlaceAlias { node: pos, tensor: t.0 });
                }
                if let Some(&p) = producer.get(&t.0) {
                    if p >= pos {
                        return Err(GraphError::UseBeforeDef { node: pos, tensor: t.0, producer: p });
                    }
                }
            }
            for t in &n.outputs {
                if let Some(&first) = producer.get(&t.0) {
                    return Err(GraphError::MultipleProducers { tensor: t.0, first, second: pos });
                }
                producer.insert(t.0, pos);
            }
        }
        // Check use-before-def also for tensors whose producer appears later.
        for (pos, n) in self.nodes.iter().enumerate() {
            for t in &n.inputs {
                if let Some(&p) = producer.get(&t.0) {
                    if p >= pos {
                        return Err(GraphError::UseBeforeDef { node: pos, tensor: t.0, producer: p });
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes the graph to pretty JSON (the paper exports captured
    /// execution graphs as JSON files).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("graph serialization cannot fail")
    }

    /// Deserializes a graph from JSON and validates it.
    pub fn from_json(s: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let g: Graph = serde_json::from_str(s)?;
        g.validate()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorMeta;

    fn linear_graph() -> Graph {
        let mut g = Graph::new("test");
        let x = g.add_tensor(TensorMeta::activation(&[8, 4]).with_batch_dim(0));
        let w = g.add_tensor(TensorMeta::weight(&[16, 4]));
        let b = g.add_tensor(TensorMeta::weight(&[16]));
        let y = g.add_tensor(TensorMeta::activation(&[8, 16]).with_batch_dim(0));
        let z = g.add_tensor(TensorMeta::activation(&[8, 16]).with_batch_dim(0));
        g.add_op(OpKind::AddMm, vec![x, w, b], vec![y]);
        g.add_op(OpKind::Relu, vec![y], vec![z]);
        g
    }

    #[test]
    fn valid_graph_passes() {
        assert_eq!(linear_graph().validate(), Ok(()));
    }

    #[test]
    fn producers_and_consumers() {
        let g = linear_graph();
        assert_eq!(g.producer(TensorId(3)), Some(NodeId(0)));
        assert_eq!(g.producer(TensorId(0)), None);
        assert_eq!(g.consumers(TensorId(3)), vec![NodeId(1)]);
        assert_eq!(g.external_inputs(), vec![TensorId(0), TensorId(1), TensorId(2)]);
    }

    #[test]
    fn use_before_def_detected() {
        let mut g = Graph::new("bad");
        let a = g.add_tensor(TensorMeta::activation(&[4]));
        let b = g.add_tensor(TensorMeta::activation(&[4]));
        // Node 0 consumes b, which node 1 produces.
        g.add_op(OpKind::Relu, vec![b], vec![a]);
        let c = g.add_tensor(TensorMeta::activation(&[4]));
        g.add_op(OpKind::Relu, vec![c], vec![b]);
        assert!(matches!(g.validate(), Err(GraphError::UseBeforeDef { .. })));
    }

    #[test]
    fn multiple_producers_detected() {
        let mut g = Graph::new("bad");
        let a = g.add_tensor(TensorMeta::activation(&[4]));
        let b = g.add_tensor(TensorMeta::activation(&[4]));
        g.add_op(OpKind::Relu, vec![a], vec![b]);
        g.add_op(OpKind::Sigmoid, vec![a], vec![b]);
        assert!(matches!(g.validate(), Err(GraphError::MultipleProducers { .. })));
    }

    #[test]
    fn inplace_alias_detected() {
        let mut g = Graph::new("bad");
        let a = g.add_tensor(TensorMeta::activation(&[4]));
        g.add_op(OpKind::Relu, vec![a], vec![a]);
        assert!(matches!(g.validate(), Err(GraphError::InPlaceAlias { .. })));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_tensor_panics_at_add() {
        let mut g = Graph::new("bad");
        g.add_op(OpKind::Relu, vec![TensorId(0)], vec![]);
    }

    #[test]
    fn json_roundtrip() {
        let g = linear_graph();
        let s = g.to_json();
        let back = Graph::from_json(&s).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.tensor_count(), g.tensor_count());
        assert_eq!(back.nodes()[0].op, OpKind::AddMm);
    }

    #[test]
    fn predecessors_deduplicated() {
        let mut g = Graph::new("dup");
        let a = g.add_tensor(TensorMeta::activation(&[4, 4]));
        let b = g.add_tensor(TensorMeta::activation(&[4, 4]));
        let c = g.add_tensor(TensorMeta::activation(&[4, 8]));
        g.add_op(OpKind::Relu, vec![a], vec![b]);
        let n = g.add_op(OpKind::Cat { dim: 1 }, vec![b, b], vec![c]);
        assert_eq!(g.predecessors(n), vec![NodeId(0)]);
    }
}
