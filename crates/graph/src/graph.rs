//! The execution graph: operators connected through tensors.
//!
//! Nodes are stored in *execution order* — the order the framework's
//! dispatcher ran them, which is what the observer captures. Validation
//! checks that this order is consistent with the data dependencies (every
//! input is either a graph input or produced by an earlier node) and that
//! each tensor has at most one producer.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::op::OpKind;
use crate::tensor::{TensorId, TensorMeta};

/// Opaque handle to a node inside a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// One executed operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Handle of this node in its graph.
    pub id: NodeId,
    /// Stable identity: unlike [`Node::id`] (which is a *position* and is
    /// re-indexed whenever a transformation rebuilds the execution order),
    /// the uid survives reorder/insert/fuse and lets diffing tools track a
    /// node across graph mutations. `0` means "not yet assigned" — the
    /// graph assigns a fresh nonzero uid when such a node is installed via
    /// [`Graph::set_nodes`].
    #[serde(default)]
    pub uid: u64,
    /// Human-readable name (defaults to the op's overhead key).
    pub name: String,
    /// Operator kind.
    pub op: OpKind,
    /// Input tensors, in positional order.
    pub inputs: Vec<TensorId>,
    /// Output tensors.
    pub outputs: Vec<TensorId>,
    /// CUDA stream this op's kernels are enqueued on (0 = default stream).
    /// Set by the *parallelize* transformation.
    pub stream: usize,
}

/// Errors raised by graph construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A node references a tensor id that does not exist.
    TensorOutOfRange { node: usize, tensor: usize },
    /// Two nodes both claim to produce the same tensor.
    MultipleProducers { tensor: usize, first: usize, second: usize },
    /// A node consumes a tensor produced by a *later* node.
    UseBeforeDef { node: usize, tensor: usize, producer: usize },
    /// A node lists the same tensor as both input and output.
    InPlaceAlias { node: usize, tensor: usize },
    /// The requested node does not exist.
    NoSuchNode { node: usize },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::TensorOutOfRange { node, tensor } => {
                write!(f, "node {node} references unknown tensor {tensor}")
            }
            GraphError::MultipleProducers { tensor, first, second } => {
                write!(f, "tensor {tensor} produced by both node {first} and node {second}")
            }
            GraphError::UseBeforeDef { node, tensor, producer } => {
                write!(f, "node {node} uses tensor {tensor} before its producer {producer} runs")
            }
            GraphError::InPlaceAlias { node, tensor } => {
                write!(f, "node {node} aliases tensor {tensor} as both input and output")
            }
            GraphError::NoSuchNode { node } => write!(f, "no such node {node}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Derived read-only views of a graph, built lazily by [`Graph::index`]
/// and cached until the next structural mutation: producer/consumer maps
/// (O(1) per query instead of a node scan), the execution order, and a
/// structural signature per node. The signatures are what incremental
/// re-prediction diffs: two nodes with equal signatures contribute
/// identical per-node cost terms to the Algorithm-1 walk.
#[derive(Debug)]
pub struct GraphIndex {
    producer: Vec<Option<NodeId>>,
    consumers: Vec<Vec<NodeId>>,
    signatures: Vec<u64>,
}

impl GraphIndex {
    fn build(g: &Graph) -> Self {
        let mut producer = vec![None; g.tensors.len()];
        let mut consumers = vec![Vec::new(); g.tensors.len()];
        let mut signatures = Vec::with_capacity(g.nodes.len());
        for n in &g.nodes {
            for t in &n.outputs {
                producer[t.0] = Some(n.id);
            }
            for t in &n.inputs {
                consumers[t.0].push(n.id);
            }
            signatures.push(crate::delta::node_signature(g, n));
        }
        GraphIndex { producer, consumers, signatures }
    }

    /// The node producing `tensor`, if any (graph inputs have none).
    pub fn producer(&self, tensor: TensorId) -> Option<NodeId> {
        self.producer.get(tensor.0).copied().flatten()
    }

    /// Nodes consuming `tensor`, in execution order.
    pub fn consumers(&self, tensor: TensorId) -> &[NodeId] {
        self.consumers.get(tensor.0).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Per-node structural signatures, in execution order. Position `i`
    /// covers node `i`'s op, stream, and input/output tensor handles plus
    /// their metadata — everything that feeds its Algorithm-1 cost terms.
    pub fn signatures(&self) -> &[u64] {
        &self.signatures
    }
}

/// An execution graph: tensors plus operators in execution order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    /// Workload name (e.g. `"DLRM_default"`).
    pub name: String,
    tensors: Vec<TensorMeta>,
    nodes: Vec<Node>,
    /// Highest node uid handed out so far (uids start at 1; 0 = unset).
    #[serde(default)]
    next_uid: u64,
    /// Lazily built derived views; dropped on every structural mutation.
    #[serde(skip)]
    index: OnceLock<Arc<GraphIndex>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Graph {
            name: name.into(),
            tensors: Vec::new(),
            nodes: Vec::new(),
            next_uid: 0,
            index: OnceLock::new(),
        }
    }

    /// Hands out the next node uid.
    fn fresh_uid(&mut self) -> u64 {
        self.next_uid += 1;
        self.next_uid
    }

    /// The cached derived views (producers, consumers, node signatures),
    /// built on first use after any structural mutation.
    pub fn index(&self) -> Arc<GraphIndex> {
        self.index.get_or_init(|| Arc::new(GraphIndex::build(self))).clone()
    }

    /// Adds a tensor and returns its handle.
    pub fn add_tensor(&mut self, meta: TensorMeta) -> TensorId {
        self.index.take();
        self.tensors.push(meta);
        TensorId(self.tensors.len() - 1)
    }

    /// Appends a node at the end of the execution order.
    ///
    /// # Panics
    /// Panics if any referenced tensor id is out of range; structural
    /// problems beyond that are reported by [`Graph::validate`].
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        inputs: Vec<TensorId>,
        outputs: Vec<TensorId>,
    ) -> NodeId {
        for t in inputs.iter().chain(outputs.iter()) {
            assert!(t.0 < self.tensors.len(), "tensor id {} out of range", t.0);
        }
        self.index.take();
        let id = NodeId(self.nodes.len());
        let uid = self.fresh_uid();
        self.nodes.push(Node { id, uid, name: name.into(), op, inputs, outputs, stream: 0 });
        id
    }

    /// Appends a node named after its op kind.
    pub fn add_op(&mut self, op: OpKind, inputs: Vec<TensorId>, outputs: Vec<TensorId>) -> NodeId {
        self.add_node(op.overhead_key().to_string(), op, inputs, outputs)
    }

    /// Tensor metadata by handle.
    ///
    /// # Panics
    /// Panics if the handle came from a different graph and is out of range.
    pub fn tensor(&self, id: TensorId) -> &TensorMeta {
        &self.tensors[id.0]
    }

    /// Tensor metadata by handle, without panicking: `None` if the handle
    /// does not belong to this graph. The untrusted-input safe twin of
    /// [`Graph::tensor`] — callers add their own context (e.g. the
    /// referencing node) to the failure.
    pub fn try_tensor(&self, id: TensorId) -> Option<&TensorMeta> {
        self.tensors.get(id.0)
    }

    /// Mutable tensor metadata by handle. Invalidates the cached
    /// [`GraphIndex`]: node signatures cover tensor metadata, so editing a
    /// meta (e.g. a batch resize) changes the signatures of every node
    /// touching that tensor.
    pub fn tensor_mut(&mut self, id: TensorId) -> &mut TensorMeta {
        self.index.take();
        &mut self.tensors[id.0]
    }

    /// All tensors with their handles.
    pub fn tensors(&self) -> impl Iterator<Item = (TensorId, &TensorMeta)> {
        self.tensors.iter().enumerate().map(|(i, t)| (TensorId(i), t))
    }

    /// Number of tensors.
    pub fn tensor_count(&self) -> usize {
        self.tensors.len()
    }

    /// Nodes in execution order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node by handle.
    pub fn node(&self, id: NodeId) -> Result<&Node, GraphError> {
        self.nodes.get(id.0).ok_or(GraphError::NoSuchNode { node: id.0 })
    }

    /// Mutable node by handle.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut Node, GraphError> {
        self.index.take();
        self.nodes.get_mut(id.0).ok_or(GraphError::NoSuchNode { node: id.0 })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node that produces `tensor`, if any (graph inputs have none).
    pub fn producer(&self, tensor: TensorId) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.outputs.contains(&tensor)).map(|n| n.id)
    }

    /// All nodes that consume `tensor`.
    pub fn consumers(&self, tensor: TensorId) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.inputs.contains(&tensor)).map(|n| n.id).collect()
    }

    /// Tensors not produced by any node (the graph's external inputs:
    /// training data, weights).
    pub fn external_inputs(&self) -> Vec<TensorId> {
        let mut produced = vec![false; self.tensors.len()];
        for n in &self.nodes {
            for t in &n.outputs {
                produced[t.0] = true;
            }
        }
        (0..self.tensors.len()).filter(|&i| !produced[i]).map(TensorId).collect()
    }

    /// Replaces the node list (used by transformations that rebuild
    /// execution order). Re-indexes node ids to match positions; existing
    /// uids are preserved (they are the identity that survives a rebuild)
    /// and freshly constructed nodes with `uid == 0` get new ones.
    pub fn set_nodes(&mut self, mut nodes: Vec<Node>) {
        self.index.take();
        self.next_uid = nodes.iter().map(|n| n.uid).fold(self.next_uid, u64::max);
        for (i, n) in nodes.iter_mut().enumerate() {
            n.id = NodeId(i);
            if n.uid == 0 {
                self.next_uid += 1;
                n.uid = self.next_uid;
            }
        }
        self.nodes = nodes;
    }

    /// Direct data-dependency predecessors of `node` (producers of its
    /// inputs), deduplicated.
    pub fn predecessors(&self, node: NodeId) -> Vec<NodeId> {
        let mut preds: Vec<NodeId> = self.nodes[node.0]
            .inputs
            .iter()
            .filter_map(|&t| self.producer(t))
            .collect();
        preds.sort();
        preds.dedup();
        preds
    }

    /// Checks structural invariants; see [`GraphError`] for the cases.
    pub fn validate(&self) -> Result<(), GraphError> {
        let mut producer: HashMap<usize, usize> = HashMap::new();
        for (pos, n) in self.nodes.iter().enumerate() {
            for t in n.inputs.iter().chain(n.outputs.iter()) {
                if t.0 >= self.tensors.len() {
                    return Err(GraphError::TensorOutOfRange { node: pos, tensor: t.0 });
                }
            }
            for t in &n.inputs {
                if n.outputs.contains(t) {
                    return Err(GraphError::InPlaceAlias { node: pos, tensor: t.0 });
                }
                if let Some(&p) = producer.get(&t.0) {
                    if p >= pos {
                        return Err(GraphError::UseBeforeDef { node: pos, tensor: t.0, producer: p });
                    }
                }
            }
            for t in &n.outputs {
                if let Some(&first) = producer.get(&t.0) {
                    return Err(GraphError::MultipleProducers { tensor: t.0, first, second: pos });
                }
                producer.insert(t.0, pos);
            }
        }
        // Check use-before-def also for tensors whose producer appears later.
        for (pos, n) in self.nodes.iter().enumerate() {
            for t in &n.inputs {
                if let Some(&p) = producer.get(&t.0) {
                    if p >= pos {
                        return Err(GraphError::UseBeforeDef { node: pos, tensor: t.0, producer: p });
                    }
                }
            }
        }
        Ok(())
    }

    /// Serializes the graph to pretty JSON (the paper exports captured
    /// execution graphs as JSON files).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("graph serialization cannot fail")
    }

    /// Deserializes a graph from JSON and validates it. Graphs exported
    /// before node uids existed deserialize with `uid == 0` everywhere;
    /// those nodes get fresh uids here so diffing works on any input.
    pub fn from_json(s: &str) -> Result<Self, Box<dyn std::error::Error>> {
        let mut g: Graph = serde_json::from_str(s)?;
        g.validate()?;
        g.next_uid = g.nodes.iter().map(|n| n.uid).fold(g.next_uid, u64::max);
        for i in 0..g.nodes.len() {
            if g.nodes[i].uid == 0 {
                g.next_uid += 1;
                g.nodes[i].uid = g.next_uid;
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorMeta;

    fn linear_graph() -> Graph {
        let mut g = Graph::new("test");
        let x = g.add_tensor(TensorMeta::activation(&[8, 4]).with_batch_dim(0));
        let w = g.add_tensor(TensorMeta::weight(&[16, 4]));
        let b = g.add_tensor(TensorMeta::weight(&[16]));
        let y = g.add_tensor(TensorMeta::activation(&[8, 16]).with_batch_dim(0));
        let z = g.add_tensor(TensorMeta::activation(&[8, 16]).with_batch_dim(0));
        g.add_op(OpKind::AddMm, vec![x, w, b], vec![y]);
        g.add_op(OpKind::Relu, vec![y], vec![z]);
        g
    }

    #[test]
    fn valid_graph_passes() {
        assert_eq!(linear_graph().validate(), Ok(()));
    }

    #[test]
    fn producers_and_consumers() {
        let g = linear_graph();
        assert_eq!(g.producer(TensorId(3)), Some(NodeId(0)));
        assert_eq!(g.producer(TensorId(0)), None);
        assert_eq!(g.consumers(TensorId(3)), vec![NodeId(1)]);
        assert_eq!(g.external_inputs(), vec![TensorId(0), TensorId(1), TensorId(2)]);
    }

    #[test]
    fn use_before_def_detected() {
        let mut g = Graph::new("bad");
        let a = g.add_tensor(TensorMeta::activation(&[4]));
        let b = g.add_tensor(TensorMeta::activation(&[4]));
        // Node 0 consumes b, which node 1 produces.
        g.add_op(OpKind::Relu, vec![b], vec![a]);
        let c = g.add_tensor(TensorMeta::activation(&[4]));
        g.add_op(OpKind::Relu, vec![c], vec![b]);
        assert!(matches!(g.validate(), Err(GraphError::UseBeforeDef { .. })));
    }

    #[test]
    fn multiple_producers_detected() {
        let mut g = Graph::new("bad");
        let a = g.add_tensor(TensorMeta::activation(&[4]));
        let b = g.add_tensor(TensorMeta::activation(&[4]));
        g.add_op(OpKind::Relu, vec![a], vec![b]);
        g.add_op(OpKind::Sigmoid, vec![a], vec![b]);
        assert!(matches!(g.validate(), Err(GraphError::MultipleProducers { .. })));
    }

    #[test]
    fn inplace_alias_detected() {
        let mut g = Graph::new("bad");
        let a = g.add_tensor(TensorMeta::activation(&[4]));
        g.add_op(OpKind::Relu, vec![a], vec![a]);
        assert!(matches!(g.validate(), Err(GraphError::InPlaceAlias { .. })));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dangling_tensor_panics_at_add() {
        let mut g = Graph::new("bad");
        g.add_op(OpKind::Relu, vec![TensorId(0)], vec![]);
    }

    #[test]
    fn json_roundtrip() {
        let g = linear_graph();
        let s = g.to_json();
        let back = Graph::from_json(&s).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.tensor_count(), g.tensor_count());
        assert_eq!(back.nodes()[0].op, OpKind::AddMm);
    }

    #[test]
    fn predecessors_deduplicated() {
        let mut g = Graph::new("dup");
        let a = g.add_tensor(TensorMeta::activation(&[4, 4]));
        let b = g.add_tensor(TensorMeta::activation(&[4, 4]));
        let c = g.add_tensor(TensorMeta::activation(&[4, 8]));
        g.add_op(OpKind::Relu, vec![a], vec![b]);
        let n = g.add_op(OpKind::Cat { dim: 1 }, vec![b, b], vec![c]);
        assert_eq!(g.predecessors(n), vec![NodeId(0)]);
    }
}
