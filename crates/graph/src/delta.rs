//! Structural diffing between execution graphs.
//!
//! Incremental re-prediction (see `dlperf-core`) needs to know which nodes
//! of a mutated graph still contribute *bitwise identical* per-node cost
//! terms to the Algorithm-1 walk. That is a purely structural question:
//! a node's lowered kernels and overhead bundle are functions of its op,
//! stream, and the metadata of the tensors it touches. We hash exactly
//! those into a per-node *signature* and diff signature sequences.
//!
//! The hasher is FNV-1a, implemented here rather than taken from
//! [`std::collections::hash_map::RandomState`] because signatures must be
//! deterministic: they are compared across graphs and cached across calls,
//! so a per-process random seed would be useless (and `SipHash` keys are
//! randomized). Determinism is only required *within* a process — the
//! signatures never persist.

use std::hash::{Hash, Hasher};

use crate::graph::{Graph, Node, NodeId};

/// FNV-1a, 64-bit: a fixed-seed [`Hasher`] for structural signatures.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The structural signature of one node: everything Algorithm 1 reads when
/// pricing it. Two nodes with equal signatures lower to the same kernels,
/// draw the same overhead bundle, and read/write the same tensor slots —
/// so they step the walk identically given identical incoming state.
pub fn node_signature(graph: &Graph, node: &Node) -> u64 {
    let mut h = Fnv64::default();
    node.op.hash(&mut h);
    node.stream.hash(&mut h);
    node.inputs.len().hash(&mut h);
    for t in &node.inputs {
        t.hash(&mut h);
        graph.tensor(*t).hash(&mut h);
    }
    node.outputs.len().hash(&mut h);
    for t in &node.outputs {
        t.hash(&mut h);
        graph.tensor(*t).hash(&mut h);
    }
    h.finish()
}

/// Longest common prefix and suffix of two signature sequences, with the
/// suffix clamped so the two regions never overlap on either side.
pub fn common_affix(base: &[u64], new: &[u64]) -> (usize, usize) {
    let min = base.len().min(new.len());
    let mut prefix = 0;
    while prefix < min && base[prefix] == new[prefix] {
        prefix += 1;
    }
    let mut suffix = 0;
    while suffix < min - prefix && base[base.len() - 1 - suffix] == new[new.len() - 1 - suffix] {
        suffix += 1;
    }
    (prefix, suffix)
}

/// The result of diffing a mutated graph against a baseline: the frontier
/// of nodes whose signatures changed, bracketed by clean prefix/suffix
/// regions that an incremental walk can reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDelta {
    /// Leading nodes (by position) identical in both graphs.
    pub prefix: usize,
    /// Trailing nodes identical in both graphs (never overlapping the
    /// prefix in either graph).
    pub suffix: usize,
    /// Dirty nodes of the *new* graph: positions `prefix .. len - suffix`.
    pub dirty: Vec<NodeId>,
    /// Stable uids of the dirty nodes (0 where unassigned).
    pub dirty_uids: Vec<u64>,
}

impl GraphDelta {
    /// Diffs `new` against `base` by node signature.
    pub fn between(base: &Graph, new: &Graph) -> GraphDelta {
        let base_sigs = base.index();
        let new_index = new.index();
        let (prefix, suffix) = common_affix(base_sigs.signatures(), new_index.signatures());
        let dirty_range = prefix..new.node_count() - suffix;
        GraphDelta {
            prefix,
            suffix,
            dirty: dirty_range.clone().map(NodeId).collect(),
            dirty_uids: new.nodes()[dirty_range].iter().map(|n| n.uid).collect(),
        }
    }

    /// Whether the graphs are structurally identical (no dirty nodes and
    /// equal lengths — pure prefix match).
    pub fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;
    use crate::tensor::TensorMeta;

    fn chain(n: usize) -> Graph {
        let mut g = Graph::new("chain");
        let mut prev = g.add_tensor(TensorMeta::activation(&[8, 8]).with_batch_dim(0));
        for _ in 0..n {
            let next = g.add_tensor(TensorMeta::activation(&[8, 8]).with_batch_dim(0));
            g.add_op(OpKind::Relu, vec![prev], vec![next]);
            prev = next;
        }
        g
    }

    #[test]
    fn identical_graphs_diff_clean() {
        let a = chain(6);
        let b = a.clone();
        let d = GraphDelta::between(&a, &b);
        assert!(d.is_clean());
        assert_eq!(d.prefix, 6);
    }

    #[test]
    fn single_op_replacement_dirties_one_node() {
        let a = chain(6);
        let mut b = a.clone();
        b.node_mut(NodeId(3)).unwrap().op = OpKind::Sigmoid;
        let d = GraphDelta::between(&a, &b);
        assert_eq!((d.prefix, d.suffix), (3, 2));
        assert_eq!(d.dirty, vec![NodeId(3)]);
        assert_eq!(d.dirty_uids, vec![a.nodes()[3].uid]);
    }

    #[test]
    fn tensor_meta_edit_dirties_its_toucher_via_tensor_mut() {
        let a = chain(5);
        let mut b = a.clone();
        // Editing the meta of the chain's 3rd intermediate tensor dirties
        // its producer (node 2) and consumer (node 3).
        *b.tensor_mut(crate::tensor::TensorId(3)) =
            TensorMeta::activation(&[16, 8]).with_batch_dim(0);
        let d = GraphDelta::between(&a, &b);
        assert_eq!((d.prefix, d.suffix), (2, 1));
        assert_eq!(d.dirty, vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn uids_survive_set_nodes_reorder() {
        let mut g = Graph::new("two-streams");
        let a = g.add_tensor(TensorMeta::activation(&[4]));
        let b = g.add_tensor(TensorMeta::activation(&[4]));
        let c = g.add_tensor(TensorMeta::activation(&[4]));
        g.add_op(OpKind::Relu, vec![a], vec![b]);
        g.add_op(OpKind::Sigmoid, vec![a], vec![c]);
        let uids: Vec<u64> = g.nodes().iter().map(|n| n.uid).collect();
        // Swap the two (independent) nodes.
        let mut nodes = g.nodes().to_vec();
        nodes.swap(0, 1);
        g.set_nodes(nodes);
        assert!(g.validate().is_ok());
        let after: Vec<u64> = g.nodes().iter().map(|n| n.uid).collect();
        assert_eq!(after, vec![uids[1], uids[0]], "uids must travel with their nodes");
        // Ids are positions again.
        assert_eq!(g.nodes()[0].id, NodeId(0));
    }

    #[test]
    fn fresh_nodes_get_uids_in_set_nodes() {
        let mut g = chain(2);
        let x = g.add_tensor(TensorMeta::activation(&[8, 8]).with_batch_dim(0));
        let mut nodes = g.nodes().to_vec();
        let last_out = nodes.last().unwrap().outputs[0];
        nodes.push(Node {
            id: NodeId(0),
            uid: 0,
            name: "tail".into(),
            op: OpKind::Relu,
            inputs: vec![last_out],
            outputs: vec![x],
            stream: 0,
        });
        g.set_nodes(nodes);
        let uids: Vec<u64> = g.nodes().iter().map(|n| n.uid).collect();
        assert!(uids.iter().all(|&u| u != 0), "every installed node gets a uid: {uids:?}");
        let mut sorted = uids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), uids.len(), "uids must be unique: {uids:?}");
    }

    #[test]
    fn common_affix_clamps_overlap() {
        // All-equal sequences: suffix must not double-count the prefix.
        let s = [1u64, 2, 3];
        assert_eq!(common_affix(&s, &s), (3, 0));
        // Insertion in the middle of repeated values.
        let a = [7u64, 7, 7];
        let b = [7u64, 7, 7, 7];
        let (p, s) = common_affix(&a, &b);
        assert!(p + s <= 3, "affix regions may not overlap: ({p}, {s})");
    }

    #[test]
    fn signatures_are_cached_and_invalidated() {
        let mut g = chain(4);
        let first = g.index();
        let again = g.index();
        assert!(Arc::ptr_eq(&first, &again), "index must be cached between reads");
        g.node_mut(NodeId(0)).unwrap().op = OpKind::Sigmoid;
        let rebuilt = g.index();
        assert!(!Arc::ptr_eq(&first, &rebuilt), "mutation must drop the cache");
        assert_ne!(first.signatures()[0], rebuilt.signatures()[0]);
        assert_eq!(first.signatures()[1..], rebuilt.signatures()[1..]);
    }

    use std::sync::Arc;

    #[test]
    fn index_producer_consumer_match_scan() {
        let g = chain(5);
        let idx = g.index();
        for (t, _) in g.tensors() {
            assert_eq!(idx.producer(t), g.producer(t));
            assert_eq!(idx.consumers(t), g.consumers(t).as_slice());
        }
    }

    #[test]
    fn json_roundtrip_assigns_uids_to_legacy_graphs() {
        let g = chain(3);
        // Zero out uids in the export to simulate a pre-uid graph file
        // (serde's `default` fills the same zeros for absent fields).
        let legacy: String = g
            .to_json()
            .lines()
            .map(|l| {
                let indent = l.len() - l.trim_start().len();
                if l.trim_start().starts_with("\"uid\":") {
                    format!("{}\"uid\": 0,", &l[..indent])
                } else if l.trim_start().starts_with("\"next_uid\":") {
                    format!("{}\"next_uid\": 0", &l[..indent])
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let back = Graph::from_json(&legacy).unwrap();
        assert!(back.nodes().iter().all(|n| n.uid != 0));
    }
}
