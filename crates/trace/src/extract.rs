//! Host-overhead classification and statistics (the paper's §III-C).
//!
//! Five overhead types (Fig. 6):
//!
//! * **T1** — between two top-level op calls;
//! * **T2** — from op entry to its first kernel launch;
//! * **T3** — from its last kernel launch to op exit;
//! * **T4** — execution time of CUDA runtime functions (`cudaLaunchKernel`);
//! * **T5** — between two kernel launches (and the body of host-only ops).
//!
//! Extraction walks 100-iteration trace files, removes per-type outliers
//! outside the Tukey whiskers, subtracts the profiler overheads (4 µs for
//! GPU events, the empirical 2 µs for CPU events), and stores per-op-type
//! means in a JSON-serializable database.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event_tree::EventTree;
use crate::events::{Trace, TraceLoadError};
use crate::stats::{iqr_filter, mean, std_dev};

/// Profiler overhead subtracted per CPU event (the paper's empirical 2 µs).
pub const PROFILER_CPU_EST_US: f64 = 2.0;
/// Profiler overhead subtracted per GPU event (PyTorch's documented 4 µs).
pub const PROFILER_GPU_EST_US: f64 = 4.0;

/// The five host-overhead types of Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OverheadType {
    /// Between two top-level op calls.
    T1 = 0,
    /// Before an op's first kernel launch.
    T2 = 1,
    /// After an op's last kernel launch.
    T3 = 2,
    /// A CUDA runtime function call.
    T4 = 3,
    /// Between two kernel launches.
    T5 = 4,
}

impl OverheadType {
    /// All five types in order.
    pub const ALL: [OverheadType; 5] = [
        OverheadType::T1,
        OverheadType::T2,
        OverheadType::T3,
        OverheadType::T4,
        OverheadType::T5,
    ];
}

impl std::fmt::Display for OverheadType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", *self as usize + 1)
    }
}

/// Mean/std/count of one (op type, overhead type) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadStat {
    /// Mean after outlier removal (µs).
    pub mean_us: f64,
    /// Standard deviation after outlier removal (µs).
    pub std_us: f64,
    /// Surviving sample count.
    pub count: usize,
}

/// The overhead database extracted from traces: per-op and per-type stats.
///
/// Backed by `BTreeMap`s (not `HashMap`s) on purpose: statistics are
/// *accumulated* in map iteration order, and floating-point sums are not
/// associative — hash-order iteration would make the extracted means vary
/// bitwise from process to process, breaking checkpoint digests and golden
/// snapshots. Ordered maps pin the summation order once and for all.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OverheadStats {
    per_op: BTreeMap<String, BTreeMap<OverheadType, OverheadStat>>,
    per_type: BTreeMap<OverheadType, OverheadStat>,
}

impl OverheadStats {
    /// Extracts overhead statistics from one workload's iteration traces.
    ///
    /// `profiled` says whether the traces carry profiler overheads (they do
    /// when produced by a profiling [`crate::ExecutionEngine`]); if so the
    /// standard estimates are subtracted.
    pub fn extract(traces: &[Trace], profiled: bool) -> Self {
        let prof_cpu = if profiled { PROFILER_CPU_EST_US } else { 0.0 };
        let prof_gpu = if profiled { PROFILER_GPU_EST_US } else { 0.0 };

        let mut samples: BTreeMap<(String, OverheadType), Vec<f64>> = BTreeMap::new();
        let mut push = |key: &str, ty: OverheadType, v: f64| {
            samples.entry((key.to_string(), ty)).or_default().push(v.max(0.0));
        };

        for trace in traces {
            let tree = EventTree::build(trace);
            let mut prev_end: f64 = 0.0;
            for op in &tree.ops {
                push(&op.op.op_key, OverheadType::T1, op.op.ts_us - prev_end);
                prev_end = op.op.end_us();

                if op.launches.is_empty() {
                    // Host-only op: its body is a T5-class overhead.
                    push(&op.op.op_key, OverheadType::T5, op.op.dur_us - prof_cpu);
                    continue;
                }
                let first = &op.launches[0].runtime;
                let last = &op.launches[op.launches.len() - 1].runtime;
                push(&op.op.op_key, OverheadType::T2, first.ts_us - op.op.ts_us - prof_cpu);
                push(&op.op.op_key, OverheadType::T3, op.op.end_us() - last.end_us());
                for pair in op.launches.windows(2) {
                    push(
                        &op.op.op_key,
                        OverheadType::T5,
                        pair[1].runtime.ts_us - pair[0].runtime.end_us(),
                    );
                }
                for l in &op.launches {
                    push(&op.op.op_key, OverheadType::T4, l.runtime.dur_us - prof_gpu);
                }
            }
        }

        let mut per_op: BTreeMap<String, BTreeMap<OverheadType, OverheadStat>> = BTreeMap::new();
        let mut per_type_samples: BTreeMap<OverheadType, Vec<f64>> = BTreeMap::new();
        for ((key, ty), vals) in samples {
            let kept = iqr_filter(&vals);
            per_type_samples.entry(ty).or_default().extend(kept.iter().copied());
            per_op.entry(key).or_default().insert(
                ty,
                OverheadStat { mean_us: mean(&kept), std_us: std_dev(&kept), count: kept.len() },
            );
        }
        let per_type = per_type_samples
            .into_iter()
            .map(|(ty, vals)| {
                let kept = iqr_filter(&vals);
                (ty, OverheadStat { mean_us: mean(&kept), std_us: std_dev(&kept), count: kept.len() })
            })
            .collect();
        OverheadStats { per_op, per_type }
    }

    /// Like [`OverheadStats::extract`], but for traces that did not come
    /// out of a live engine — trace files are untrusted input, and a single
    /// non-finite timestamp would otherwise poison every downstream mean
    /// silently. Each trace is validated first and failures are typed,
    /// naming the offending trace.
    ///
    /// # Errors
    /// [`TraceLoadError::Invalid`] naming the first trace (by index and
    /// workload) whose timing content fails [`Trace::validate`].
    pub fn try_extract(traces: &[Trace], profiled: bool) -> Result<Self, TraceLoadError> {
        for (i, t) in traces.iter().enumerate() {
            t.validate().map_err(|e| {
                TraceLoadError::Invalid(format!("trace {i} (`{}`): {e}", t.workload))
            })?;
        }
        Ok(Self::extract(traces, profiled))
    }

    /// The stat of one (op type, overhead type) cell, if observed.
    pub fn get(&self, op_key: &str, ty: OverheadType) -> Option<OverheadStat> {
        self.per_op.get(op_key).and_then(|m| m.get(&ty)).copied()
    }

    /// Mean for one cell, falling back to the type-level aggregate.
    pub fn mean_us(&self, op_key: &str, ty: OverheadType) -> f64 {
        self.get(op_key, ty)
            .or_else(|| self.per_type.get(&ty).copied())
            .map(|s| s.mean_us)
            .unwrap_or(0.0)
    }

    /// Aggregate stat of one overhead type across all ops.
    pub fn type_stat(&self, ty: OverheadType) -> Option<OverheadStat> {
        self.per_type.get(&ty).copied()
    }

    /// Op types observed.
    pub fn op_keys(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.per_op.keys().map(String::as_str).collect();
        keys.sort_unstable();
        keys
    }

    /// The `n` op types with the most samples of `ty` (the "10 most
    /// dominating ops per overhead type" of Fig. 8), with their stats.
    pub fn dominating_ops(&self, ty: OverheadType, n: usize) -> Vec<(String, OverheadStat)> {
        let mut rows: Vec<(String, OverheadStat)> = self
            .per_op
            .iter()
            .filter_map(|(k, m)| m.get(&ty).map(|s| (k.clone(), *s)))
            .collect();
        rows.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows
    }

    /// Merges several workloads' statistics into one *shared* database
    /// (sample-count-weighted), the paper's `shared_E2E` configuration.
    pub fn merge(all: &[&OverheadStats]) -> OverheadStats {
        let mut out = OverheadStats::default();
        let mut acc: BTreeMap<(String, OverheadType), (f64, f64, usize)> = BTreeMap::new();
        let mut type_acc: BTreeMap<OverheadType, (f64, f64, usize)> = BTreeMap::new();
        for stats in all {
            for (key, m) in &stats.per_op {
                for (ty, s) in m {
                    let e = acc.entry((key.clone(), *ty)).or_insert((0.0, 0.0, 0));
                    e.0 += s.mean_us * s.count as f64;
                    e.1 += s.std_us * s.count as f64;
                    e.2 += s.count;
                }
            }
            for (ty, s) in &stats.per_type {
                let e = type_acc.entry(*ty).or_insert((0.0, 0.0, 0));
                e.0 += s.mean_us * s.count as f64;
                e.1 += s.std_us * s.count as f64;
                e.2 += s.count;
            }
        }
        for ((key, ty), (m, s, c)) in acc {
            if c > 0 {
                out.per_op.entry(key).or_default().insert(
                    ty,
                    OverheadStat { mean_us: m / c as f64, std_us: s / c as f64, count: c },
                );
            }
        }
        for (ty, (m, s, c)) in type_acc {
            if c > 0 {
                out.per_type.insert(
                    ty,
                    OverheadStat { mean_us: m / c as f64, std_us: s / c as f64, count: c },
                );
            }
        }
        out
    }

    /// Serializes the database to JSON (the paper stores overhead means in a
    /// JSON file reused across predictions).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("overhead stats serialize")
    }

    /// Deserializes the database from JSON, rejecting databases whose stats
    /// would poison predictions (overhead files are untrusted input: they
    /// travel between machines in the paper's workflow).
    ///
    /// # Errors
    /// [`TraceLoadError::Parse`] for malformed JSON; [`TraceLoadError::Invalid`]
    /// if any cell carries a non-finite or negative mean or std.
    pub fn from_json(s: &str) -> Result<Self, TraceLoadError> {
        let stats: OverheadStats = serde_json::from_str(s)?;
        let check = |where_: &str, s: &OverheadStat| -> Result<(), TraceLoadError> {
            if !s.mean_us.is_finite() || s.mean_us < 0.0 || !s.std_us.is_finite() || s.std_us < 0.0
            {
                return Err(TraceLoadError::Invalid(format!(
                    "overhead cell {where_} has invalid stats (mean {} µs, std {} µs)",
                    s.mean_us, s.std_us
                )));
            }
            Ok(())
        };
        for (key, m) in &stats.per_op {
            for (ty, s) in m {
                check(&format!("({key}, {ty})"), s)?;
            }
        }
        for (ty, s) in &stats.per_type {
            check(&format!("(*, {ty})"), s)?;
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecutionEngine;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_models::DlrmConfig;

    fn stats_for(batch: u64, iters: usize, seed: u64) -> (OverheadStats, ExecutionEngine) {
        let g = DlrmConfig {
            rows_per_table: vec![10_000; 4],
            ..DlrmConfig::default_config(batch)
        }
        .build();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), seed);
        let runs = e.run_iterations(&g, iters).unwrap();
        let traces: Vec<Trace> = runs.into_iter().map(|r| r.trace).collect();
        (OverheadStats::extract(&traces, true), e)
    }

    #[test]
    fn recovered_means_match_ground_truth() {
        let (stats, engine) = stats_for(256, 40, 31);
        // T1 for addmm should be close to the profile's ground truth.
        for key in ["aten::addmm", "aten::relu"] {
            let truth = engine.overheads().mean_us(key, OverheadType::T1);
            let got = stats.mean_us(key, OverheadType::T1);
            // IQR trimming biases the mean of a log-normal down a bit.
            let rel = (got - truth) / truth;
            assert!(
                rel.abs() < 0.25,
                "{key} T1: recovered {got} vs truth {truth}"
            );
            assert!(got < truth * 1.02, "trimmed mean should not exceed truth much");
        }
    }

    #[test]
    fn t4_near_launch_cost() {
        let (stats, engine) = stats_for(256, 20, 32);
        let truth = engine.overheads().base[OverheadType::T4 as usize].mean_us;
        let got = stats.type_stat(OverheadType::T4).unwrap().mean_us;
        assert!((got - truth).abs() / truth < 0.2, "T4 recovered {got} vs base {truth}");
    }

    #[test]
    fn size_independence_across_batches() {
        // The paper's argument for reusable overheads: stats at batch 128
        // and 1024 should be close.
        let (small, _) = stats_for(128, 25, 33);
        let (large, _) = stats_for(1024, 25, 34);
        for ty in OverheadType::ALL {
            let (a, b) = (
                small.type_stat(ty).unwrap().mean_us,
                large.type_stat(ty).unwrap().mean_us,
            );
            assert!(
                (a - b).abs() / a.max(b) < 0.2,
                "{ty} differs across batch sizes: {a} vs {b}"
            );
        }
    }

    #[test]
    fn merge_weights_by_count() {
        let (a, _) = stats_for(128, 10, 35);
        let (b, _) = stats_for(256, 10, 36);
        let shared = OverheadStats::merge(&[&a, &b]);
        let (sa, sb, sm) = (
            a.type_stat(OverheadType::T1).unwrap(),
            b.type_stat(OverheadType::T1).unwrap(),
            shared.type_stat(OverheadType::T1).unwrap(),
        );
        assert!(sm.mean_us >= sa.mean_us.min(sb.mean_us));
        assert!(sm.mean_us <= sa.mean_us.max(sb.mean_us));
        assert_eq!(sm.count, sa.count + sb.count);
    }

    #[test]
    fn json_roundtrip() {
        let (stats, _) = stats_for(128, 5, 37);
        let back = OverheadStats::from_json(&stats.to_json()).unwrap();
        assert_eq!(
            back.mean_us("aten::addmm", OverheadType::T2),
            stats.mean_us("aten::addmm", OverheadType::T2)
        );
    }

    #[test]
    fn corrupt_overhead_db_is_rejected_with_typed_error() {
        match OverheadStats::from_json("not a database") {
            Err(TraceLoadError::Parse(_)) => {}
            other => panic!("expected Parse error, got {other:?}"),
        }

        let mut poisoned = OverheadStats::default();
        poisoned.per_type.insert(
            OverheadType::T1,
            OverheadStat { mean_us: -4.0, std_us: 1.0, count: 3 },
        );
        match OverheadStats::from_json(&poisoned.to_json()) {
            Err(TraceLoadError::Invalid(why)) => {
                assert!(why.contains("T1"), "error should name the cell: {why}")
            }
            other => panic!("expected Invalid error, got {other:?}"),
        }
    }

    #[test]
    fn try_extract_rejects_poisoned_traces_with_typed_error() {
        let g = DlrmConfig {
            rows_per_table: vec![10_000; 4],
            ..DlrmConfig::default_config(128)
        }
        .build();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 39);
        let runs = e.run_iterations(&g, 3).unwrap();
        let mut traces: Vec<Trace> = runs.into_iter().map(|r| r.trace).collect();

        // Clean traces extract identically through both entry points.
        let checked = OverheadStats::try_extract(&traces, true).unwrap();
        let unchecked = OverheadStats::extract(&traces, true);
        assert_eq!(
            checked.mean_us("aten::addmm", OverheadType::T1),
            unchecked.mean_us("aten::addmm", OverheadType::T1)
        );

        // One NaN timestamp in the middle trace is caught and named.
        traces[1].events[0].ts_us = f64::NAN;
        match OverheadStats::try_extract(&traces, true) {
            Err(TraceLoadError::Invalid(why)) => {
                assert!(why.contains("trace 1"), "error should name the trace: {why}");
            }
            other => panic!("expected Invalid error, got {other:?}"),
        }
    }

    #[test]
    fn dominating_ops_are_frequent_ops() {
        let (stats, _) = stats_for(256, 10, 38);
        let top = stats.dominating_ops(OverheadType::T4, 10);
        assert!(!top.is_empty());
        assert!(top.len() <= 10);
        // Counts are descending.
        for w in top.windows(2) {
            assert!(w[0].1.count >= w[1].1.count);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(OverheadType::T1.to_string(), "T1");
        assert_eq!(OverheadType::T5.to_string(), "T5");
    }
}
