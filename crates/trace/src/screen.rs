//! Shared hostile-input screening primitives.
//!
//! Two subsystems read JSON that an adversary (or a crashed fleet job)
//! may have written: `dlperf-serve`'s wire protocol and the
//! [`crate::ingest`] trace-corpus scanner. Both need the same defenses —
//! a string/escape-aware depth tracker so `[[[[…` cannot stack-overflow
//! the recursive vendored parser, NUL detection, and capped line reads
//! that never buffer an unbounded stream. This module is the single
//! implementation both delegate to; `serve::api` wraps it with its wire
//! constants unchanged, and the ingest scanner builds its chunked state
//! machine on [`JsonCursor`].

/// Limits applied by [`prescreen_line`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScreenLimits {
    /// Longest line accepted, in bytes.
    pub max_line_bytes: usize,
    /// Deepest container nesting accepted.
    pub max_json_depth: usize,
}

/// What one byte did to the lexical state, as reported by
/// [`JsonCursor::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lex {
    /// The byte opened a container (`{` or `[`) outside a string.
    Open,
    /// The byte closed a container (`}` or `]`) outside a string.
    Close,
    /// The byte is part of a string literal (including both quotes).
    Str,
    /// Any other byte outside a string.
    Plain,
}

/// A streaming JSON lexer tracking container depth across string literals
/// and escapes. It never recurses and holds constant state, so it is safe
/// to run over arbitrarily deep or long hostile input byte by byte.
#[derive(Debug, Clone, Default)]
pub struct JsonCursor {
    depth: usize,
    in_str: bool,
    escaped: bool,
}

impl JsonCursor {
    /// A cursor at depth zero, outside any string.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current container depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether the cursor is inside a string literal.
    pub fn in_string(&self) -> bool {
        self.in_str
    }

    /// Advances the lexical state by one byte.
    pub fn step(&mut self, b: u8) -> Lex {
        if self.in_str {
            if self.escaped {
                self.escaped = false;
            } else if b == b'\\' {
                self.escaped = true;
            } else if b == b'"' {
                self.in_str = false;
            }
            return Lex::Str;
        }
        match b {
            b'"' => {
                self.in_str = true;
                Lex::Str
            }
            b'[' | b'{' => {
                self.depth += 1;
                Lex::Open
            }
            b']' | b'}' => {
                self.depth = self.depth.saturating_sub(1);
                Lex::Close
            }
            _ => Lex::Plain,
        }
    }
}

/// Rejects hostile input lines before a recursive JSON parser runs:
/// over-long lines, container nesting past the depth cap, and interior
/// NUL bytes outside string literals.
///
/// # Errors
/// A static reason string suitable for a 400 response or a quarantine
/// entry.
pub fn prescreen_line(line: &str, limits: &ScreenLimits) -> Result<(), &'static str> {
    if line.len() > limits.max_line_bytes {
        return Err("request line exceeds size cap");
    }
    let mut cursor = JsonCursor::new();
    for b in line.bytes() {
        match cursor.step(b) {
            Lex::Open => {
                if cursor.depth() > limits.max_json_depth {
                    return Err("request nesting exceeds depth cap");
                }
            }
            Lex::Plain => {
                if b == 0 {
                    return Err("request contains NUL bytes");
                }
            }
            Lex::Close | Lex::Str => {}
        }
    }
    Ok(())
}

/// Outcome of one [`read_bounded_line`] call.
#[derive(Debug)]
pub enum LineRead {
    /// The stream ended cleanly.
    Eof,
    /// One complete line, trailing `\n`/`\r\n` stripped.
    Line(String),
    /// The line exceeded the byte cap. Its remainder has already been
    /// drained through the next newline (or EOF) in bounded memory, so
    /// the caller can reject it and keep reading the stream.
    Oversized,
}

/// Reads one newline-delimited record while never buffering more than
/// `max_line_bytes + 1` bytes, whatever the peer (or file) contains. This
/// is the transport-side half of the hostile-input screen:
/// [`prescreen_line`] checks a line it is handed, but only a capped read
/// keeps a newline-less multi-gigabyte stream from exhausting memory
/// before that check runs.
///
/// # Errors
/// Propagates I/O errors; non-UTF-8 lines surface as `InvalidData`,
/// matching what `BufRead::lines` would have produced.
pub fn read_bounded_line<R: std::io::BufRead>(
    reader: &mut R,
    max_line_bytes: usize,
) -> std::io::Result<LineRead> {
    use std::io::{BufRead as _, Read};
    let mut buf = Vec::new();
    let n = (&mut *reader).take(max_line_bytes as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    } else if buf.len() > max_line_bytes {
        // The cap fired before a newline: skip to the end of this line
        // chunk-by-chunk so the next read starts on a fresh line.
        loop {
            let chunk = reader.fill_buf()?;
            if chunk.is_empty() {
                break;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    reader.consume(pos + 1);
                    break;
                }
                None => {
                    let len = chunk.len();
                    reader.consume(len);
                }
            }
        }
        return Ok(LineRead::Oversized);
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(LineRead::Line(line)),
        Err(_) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "stream did not contain valid UTF-8",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIMITS: ScreenLimits = ScreenLimits { max_line_bytes: 1024, max_json_depth: 8 };

    #[test]
    fn cursor_tracks_depth_across_strings_and_escapes() {
        let mut c = JsonCursor::new();
        for b in br#"{"a": "[{\"}", "b": [1, {}]}"#.iter().copied() {
            c.step(b);
        }
        assert_eq!(c.depth(), 0);
        assert!(!c.in_string());

        let mut c = JsonCursor::new();
        for b in br#"[["deep"#.iter().copied() {
            c.step(b);
        }
        assert_eq!(c.depth(), 2);
        assert!(c.in_string());
    }

    #[test]
    fn prescreen_rejects_oversized_deep_and_nul() {
        assert!(prescreen_line(&"x".repeat(1025), &LIMITS).is_err());
        assert!(prescreen_line(&"[".repeat(9), &LIMITS).is_err());
        assert!(prescreen_line("{\"k\"\0}", &LIMITS).is_err());
        // Brackets and NULs inside strings are the parser's problem, not
        // a stack or framing hazard.
        assert!(prescreen_line(&format!("{{\"s\": \"{}\"}}", "[".repeat(64)), &LIMITS).is_ok());
        assert!(prescreen_line("{\"ok\": 1}", &LIMITS).is_ok());
    }

    #[test]
    fn bounded_read_caps_and_resumes() {
        let mut data = vec![b'x'; 5000];
        data.push(b'\n');
        data.extend_from_slice(b"next\n");
        let mut reader = std::io::BufReader::with_capacity(256, &data[..]);
        assert!(matches!(read_bounded_line(&mut reader, 1024).unwrap(), LineRead::Oversized));
        match read_bounded_line(&mut reader, 1024).unwrap() {
            LineRead::Line(l) => assert_eq!(l, "next"),
            other => panic!("expected the next line, got {other:?}"),
        }
        assert!(matches!(read_bounded_line(&mut reader, 1024).unwrap(), LineRead::Eof));
    }
}
