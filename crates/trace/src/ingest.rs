//! Streaming, bounded-memory ingestion of Chrome-trace corpora.
//!
//! Fleet trace corpora are hostile input in the same sense as
//! `dlperf-serve`'s wire protocol: files arrive truncated by crashed
//! jobs, bit-rotted, with events duplicated, reordered, or interleaved
//! with garbage. The strict loaders ([`Trace::from_json`],
//! `ChromeTraceSink::parse_json`) fail the whole artifact on the first
//! bad byte, which is the right contract for artifacts *this* repo
//! wrote, and the wrong one for calibration that must run unattended
//! over thousands of external files.
//!
//! This module is robust by construction:
//!
//! * **Bounded memory.** A file is scanned incrementally through a fixed
//!   read buffer plus three capped dynamic buffers (trace metadata,
//!   current event, current key). The scanner never holds a whole file;
//!   [`IngestLimits::scan_buffer_cap`] is the hard ceiling on dynamic
//!   buffer bytes and [`FileReport::peak_buffer_bytes`] is the measured
//!   high-water mark that tests assert against it.
//! * **Typed per-event results.** Each event either parses, or is
//!   rejected with a reason ([`SkipCounts`]): malformed bytes, over the
//!   per-event cap, invalid timing, a duplicate correlation id
//!   (last-wins, like [`Trace::from_json_lenient`]), or an out-of-order
//!   `Op` timestamp.
//! * **Skip budgets.** Rejected events are skipped and counted up to
//!   [`IngestLimits::skip_budget`] per file; past the budget the *file*
//!   is quarantined ([`FileReject::SkipBudgetExhausted`]), never the
//!   corpus.
//! * **Quarantine, not crash.** Structural failures (truncation, depth
//!   bombs, NUL framing, byte caps, I/O errors) quarantine the file with
//!   a typed [`FileReject`]; the per-file [`FileReport`]s aggregate into
//!   a [`QuarantineReport`] so every bad event and file is accounted
//!   for.
//!
//! The scanner accepts the two on-disk dialects this repo produces: a
//! single [`Trace`] object ([`Trace::to_json`]) or a JSON array of them
//! (`ChromeTraceSink::to_json`). Corpus-level fan-out, checkpointing,
//! and calibration live in `dlperf-core`'s `ingest` module; this module
//! is the per-file substrate.

use std::collections::HashMap;
use std::io::Read;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::events::{EventCat, Trace, TraceEvent};
use crate::screen::{JsonCursor, Lex};

/// Hard resource caps the scanner enforces on every file. These are the
/// trace-side analogue of serve's `MAX_LINE_BYTES` / `MAX_JSON_DEPTH`:
/// they bound what hostile input can make the process hold, not what
/// well-formed input is expected to need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestLimits {
    /// Most bytes read from one file before it is quarantined
    /// [`FileReject::TooLarge`].
    pub max_file_bytes: u64,
    /// Most bytes buffered for one event; larger events are rejected
    /// as oversized without ever being held in full.
    pub max_event_bytes: usize,
    /// Most bytes of non-event trace metadata (workload, device, span)
    /// buffered; past this the file is structurally quarantined.
    pub max_meta_bytes: usize,
    /// Deepest container nesting tolerated. Inside an event, deeper
    /// input poisons that event (malformed); outside, it quarantines
    /// the file.
    pub max_json_depth: usize,
    /// Events that may be rejected-and-skipped per file before the file
    /// itself is quarantined.
    pub skip_budget: u64,
}

impl Default for IngestLimits {
    fn default() -> Self {
        Self {
            max_file_bytes: 64 * 1024 * 1024,
            max_event_bytes: 64 * 1024,
            max_meta_bytes: 64 * 1024,
            max_json_depth: 64,
            skip_budget: 64,
        }
    }
}

impl IngestLimits {
    /// Hard ceiling on the scanner's dynamic buffer bytes for one file:
    /// metadata buffer + current-event buffer + the (16-byte) key
    /// buffer. [`FileReport::peak_buffer_bytes`] never exceeds this —
    /// the bounded-memory property tests assert it.
    pub fn scan_buffer_cap(&self) -> usize {
        self.max_meta_bytes + self.max_event_bytes + KEY_BUF_CAP
    }
}

/// Per-reason counts of events rejected and skipped in one file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkipCounts {
    /// Bytes that were not a parseable event object (including NUL or
    /// depth-bomb poisoned elements and interleaved garbage).
    pub malformed: u64,
    /// Events over [`IngestLimits::max_event_bytes`].
    pub oversized: u64,
    /// Events with non-finite timestamps or negative/non-finite
    /// durations.
    pub invalid_timing: u64,
    /// Earlier occurrences dropped by last-wins correlation dedup
    /// (same category, same nonzero id — the lenient-load semantics).
    pub duplicate_correlation: u64,
    /// `Op` events whose start timestamp ran backwards relative to an
    /// already-accepted `Op` (the engine emits ops in non-decreasing
    /// start order; a violation means reordering corrupted the file).
    pub out_of_order_op: u64,
}

impl SkipCounts {
    /// Total events skipped, across all reasons.
    pub fn total(&self) -> u64 {
        self.malformed
            + self.oversized
            + self.invalid_timing
            + self.duplicate_correlation
            + self.out_of_order_op
    }

    /// Adds another file's counts into this aggregate.
    pub fn merge(&mut self, other: &SkipCounts) {
        self.malformed += other.malformed;
        self.oversized += other.oversized;
        self.invalid_timing += other.invalid_timing;
        self.duplicate_correlation += other.duplicate_correlation;
        self.out_of_order_op += other.out_of_order_op;
    }
}

/// Why one event was rejected (and, within budget, skipped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventReject {
    Malformed,
    Oversized,
    InvalidTiming,
    DuplicateCorrelation,
    OutOfOrderOp,
}

/// Why a whole file was quarantined. Quarantine is always file-scoped:
/// one bad file never fails the corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileReject {
    /// The file could not be read.
    Io(String),
    /// The file exceeded [`IngestLimits::max_file_bytes`].
    TooLarge,
    /// The file's framing is broken outside any single event: not a
    /// trace object/array, truncated mid-object, nesting or metadata
    /// byte caps exceeded, NUL framing bytes, or unparseable metadata.
    Structure(String),
    /// More events were rejected than [`IngestLimits::skip_budget`]
    /// allows; the file is too corrupt to trust its survivors.
    SkipBudgetExhausted,
    /// Ingestion of the file panicked (recorded by the corpus driver's
    /// `catch_unwind` isolation, never by the scanner itself).
    Panic(String),
}

impl std::fmt::Display for FileReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileReject::Io(e) => write!(f, "I/O error: {e}"),
            FileReject::TooLarge => write!(f, "file exceeds byte cap"),
            FileReject::Structure(why) => write!(f, "broken structure: {why}"),
            FileReject::SkipBudgetExhausted => write!(f, "event skip budget exhausted"),
            FileReject::Panic(msg) => write!(f, "ingestion panicked: {msg}"),
        }
    }
}

/// Outcome class of one file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FileStatus {
    /// Every event parsed and survived validation.
    Clean,
    /// Some events were skipped (within budget); survivors are intact.
    Degraded,
    /// The file contributed nothing; see the reject reason.
    Quarantined(FileReject),
}

/// What happened to one file, in full: accepted/skipped accounting plus
/// the measured buffer high-water mark (the bounded-memory witness).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileReport {
    /// File path or synthetic label.
    pub label: String,
    /// Clean / degraded / quarantined outcome.
    pub status: FileStatus,
    /// Traces recovered from the file (0 when quarantined).
    pub traces: u64,
    /// Events accepted into those traces (0 when quarantined).
    pub events_accepted: u64,
    /// Events rejected and skipped, by reason. Kept even for
    /// quarantined files so every bad event stays accounted for.
    pub skips: SkipCounts,
    /// Total bytes consumed from the file.
    pub bytes_read: u64,
    /// High-water mark of the scanner's dynamic buffers, in bytes.
    /// Always ≤ [`IngestLimits::scan_buffer_cap`].
    pub peak_buffer_bytes: u64,
}

impl FileReport {
    /// Whether the file was quarantined.
    pub fn is_quarantined(&self) -> bool {
        matches!(self.status, FileStatus::Quarantined(_))
    }
}

/// Corpus-level roll-up of per-file outcomes: the artifact the chaos CI
/// job publishes, and the accounting the acceptance tests audit.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantineReport {
    /// One report per ingested file, in corpus order.
    pub files: Vec<FileReport>,
}

impl QuarantineReport {
    /// Adds one file's report.
    pub fn push(&mut self, report: FileReport) {
        self.files.push(report);
    }

    /// Files that ingested with zero skips.
    pub fn clean_files(&self) -> usize {
        self.files.iter().filter(|f| f.status == FileStatus::Clean).count()
    }

    /// Files that ingested with some events skipped.
    pub fn degraded_files(&self) -> usize {
        self.files.iter().filter(|f| f.status == FileStatus::Degraded).count()
    }

    /// Files quarantined outright.
    pub fn quarantined_files(&self) -> usize {
        self.files.iter().filter(|f| f.is_quarantined()).count()
    }

    /// Total events accepted across the corpus.
    pub fn events_accepted(&self) -> u64 {
        self.files.iter().map(|f| f.events_accepted).sum()
    }

    /// Total events skipped across the corpus, by reason.
    pub fn skips(&self) -> SkipCounts {
        let mut total = SkipCounts::default();
        for f in &self.files {
            total.merge(&f.skips);
        }
        total
    }

    /// Largest per-file dynamic-buffer high-water mark seen.
    pub fn peak_buffer_bytes(&self) -> u64 {
        self.files.iter().map(|f| f.peak_buffer_bytes).max().unwrap_or(0)
    }

    /// One-line human summary for logs and CI job output.
    pub fn summary(&self) -> String {
        format!(
            "{} files ({} clean, {} degraded, {} quarantined); \
             {} events accepted, {} skipped; peak scan buffer {} B",
            self.files.len(),
            self.clean_files(),
            self.degraded_files(),
            self.quarantined_files(),
            self.events_accepted(),
            self.skips().total(),
            self.peak_buffer_bytes(),
        )
    }

    /// Serializes the report (the CI artifact format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("quarantine report serialization cannot fail")
    }
}

/// Result of ingesting one file: the recovered traces plus the full
/// accounting. Quarantined files recover no traces.
#[derive(Debug, Clone)]
pub struct FileIngest {
    /// Traces recovered from the file (empty when quarantined).
    pub traces: Vec<Trace>,
    /// Accounting for the file.
    pub report: FileReport,
}

const KEY_BUF_CAP: usize = 16;
const READ_CHUNK: usize = 8 * 1024;

/// Scanner mode within one trace object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Buffering non-event metadata bytes, watching for the
    /// `"events"` key at depth 1.
    Meta,
    /// Saw `"events":`; waiting for the array opener.
    AwaitEvents,
    /// Inside the events array, accumulating one element at a time.
    Elems,
    /// The object closed.
    Done,
}

/// Incremental scanner for one `{...}` trace object. Fed one byte at a
/// time; holds at most `scan_buffer_cap` dynamic bytes regardless of
/// input. The events array is never buffered: each element is parsed
/// (or rejected) as soon as its closing byte arrives, and the metadata
/// buffer is spliced around an empty array for the final serde parse.
struct TraceScanner<'a> {
    limits: &'a IngestLimits,
    cursor: JsonCursor,
    mode: Mode,
    meta_buf: Vec<u8>,
    ev_buf: Vec<u8>,
    in_element: bool,
    expect_separator: bool,
    ev_is_container: bool,
    ev_poisoned: bool,
    ev_oversized: bool,
    elems_depth: usize,
    key_buf: Vec<u8>,
    capturing_key: bool,
    pending_events_key: bool,
    events: Vec<Option<TraceEvent>>,
    corr_seen: HashMap<(EventCat, u64), usize>,
    max_op_ts: f64,
    skips: SkipCounts,
    budget_left: u64,
    peak_buffer: usize,
}

impl<'a> TraceScanner<'a> {
    fn new(limits: &'a IngestLimits, budget_left: u64) -> Self {
        Self {
            limits,
            cursor: JsonCursor::new(),
            mode: Mode::Meta,
            meta_buf: Vec::new(),
            ev_buf: Vec::new(),
            in_element: false,
            expect_separator: false,
            ev_is_container: false,
            ev_poisoned: false,
            ev_oversized: false,
            elems_depth: 0,
            key_buf: Vec::new(),
            capturing_key: false,
            pending_events_key: false,
            events: Vec::new(),
            corr_seen: HashMap::new(),
            max_op_ts: f64::NEG_INFINITY,
            skips: SkipCounts::default(),
            budget_left,
            peak_buffer: 0,
        }
    }

    fn note_peak(&mut self) {
        let live = self.meta_buf.len() + self.ev_buf.len() + self.key_buf.len();
        self.peak_buffer = self.peak_buffer.max(live);
    }

    fn push_meta(&mut self, b: u8) -> Result<(), FileReject> {
        if self.meta_buf.len() >= self.limits.max_meta_bytes {
            return Err(FileReject::Structure("trace metadata exceeds byte cap".into()));
        }
        self.meta_buf.push(b);
        self.note_peak();
        Ok(())
    }

    /// Charges one rejected event against the skip budget.
    fn consume_budget(&mut self, why: EventReject) -> Result<(), FileReject> {
        match why {
            EventReject::Malformed => self.skips.malformed += 1,
            EventReject::Oversized => self.skips.oversized += 1,
            EventReject::InvalidTiming => self.skips.invalid_timing += 1,
            EventReject::DuplicateCorrelation => self.skips.duplicate_correlation += 1,
            EventReject::OutOfOrderOp => self.skips.out_of_order_op += 1,
        }
        if self.budget_left == 0 {
            return Err(FileReject::SkipBudgetExhausted);
        }
        self.budget_left -= 1;
        Ok(())
    }

    /// Classifies and either accepts or (budget permitting) skips the
    /// element accumulated in `ev_buf`.
    fn complete_element(&mut self) -> Result<(), FileReject> {
        let poisoned = std::mem::take(&mut self.ev_poisoned);
        let oversized = std::mem::take(&mut self.ev_oversized);
        let bytes = std::mem::take(&mut self.ev_buf);
        self.in_element = false;
        self.ev_is_container = false;

        if oversized {
            return self.consume_budget(EventReject::Oversized);
        }
        if poisoned {
            return self.consume_budget(EventReject::Malformed);
        }
        let parsed = std::str::from_utf8(&bytes)
            .ok()
            .and_then(|s| serde_json::from_str::<TraceEvent>(s).ok());
        let Some(ev) = parsed else {
            return self.consume_budget(EventReject::Malformed);
        };
        if !ev.ts_us.is_finite() || !ev.dur_us.is_finite() || ev.dur_us < 0.0 {
            return self.consume_budget(EventReject::InvalidTiming);
        }
        if ev.cat == EventCat::Op {
            if ev.ts_us < self.max_op_ts {
                return self.consume_budget(EventReject::OutOfOrderOp);
            }
            self.max_op_ts = ev.ts_us;
        }
        if ev.correlation != 0 {
            let key = (ev.cat, ev.correlation);
            if let Some(&prev) = self.corr_seen.get(&key) {
                // Last-wins: tombstone the earlier occurrence and keep
                // this one in its own position, counting the drop.
                self.events[prev] = None;
                self.consume_budget(EventReject::DuplicateCorrelation)?;
            }
            self.corr_seen.insert(key, self.events.len());
        }
        self.events.push(Some(ev));
        Ok(())
    }

    /// Advances the scanner by one byte.
    fn feed(&mut self, b: u8) -> Result<(), FileReject> {
        let was_in_string = self.cursor.in_string();
        let lex = self.cursor.step(b);
        match self.mode {
            Mode::Meta => self.feed_meta(b, lex, was_in_string),
            Mode::AwaitEvents => self.feed_await_events(b, lex),
            Mode::Elems => self.feed_elems(b, lex),
            Mode::Done => Err(FileReject::Structure("bytes after trace object closed".into())),
        }
    }

    fn feed_meta(&mut self, b: u8, lex: Lex, was_in_string: bool) -> Result<(), FileReject> {
        self.push_meta(b)?;
        match lex {
            Lex::Str => {
                if !was_in_string && self.cursor.in_string() {
                    // Opening quote: a new depth-1 string may be a key.
                    self.pending_events_key = false;
                    self.capturing_key = self.cursor.depth() == 1;
                    self.key_buf.clear();
                } else if was_in_string && self.cursor.in_string() {
                    if self.capturing_key {
                        if self.key_buf.len() < KEY_BUF_CAP {
                            self.key_buf.push(b);
                        } else {
                            // Too long to be "events"; stop buffering.
                            self.capturing_key = false;
                        }
                    }
                } else if self.capturing_key {
                    // Closing quote.
                    self.pending_events_key = self.key_buf == b"events";
                    self.capturing_key = false;
                }
            }
            Lex::Open => {
                self.pending_events_key = false;
                if self.cursor.depth() > self.limits.max_json_depth {
                    return Err(FileReject::Structure("nesting exceeds depth cap".into()));
                }
            }
            Lex::Close => {
                self.pending_events_key = false;
                if self.cursor.depth() == 0 {
                    self.mode = Mode::Done;
                }
            }
            Lex::Plain => {
                if b == 0 {
                    return Err(FileReject::Structure("NUL byte outside any string".into()));
                }
                if b == b':' && self.pending_events_key && self.cursor.depth() == 1 {
                    self.pending_events_key = false;
                    self.mode = Mode::AwaitEvents;
                } else if !b.is_ascii_whitespace() {
                    self.pending_events_key = false;
                }
            }
        }
        Ok(())
    }

    fn feed_await_events(&mut self, b: u8, lex: Lex) -> Result<(), FileReject> {
        match lex {
            Lex::Plain if b.is_ascii_whitespace() => self.push_meta(b),
            Lex::Open if b == b'[' => {
                self.push_meta(b)?;
                self.elems_depth = self.cursor.depth();
                self.mode = Mode::Elems;
                Ok(())
            }
            _ => Err(FileReject::Structure("events value is not an array".into())),
        }
    }

    fn feed_elems(&mut self, b: u8, lex: Lex) -> Result<(), FileReject> {
        let depth = self.cursor.depth();
        if !self.in_element {
            // Between elements: whitespace, the array closer, or the
            // first byte of a new element.
            match lex {
                Lex::Plain if b.is_ascii_whitespace() => return Ok(()),
                Lex::Close if depth == self.elems_depth - 1 => {
                    // `]` — the events array closed with no element
                    // pending; resume metadata with an empty array
                    // spliced in.
                    self.push_meta(b)?;
                    self.mode = Mode::Meta;
                    return Ok(());
                }
                Lex::Plain if b == b',' && depth == self.elems_depth => {
                    if self.expect_separator {
                        // Separator after a completed container element.
                        self.expect_separator = false;
                        return Ok(());
                    }
                    // `[,` or `,,`: an empty element slot.
                    return self.consume_budget(EventReject::Malformed);
                }
                _ => {
                    // A missing separator (`}{`) is the element's own
                    // problem; salvage both sides.
                    self.expect_separator = false;
                    self.in_element = true;
                    self.ev_is_container = lex == Lex::Open;
                }
            }
        }
        // Inside an element (possibly its first byte, just marked).
        if lex == Lex::Open && depth > self.limits.max_json_depth {
            // Depth bombs inside an element poison the element, not
            // the file: stop buffering and reject at the boundary.
            self.ev_poisoned = true;
            self.ev_buf.clear();
        }
        if lex == Lex::Plain && b == 0 {
            self.ev_poisoned = true;
            self.ev_buf.clear();
        }

        // Boundary checks before accumulating the byte.
        let array_closer = lex == Lex::Close && depth == self.elems_depth - 1;
        let container_end = self.ev_is_container && lex == Lex::Close && depth == self.elems_depth;
        let scalar_end =
            !self.ev_is_container && lex == Lex::Plain && b == b',' && depth == self.elems_depth;

        if array_closer {
            // `]` while a (scalar) element is pending: finish it, then
            // close the array.
            self.complete_element()?;
            self.push_meta(b)?;
            self.mode = Mode::Meta;
            return Ok(());
        }
        if scalar_end {
            return self.complete_element();
        }

        if !self.ev_poisoned && !self.ev_oversized {
            if self.ev_buf.len() >= self.limits.max_event_bytes {
                self.ev_oversized = true;
                self.ev_buf.clear();
            } else {
                self.ev_buf.push(b);
                self.note_peak();
            }
        }
        if container_end {
            self.expect_separator = true;
            return self.complete_element();
        }
        Ok(())
    }

    /// Consumes the scanner after [`Mode::Done`], producing the trace.
    fn finish(self) -> Result<(Trace, SkipCounts, u64, usize), FileReject> {
        debug_assert_eq!(self.mode, Mode::Done);
        let meta = std::str::from_utf8(&self.meta_buf)
            .map_err(|_| FileReject::Structure("trace metadata is not UTF-8".into()))?;
        let mut trace: Trace = serde_json::from_str(meta)
            .map_err(|e| FileReject::Structure(format!("trace metadata rejected: {e}")))?;
        trace
            .validate()
            .map_err(|e| FileReject::Structure(format!("trace metadata rejected: {e}")))?;
        trace.events = self.events.into_iter().flatten().collect();
        Ok((trace, self.skips, self.budget_left, self.peak_buffer))
    }
}

/// Driver state across a whole file (single object or array-of-traces).
enum Drive<'a> {
    Begin,
    Single(TraceScanner<'a>),
    ArrayAwait,
    ArrayElem(TraceScanner<'a>),
    ArrayAfter,
    End,
}

/// Ingests one file's bytes from any reader. Never panics on any input,
/// never holds more than a fixed read chunk plus
/// [`IngestLimits::scan_buffer_cap`] dynamic bytes, and accounts for
/// every event it could not accept.
pub fn ingest_reader<R: Read>(mut reader: R, label: &str, limits: &IngestLimits) -> FileIngest {
    let mut traces: Vec<Trace> = Vec::new();
    let mut skips = SkipCounts::default();
    let mut budget_left = limits.skip_budget;
    let mut peak_buffer: usize = 0;
    let mut bytes_read: u64 = 0;
    let mut state = Drive::Begin;
    let mut buf = [0u8; READ_CHUNK];

    let is_ws = |b: u8| matches!(b, b' ' | b'\t' | b'\r' | b'\n');

    let failure: Option<FileReject> = 'scan: loop {
        let n = match reader.read(&mut buf) {
            Ok(0) => break 'scan None,
            Ok(n) => n,
            Err(e) => break 'scan Some(FileReject::Io(e.to_string())),
        };
        bytes_read += n as u64;
        if bytes_read > limits.max_file_bytes {
            break 'scan Some(FileReject::TooLarge);
        }
        for &b in &buf[..n] {
            // Each byte is routed to the per-trace scanner or handled
            // as array framing; any typed failure quarantines the file.
            let next = match state {
                Drive::Begin => {
                    if is_ws(b) {
                        continue;
                    }
                    match b {
                        b'{' => {
                            let mut scanner = TraceScanner::new(limits, budget_left);
                            if let Err(e) = scanner.feed(b) {
                                break 'scan Some(e);
                            }
                            Drive::Single(scanner)
                        }
                        b'[' => Drive::ArrayAwait,
                        _ => break 'scan Some(FileReject::Structure(
                            "file does not start a trace object or array".into(),
                        )),
                    }
                }
                Drive::Single(ref mut scanner) | Drive::ArrayElem(ref mut scanner) => {
                    if let Err(e) = scanner.feed(b) {
                        break 'scan Some(e);
                    }
                    if scanner.mode != Mode::Done {
                        continue;
                    }
                    let (done, single) = match std::mem::replace(&mut state, Drive::Begin) {
                        Drive::Single(s) => (s, true),
                        Drive::ArrayElem(s) => (s, false),
                        _ => unreachable!("only scanner states reach here"),
                    };
                    match done.finish() {
                        Ok((trace, s, b_left, peak)) => {
                            traces.push(trace);
                            skips.merge(&s);
                            budget_left = b_left;
                            peak_buffer = peak_buffer.max(peak);
                        }
                        Err(e) => break 'scan Some(e),
                    }
                    if single {
                        Drive::End
                    } else {
                        Drive::ArrayAfter
                    }
                }
                Drive::ArrayAwait => {
                    if is_ws(b) {
                        continue;
                    }
                    match b {
                        b'{' => {
                            let mut scanner = TraceScanner::new(limits, budget_left);
                            if let Err(e) = scanner.feed(b) {
                                break 'scan Some(e);
                            }
                            Drive::ArrayElem(scanner)
                        }
                        b']' => Drive::End,
                        _ => break 'scan Some(FileReject::Structure(
                            "array element is not a trace object".into(),
                        )),
                    }
                }
                Drive::ArrayAfter => {
                    if is_ws(b) {
                        continue;
                    }
                    match b {
                        b',' => Drive::ArrayAwait,
                        b']' => Drive::End,
                        _ => break 'scan Some(FileReject::Structure(
                            "unexpected byte between array elements".into(),
                        )),
                    }
                }
                Drive::End => {
                    if is_ws(b) {
                        continue;
                    }
                    break 'scan Some(FileReject::Structure("trailing bytes after trace".into()));
                }
            };
            state = next;
        }
    };

    let failure = failure.or_else(|| match state {
        Drive::End => None,
        _ => Some(FileReject::Structure("truncated file".into())),
    });

    // Quarantined files contribute nothing; the skip counts survive so
    // the corpus report still accounts for what was seen going bad.
    let (traces, status, events_accepted) = match failure {
        Some(reject) => (Vec::new(), FileStatus::Quarantined(reject), 0),
        None => {
            let accepted: u64 = traces.iter().map(|t| t.events.len() as u64).sum();
            let status =
                if skips.total() == 0 { FileStatus::Clean } else { FileStatus::Degraded };
            (traces, status, accepted)
        }
    };

    let report = FileReport {
        label: label.to_string(),
        status,
        traces: traces.len() as u64,
        events_accepted,
        skips,
        bytes_read,
        peak_buffer_bytes: peak_buffer as u64,
    };
    record_file(&report);
    FileIngest { traces, report }
}

/// Ingests one file from disk. I/O failures quarantine the file rather
/// than erroring: the corpus must survive unreadable members.
pub fn ingest_file(path: &Path, limits: &IngestLimits) -> FileIngest {
    let label = path.display().to_string();
    match std::fs::File::open(path) {
        Ok(f) => ingest_reader(std::io::BufReader::new(f), &label, limits),
        Err(e) => {
            let report = FileReport {
                label,
                status: FileStatus::Quarantined(FileReject::Io(e.to_string())),
                traces: 0,
                events_accepted: 0,
                skips: SkipCounts::default(),
                bytes_read: 0,
                peak_buffer_bytes: 0,
            };
            record_file(&report);
            FileIngest { traces: Vec::new(), report }
        }
    }
}

/// Ingests an in-memory document (tests and fault-injection harnesses).
pub fn ingest_str(doc: &str, label: &str, limits: &IngestLimits) -> FileIngest {
    ingest_reader(doc.as_bytes(), label, limits)
}

/// Process-wide ingest counters, surfaced through `dlperf-obs`.
struct IngestCounters {
    _group: std::sync::Arc<dlperf_obs::CounterGroup>,
    files_clean: dlperf_obs::CounterHandle,
    files_degraded: dlperf_obs::CounterHandle,
    files_quarantined: dlperf_obs::CounterHandle,
    events_accepted: dlperf_obs::CounterHandle,
    events_skipped: dlperf_obs::CounterHandle,
}

fn ingest_counters() -> &'static IngestCounters {
    static G: std::sync::OnceLock<IngestCounters> = std::sync::OnceLock::new();
    G.get_or_init(|| {
        let group = dlperf_obs::CounterGroup::register(
            "trace.ingest",
            &[
                "files_clean",
                "files_degraded",
                "files_quarantined",
                "events_accepted",
                "events_skipped",
            ],
        );
        IngestCounters {
            files_clean: group.handle("files_clean"),
            files_degraded: group.handle("files_degraded"),
            files_quarantined: group.handle("files_quarantined"),
            events_accepted: group.handle("events_accepted"),
            events_skipped: group.handle("events_skipped"),
            _group: group,
        }
    })
}

/// Mirrors one file outcome into the ingest counters.
fn record_file(report: &FileReport) {
    let c = ingest_counters();
    match report.status {
        FileStatus::Clean => c.files_clean.incr(),
        FileStatus::Degraded => c.files_degraded.incr(),
        FileStatus::Quarantined(_) => c.files_quarantined.incr(),
    }
    c.events_accepted.add(report.events_accepted);
    c.events_skipped.add(report.skips.total());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventCat;

    fn ev(name: &str, cat: EventCat, ts: f64, corr: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat,
            ts_us: ts,
            dur_us: 1.0,
            stream: 0,
            op_index: 0,
            correlation: corr,
            op_key: String::new(),
        }
    }

    fn sample_trace() -> Trace {
        Trace {
            workload: "w".into(),
            device: "d".into(),
            events: vec![
                ev("op_a", EventCat::Op, 0.0, 0),
                ev("launch", EventCat::Runtime, 1.0, 1),
                ev("k_kernel", EventCat::Kernel, 2.0, 1),
                ev("op_b", EventCat::Op, 3.0, 0),
            ],
            span_us: 10.0,
        }
    }

    #[test]
    fn clean_single_object_matches_strict_load() {
        let t = sample_trace();
        let json = t.to_json();
        let out = ingest_str(&json, "t", &IngestLimits::default());
        assert_eq!(out.report.status, FileStatus::Clean);
        assert_eq!(out.traces.len(), 1);
        let strict = Trace::from_json(&json).unwrap();
        assert_eq!(out.traces[0].events, strict.events);
        assert_eq!(out.traces[0].workload, strict.workload);
        assert_eq!(out.traces[0].span_us.to_bits(), strict.span_us.to_bits());
        assert_eq!(out.report.events_accepted, 4);
        assert_eq!(out.report.skips.total(), 0);
    }

    #[test]
    fn clean_array_matches_parse_json() {
        let a = sample_trace();
        let mut b = sample_trace();
        b.workload = "w2".into();
        let json = format!("[{},{}]", a.to_json(), b.to_json());
        let out = ingest_str(&json, "arr", &IngestLimits::default());
        assert_eq!(out.report.status, FileStatus::Clean);
        let strict = crate::ChromeTraceSink::parse_json(&json).unwrap();
        assert_eq!(out.traces.len(), strict.len());
        for (got, want) in out.traces.iter().zip(&strict) {
            assert_eq!(got.events, want.events);
            assert_eq!(got.workload, want.workload);
        }
    }

    #[test]
    fn empty_array_is_clean_and_empty() {
        let out = ingest_str(" [ ] ", "e", &IngestLimits::default());
        assert_eq!(out.report.status, FileStatus::Clean);
        assert!(out.traces.is_empty());
    }

    #[test]
    fn interleaved_garbage_skips_but_keeps_intact_events() {
        let t = sample_trace();
        let json = t.to_json();
        // Splice a garbage element between events.
        let needle = "},{";
        let pos = json.find(needle).unwrap();
        let mangled = format!(
            "{}}},not json at all,{{{}",
            &json[..pos],
            &json[pos + needle.len()..]
        );
        let out = ingest_str(&mangled, "g", &IngestLimits::default());
        assert_eq!(out.report.status, FileStatus::Degraded);
        assert_eq!(out.report.skips.malformed, 1);
        assert_eq!(out.report.events_accepted, 4, "intact events all survive");
    }

    #[test]
    fn duplicate_correlation_is_last_wins_and_counted() {
        let mut t = sample_trace();
        t.events.push(ev("launch_again", EventCat::Runtime, 5.0, 1));
        let out = ingest_str(&t.to_json(), "dup", &IngestLimits::default());
        assert_eq!(out.report.status, FileStatus::Degraded);
        assert_eq!(out.report.skips.duplicate_correlation, 1);
        let names: Vec<&str> =
            out.traces[0].events.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"launch_again"));
        assert!(!names.contains(&"launch"), "earlier occurrence tombstoned");
    }

    #[test]
    fn out_of_order_op_is_skipped() {
        let mut t = sample_trace();
        t.events.push(ev("op_backwards", EventCat::Op, 0.5, 0));
        let out = ingest_str(&t.to_json(), "ooo", &IngestLimits::default());
        assert_eq!(out.report.status, FileStatus::Degraded);
        assert_eq!(out.report.skips.out_of_order_op, 1);
        assert_eq!(out.report.events_accepted, 4);
    }

    #[test]
    fn invalid_timing_is_skipped() {
        let t = sample_trace();
        let json = t.to_json().replace("\"ts_us\":3", "\"ts_us\":null");
        let out = ingest_str(&json, "nan", &IngestLimits::default());
        assert_eq!(out.report.status, FileStatus::Degraded);
        // serde can't parse null into f64 → malformed rather than
        // invalid-timing; a negative duration exercises the other path.
        assert_eq!(out.report.skips.total(), 1);
        let json = t.to_json().replace("\"dur_us\":1", "\"dur_us\":-1");
        let out = ingest_str(&json, "neg", &IngestLimits::default());
        assert_eq!(out.report.skips.invalid_timing, 4);
    }

    #[test]
    fn oversized_event_is_skipped_without_buffering() {
        let limits = IngestLimits { max_event_bytes: 256, ..IngestLimits::default() };
        let mut t = sample_trace();
        t.events[1].name = "x".repeat(4096);
        let out = ingest_str(&t.to_json(), "big", &limits);
        assert_eq!(out.report.status, FileStatus::Degraded);
        assert_eq!(out.report.skips.oversized, 1);
        assert_eq!(out.report.events_accepted, 3);
        assert!(out.report.peak_buffer_bytes <= limits.scan_buffer_cap() as u64);
    }

    #[test]
    fn skip_budget_exhaustion_quarantines_the_file() {
        let limits = IngestLimits { skip_budget: 2, ..IngestLimits::default() };
        let t = sample_trace();
        let json = t.to_json().replace("\"dur_us\":1", "\"dur_us\":-1");
        let out = ingest_str(&json, "corrupt", &limits);
        assert_eq!(
            out.report.status,
            FileStatus::Quarantined(FileReject::SkipBudgetExhausted)
        );
        assert!(out.traces.is_empty());
        assert_eq!(out.report.events_accepted, 0);
    }

    #[test]
    fn truncated_file_is_quarantined_as_structure() {
        let json = sample_trace().to_json();
        let cut = &json[..json.len() / 2];
        let out = ingest_str(cut, "trunc", &IngestLimits::default());
        assert!(matches!(
            out.report.status,
            FileStatus::Quarantined(FileReject::Structure(_))
        ));
    }

    #[test]
    fn depth_bomb_outside_events_is_quarantined_inside_is_poisoned() {
        let limits = IngestLimits { max_json_depth: 8, ..IngestLimits::default() };
        let bomb = "[".repeat(64);
        let out = ingest_str(&format!("{{\"deep\":{bomb}"), "bomb", &limits);
        assert!(matches!(
            out.report.status,
            FileStatus::Quarantined(FileReject::Structure(_))
        ));
        // Inside an element: the element dies, the file survives.
        let mut t = sample_trace();
        t.events.truncate(2);
        let json = t.to_json();
        let needle = "},{";
        let pos = json.find(needle).unwrap();
        let mangled = format!(
            "{}}},{},{{{}",
            &json[..pos],
            "[".repeat(64) + &"]".repeat(64),
            &json[pos + needle.len()..]
        );
        let out = ingest_str(&mangled, "bomb-in", &limits);
        assert_eq!(out.report.status, FileStatus::Degraded);
        assert_eq!(out.report.skips.malformed, 1);
        assert_eq!(out.report.events_accepted, 2);
    }

    #[test]
    fn file_byte_cap_quarantines() {
        let limits = IngestLimits { max_file_bytes: 64, ..IngestLimits::default() };
        let out = ingest_str(&sample_trace().to_json(), "huge", &limits);
        assert_eq!(out.report.status, FileStatus::Quarantined(FileReject::TooLarge));
    }

    #[test]
    fn peak_buffer_stays_under_cap_even_for_newline_free_garbage() {
        let limits = IngestLimits {
            max_event_bytes: 512,
            max_meta_bytes: 512,
            ..IngestLimits::default()
        };
        // A giant single-line "file" that is all one malformed element.
        let doc = format!("{{\"events\":[{}]}}", "9".repeat(100_000));
        let out = ingest_str(&doc, "line", &limits);
        assert!(out.report.peak_buffer_bytes <= limits.scan_buffer_cap() as u64);
    }

    #[test]
    fn quarantine_report_aggregates_and_serializes() {
        let mut report = QuarantineReport::default();
        let clean = ingest_str(&sample_trace().to_json(), "a", &IngestLimits::default());
        report.push(clean.report);
        let bad = ingest_str("nonsense", "b", &IngestLimits::default());
        report.push(bad.report);
        assert_eq!(report.clean_files(), 1);
        assert_eq!(report.quarantined_files(), 1);
        assert_eq!(report.events_accepted(), 4);
        let back: QuarantineReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert!(report.summary().contains("2 files"));
    }
}
