//! Per-batch device-time breakdown (Fig. 5) and GPU utilization (Fig. 1).

use std::collections::HashMap;

use crate::engine::RunResult;
use crate::event_tree::EventTree;

/// Device time attributed to one op type.
#[derive(Debug, Clone, PartialEq)]
pub struct OpShare {
    /// Op-type key (e.g. `aten::addmm`).
    pub op_key: String,
    /// Summed kernel time (µs).
    pub device_us: f64,
    /// Share of the E2E span.
    pub share: f64,
}

/// The device-time breakdown of one training iteration.
#[derive(Debug, Clone)]
pub struct DeviceBreakdown {
    /// Workload name.
    pub workload: String,
    /// E2E span (µs).
    pub total_us: f64,
    /// Device active time (union of kernel intervals, µs).
    pub active_us: f64,
    /// Device idle time (µs).
    pub idle_us: f64,
    /// Per-op device time, descending.
    pub per_op: Vec<OpShare>,
}

impl DeviceBreakdown {
    /// Computes the breakdown from a run.
    pub fn from_run(run: &RunResult) -> Self {
        let tree = EventTree::build(&run.trace);
        let mut per_op: HashMap<String, f64> = HashMap::new();
        for op in &tree.ops {
            *per_op.entry(op.op.op_key.clone()).or_insert(0.0) += op.device_time_us();
        }
        let total = run.e2e_us;
        let mut per_op: Vec<OpShare> = per_op
            .into_iter()
            .filter(|(_, t)| *t > 0.0)
            .map(|(op_key, device_us)| OpShare { op_key, device_us, share: device_us / total })
            .collect();
        per_op.sort_by(|a, b| b.device_us.total_cmp(&a.device_us));
        let active = run.active_us();
        DeviceBreakdown {
            workload: run.trace.workload.clone(),
            total_us: total,
            active_us: active,
            idle_us: (total - active).max(0.0),
            per_op,
        }
    }

    /// GPU utilization (active / total).
    pub fn utilization(&self) -> f64 {
        if self.total_us == 0.0 {
            0.0
        } else {
            self.active_us / self.total_us
        }
    }

    /// The `n` op types with the largest device time.
    pub fn top_ops(&self, n: usize) -> &[OpShare] {
        &self.per_op[..n.min(self.per_op.len())]
    }

    /// Renders the breakdown as the rows of a Fig. 5-style stacked bar:
    /// `(label, share)` pairs including the idle share, summing to ≤ 1.
    pub fn stacked_rows(&self, top_n: usize) -> Vec<(String, f64)> {
        let mut rows: Vec<(String, f64)> = self
            .top_ops(top_n)
            .iter()
            .map(|s| (s.op_key.clone(), s.share))
            .collect();
        let listed: f64 = rows.iter().map(|(_, s)| s).sum();
        let other = (self.active_us / self.total_us - listed).max(0.0);
        rows.push(("other kernels".to_string(), other));
        rows.push(("idle".to_string(), self.idle_us / self.total_us));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecutionEngine;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_models::DlrmConfig;

    fn breakdown(batch: u64) -> DeviceBreakdown {
        let g = DlrmConfig::default_config(batch).build();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 21);
        DeviceBreakdown::from_run(&e.run(&g).unwrap())
    }

    #[test]
    fn active_plus_idle_is_total() {
        let b = breakdown(1024);
        assert!((b.active_us + b.idle_us - b.total_us).abs() < 1e-6);
    }

    #[test]
    fn idle_time_is_nonnegligible_for_dlrm() {
        // The paper's core observation (Fig. 5): device idle time is a
        // substantial share of DLRM's per-batch time.
        let b = breakdown(2048);
        assert!(
            b.idle_us / b.total_us > 0.1,
            "DLRM idle share too small: {}",
            b.idle_us / b.total_us
        );
    }

    #[test]
    fn dominating_ops_match_paper() {
        // addmm / embedding / their backwards must be among the top ops.
        let b = breakdown(2048);
        let top: Vec<&str> = b.top_ops(8).iter().map(|s| s.op_key.as_str()).collect();
        assert!(top.iter().any(|k| k.contains("addmm")), "top ops: {top:?}");
        assert!(top.iter().any(|k| k.contains("embedding")), "top ops: {top:?}");
    }

    #[test]
    fn stacked_rows_sum_to_one() {
        let b = breakdown(512);
        let total: f64 = b.stacked_rows(10).iter().map(|(_, s)| s).sum();
        assert!((total - 1.0).abs() < 0.02, "stacked shares sum to {total}");
    }

    #[test]
    fn utilization_rises_with_batch_size() {
        // Bigger batches mean longer kernels under the same overheads, so
        // utilization must rise (the Fig. 9 trend).
        let small = breakdown(128).utilization();
        let large = breakdown(4096).utilization();
        assert!(large > small, "utilization small-batch {small} vs large-batch {large}");
    }
}
