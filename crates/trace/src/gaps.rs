//! Device idle-gap attribution — the "identify bottlenecks" use case of the
//! paper's introduction.
//!
//! The breakdown (Fig. 5) says *how much* idle time exists; this module
//! says *where it comes from*: every gap between consecutive kernels is
//! attributed to the op whose kernel ended the gap — the op whose host-side
//! overheads kept the device waiting. Ranking ops by caused idle time gives
//! the fusion/optimization worklist that §V-A's op-fusion example starts
//! from.

use std::collections::HashMap;

use crate::engine::RunResult;
use crate::events::EventCat;

/// One device idle gap.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleGap {
    /// Gap start (µs).
    pub start_us: f64,
    /// Gap length (µs).
    pub len_us: f64,
    /// Op-type key of the kernel that ended the gap (the op the device was
    /// waiting for).
    pub blamed_op: String,
}

/// Idle-time attribution for one run.
#[derive(Debug, Clone)]
pub struct IdleReport {
    /// All gaps, in time order (gaps below the threshold are dropped).
    pub gaps: Vec<IdleGap>,
    /// Total idle time attributed (µs).
    pub total_idle_us: f64,
    /// Idle time per blamed op type, descending.
    pub per_op: Vec<(String, f64)>,
}

/// Attributes every device idle gap longer than `min_gap_us` in `run`.
///
/// Gaps are measured on the union timeline of all streams; the leading gap
/// before the first kernel is attributed to the first op.
pub fn attribute_idle(run: &RunResult, min_gap_us: f64) -> IdleReport {
    // Map kernels back to their op keys via op_index -> op events.
    let op_key_of: HashMap<usize, &str> = run
        .trace
        .events
        .iter()
        .filter(|e| e.cat == EventCat::Op)
        .map(|e| (e.op_index, e.op_key.as_str()))
        .collect();

    let mut kernels: Vec<(f64, f64, usize)> = run
        .trace
        .events
        .iter()
        .filter(|e| e.cat == EventCat::Kernel)
        .map(|e| (e.ts_us, e.end_us(), e.op_index))
        .collect();
    kernels.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut gaps = Vec::new();
    let mut horizon = 0.0f64;
    for (start, end, op_index) in kernels {
        let gap = start - horizon;
        if gap >= min_gap_us {
            gaps.push(IdleGap {
                start_us: horizon,
                len_us: gap,
                blamed_op: op_key_of.get(&op_index).copied().unwrap_or("<unknown>").to_string(),
            });
        }
        horizon = horizon.max(end);
    }

    let mut per_op: HashMap<String, f64> = HashMap::new();
    for g in &gaps {
        *per_op.entry(g.blamed_op.clone()).or_insert(0.0) += g.len_us;
    }
    let mut per_op: Vec<(String, f64)> = per_op.into_iter().collect();
    per_op.sort_by(|a, b| b.1.total_cmp(&a.1));
    IdleReport { total_idle_us: gaps.iter().map(|g| g.len_us).sum(), gaps, per_op }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecutionEngine;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_models::DlrmConfig;

    fn run(batch: u64) -> RunResult {
        let g = DlrmConfig::default_config(batch).build();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 17);
        e.set_profiling(false);
        e.run(&g).unwrap()
    }

    #[test]
    fn attributed_idle_close_to_breakdown_idle() {
        let r = run(512);
        let report = attribute_idle(&r, 0.0);
        // Union-of-kernels idle inside the active span; compare against the
        // breakdown's idle (measured to e2e, so allow the trailing part).
        let breakdown_idle = r.e2e_us - r.active_us();
        assert!(report.total_idle_us <= breakdown_idle + 1e-6);
        assert!(
            report.total_idle_us > 0.5 * breakdown_idle - 5.0,
            "attributed {} vs breakdown idle {}",
            report.total_idle_us,
            breakdown_idle
        );
    }

    #[test]
    fn low_utilization_runs_blame_cheap_frequent_ops() {
        let r = run(256);
        let report = attribute_idle(&r, 0.5);
        assert!(!report.per_op.is_empty());
        // Ranking is descending.
        for w in report.per_op.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn threshold_filters_small_gaps() {
        let r = run(256);
        let all = attribute_idle(&r, 0.0).gaps.len();
        let big = attribute_idle(&r, 5.0).gaps.len();
        assert!(big <= all);
    }

    #[test]
    fn gaps_are_time_ordered_and_positive() {
        let r = run(512);
        let report = attribute_idle(&r, 0.1);
        for w in report.gaps.windows(2) {
            assert!(w[0].start_us <= w[1].start_us);
        }
        assert!(report.gaps.iter().all(|g| g.len_us >= 0.1));
    }
}
