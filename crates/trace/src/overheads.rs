//! Ground-truth host-overhead distributions of the simulated platform.
//!
//! On real hardware the five overhead types of Fig. 6 come from the Python
//! dispatcher, ATen, and the CUDA runtime; their magnitudes depend on the
//! host CPU, not on tensor sizes (the paper's *size-independence*
//! assumption) nor the model (*model-independence*). The simulator therefore
//! draws each overhead from a per-(op-type, overhead-type) log-normal
//! distribution whose mean depends only on the op type — with a long right
//! tail, which is what makes trimmed-mean prediction slightly underestimate
//! E2E time, exactly as the paper observes.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

use crate::extract::OverheadType;

/// A log-normal overhead distribution specified by its mean and coefficient
/// of variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadDist {
    /// Mean in microseconds.
    pub mean_us: f64,
    /// Coefficient of variation (std / mean).
    pub cv: f64,
}

impl OverheadDist {
    /// Creates a distribution.
    ///
    /// # Panics
    /// Panics if the mean is not positive or the CV is negative.
    pub fn new(mean_us: f64, cv: f64) -> Self {
        assert!(mean_us > 0.0, "overhead mean must be positive");
        assert!(cv >= 0.0, "cv must be non-negative");
        OverheadDist { mean_us, cv }
    }

    /// Draws one sample (µs). Log-normal parameterized to match the
    /// requested mean and CV.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.cv == 0.0 {
            return self.mean_us;
        }
        let sigma2 = (1.0 + self.cv * self.cv).ln();
        let mu = self.mean_us.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt()).expect("valid lognormal").sample(rng)
    }
}

/// Ground-truth overhead distributions of a training platform.
///
/// The per-type base means are modulated by a deterministic per-op factor
/// (derived from a hash of the op-type key), so different op types have
/// different — but stable — overhead statistics, as Fig. 8 shows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadProfile {
    /// Base mean (µs) and CV per overhead type, indexed by `OverheadType`.
    pub base: [OverheadDist; 5],
    /// Spread of the per-op modulation factor around 1.0 (0 disables it).
    pub per_op_spread: f64,
}

impl OverheadProfile {
    /// A typical server host driving one GPU through the PyTorch eager
    /// dispatcher: T1 ≈ 14 µs between top-level ops (Python + dispatcher),
    /// T2 ≈ 6 µs, T3 ≈ 3.5 µs, T4 ≈ 12 µs per CUDA runtime call, T5 ≈ 2.5 µs
    /// between launches.
    pub fn typical_server() -> Self {
        OverheadProfile {
            base: [
                OverheadDist::new(14.0, 0.55), // T1: between top-level ops (long tail)
                OverheadDist::new(6.0, 0.40),  // T2: op entry to first launch
                OverheadDist::new(3.5, 0.40),  // T3: last launch to op exit
                OverheadDist::new(12.0, 0.45), // T4: CUDA runtime call (long tail)
                OverheadDist::new(2.5, 0.35),  // T5: between launches
            ],
            per_op_spread: 0.35,
        }
    }

    /// A slower host (older CPU, e.g. the TITAN Xp workstation platform).
    pub fn slow_workstation() -> Self {
        let mut p = Self::typical_server();
        for d in &mut p.base {
            d.mean_us *= 1.35;
        }
        p
    }

    /// Deterministic per-op modulation factor in
    /// `[1 − spread, 1 + spread]`, stable across runs and processes.
    pub fn op_factor(&self, op_key: &str) -> f64 {
        if self.per_op_spread == 0.0 {
            return 1.0;
        }
        // FNV-1a, stable across platforms (unlike `DefaultHasher`).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in op_key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let unit = (h % 10_000) as f64 / 10_000.0; // [0, 1)
        1.0 - self.per_op_spread + 2.0 * self.per_op_spread * unit
    }

    /// The ground-truth mean (µs) of one overhead type for one op type.
    pub fn mean_us(&self, op_key: &str, ty: OverheadType) -> f64 {
        self.base[ty as usize].mean_us * self.op_factor(op_key)
    }

    /// Draws one overhead sample (µs) for an op type.
    pub fn sample<R: Rng + ?Sized>(&self, op_key: &str, ty: OverheadType, rng: &mut R) -> f64 {
        let base = self.base[ty as usize];
        OverheadDist::new(base.mean_us * self.op_factor(op_key), base.cv).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_mean_matches_requested_mean() {
        let d = OverheadDist::new(8.0, 0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let m: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((m - 8.0).abs() / 8.0 < 0.02, "sample mean {m}");
    }

    #[test]
    fn lognormal_has_right_tail() {
        let d = OverheadDist::new(8.0, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let mean = crate::stats::mean(&samples);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "long right tail implies mean > median");
    }

    #[test]
    fn op_factor_deterministic_and_bounded() {
        let p = OverheadProfile::typical_server();
        let f1 = p.op_factor("aten::addmm");
        let f2 = p.op_factor("aten::addmm");
        assert_eq!(f1, f2);
        for key in ["aten::addmm", "aten::relu", "aten::bmm", "Optimizer.step"] {
            let f = p.op_factor(key);
            assert!((0.65..=1.35).contains(&f), "factor {f} for {key}");
        }
        assert_ne!(p.op_factor("aten::addmm"), p.op_factor("aten::relu"));
    }

    #[test]
    fn zero_cv_is_deterministic() {
        let d = OverheadDist::new(5.0, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(d.sample(&mut rng), 5.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_mean_panics() {
        OverheadDist::new(0.0, 0.1);
    }
}
