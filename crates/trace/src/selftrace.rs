//! Self-tracing: turn `dlperf-obs` recorder flushes into [`Trace`] values
//! this crate's own analysis pipeline ([`crate::event_tree`],
//! [`crate::extract`], [`crate::breakdown`]) can ingest — the paper's
//! trace-mining machinery pointed at the performance model itself.
//!
//! [`ChromeTraceSink`] maps a flushed span forest onto the Kineto-like
//! event dialect [`Trace::from_json`] parses, one `Trace` per recording
//! thread (the event-tree builder assumes the top-level ops of a trace are
//! sorted and non-overlapping, which holds per thread but not across
//! threads of a parallel sweep):
//!
//! * depth-0 span → [`EventCat::Op`] (the `op_key` is the span name);
//! * nested span → [`EventCat::Runtime`] inside its enclosing op, with the
//!   span id as correlation id;
//! * a [`SpanKind::Work`] span additionally emits an [`EventCat::Kernel`]
//!   event carrying the same correlation id and duration, so
//!   `EventTree::device_time_us` attributes the *work* time of each op and
//!   the host/device breakdown of the model's own execution falls out of
//!   the ordinary analysis. A depth-0 work span emits all three events
//!   (its own op plus the launch pair inside it).

use std::sync::Mutex;

use dlperf_obs::{Snapshot, SpanKind, SpanRecord};

use crate::events::{EventCat, Trace, TraceEvent};

/// An `obs::Sink` that accumulates recorder flushes as parseable traces.
///
/// Install with [`ChromeTraceSink::install`], run instrumented code with
/// the recorder enabled, call `dlperf_obs::flush()`, then collect
/// [`ChromeTraceSink::traces`] (one per recording thread, per flush).
///
/// ## Quickstart
///
/// ```
/// use dlperf_trace::selftrace::ChromeTraceSink;
/// use dlperf_trace::event_tree::EventTree;
///
/// let sink = ChromeTraceSink::install("self", "host");
/// dlperf_obs::enable();
/// {
///     let _walk = dlperf_obs::span("predict", dlperf_obs::SpanKind::Phase);
///     drop(dlperf_obs::span("walk", dlperf_obs::SpanKind::Work));
/// }
/// dlperf_obs::disable();
/// dlperf_obs::flush();
/// dlperf_obs::clear_sinks();
/// for trace in sink.traces() {
///     let reparsed = dlperf_trace::Trace::from_json(&trace.to_json()).unwrap();
///     let tree = EventTree::build(&reparsed);
///     assert!(tree.total_device_time_us() > 0.0);
/// }
/// ```
#[derive(Debug)]
pub struct ChromeTraceSink {
    workload: String,
    device: String,
    traces: Mutex<Vec<Trace>>,
}

impl ChromeTraceSink {
    /// Creates a sink labelled with a workload/device pair (free-form; they
    /// become the `Trace` header fields).
    pub fn new(workload: impl Into<String>, device: impl Into<String>) -> std::sync::Arc<Self> {
        std::sync::Arc::new(ChromeTraceSink {
            workload: workload.into(),
            device: device.into(),
            traces: Mutex::new(Vec::new()),
        })
    }

    /// Creates the sink and installs a forwarding handle into the global
    /// recorder. The caller keeps the returned `Arc` to read results;
    /// `dlperf_obs::clear_sinks()` drops the recorder's handle.
    pub fn install(
        workload: impl Into<String>,
        device: impl Into<String>,
    ) -> std::sync::Arc<Self> {
        let sink = Self::new(workload, device);
        struct Fwd(std::sync::Arc<ChromeTraceSink>);
        impl dlperf_obs::Sink for Fwd {
            fn consume(&self, snapshot: &Snapshot) {
                self.0.consume(snapshot);
            }
        }
        dlperf_obs::install_sink(Box::new(Fwd(std::sync::Arc::clone(&sink))));
        sink
    }

    /// The traces accumulated so far (one per recording thread per flush
    /// that carried spans), in (flush, thread-ordinal) order.
    pub fn traces(&self) -> Vec<Trace> {
        self.traces.lock().expect("self-trace buffer poisoned").clone()
    }

    /// Serializes every accumulated trace as a JSON array; each element is
    /// individually parseable by [`Trace::from_json`].
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.traces()).expect("trace serialization cannot fail")
    }

    /// Writes [`ChromeTraceSink::to_json`] to a file.
    ///
    /// # Errors
    /// Propagates the underlying I/O error.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Parses a JSON array produced by [`ChromeTraceSink::to_json`] back
    /// into traces (the round-trip used by the self-trace tests and CI
    /// artifact checks).
    ///
    /// # Errors
    /// [`crate::TraceLoadError`] when the array or any element is
    /// malformed or carries invalid timing content.
    pub fn parse_json(s: &str) -> Result<Vec<Trace>, crate::TraceLoadError> {
        let docs: Vec<Trace> = serde_json::from_str(s)?;
        for t in &docs {
            t.validate()?;
            t.check_duplicate_correlations()?;
        }
        Ok(docs)
    }
}

impl dlperf_obs::Sink for ChromeTraceSink {
    fn consume(&self, snapshot: &Snapshot) {
        let mut fresh = traces_from_spans(&snapshot.spans, &self.workload, &self.device);
        self.traces.lock().expect("self-trace buffer poisoned").append(&mut fresh);
    }
}

/// Converts one flush's span forest into per-thread [`Trace`]s.
///
/// Public so tests and tools can convert snapshots they collected without
/// installing a sink.
pub fn traces_from_spans(spans: &[SpanRecord], workload: &str, device: &str) -> Vec<Trace> {
    let mut threads: Vec<u32> = spans.iter().map(|s| s.thread).collect();
    threads.sort_unstable();
    threads.dedup();

    let mut traces = Vec::new();
    for thread in threads {
        let mut mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.thread == thread).collect();
        mine.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));

        // Roots are spans whose parent did not record on this thread (the
        // parent may still be open, or predate `enable()`): treat those as
        // top-level ops too, so a flush mid-run stays parseable.
        let recorded: std::collections::HashSet<u64> = mine.iter().map(|s| s.id).collect();
        let mut events = Vec::new();
        let mut op_index = 0usize;
        for span in &mine {
            let is_root = span.parent == 0 || !recorded.contains(&span.parent);
            if is_root {
                events.push(TraceEvent {
                    name: span.name.clone(),
                    cat: EventCat::Op,
                    ts_us: span.start_us,
                    dur_us: span.dur_us,
                    stream: 0,
                    op_index,
                    correlation: 0,
                    op_key: span.name.clone(),
                });
                op_index += 1;
            }
            // Nested spans become runtime calls inside the enclosing op; a
            // root work span launches "inside itself" so its device side
            // still attributes to its own op.
            if !is_root || span.kind == SpanKind::Work {
                events.push(TraceEvent {
                    name: span.name.clone(),
                    cat: EventCat::Runtime,
                    ts_us: span.start_us,
                    dur_us: span.dur_us,
                    stream: 0,
                    op_index: op_index.saturating_sub(1),
                    correlation: span.id,
                    op_key: span.name.clone(),
                });
            }
            if span.kind == SpanKind::Work {
                events.push(TraceEvent {
                    name: span.name.clone(),
                    cat: EventCat::Kernel,
                    ts_us: span.start_us,
                    dur_us: span.dur_us,
                    stream: thread as usize,
                    op_index: op_index.saturating_sub(1),
                    correlation: span.id,
                    op_key: String::new(),
                });
            }
        }
        if events.is_empty() {
            continue;
        }
        let span_us = events.iter().map(TraceEvent::end_us).fold(0.0, f64::max);
        traces.push(Trace {
            workload: workload.to_string(),
            device: format!("{device}/t{thread}"),
            events,
            span_us,
        });
    }
    traces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_tree::EventTree;

    fn rec(
        id: u64,
        parent: u64,
        thread: u32,
        name: &str,
        kind: SpanKind,
        start: f64,
        dur: f64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            thread,
            name: name.to_string(),
            kind,
            start_us: start,
            dur_us: dur,
        }
    }

    #[test]
    fn span_forest_maps_to_parseable_per_thread_traces() {
        let spans = vec![
            rec(1, 0, 0, "prepare", SpanKind::Phase, 0.0, 10.0),
            rec(2, 1, 0, "lower", SpanKind::Work, 2.0, 5.0),
            rec(3, 0, 0, "price", SpanKind::Phase, 10.0, 30.0),
            rec(4, 3, 0, "walk", SpanKind::Work, 12.0, 20.0),
            rec(5, 0, 1, "scenario", SpanKind::Work, 1.0, 9.0),
        ];
        let traces = traces_from_spans(&spans, "w", "host");
        assert_eq!(traces.len(), 2, "one trace per thread");

        for t in &traces {
            let back = Trace::from_json(&t.to_json()).expect("self-trace parses");
            let tree = EventTree::build(&back);
            assert!(!tree.ops.is_empty());
        }

        // Thread 0: two top-level ops; the nested work span's duration is
        // attributed as device time of the enclosing op.
        let t0 = &traces[0];
        let tree = EventTree::build(t0);
        assert_eq!(tree.ops.len(), 2);
        assert_eq!(tree.ops[0].op.name, "prepare");
        assert_eq!(tree.ops[0].launches.len(), 1);
        assert!((tree.ops[0].device_time_us() - 5.0).abs() < 1e-9);
        assert!((tree.ops[1].device_time_us() - 20.0).abs() < 1e-9);

        // Thread 1: a root work span attributes to itself.
        let t1 = &traces[1];
        let tree1 = EventTree::build(t1);
        assert_eq!(tree1.ops.len(), 1);
        assert!((tree1.ops[0].device_time_us() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn orphan_nested_span_degrades_to_top_level_op() {
        // Parent id 99 never recorded (e.g. still open at flush): the
        // child must still surface as a top-level op, not vanish.
        let spans = vec![rec(2, 99, 0, "child", SpanKind::Phase, 1.0, 2.0)];
        let traces = traces_from_spans(&spans, "w", "host");
        assert_eq!(traces.len(), 1);
        let tree = EventTree::build(&traces[0]);
        assert_eq!(tree.ops.len(), 1);
        assert_eq!(tree.ops[0].op.name, "child");
    }

    #[test]
    fn json_array_roundtrip() {
        let spans = vec![
            rec(1, 0, 0, "a", SpanKind::Work, 0.0, 4.0),
            rec(2, 0, 1, "b", SpanKind::Phase, 0.0, 3.0),
        ];
        let sink = ChromeTraceSink::new("w", "host");
        use dlperf_obs::Sink as _;
        sink.consume(&Snapshot { spans, counters: Vec::new() });
        let json = sink.to_json();
        let back = ChromeTraceSink::parse_json(&json).expect("round-trips");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].events.len(), 3, "root work span emits op+runtime+kernel");
    }
}
