//! # dlperf-trace
//!
//! The measurement substrate of the reproduction: a discrete-event engine
//! that "runs" an execution graph the way PyTorch eager mode runs a training
//! iteration on a GPU, and the trace-analysis machinery of the paper's
//! *Analysis Track* (Fig. 3).
//!
//! * [`engine`] — simulates a CPU dispatch thread enqueuing kernels onto one
//!   or more GPU streams. Host-side overheads (the five types of Fig. 6) are
//!   sampled from long-tailed per-op distributions; kernel durations come
//!   from the `dlperf-gpusim` simulator. Produces Kineto-like traces.
//! * [`events`] — the trace container (flattened events with timestamps).
//! * [`event_tree`] — rebuilds the op → runtime → kernel calling structure
//!   from the flattened events (the paper's event-tree construction).
//! * [`breakdown`] — per-batch device-time breakdown: active vs idle time,
//!   per-op device time attribution (Fig. 5), GPU utilization (Fig. 1).
//! * [`extract`] — classifies host overheads into T1–T5 per op type,
//!   removes IQR outliers, and produces the overhead statistics database
//!   (Figs. 7–8) consumed by the E2E predictor.
//! * [`overheads`] — the ground-truth overhead distributions of the
//!   simulated platform.
//! * [`selftrace`] — a `dlperf-obs` sink that renders the predictor's own
//!   recorded spans in this crate's trace dialect, so the whole analysis
//!   stack above can profile the model itself.
//!
//! ## Example
//!
//! ```
//! use dlperf_gpusim::DeviceSpec;
//! use dlperf_models::DlrmConfig;
//! use dlperf_trace::engine::ExecutionEngine;
//!
//! let graph = DlrmConfig::default_config(256).build();
//! let mut engine = ExecutionEngine::new(DeviceSpec::v100(), 0);
//! let run = engine.run(&graph).unwrap();
//! assert!(run.e2e_us > 0.0);
//! assert!(run.active_us() <= run.e2e_us);
//! ```

pub mod breakdown;
pub mod compare;
pub mod engine;
pub mod gaps;
pub mod event_tree;
pub mod events;
pub mod extract;
pub mod ingest;
pub mod overheads;
pub mod screen;
pub mod selftrace;
pub mod stats;

pub use breakdown::DeviceBreakdown;
pub use engine::{EngineError, ExecutionEngine, RunResult};
pub use events::{EventCat, LenientLoadReport, Trace, TraceEvent, TraceLoadError};
pub use ingest::{FileIngest, FileReject, FileReport, IngestLimits, QuarantineReport};
pub use extract::{OverheadStats, OverheadType};
pub use overheads::OverheadProfile;
pub use selftrace::ChromeTraceSink;
