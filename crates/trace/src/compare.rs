//! Before/after run comparison — the reporting half of the co-design loop.
//!
//! After applying a transformation (fusion, reordering, resize) the user
//! wants to know not only the new E2E time but *where* the time moved. This
//! module diffs two runs at the op-type level, the granularity every other
//! report in this crate uses.

use std::collections::HashMap;

use crate::engine::RunResult;
use crate::event_tree::EventTree;

/// Change in one op type's contribution between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct OpDelta {
    /// Op-type key.
    pub op_key: String,
    /// Device time in the *before* run (µs).
    pub before_us: f64,
    /// Device time in the *after* run (µs).
    pub after_us: f64,
    /// Op-instance count before → after.
    pub count: (usize, usize),
}

impl OpDelta {
    /// Signed device-time change (negative = faster after).
    pub fn delta_us(&self) -> f64 {
        self.after_us - self.before_us
    }
}

/// Comparison of two runs.
#[derive(Debug, Clone)]
pub struct RunComparison {
    /// E2E time before → after (µs).
    pub e2e_us: (f64, f64),
    /// Active time before → after (µs).
    pub active_us: (f64, f64),
    /// Per-op-type deltas, sorted by |device-time change| descending.
    pub deltas: Vec<OpDelta>,
}

impl RunComparison {
    /// E2E speedup factor (>1 = after is faster).
    pub fn speedup(&self) -> f64 {
        self.e2e_us.0 / self.e2e_us.1
    }
}

fn per_op(run: &RunResult) -> HashMap<String, (f64, usize)> {
    let tree = EventTree::build(&run.trace);
    let mut map: HashMap<String, (f64, usize)> = HashMap::new();
    for op in &tree.ops {
        let e = map.entry(op.op.op_key.clone()).or_insert((0.0, 0));
        e.0 += op.device_time_us();
        e.1 += 1;
    }
    map
}

/// Diffs two runs of (usually) the same workload before and after a graph
/// transformation.
pub fn compare(before: &RunResult, after: &RunResult) -> RunComparison {
    let (b, a) = (per_op(before), per_op(after));
    let mut keys: Vec<&String> = b.keys().chain(a.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut deltas: Vec<OpDelta> = keys
        .into_iter()
        .map(|k| {
            let (bt, bc) = b.get(k).copied().unwrap_or((0.0, 0));
            let (at, ac) = a.get(k).copied().unwrap_or((0.0, 0));
            OpDelta { op_key: k.clone(), before_us: bt, after_us: at, count: (bc, ac) }
        })
        .collect();
    deltas.sort_by(|x, y| y.delta_us().abs().total_cmp(&x.delta_us().abs()));
    RunComparison {
        e2e_us: (before.e2e_us, after.e2e_us),
        active_us: (before.active_us(), after.active_us()),
        deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecutionEngine;
    use dlperf_graph::transform::fuse_embedding_bags;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_models::DlrmConfig;

    #[test]
    fn fusion_comparison_shows_where_time_moved() {
        let unfused = DlrmConfig {
            rows_per_table: vec![100_000; 8],
            ..DlrmConfig::default_config(512)
        }
        .with_batched_embedding(false)
        .build();
        let mut fused = unfused.clone();
        fuse_embedding_bags(&mut fused).unwrap();

        let mut engine = ExecutionEngine::new(DeviceSpec::v100(), 3);
        engine.set_profiling(false);
        let before = engine.run(&unfused).unwrap();
        let after = engine.run(&fused).unwrap();
        let cmp = compare(&before, &after);

        assert!(cmp.speedup() > 1.0, "fusion should speed things up");
        // The embedding_bag rows disappear and the batched op appears.
        let bag = cmp.deltas.iter().find(|d| d.op_key == "aten::embedding_bag").unwrap();
        assert_eq!(bag.count.0, 8);
        assert_eq!(bag.count.1, 0);
        let batched = cmp.deltas.iter().find(|d| d.op_key == "batched_embedding").unwrap();
        assert_eq!(batched.count, (0, 1));
    }

    #[test]
    fn self_comparison_is_near_identity() {
        let g = DlrmConfig::ddp_config(256).build();
        let mut engine = ExecutionEngine::new(DeviceSpec::v100(), 5);
        engine.set_profiling(false);
        let a = engine.run(&g).unwrap();
        let b = engine.run(&g).unwrap();
        let cmp = compare(&a, &b);
        assert!((cmp.speedup() - 1.0).abs() < 0.1);
        for d in &cmp.deltas {
            assert_eq!(d.count.0, d.count.1, "op counts must match for the same graph");
        }
    }
}
