//! The discrete-event training execution engine.
//!
//! Simulates PyTorch eager-mode execution of an execution graph: a single
//! CPU dispatch thread walks the ops in order, paying host overheads
//! (sampled from [`crate::OverheadProfile`]) and asynchronously enqueuing
//! kernels onto GPU streams. A kernel starts when three conditions are all
//! met — its stream is free, its launch has (half-)landed, and its data
//! dependencies are complete — which is precisely how unhidden host
//! overheads turn into device idle time, the effect the paper's E2E model
//! exists to capture (Fig. 4).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dlperf_gpusim::{DeviceSpec, Gpu, SlowdownProfile};
use dlperf_graph::lower::{self, LowerError};
use dlperf_graph::{Graph, TensorId};

use crate::events::{EventCat, Trace, TraceEvent};
use crate::extract::OverheadType;
use crate::overheads::OverheadProfile;

/// Actual profiler overhead injected per host op event when profiling (µs).
/// The analysis subtracts the paper's empirical 2 µs estimate, leaving a
/// small realistic residual.
pub const PROFILER_CPU_ACTUAL_US: f64 = 2.2;
/// Actual profiler overhead injected per GPU (runtime) event (µs); the
/// analysis subtracts PyTorch's documented 4 µs.
pub const PROFILER_GPU_ACTUAL_US: f64 = 4.3;

/// Errors raised by the execution engine.
///
/// Wrapping [`LowerError`] in an engine-level type gives callers one typed
/// failure channel per workload: a malformed graph (or a fault scenario
/// that drives a time non-finite) is reported instead of aborting the
/// process, so multi-workload analyses can skip the offender and continue.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum EngineError {
    /// The graph failed to lower to kernels (inconsistent tensor shapes).
    Lower(LowerError),
    /// A simulated time became non-finite or negative — a corrupt kernel
    /// spec or a degenerate fault configuration.
    NonFiniteTime {
        /// Name of the op whose kernel produced the bad time.
        op: String,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Lower(e) => write!(f, "{e}"),
            EngineError::NonFiniteTime { op, value } => {
                write!(f, "op `{op}` produced a non-finite kernel time ({value})")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Lower(e) => Some(e),
            EngineError::NonFiniteTime { .. } => None,
        }
    }
}

impl From<LowerError> for EngineError {
    fn from(e: LowerError) -> Self {
        EngineError::Lower(e)
    }
}

/// Result of executing one training iteration.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The recorded trace.
    pub trace: Trace,
    /// End-to-end per-batch time: `max(cpu_us, last kernel end)`.
    pub e2e_us: f64,
    /// CPU dispatch-thread finish time.
    pub cpu_us: f64,
    /// Last kernel completion time across all streams.
    pub gpu_last_us: f64,
}

impl RunResult {
    /// Device active time: the union of all kernel intervals across streams.
    pub fn active_us(&self) -> f64 {
        let mut intervals: Vec<(f64, f64)> = self
            .trace
            .events
            .iter()
            .filter(|e| e.cat == EventCat::Kernel)
            .map(|e| (e.ts_us, e.end_us()))
            .collect();
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut active = 0.0;
        let mut cur: Option<(f64, f64)> = None;
        for (s, e) in intervals {
            match cur {
                None => cur = Some((s, e)),
                Some((cs, ce)) => {
                    if s <= ce {
                        cur = Some((cs, ce.max(e)));
                    } else {
                        active += ce - cs;
                        cur = Some((s, e));
                    }
                }
            }
        }
        if let Some((cs, ce)) = cur {
            active += ce - cs;
        }
        active
    }

    /// GPU utilization: active time over E2E time (the paper's temporal
    /// definition, Fig. 1).
    pub fn utilization(&self) -> f64 {
        if self.e2e_us == 0.0 {
            0.0
        } else {
            self.active_us() / self.e2e_us
        }
    }
}

/// The execution engine: a simulated GPU plus a host-overhead profile.
#[derive(Debug)]
pub struct ExecutionEngine {
    gpu: Gpu,
    overheads: OverheadProfile,
    rng: StdRng,
    profiling: bool,
    /// Extra uniform host-side delay amplitude per overhead sample (µs);
    /// models a noisy neighbour stealing CPU from the dispatch thread.
    host_jitter_us: f64,
}

impl ExecutionEngine {
    /// Creates an engine for `device` with the typical server host profile
    /// and profiling enabled (traces carry profiler overheads, as the
    /// paper's measured traces do). The TITAN Xp platform gets the slower
    /// workstation host, mirroring the paper's distinct test machines.
    pub fn new(device: DeviceSpec, seed: u64) -> Self {
        let overheads = if device.name.contains("TITAN") {
            OverheadProfile::slow_workstation()
        } else {
            OverheadProfile::typical_server()
        };
        Self::with_overheads(device, overheads, seed)
    }

    /// Creates an engine with an explicit overhead profile.
    pub fn with_overheads(device: DeviceSpec, overheads: OverheadProfile, seed: u64) -> Self {
        ExecutionEngine {
            gpu: Gpu::with_seed(device, seed ^ 0x9e3779b97f4a7c15),
            overheads,
            rng: StdRng::seed_from_u64(seed),
            profiling: true,
            host_jitter_us: 0.0,
        }
    }

    /// Enables or disables profiler-overhead injection.
    pub fn set_profiling(&mut self, profiling: bool) {
        self.profiling = profiling;
    }

    /// Installs a fault-induced slowdown profile on the simulated GPU.
    /// Kernels are priced at their scheduled start time, so the profile's
    /// thermal windows line up with the engine's simulated clock.
    pub fn set_slowdown(&mut self, slowdown: SlowdownProfile) {
        self.gpu.set_slowdown(slowdown);
    }

    /// Adds uniform host-side jitter (0..`amplitude_us`, µs) to every
    /// sampled overhead — fault injection for the dispatch thread.
    pub fn set_host_jitter(&mut self, amplitude_us: f64) {
        assert!(
            amplitude_us >= 0.0 && amplitude_us.is_finite(),
            "jitter amplitude must be non-negative and finite"
        );
        self.host_jitter_us = amplitude_us;
    }

    /// The overhead profile in use.
    pub fn overheads(&self) -> &OverheadProfile {
        &self.overheads
    }

    /// The simulated device.
    pub fn device(&self) -> &DeviceSpec {
        self.gpu.spec()
    }

    fn sample(&mut self, op_key: &str, ty: OverheadType) -> f64 {
        let base = self.overheads.sample(op_key, ty, &mut self.rng);
        if self.host_jitter_us > 0.0 {
            use rand::Rng;
            base + self.rng.gen_range(0.0..self.host_jitter_us)
        } else {
            base
        }
    }

    /// Executes one training iteration of `graph`, producing its trace.
    ///
    /// # Errors
    /// Returns [`EngineError::Lower`] if an op's tensor shapes are
    /// inconsistent with its kind, [`EngineError::NonFiniteTime`] if a
    /// kernel's simulated duration degenerates.
    pub fn run(&mut self, graph: &Graph) -> Result<RunResult, EngineError> {
        let prof_cpu = if self.profiling { PROFILER_CPU_ACTUAL_US } else { 0.0 };
        let prof_gpu = if self.profiling { PROFILER_GPU_ACTUAL_US } else { 0.0 };

        let mut events: Vec<TraceEvent> = Vec::new();
        let mut tensor_ready: HashMap<TensorId, f64> = HashMap::new();
        let mut stream_free: HashMap<usize, f64> = HashMap::new();
        let mut cpu = 0.0f64;
        let mut correlation = 0u64;

        for node in graph.nodes() {
            let key = node.op.overhead_key();
            cpu += self.sample(key, OverheadType::T1);
            let op_start = cpu;

            let kernels = lower::try_kernels(graph, node)?;
            let dep_ready = node
                .inputs
                .iter()
                .filter_map(|t| tensor_ready.get(t))
                .fold(0.0f64, |a, &b| a.max(b));

            let mut last_kernel_end: Option<f64> = None;
            if kernels.is_empty() {
                // Algorithm 1, else-branch: host-only ops still pay T5.
                cpu += self.sample(key, OverheadType::T5) + prof_cpu;
            } else {
                cpu += self.sample(key, OverheadType::T2) + prof_cpu;
                let n = kernels.len();
                for (i, k) in kernels.into_iter().enumerate() {
                    let t4 = self.sample(key, OverheadType::T4) + prof_gpu;
                    let launch_ts = cpu;
                    let free = stream_free.entry(node.stream).or_insert(0.0);
                    let start = (*free).max(launch_ts + t4 / 2.0).max(dep_ready);
                    // Priced at the scheduled start so time-windowed fault
                    // slowdowns (thermal throttling) apply correctly.
                    let dur = self.gpu.kernel_time_at(&k, start);
                    if !dur.is_finite() || dur < 0.0 {
                        return Err(EngineError::NonFiniteTime {
                            op: node.name.clone(),
                            value: dur,
                        });
                    }
                    *free = start + dur;
                    last_kernel_end = Some(start + dur);
                    correlation += 1;
                    events.push(TraceEvent {
                        name: "cudaLaunchKernel".into(),
                        cat: EventCat::Runtime,
                        ts_us: launch_ts,
                        dur_us: t4,
                        stream: node.stream,
                        op_index: node.id.0,
                        correlation,
                        op_key: key.to_string(),
                    });
                    events.push(TraceEvent {
                        name: format!("{}_kernel", k.family()),
                        cat: EventCat::Kernel,
                        ts_us: start,
                        dur_us: dur,
                        stream: node.stream,
                        op_index: node.id.0,
                        correlation,
                        op_key: String::new(),
                    });
                    cpu += t4;
                    if i + 1 < n {
                        cpu += self.sample(key, OverheadType::T5);
                    }
                }
                cpu += self.sample(key, OverheadType::T3);
            }

            events.push(TraceEvent {
                name: node.name.clone(),
                cat: EventCat::Op,
                ts_us: op_start,
                dur_us: cpu - op_start,
                stream: node.stream,
                op_index: node.id.0,
                correlation: 0,
                op_key: key.to_string(),
            });

            let ready = last_kernel_end.unwrap_or(cpu);
            for &out in &node.outputs {
                tensor_ready.insert(out, ready);
            }
        }

        let gpu_last = stream_free.values().fold(0.0f64, |a, &b| a.max(b));
        let e2e = cpu.max(gpu_last);
        Ok(RunResult {
            trace: Trace {
                workload: graph.name.clone(),
                device: self.gpu.spec().name.clone(),
                events,
                span_us: e2e,
            },
            e2e_us: e2e,
            cpu_us: cpu,
            gpu_last_us: gpu_last,
        })
    }

    /// Executes `iters` iterations (fresh noise each), returning all runs.
    ///
    /// # Errors
    /// Propagates [`EngineError`]s from [`ExecutionEngine::run`].
    pub fn run_iterations(&mut self, graph: &Graph, iters: usize) -> Result<Vec<RunResult>, EngineError> {
        (0..iters).map(|_| self.run(graph)).collect()
    }

    /// Mean measured E2E per-batch time over `iters` iterations (µs) — the
    /// "actual measured time" the paper compares predictions against.
    ///
    /// # Errors
    /// Propagates [`EngineError`]s.
    pub fn measure_e2e(&mut self, graph: &Graph, iters: usize) -> Result<f64, EngineError> {
        assert!(iters > 0, "need at least one iteration");
        let runs = self.run_iterations(graph, iters)?;
        Ok(runs.iter().map(|r| r.e2e_us).sum::<f64>() / runs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_graph::{OpKind, TensorMeta};
    use dlperf_models::DlrmConfig;

    fn small_dlrm() -> Graph {
        DlrmConfig {
            rows_per_table: vec![10_000; 4],
            ..DlrmConfig::default_config(256)
        }
        .build()
    }

    #[test]
    fn run_produces_consistent_times() {
        let g = small_dlrm();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 1);
        let r = e.run(&g).unwrap();
        assert!(r.e2e_us > 0.0);
        assert!(r.e2e_us >= r.cpu_us);
        assert!(r.e2e_us >= r.gpu_last_us);
        assert!(r.active_us() <= r.gpu_last_us);
        assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
    }

    #[test]
    fn kernels_never_overlap_on_one_stream() {
        let g = small_dlrm();
        let mut e = ExecutionEngine::new(DeviceSpec::p100(), 2);
        let r = e.run(&g).unwrap();
        let ks = r.trace.of_cat(EventCat::Kernel);
        for w in ks.windows(2) {
            if w[0].stream == w[1].stream {
                assert!(
                    w[1].ts_us >= w[0].end_us() - 1e-9,
                    "kernel overlap: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn kernel_starts_respect_launch_time() {
        let g = small_dlrm();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 3);
        let r = e.run(&g).unwrap();
        let mut by_corr: HashMap<u64, (Option<f64>, Option<f64>)> = HashMap::new();
        for ev in &r.trace.events {
            match ev.cat {
                EventCat::Runtime => by_corr.entry(ev.correlation).or_default().0 = Some(ev.ts_us),
                EventCat::Kernel => by_corr.entry(ev.correlation).or_default().1 = Some(ev.ts_us),
                EventCat::Op => {}
            }
        }
        for (corr, (launch, kernel)) in by_corr {
            let (l, k) = (launch.unwrap(), kernel.unwrap());
            assert!(k >= l, "kernel {corr} started at {k} before its launch at {l}");
        }
    }

    #[test]
    fn iterations_vary_with_noise() {
        let g = small_dlrm();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 4);
        let runs = e.run_iterations(&g, 5).unwrap();
        let times: Vec<f64> = runs.iter().map(|r| r.e2e_us).collect();
        assert!(times.windows(2).any(|w| w[0] != w[1]), "iterations identical: {times:?}");
        // ... but within a plausible band.
        let m = crate::stats::mean(&times);
        assert!(times.iter().all(|t| (t - m).abs() / m < 0.2));
    }

    #[test]
    fn slowdown_profile_stretches_e2e() {
        let g = small_dlrm();
        let healthy = ExecutionEngine::new(DeviceSpec::v100(), 8).run(&g).unwrap();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 8);
        e.set_slowdown(SlowdownProfile::uniform(3.0));
        let slow = e.run(&g).unwrap();
        // DLRM is host-bound, so e2e barely moves — but device *active*
        // time must stretch by roughly the slowdown factor.
        assert!(
            slow.active_us() > 2.0 * healthy.active_us(),
            "slowdown had no effect: {} vs {}",
            slow.active_us(),
            healthy.active_us()
        );
        assert!(slow.e2e_us >= healthy.e2e_us * 0.99, "slowdown should never speed things up");
    }

    #[test]
    fn host_jitter_inflates_cpu_time() {
        let g = small_dlrm();
        let base = ExecutionEngine::new(DeviceSpec::v100(), 9).run(&g).unwrap();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 9);
        e.set_host_jitter(25.0);
        let jittered = e.run(&g).unwrap();
        assert!(
            jittered.cpu_us > base.cpu_us,
            "jitter had no effect: {} vs {}",
            jittered.cpu_us,
            base.cpu_us
        );
    }

    #[test]
    fn cpu_bound_chain_has_idle_gpu() {
        // Many tiny ops: CPU overheads dominate => utilization well below 1.
        let mut g = Graph::new("tiny-chain");
        let mut x = g.add_tensor(TensorMeta::activation(&[64]));
        for _ in 0..40 {
            let y = g.add_tensor(TensorMeta::activation(&[64]));
            g.add_op(OpKind::Relu, vec![x], vec![y]);
            x = y;
        }
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 5);
        let r = e.run(&g).unwrap();
        assert!(r.utilization() < 0.5, "tiny ops should leave the GPU idle, got {}", r.utilization());
        assert!(r.cpu_us > r.gpu_last_us, "chain should be CPU-bound");
    }

    #[test]
    fn multi_stream_overlaps_independent_branches() {
        use dlperf_graph::transform::{independent_groups, parallelize};
        // Two independent heavy GEMM chains; with stream assignment the E2E
        // time should drop below the serial version.
        let mut g = Graph::new("branches");
        let mk_chain = |g: &mut Graph| {
            let x = g.add_tensor(TensorMeta::activation(&[2048, 2048]));
            let w = g.add_tensor(TensorMeta::weight(&[2048, 2048]));
            let b = g.add_tensor(TensorMeta::weight(&[2048]));
            let mut h = x;
            let mut ids = Vec::new();
            for _ in 0..4 {
                let y = g.add_tensor(TensorMeta::activation(&[2048, 2048]));
                ids.push(g.add_op(OpKind::AddMm, vec![h, w, b], vec![y]));
                h = y;
            }
            ids
        };
        let c1 = mk_chain(&mut g);
        let c2 = mk_chain(&mut g);
        let serial = ExecutionEngine::new(DeviceSpec::v100(), 6).run(&g).unwrap();

        let all: Vec<_> = c1.iter().chain(c2.iter()).copied().collect();
        let groups = independent_groups(&g, &all);
        assert_eq!(groups.len(), 2);
        parallelize(&mut g, &groups).unwrap();
        let parallel = ExecutionEngine::new(DeviceSpec::v100(), 6).run(&g).unwrap();
        assert!(
            parallel.e2e_us < serial.e2e_us * 0.95,
            "parallel {} vs serial {}",
            parallel.e2e_us,
            serial.e2e_us
        );
    }

    #[test]
    fn dlrm_utilization_below_cnn_like() {
        // The Fig. 1 contrast: DLRM's utilization is substantially below a
        // compute-heavy GEMM chain's.
        let dlrm = DlrmConfig::default_config(512).build();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 7);
        let u_dlrm = e.run(&dlrm).unwrap().utilization();

        let mut g = Graph::new("gemm-heavy");
        let mut x = g.add_tensor(TensorMeta::activation(&[4096, 4096]));
        let w = g.add_tensor(TensorMeta::weight(&[4096, 4096]));
        let b = g.add_tensor(TensorMeta::weight(&[4096]));
        for _ in 0..10 {
            let y = g.add_tensor(TensorMeta::activation(&[4096, 4096]));
            g.add_op(OpKind::AddMm, vec![x, w, b], vec![y]);
            x = y;
        }
        let u_gemm = ExecutionEngine::new(DeviceSpec::v100(), 7).run(&g).unwrap().utilization();
        assert!(u_gemm > 0.9, "GEMM chain utilization {u_gemm}");
        assert!(u_dlrm < u_gemm, "DLRM {u_dlrm} vs GEMM {u_gemm}");
    }
}
