//! Kineto-like trace containers: flattened events with timestamps.

use serde::{Deserialize, Serialize};

/// Category of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventCat {
    /// A host-side operator call (`cpu_op` in Kineto traces).
    Op,
    /// A CUDA runtime call, e.g. `cudaLaunchKernel` (`cuda_runtime`).
    Runtime,
    /// A device kernel execution (`kernel`).
    Kernel,
}

/// One flattened trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event name (op name, runtime function, or kernel name).
    pub name: String,
    /// Category.
    pub cat: EventCat,
    /// Start timestamp in microseconds from iteration start.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Stream the event ran on (kernels) or was issued from (0 for host).
    pub stream: usize,
    /// Index of the graph node this event belongs to.
    pub op_index: usize,
    /// Correlates a `Runtime` launch with the `Kernel` it launched.
    pub correlation: u64,
    /// Op-type key used for overhead bookkeeping (empty for kernels).
    pub op_key: String,
}

impl TraceEvent {
    /// End timestamp.
    pub fn end_us(&self) -> f64 {
        self.ts_us + self.dur_us
    }
}

/// Why a serialized trace artifact (trace file or overhead database) could
/// not be loaded. Trace files are *untrusted input* — they may come from
/// disk, other tools, or other machines — so loading validates content
/// instead of letting NaNs or negative durations flow into the engine.
#[derive(Debug)]
pub enum TraceLoadError {
    /// The JSON itself failed to parse.
    Parse(serde_json::Error),
    /// The JSON parsed, but carries values the analysis cannot safely use
    /// (non-finite timestamps, negative durations, …).
    Invalid(String),
    /// Two events of the same category reuse one nonzero correlation id,
    /// so launch→kernel attribution would be ambiguous. Strict loads
    /// ([`Trace::from_json`]) reject the trace; lenient loads
    /// ([`Trace::from_json_lenient`]) keep the last occurrence and count.
    DuplicateCorrelation {
        /// The category both events carry.
        cat: EventCat,
        /// The reused correlation id.
        correlation: u64,
        /// Event index of the first occurrence.
        first: usize,
        /// Event index of the duplicate.
        second: usize,
    },
}

impl std::fmt::Display for TraceLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceLoadError::Parse(e) => write!(f, "trace artifact is not valid JSON: {e}"),
            TraceLoadError::Invalid(why) => write!(f, "trace artifact rejected: {why}"),
            TraceLoadError::DuplicateCorrelation { cat, correlation, first, second } => write!(
                f,
                "trace artifact rejected: events {first} and {second} (both {cat:?}) \
                 reuse correlation id {correlation}"
            ),
        }
    }
}

impl std::error::Error for TraceLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceLoadError::Parse(e) => Some(e),
            TraceLoadError::Invalid(_) | TraceLoadError::DuplicateCorrelation { .. } => None,
        }
    }
}

impl From<serde_json::Error> for TraceLoadError {
    fn from(e: serde_json::Error) -> Self {
        TraceLoadError::Parse(e)
    }
}

/// What a lenient load ([`Trace::from_json_lenient`]) had to repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LenientLoadReport {
    /// Earlier occurrences dropped by last-wins correlation dedup.
    pub dup_correlations: u64,
}

/// A trace of one training iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trace {
    /// Workload name.
    pub workload: String,
    /// Device name.
    pub device: String,
    /// Flattened events.
    pub events: Vec<TraceEvent>,
    /// Iteration wall-clock span in microseconds.
    pub span_us: f64,
}

impl Trace {
    /// Events of one category, in timestamp order.
    pub fn of_cat(&self, cat: EventCat) -> Vec<&TraceEvent> {
        let mut evs: Vec<&TraceEvent> = self.events.iter().filter(|e| e.cat == cat).collect();
        evs.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
        evs
    }

    /// Serializes to JSON (the trace-file format of the analysis track).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserializes from JSON, rejecting traces whose timing content would
    /// poison downstream analysis. This is the *strict* load: a trace that
    /// reuses a nonzero correlation id within one event category is
    /// rejected rather than silently attributing two launches (or two
    /// kernels) to one id. Fleet corpora that must tolerate such traces go
    /// through [`Trace::from_json_lenient`] or the `ingest` scanner.
    ///
    /// # Errors
    /// [`TraceLoadError::Parse`] for malformed JSON; [`TraceLoadError::Invalid`]
    /// for parsed traces with non-finite timestamps, negative durations, or a
    /// non-finite span; [`TraceLoadError::DuplicateCorrelation`] for a reused
    /// correlation id.
    pub fn from_json(s: &str) -> Result<Self, TraceLoadError> {
        let t: Trace = serde_json::from_str(s)?;
        t.validate()?;
        t.check_duplicate_correlations()?;
        Ok(t)
    }

    /// Deserializes from JSON like [`Trace::from_json`], but resolves
    /// duplicate correlation ids last-wins instead of erroring: for each
    /// `(category, nonzero id)` pair only the final occurrence survives,
    /// and the number of dropped earlier occurrences is returned. Timing
    /// content is still validated strictly — leniency covers bookkeeping
    /// ambiguity, never poisoned numbers.
    ///
    /// # Errors
    /// [`TraceLoadError::Parse`] and [`TraceLoadError::Invalid`] as in the
    /// strict load.
    pub fn from_json_lenient(s: &str) -> Result<(Self, LenientLoadReport), TraceLoadError> {
        let mut t: Trace = serde_json::from_str(s)?;
        t.validate()?;
        let dup_correlations = t.dedup_correlations_last_wins();
        Ok((t, LenientLoadReport { dup_correlations }))
    }

    /// Strict half of the duplicate-correlation contract: errors on the
    /// first `(category, nonzero correlation id)` pair that appears twice.
    /// A `Runtime` launch and the `Kernel` it launched legitimately share
    /// one id — only a reuse *within* a category is ambiguous.
    ///
    /// # Errors
    /// [`TraceLoadError::DuplicateCorrelation`] naming both occurrences.
    pub fn check_duplicate_correlations(&self) -> Result<(), TraceLoadError> {
        let mut seen: std::collections::HashMap<(EventCat, u64), usize> =
            std::collections::HashMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            if ev.correlation == 0 {
                continue;
            }
            if let Some(&first) = seen.get(&(ev.cat, ev.correlation)) {
                return Err(TraceLoadError::DuplicateCorrelation {
                    cat: ev.cat,
                    correlation: ev.correlation,
                    first,
                    second: i,
                });
            }
            seen.insert((ev.cat, ev.correlation), i);
        }
        Ok(())
    }

    /// Lenient half of the duplicate-correlation contract: for each
    /// `(category, nonzero correlation id)` pair, keeps only the last
    /// occurrence (in its own position) and returns how many earlier
    /// occurrences were dropped. A no-op on clean traces.
    pub fn dedup_correlations_last_wins(&mut self) -> u64 {
        let mut last: std::collections::HashMap<(EventCat, u64), usize> =
            std::collections::HashMap::new();
        for (i, ev) in self.events.iter().enumerate() {
            if ev.correlation != 0 {
                last.insert((ev.cat, ev.correlation), i);
            }
        }
        let before = self.events.len();
        let mut i = 0usize;
        self.events.retain(|ev| {
            let keep = ev.correlation == 0 || last[&(ev.cat, ev.correlation)] == i;
            i += 1;
            keep
        });
        (before - self.events.len()) as u64
    }

    /// Checks that every timing field is usable by the analysis machinery.
    pub fn validate(&self) -> Result<(), TraceLoadError> {
        if !self.span_us.is_finite() || self.span_us < 0.0 {
            return Err(TraceLoadError::Invalid(format!(
                "trace span must be finite and non-negative, got {}",
                self.span_us
            )));
        }
        for (i, ev) in self.events.iter().enumerate() {
            if !ev.ts_us.is_finite() {
                return Err(TraceLoadError::Invalid(format!(
                    "event {i} (`{}`) has non-finite timestamp {}",
                    ev.name, ev.ts_us
                )));
            }
            if !ev.dur_us.is_finite() || ev.dur_us < 0.0 {
                return Err(TraceLoadError::Invalid(format!(
                    "event {i} (`{}`) has invalid duration {}",
                    ev.name, ev.dur_us
                )));
            }
        }
        Ok(())
    }

    /// Exports the trace in the Chrome trace-event format, loadable in
    /// `chrome://tracing` or Perfetto — host ops and runtime calls on a
    /// "CPU" track, kernels on one track per stream, launches connected to
    /// their kernels via flow ids.
    pub fn to_chrome_json(&self) -> String {
        use serde_json::json;
        let mut events = Vec::with_capacity(self.events.len() + 2);
        events.push(json!({
            "name": "process_name", "ph": "M", "pid": 0,
            "args": {"name": format!("{} on {}", self.workload, self.device)}
        }));
        for ev in &self.events {
            let (tid, cat) = match ev.cat {
                EventCat::Op => (0, "cpu_op"),
                EventCat::Runtime => (0, "cuda_runtime"),
                EventCat::Kernel => (100 + ev.stream as i64, "kernel"),
            };
            let mut obj = json!({
                "name": ev.name, "cat": cat, "ph": "X",
                "ts": ev.ts_us, "dur": ev.dur_us,
                "pid": 0, "tid": tid,
                "args": {"op_index": ev.op_index, "correlation": ev.correlation},
            });
            if ev.cat == EventCat::Kernel && ev.correlation != 0 {
                obj["args"]["flow"] = json!(ev.correlation);
            }
            events.push(obj);
        }
        serde_json::to_string(&json!({"traceEvents": events, "displayTimeUnit": "ms"}))
            .expect("chrome trace serialization cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, cat: EventCat, ts: f64, dur: f64) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat,
            ts_us: ts,
            dur_us: dur,
            stream: 0,
            op_index: 0,
            correlation: 0,
            op_key: String::new(),
        }
    }

    #[test]
    fn cat_filter_sorts_by_time() {
        let t = Trace {
            workload: "w".into(),
            device: "d".into(),
            events: vec![
                ev("b", EventCat::Kernel, 5.0, 1.0),
                ev("a", EventCat::Kernel, 1.0, 1.0),
                ev("op", EventCat::Op, 0.0, 10.0),
            ],
            span_us: 10.0,
        };
        let ks = t.of_cat(EventCat::Kernel);
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].name, "a");
    }

    #[test]
    fn json_roundtrip() {
        let t = Trace {
            workload: "w".into(),
            device: "d".into(),
            events: vec![ev("x", EventCat::Runtime, 0.0, 9.5)],
            span_us: 9.5,
        };
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back.events.len(), 1);
        assert_eq!(back.events[0].end_us(), 9.5);
    }

    #[test]
    fn malformed_json_is_a_parse_error_not_a_panic() {
        match Trace::from_json("{ not json") {
            Err(TraceLoadError::Parse(_)) => {}
            other => panic!("expected Parse error, got {other:?}"),
        }
    }

    #[test]
    fn poisoned_timing_content_is_rejected() {
        let t = Trace {
            workload: "w".into(),
            device: "d".into(),
            events: vec![ev("bad", EventCat::Kernel, 1.0, -3.0)],
            span_us: 10.0,
        };
        match Trace::from_json(&t.to_json()) {
            Err(TraceLoadError::Invalid(why)) => {
                assert!(why.contains("bad"), "error should name the event: {why}")
            }
            other => panic!("expected Invalid error, got {other:?}"),
        }
    }

    #[test]
    fn strict_load_rejects_duplicate_correlation_within_category() {
        let mut a = ev("launch", EventCat::Runtime, 0.0, 1.0);
        a.correlation = 7;
        let mut b = ev("launch", EventCat::Runtime, 2.0, 1.0);
        b.correlation = 7;
        let t = Trace { workload: "w".into(), device: "d".into(), events: vec![a, b], span_us: 3.0 };
        match Trace::from_json(&t.to_json()) {
            Err(TraceLoadError::DuplicateCorrelation { cat, correlation, first, second }) => {
                assert_eq!(cat, EventCat::Runtime);
                assert_eq!(correlation, 7);
                assert_eq!((first, second), (0, 1));
            }
            other => panic!("expected DuplicateCorrelation, got {other:?}"),
        }
    }

    #[test]
    fn runtime_kernel_pair_sharing_an_id_is_not_a_duplicate() {
        let mut launch = ev("launch", EventCat::Runtime, 0.0, 1.0);
        launch.correlation = 9;
        let mut kernel = ev("k", EventCat::Kernel, 1.0, 2.0);
        kernel.correlation = 9;
        let t = Trace {
            workload: "w".into(),
            device: "d".into(),
            events: vec![launch, kernel],
            span_us: 3.0,
        };
        assert!(Trace::from_json(&t.to_json()).is_ok());
    }

    #[test]
    fn lenient_load_keeps_last_occurrence_and_counts() {
        let mut a = ev("first", EventCat::Runtime, 0.0, 1.0);
        a.correlation = 3;
        let b = ev("op", EventCat::Op, 0.5, 1.0);
        let mut c = ev("last", EventCat::Runtime, 2.0, 1.0);
        c.correlation = 3;
        let t =
            Trace { workload: "w".into(), device: "d".into(), events: vec![a, b, c], span_us: 3.0 };
        let (back, report) = Trace::from_json_lenient(&t.to_json()).unwrap();
        assert_eq!(report.dup_correlations, 1);
        assert_eq!(back.events.len(), 2);
        assert_eq!(back.events[0].name, "op");
        assert_eq!(back.events[1].name, "last", "last occurrence wins, in its own position");
        // A clean trace round-trips untouched.
        let (clean, report) = Trace::from_json_lenient(&back.to_json()).unwrap();
        assert_eq!(report.dup_correlations, 0);
        assert_eq!(clean.events.len(), 2);
    }

    #[test]
    fn chrome_export_is_valid_json_with_all_events() {
        let t = Trace {
            workload: "w".into(),
            device: "V100".into(),
            events: vec![
                ev("aten::relu", EventCat::Op, 0.0, 10.0),
                ev("cudaLaunchKernel", EventCat::Runtime, 2.0, 9.0),
                ev("elementwise_kernel", EventCat::Kernel, 8.0, 3.0),
            ],
            span_us: 12.0,
        };
        let chrome: serde_json::Value = serde_json::from_str(&t.to_chrome_json()).unwrap();
        let events = chrome["traceEvents"].as_array().unwrap();
        // 3 trace events + 1 process-name metadata record.
        assert_eq!(events.len(), 4);
        assert!(events.iter().any(|e| e["cat"] == "kernel" && e["tid"] == 100));
    }
}
