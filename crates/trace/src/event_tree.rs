//! Event-tree reconstruction from flattened trace events.
//!
//! Profiler trace files flatten the calling structure; the paper "constructs
//! an event tree to represent the calling stack of each op so that the
//! device execution time of each kernel is attributed to the corresponding
//! op". The reconstruction here uses interval containment (a runtime call
//! lies inside its op's host span) plus launch→kernel correlation ids,
//! exactly as one would on a Kineto trace.

use crate::events::{EventCat, Trace, TraceEvent};

/// A launch inside an op: the runtime call and the kernel it started.
#[derive(Debug, Clone)]
pub struct LaunchNode {
    /// The `cudaLaunchKernel`-style runtime event.
    pub runtime: TraceEvent,
    /// The device kernel, if the correlation resolved.
    pub kernel: Option<TraceEvent>,
}

/// One op with its launches, in issue order.
#[derive(Debug, Clone)]
pub struct OpNode {
    /// The host-side op event.
    pub op: TraceEvent,
    /// The op's kernel launches.
    pub launches: Vec<LaunchNode>,
}

impl OpNode {
    /// Total device time attributed to this op (sum of kernel durations).
    pub fn device_time_us(&self) -> f64 {
        self.launches
            .iter()
            .filter_map(|l| l.kernel.as_ref())
            .map(|k| k.dur_us)
            .sum()
    }
}

/// The reconstructed tree: top-level ops in execution order.
#[derive(Debug, Clone)]
pub struct EventTree {
    /// Ops in start-time order.
    pub ops: Vec<OpNode>,
}

impl EventTree {
    /// Builds the tree from a flattened trace.
    ///
    /// Runtime events are attached to the op whose host span contains them;
    /// kernels are attached to their launch through the correlation id.
    pub fn build(trace: &Trace) -> Self {
        let mut ops: Vec<OpNode> = trace
            .of_cat(EventCat::Op)
            .into_iter()
            .map(|e| OpNode { op: e.clone(), launches: Vec::new() })
            .collect();

        let kernels: std::collections::HashMap<u64, &TraceEvent> = trace
            .events
            .iter()
            .filter(|e| e.cat == EventCat::Kernel)
            .map(|e| (e.correlation, e))
            .collect();

        for rt in trace.of_cat(EventCat::Runtime) {
            // Ops are sorted and non-overlapping; binary search by span.
            let idx = ops.partition_point(|o| o.op.end_us() < rt.ts_us + 1e-9);
            if idx < ops.len()
                && ops[idx].op.ts_us <= rt.ts_us + 1e-9
                && rt.end_us() <= ops[idx].op.end_us() + 1e-9
            {
                ops[idx].launches.push(LaunchNode {
                    runtime: rt.clone(),
                    kernel: kernels.get(&rt.correlation).map(|k| (*k).clone()),
                });
            }
        }
        EventTree { ops }
    }

    /// Total device time attributed across all ops.
    pub fn total_device_time_us(&self) -> f64 {
        self.ops.iter().map(OpNode::device_time_us).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecutionEngine;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_models::DlrmConfig;

    fn tree_for_small_dlrm() -> (EventTree, crate::engine::RunResult) {
        let g = DlrmConfig {
            rows_per_table: vec![10_000; 4],
            ..DlrmConfig::default_config(128)
        }
        .build();
        let mut e = ExecutionEngine::new(DeviceSpec::v100(), 11);
        let r = e.run(&g).unwrap();
        (EventTree::build(&r.trace), r)
    }

    #[test]
    fn every_runtime_event_attributed() {
        let (tree, run) = tree_for_small_dlrm();
        let n_runtime = run.trace.of_cat(EventCat::Runtime).len();
        let attributed: usize = tree.ops.iter().map(|o| o.launches.len()).sum();
        assert_eq!(attributed, n_runtime);
    }

    #[test]
    fn every_launch_resolves_its_kernel() {
        let (tree, _) = tree_for_small_dlrm();
        for op in &tree.ops {
            for l in &op.launches {
                assert!(l.kernel.is_some(), "unresolved launch in op {}", op.op.name);
            }
        }
    }

    #[test]
    fn device_time_matches_kernel_sum() {
        let (tree, run) = tree_for_small_dlrm();
        let kernel_sum: f64 = run
            .trace
            .of_cat(EventCat::Kernel)
            .iter()
            .map(|k| k.dur_us)
            .sum();
        assert!((tree.total_device_time_us() - kernel_sum).abs() < 1e-6);
    }

    #[test]
    fn attribution_matches_op_index_ground_truth() {
        // The tree is reconstructed from timestamps only; verify it agrees
        // with the engine's own op_index bookkeeping.
        let (tree, _) = tree_for_small_dlrm();
        for op in &tree.ops {
            for l in &op.launches {
                assert_eq!(l.runtime.op_index, op.op.op_index);
                assert_eq!(l.kernel.as_ref().unwrap().op_index, op.op.op_index);
            }
        }
    }
}
