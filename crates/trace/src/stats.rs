//! Small statistics helpers shared by the analysis modules.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation. Returns 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean of non-negative values (zeros are floored at 1e-12).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|&x| x.max(1e-12).ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Linear-interpolated quantile of a sorted slice, `q` in [0, 1].
///
/// # Panics
/// Panics if the slice is empty or `q` is out of range.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q out of range");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// Removes outliers outside the Tukey whiskers `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]`
/// — the paper's per-type outlier policy for overhead samples.
pub fn iqr_filter(xs: &[f64]) -> Vec<f64> {
    if xs.len() < 4 {
        return xs.to_vec();
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q1 = quantile_sorted(&sorted, 0.25);
    let q3 = quantile_sorted(&sorted, 0.75);
    let iqr = q3 - q1;
    let (lo, hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
    xs.iter().copied().filter(|&x| x >= lo && x <= hi).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_powers() {
        assert!((geomean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&xs, 0.0), 1.0);
        assert_eq!(quantile_sorted(&xs, 1.0), 4.0);
        assert_eq!(quantile_sorted(&xs, 0.5), 2.5);
    }

    #[test]
    fn iqr_filter_drops_tail() {
        let mut xs = vec![10.0; 40];
        xs.push(1000.0);
        let filtered = iqr_filter(&xs);
        assert_eq!(filtered.len(), 40);
        assert!(filtered.iter().all(|&x| x == 10.0));
    }

    #[test]
    fn iqr_filter_keeps_small_samples() {
        let xs = [1.0, 100.0, 10000.0];
        assert_eq!(iqr_filter(&xs), xs.to_vec());
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn quantile_empty_panics() {
        quantile_sorted(&[], 0.5);
    }
}
