//! Explicit multi-GPU interconnect topologies composed from the `gpusim`
//! device catalog.
//!
//! A [`Topology`] assigns every rank a [`DeviceSpec`] and a platform shape
//! — NVLink mesh, PCIe tree, or multi-node hierarchy with an InfiniBand
//! core — including heterogeneous fleets where nodes (or individual ranks)
//! carry different GPUs. It is the single source of truth both sides of
//! the communication model consume:
//!
//! * [`crate::comms`] evaluates the closed-form α–β cost model over it;
//! * [`Topology::oracle_time`] runs the `gpusim` link-level oracle over
//!   the equivalent [`LinkGraph`], which the differential test layer diffs
//!   the α–β model against.
//!
//! Unknown topology names never fail: [`Topology::from_name`] falls back
//! to the most conservative known shape (a PCIe tree over the device's
//! link) and labels the result degraded — degraded, not wrong.

use dlperf_gpusim::interconnect::CollectiveAlgo;
use dlperf_gpusim::{CollectiveSpec, DeviceSpec, LinkGraph, LinkSpec};

/// The platform shape of a topology.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyShape {
    /// Every pair of GPUs has a direct link (NVLink-style).
    Mesh,
    /// GPUs pair up under PCIe switches below one root complex.
    PcieTree,
    /// `nodes × gpus_per_node` hierarchy: intra-node links per GPU, one
    /// shared uplink per node into an InfiniBand core switch.
    Hierarchical {
        /// Node count.
        nodes: usize,
        /// GPUs per node.
        gpus_per_node: usize,
        /// The per-node uplink spec.
        inter: LinkSpec,
    },
}

/// An explicit interconnect topology: one device per rank plus the
/// platform shape joining them.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    label: String,
    devices: Vec<DeviceSpec>,
    shape: TopologyShape,
    /// Uniform bandwidth multiplier on every link (what-if and fault axes).
    bw_scale: f64,
    degraded: Option<String>,
}

impl Topology {
    /// A homogeneous NVLink-style full mesh of `world` devices.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn nvlink_mesh(device: &DeviceSpec, world: usize) -> Self {
        assert!(world > 0, "topology needs at least one rank");
        Topology {
            label: format!("nvlink-mesh-w{world}"),
            devices: vec![device.clone(); world],
            shape: TopologyShape::Mesh,
            bw_scale: 1.0,
            degraded: None,
        }
    }

    /// A homogeneous PCIe tree of `world` devices.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn pcie_tree(device: &DeviceSpec, world: usize) -> Self {
        assert!(world > 0, "topology needs at least one rank");
        Topology {
            label: format!("pcie-tree-w{world}"),
            devices: vec![device.clone(); world],
            shape: TopologyShape::PcieTree,
            bw_scale: 1.0,
            degraded: None,
        }
    }

    /// A homogeneous multi-node hierarchy over an InfiniBand HDR core.
    ///
    /// # Panics
    /// Panics if `nodes` or `gpus_per_node` is zero.
    pub fn multi_node_ib(device: &DeviceSpec, nodes: usize, gpus_per_node: usize) -> Self {
        assert!(nodes > 0 && gpus_per_node > 0, "hierarchy needs nodes and GPUs");
        Topology {
            label: format!("ib-{nodes}x{gpus_per_node}"),
            devices: vec![device.clone(); nodes * gpus_per_node],
            shape: TopologyShape::Hierarchical { nodes, gpus_per_node, inter: LinkSpec::ib_hdr() },
            bw_scale: 1.0,
            degraded: None,
        }
    }

    /// A heterogeneous full-mesh fleet: one device per rank; each pairwise
    /// link is the bottleneck of the two endpoints' links.
    ///
    /// # Panics
    /// Panics if `devices` is empty.
    pub fn heterogeneous_mesh(devices: Vec<DeviceSpec>) -> Self {
        assert!(!devices.is_empty(), "topology needs at least one rank");
        Topology {
            label: format!("hetero-mesh-w{}", devices.len()),
            devices,
            shape: TopologyShape::Mesh,
            bw_scale: 1.0,
            degraded: None,
        }
    }

    /// A heterogeneous multi-node hierarchy: `devices` filled node by node
    /// (`gpus_per_node` per node) over an InfiniBand HDR core — e.g. one
    /// V100 node plus one P100 node.
    ///
    /// # Panics
    /// Panics if `devices.len()` is not a positive multiple of
    /// `gpus_per_node`.
    pub fn multi_node_ib_heterogeneous(devices: Vec<DeviceSpec>, gpus_per_node: usize) -> Self {
        assert!(
            gpus_per_node > 0 && !devices.is_empty() && devices.len().is_multiple_of(gpus_per_node),
            "devices must fill whole nodes"
        );
        let nodes = devices.len() / gpus_per_node;
        Topology {
            label: format!("hetero-ib-{nodes}x{gpus_per_node}"),
            devices,
            shape: TopologyShape::Hierarchical { nodes, gpus_per_node, inter: LinkSpec::ib_hdr() },
            bw_scale: 1.0,
            degraded: None,
        }
    }

    /// The natural single-node topology for a device: an NVLink mesh for
    /// NVLink-class parts, a PCIe tree otherwise. This is what every
    /// topology-unaware call site gets, so flat-model behavior upgrades in
    /// place.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn for_device(device: &DeviceSpec, world: usize) -> Self {
        if device.has_nvlink() {
            Self::nvlink_mesh(device, world)
        } else {
            Self::pcie_tree(device, world)
        }
    }

    /// Resolves a topology by name for `world` ranks of `device`:
    /// `"auto"`, `"nvlink"`/`"mesh"`, `"pcie"`/`"tree"`, or `"ib<N>x<G>"`
    /// (e.g. `"ib2x4"`). Matching is case-insensitive.
    ///
    /// Unknown names, and hierarchies whose `N×G` does not equal `world`,
    /// fall back to the most conservative shape (PCIe tree) with a
    /// degraded marker instead of failing — a sweep over topology names
    /// always prices every cell.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn from_name(name: &str, device: &DeviceSpec, world: usize) -> Self {
        assert!(world > 0, "topology needs at least one rank");
        let lower = name.to_ascii_lowercase();
        if lower == "auto" {
            return Self::for_device(device, world);
        }
        if lower == "nvlink" || lower == "mesh" {
            return Self::nvlink_mesh(device, world);
        }
        if lower == "pcie" || lower == "tree" {
            return Self::pcie_tree(device, world);
        }
        if let Some(rest) = lower.strip_prefix("ib") {
            if let Some((n, g)) = rest.split_once('x') {
                if let (Ok(n), Ok(g)) = (n.parse::<usize>(), g.parse::<usize>()) {
                    if n > 0 && g > 0 && n * g == world {
                        return Self::multi_node_ib(device, n, g);
                    }
                    let mut t = Self::pcie_tree(device, world);
                    t.label = format!("{lower}-degraded-w{world}");
                    t.degraded = Some(format!(
                        "topology `{name}` is {n}x{g} but world is {world}; \
                         modeled as a PCIe tree (conservative)"
                    ));
                    return t;
                }
            }
        }
        let mut t = Self::pcie_tree(device, world);
        t.label = format!("unknown-degraded-w{world}");
        t.degraded = Some(format!(
            "unknown topology `{name}`; modeled as a PCIe tree (conservative)"
        ));
        t
    }

    /// The canonical topology catalog at `world` ranks, used by the
    /// differential test layer: NVLink mesh (V100), PCIe tree (TITAN Xp),
    /// a 2-node IB hierarchy when `world` splits evenly, and a
    /// heterogeneous V100/P100 mesh.
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn catalog(world: usize) -> Vec<Topology> {
        assert!(world > 0, "topology needs at least one rank");
        let mut out = vec![
            Self::nvlink_mesh(&DeviceSpec::v100(), world),
            Self::pcie_tree(&DeviceSpec::titan_xp(), world),
        ];
        if world >= 2 && world.is_multiple_of(2) {
            out.push(Self::multi_node_ib(&DeviceSpec::v100(), 2, world / 2));
        }
        let half = world.div_ceil(2);
        let mut fleet = vec![DeviceSpec::v100(); half];
        fleet.extend(vec![DeviceSpec::p100(); world - half]);
        out.push(Self::heterogeneous_mesh(fleet));
        out
    }

    /// Display label, unique per shape and world within the catalog.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Rank count.
    pub fn world(&self) -> usize {
        self.devices.len()
    }

    /// The per-rank devices.
    pub fn devices(&self) -> &[DeviceSpec] {
        &self.devices
    }

    /// The platform shape.
    pub fn shape(&self) -> &TopologyShape {
        &self.shape
    }

    /// The degradation note, when this topology is a conservative fallback.
    pub fn degraded(&self) -> Option<&str> {
        self.degraded.as_deref()
    }

    /// The uniform bandwidth multiplier applied to every link.
    pub fn bandwidth_scale(&self) -> f64 {
        self.bw_scale
    }

    /// This topology with every link's bandwidth scaled by `factor`
    /// (composes multiplicatively with any existing scale).
    ///
    /// # Panics
    /// Panics if `factor` is not positive and finite.
    pub fn scaled_bandwidth(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "bandwidth factor must be positive");
        let mut t = self.clone();
        t.bw_scale *= factor;
        t
    }

    /// Per-rank link specs with the bandwidth scale applied.
    pub(crate) fn rank_links(&self) -> Vec<LinkSpec> {
        self.devices.iter().map(|d| d.link().scaled(self.bw_scale)).collect()
    }

    /// Collective launch overhead (µs): the slowest participating device
    /// bounds the fleet, exactly as the straggler bounds the payload.
    pub fn launch_us(&self) -> f64 {
        self.devices.iter().map(|d| d.kernel_start_us).fold(0.0, f64::max)
    }

    /// The equivalent link-level graph the `gpusim` oracle simulates.
    pub fn link_graph(&self) -> LinkGraph {
        let links = self.rank_links();
        match &self.shape {
            TopologyShape::Mesh => LinkGraph::heterogeneous_mesh(&links),
            // The tree's shared fabric runs at the slowest rank's link: one
            // slow card on the bus drags every hop, which is how mixed PCIe
            // fleets behave.
            TopologyShape::PcieTree => {
                let bottleneck =
                    links.iter().skip(1).fold(links[0], |acc, l| acc.bottleneck(l));
                LinkGraph::pcie_tree(self.world(), bottleneck)
            }
            TopologyShape::Hierarchical { gpus_per_node, inter, .. } => {
                LinkGraph::hierarchical_heterogeneous(
                    &links,
                    *gpus_per_node,
                    inter.scaled(self.bw_scale),
                )
            }
        }
    }

    /// Link-level oracle time (µs) for `spec` under `algo`, including the
    /// launch overhead — the ground truth the α–β model is diffed against.
    ///
    /// # Panics
    /// Panics if `spec.world` does not match the topology.
    pub fn oracle_time_algo(&self, spec: &CollectiveSpec, algo: CollectiveAlgo) -> f64 {
        assert_eq!(spec.world as usize, self.world(), "collective world must match the topology");
        if self.world() <= 1 || spec.bytes_per_rank == 0 {
            return 0.0;
        }
        self.link_graph().simulate_algo(spec, algo) + self.launch_us()
    }

    /// Link-level oracle time (µs) under the default (ring) schedule.
    ///
    /// # Panics
    /// Panics if `spec.world` does not match the topology.
    pub fn oracle_time(&self, spec: &CollectiveSpec) -> f64 {
        self.oracle_time_algo(spec, CollectiveAlgo::Ring)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_gpusim::CollectiveKind;

    #[test]
    fn for_device_classifies_by_link_class() {
        assert_eq!(Topology::for_device(&DeviceSpec::v100(), 4).shape(), &TopologyShape::Mesh);
        assert_eq!(
            Topology::for_device(&DeviceSpec::titan_xp(), 4).shape(),
            &TopologyShape::PcieTree
        );
    }

    #[test]
    fn unknown_name_degrades_not_fails() {
        let t = Topology::from_name("quantum-fabric", &DeviceSpec::v100(), 4);
        assert!(t.degraded().is_some());
        assert_eq!(t.shape(), &TopologyShape::PcieTree);
        assert_eq!(t.world(), 4);
        // Mismatched hierarchy shape degrades the same way.
        let bad = Topology::from_name("ib2x3", &DeviceSpec::v100(), 4);
        assert!(bad.degraded().unwrap().contains("2x3"));
        // A matching hierarchy resolves cleanly.
        let ok = Topology::from_name("ib2x2", &DeviceSpec::v100(), 4);
        assert!(ok.degraded().is_none());
        assert!(matches!(ok.shape(), TopologyShape::Hierarchical { nodes: 2, gpus_per_node: 2, .. }));
    }

    #[test]
    fn catalog_covers_the_shapes_and_stays_deterministic() {
        let a = Topology::catalog(8);
        let b = Topology::catalog(8);
        assert_eq!(a, b);
        assert!(a.iter().any(|t| matches!(t.shape(), TopologyShape::Mesh)));
        assert!(a.iter().any(|t| matches!(t.shape(), TopologyShape::PcieTree)));
        assert!(a.iter().any(|t| matches!(t.shape(), TopologyShape::Hierarchical { .. })));
        let labels: std::collections::HashSet<_> = a.iter().map(|t| t.label()).collect();
        assert_eq!(labels.len(), a.len(), "labels must be unique");
    }

    #[test]
    fn oracle_scales_down_with_bandwidth_up() {
        let t = Topology::multi_node_ib(&DeviceSpec::v100(), 2, 2);
        let spec = CollectiveSpec {
            kind: CollectiveKind::AllReduce,
            bytes_per_rank: 64 << 20,
            world: 4,
        };
        let base = t.oracle_time(&spec);
        let fast = t.scaled_bandwidth(4.0).oracle_time(&spec);
        assert!(fast < base, "4x bandwidth must not slow the oracle: {fast} vs {base}");
    }
}
