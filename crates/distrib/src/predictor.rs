//! The distributed E2E predictor: Algorithm 1 per compute segment, the
//! analytic collective model per communication phase, barriers in between.
//!
//! Like the single-GPU predictor it never executes anything — sharding
//! plans, world sizes, and interconnects can be compared from graphs alone.

use dlperf_core::predictor::E2ePredictor;
use dlperf_core::sweep::IncrementalSummary;
use dlperf_core::IncrementalPredictor;
use dlperf_faults::{FaultInjector, FaultPlan};
use dlperf_gpusim::DeviceSpec;
use dlperf_graph::lower::LowerError;
use dlperf_kernels::MemoCache;

use crate::builder::DistributedDlrm;
use crate::comms::CommModel;
use crate::topology::Topology;

/// Predicted timeline of one distributed iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributedPrediction {
    /// Predicted E2E iteration time (µs).
    pub e2e_us: f64,
    /// Predicted per-segment compute time (max over ranks, µs).
    pub segment_us: [f64; 4],
    /// Predicted per-collective time (µs).
    pub comm_us: [f64; 3],
    /// Communication the overlap window hid under the next compute
    /// segment (µs); already subtracted from `e2e_us`. Zero unless the
    /// predictor was given an overlap fraction.
    pub overlap_hidden_us: f64,
}

impl DistributedPrediction {
    /// Predicted fraction of the iteration spent communicating.
    pub fn comm_share(&self) -> f64 {
        self.comm_us.iter().sum::<f64>() / self.e2e_us
    }
}

/// Distributed predictor: a single-GPU predictor plus the cluster's
/// interconnect topology (derived from the device class unless pinned).
#[derive(Debug, Clone)]
pub struct DistributedPredictor {
    predictor: E2ePredictor,
    device: DeviceSpec,
    topology: Option<Topology>,
    overlap_frac: f64,
}

impl DistributedPredictor {
    /// Wraps a calibrated single-GPU predictor for `device`.
    pub fn new(predictor: E2ePredictor, device: DeviceSpec) -> Self {
        DistributedPredictor { predictor, device, topology: None, overlap_frac: 0.0 }
    }

    /// Pins the predictor to an explicit topology (builder style). A job
    /// whose world does not match falls back to the derived device
    /// topology — degraded, not wrong.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the compute–communication overlap window (builder style):
    /// collective `Cᵢ` may hide under up to `frac` of the following
    /// compute segment `Sᵢ₊₁` (prefetch-style pipelining). The default 0
    /// models the fully synchronous timeline the cluster engine measures.
    ///
    /// # Panics
    /// Panics if `frac` is outside `[0, 1]`.
    pub fn with_overlap(mut self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "overlap fraction must be in [0, 1], got {frac}");
        self.overlap_frac = frac;
        self
    }

    /// The underlying single-GPU predictor.
    pub fn single_gpu(&self) -> &E2ePredictor {
        &self.predictor
    }

    /// The topology `job`-sized collectives will be priced on.
    pub fn topology_for(&self, world: usize) -> Topology {
        match &self.topology {
            Some(t) if t.world() == world => t.clone(),
            _ => Topology::for_device(&self.device, world),
        }
    }

    /// Predicts one distributed iteration of `job`.
    ///
    /// # Errors
    /// Propagates lowering errors from malformed segment graphs.
    pub fn predict(&self, job: &DistributedDlrm) -> Result<DistributedPrediction, LowerError> {
        self.predict_inner(job, None)
    }

    /// Like [`DistributedPredictor::predict`], answering kernel-model
    /// queries from `cache`. Across the ranks of one job most segments
    /// share kernel shapes (data parallelism makes the MLP segments
    /// identical), so even a single prediction hits heavily; across a
    /// sharding sweep the hit rate compounds. Bitwise identical to the
    /// uncached path (see [`dlperf_kernels::memo`]).
    ///
    /// # Errors
    /// Propagates lowering errors from malformed segment graphs.
    pub fn predict_memoized(
        &self,
        job: &DistributedDlrm,
        cache: &MemoCache,
    ) -> Result<DistributedPrediction, LowerError> {
        self.predict_inner(job, Some(cache))
    }

    /// Like [`DistributedPredictor::predict_memoized`], but pricing each
    /// segment by incremental re-prediction against `baselines` (one
    /// checkpointed walk per segment slot). Data-parallel segments are
    /// structurally identical across ranks and sharding plans, so they
    /// splice to the baseline; the embedding-bearing segments recompute
    /// only the shards that changed. Bitwise identical to the full paths
    /// (see [`dlperf_core::incremental`]).
    ///
    /// # Errors
    /// Propagates lowering errors from malformed segment graphs.
    pub fn predict_incremental(
        &self,
        job: &DistributedDlrm,
        baselines: &SegmentBaselines,
        cache: Option<&MemoCache>,
    ) -> Result<(DistributedPrediction, IncrementalSummary), LowerError> {
        let _span = dlperf_obs::span("distrib.predict", dlperf_obs::SpanKind::Phase);
        let mut summary = IncrementalSummary::default();
        let mut segment_us = [0.0f64; 4];
        for rank in 0..job.world() {
            for (i, seg) in job.segments(rank).iter().enumerate() {
                let _seg_span = dlperf_obs::span_with(dlperf_obs::SpanKind::Work, || {
                    format!("segment:S{}/r{rank}", i + 1)
                });
                let p = match baselines.get(i) {
                    Some(b) => {
                        let (p, stats) = b.repredict(seg, cache)?;
                        summary.absorb(&stats);
                        p
                    }
                    None => match cache {
                        Some(c) => self.predictor.predict_memoized(seg, c)?,
                        None => self.predictor.predict(seg)?,
                    },
                };
                segment_us[i] = segment_us[i].max(p.e2e_us);
            }
        }
        Ok((self.assemble(job, segment_us), summary))
    }

    fn predict_inner(
        &self,
        job: &DistributedDlrm,
        cache: Option<&MemoCache>,
    ) -> Result<DistributedPrediction, LowerError> {
        let _span = dlperf_obs::span("distrib.predict", dlperf_obs::SpanKind::Phase);
        let mut segment_us = [0.0f64; 4];
        for rank in 0..job.world() {
            for (i, seg) in job.segments(rank).iter().enumerate() {
                let _seg_span = dlperf_obs::span_with(dlperf_obs::SpanKind::Work, || {
                    format!("segment:S{}/r{rank}", i + 1)
                });
                let p = match cache {
                    Some(c) => self.predictor.predict_memoized(seg, c)?,
                    None => self.predictor.predict(seg)?,
                };
                segment_us[i] = segment_us[i].max(p.e2e_us);
            }
        }
        Ok(self.assemble(job, segment_us))
    }

    /// Adds the collective phases and folds the timeline — shared by the
    /// full and incremental paths so they cannot diverge. Collectives are
    /// priced by the α–β model on the resolved topology; the pipeline
    /// bubble inflates compute; the overlap window (if any) hides each
    /// collective under a slice of the next segment.
    fn assemble(&self, job: &DistributedDlrm, segment_us: [f64; 4]) -> DistributedPrediction {
        let model = CommModel::new(self.topology_for(job.world()));
        let inflation = job.compute_inflation();
        let mut segment_us = segment_us;
        for s in &mut segment_us {
            *s *= inflation;
        }
        let mut comm_us = [0.0f64; 3];
        for (c, spec) in comm_us.iter_mut().zip(&job.collectives()) {
            *c = model.collective_time(spec);
        }
        let mut overlap_hidden_us = 0.0;
        if self.overlap_frac > 0.0 {
            for (i, c) in comm_us.iter().enumerate() {
                overlap_hidden_us += c.min(self.overlap_frac * segment_us[i + 1]);
            }
        }
        DistributedPrediction {
            e2e_us: segment_us.iter().sum::<f64>() + comm_us.iter().sum::<f64>()
                - overlap_hidden_us,
            segment_us,
            comm_us,
            overlap_hidden_us,
        }
    }

    /// Like [`DistributedPredictor::predict`], then deterministically
    /// degrades the communication phases under `plan`'s link faults
    /// (iteration-0 sites, matching the engine's first iteration):
    /// each degraded collective is repriced on the bandwidth-derated
    /// topology and reported by name. The returned notes are empty when
    /// the plan leaves the wires alone.
    ///
    /// # Errors
    /// Propagates lowering errors from malformed segment graphs.
    pub fn predict_with_faults(
        &self,
        job: &DistributedDlrm,
        plan: &FaultPlan,
    ) -> Result<(DistributedPrediction, Vec<String>), LowerError> {
        let mut p = self.predict(job)?;
        let inj = FaultInjector::new(plan.clone());
        let topology = self.topology_for(job.world());
        let mut notes = Vec::new();
        for (idx, spec) in job.collectives().iter().enumerate() {
            if spec.world <= 1 || spec.bytes_per_rank == 0 {
                continue;
            }
            if let Some(factor) = inj.link_degradation(0, idx) {
                let degraded =
                    CommModel::new(topology.scaled_bandwidth(factor)).collective_time(spec);
                p.e2e_us += degraded - p.comm_us[idx];
                p.comm_us[idx] = degraded;
                crate::comms::record_link_fault();
                notes.push(format!(
                    "C{} {} link degraded ×{factor:.2} bandwidth",
                    idx + 1,
                    spec.kind
                ));
            }
        }
        Ok((p, notes))
    }
}

/// Checkpointed [`IncrementalPredictor`] baselines, one per compute-segment
/// slot (S1..S4), built from a reference job's rank-0 segments. Any other
/// job of the same config family re-predicts its segments against these —
/// a sharding sweep prices dozens of near-identical segment graphs, which
/// is exactly the incremental predictor's sweet spot.
#[derive(Debug, Clone)]
pub struct SegmentBaselines {
    baselines: Vec<Option<IncrementalPredictor>>,
}

impl SegmentBaselines {
    /// Checkpoints one baseline walk per segment of `reference`'s rank 0,
    /// feeding kernel queries through `cache` when given. A segment whose
    /// baseline fails to lower simply gets no baseline (re-prediction of
    /// that slot falls back to the full path).
    pub fn new(
        predictor: &DistributedPredictor,
        reference: &DistributedDlrm,
        cache: Option<&MemoCache>,
    ) -> Self {
        let baselines = reference
            .segments(0)
            .iter()
            .map(|seg| {
                let p = predictor.single_gpu().clone();
                match cache {
                    Some(c) => IncrementalPredictor::with_cache(p, seg.clone(), c).ok(),
                    None => IncrementalPredictor::new(p, seg.clone()).ok(),
                }
            })
            .collect();
        SegmentBaselines { baselines }
    }

    /// The baseline for segment slot `i`, if one was checkpointed.
    pub fn get(&self, i: usize) -> Option<&IncrementalPredictor> {
        self.baselines.get(i).and_then(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MultiGpuEngine;
    use crate::plan::ShardingPlan;
    use dlperf_core::pipeline::Pipeline;
    use dlperf_kernels::CalibrationEffort;
    use dlperf_models::DlrmConfig;

    fn setup(world: usize, batch: u64) -> (DistributedDlrm, DistributedPredictor) {
        let cfg = DlrmConfig::default_config(batch);
        let plan = ShardingPlan::round_robin(cfg.rows_per_table.len(), world);
        let job = DistributedDlrm::new(cfg, plan).unwrap();
        // Calibrate on the rank-0 segments so the overhead DB covers the ops.
        let segs = job.segments(0).to_vec();
        let device = DeviceSpec::v100();
        let pipe = Pipeline::analyze(&device, &segs, CalibrationEffort::Quick, 12, 5);
        (job, DistributedPredictor::new(pipe.predictor().clone(), device))
    }

    #[test]
    fn incremental_prediction_bitwise_matches_full() {
        let (job, pred) = setup(4, 2048);
        let cache = MemoCache::new();
        let baselines = SegmentBaselines::new(&pred, &job, Some(&cache));
        let cfg = DlrmConfig::default_config(2048);
        let tables = cfg.rows_per_table.len();
        let skewed =
            DistributedDlrm::new(cfg, ShardingPlan::new(vec![0; tables], 4).unwrap()).unwrap();
        for j in [&job, &skewed] {
            let (inc, summary) = pred.predict_incremental(j, &baselines, Some(&cache)).unwrap();
            let full = pred.predict(j).unwrap();
            assert_eq!(inc.e2e_us.to_bits(), full.e2e_us.to_bits());
            for (a, b) in inc.segment_us.iter().zip(&full.segment_us) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert!(summary.scenarios > 0);
        }
        // The reference job's own segments reconverge and splice.
        let (_, summary) = pred.predict_incremental(&job, &baselines, Some(&cache)).unwrap();
        assert!(summary.spliced > 0, "{summary:?}");
    }

    #[test]
    fn prediction_tracks_simulated_cluster() {
        let (job, pred) = setup(4, 2048);
        let p = pred.predict(&job).unwrap();
        let mut engine = MultiGpuEngine::new(DeviceSpec::v100(), 9);
        let measured = engine.measure_e2e(&job, 8).unwrap();
        let err = ((p.e2e_us - measured) / measured).abs();
        assert!(
            err < 0.25,
            "distributed error {:.1}% (pred {} vs measured {measured})",
            err * 100.0,
            p.e2e_us
        );
    }

    #[test]
    fn scaling_helps_compute_but_adds_comm() {
        let (job1, pred) = setup(1, 2048);
        let (job4, _) = setup(4, 2048);
        let p1 = pred.predict(&job1).unwrap();
        let p4 = pred.predict(&job4).unwrap();
        assert_eq!(p1.comm_us, [0.0; 3]);
        assert!(p4.comm_us.iter().sum::<f64>() > 0.0);
        // Per-rank compute shrinks with world size.
        assert!(p4.segment_us[1] < p1.segment_us[1], "S2 should shrink with DP");
    }

    #[test]
    fn predictor_ranks_sharding_plans_like_the_engine() {
        let cfg = DlrmConfig::default_config(1024);
        let balanced =
            DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(8, 4)).unwrap();
        let skewed = DistributedDlrm::new(
            cfg,
            ShardingPlan::new(vec![0, 0, 0, 0, 0, 1, 2, 3], 4).unwrap(),
        )
        .unwrap();
        let (_, pred) = setup(4, 1024);
        let pb = pred.predict(&balanced).unwrap().e2e_us;
        let ps = pred.predict(&skewed).unwrap().e2e_us;
        assert!(ps > pb, "skewed plan predicted faster ({ps}) than balanced ({pb})");

        let mut engine = MultiGpuEngine::new(DeviceSpec::v100(), 13);
        let mb = engine.measure_e2e(&balanced, 5).unwrap();
        let ms = engine.measure_e2e(&skewed, 5).unwrap();
        assert!(ms > mb, "engine disagrees: skewed {ms} vs balanced {mb}");
    }
}
