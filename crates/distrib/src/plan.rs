//! Embedding-table sharding plans.

use serde::{Deserialize, Serialize};

use crate::DistribError;

/// An assignment of embedding tables to GPUs: `assignment[table] = rank`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardingPlan {
    assignment: Vec<usize>,
    world: usize,
}

impl ShardingPlan {
    /// Creates a plan, validating that every rank index is in range.
    ///
    /// # Errors
    /// Returns [`DistribError::PlanMismatch`] if a rank is out of range or
    /// the plan is empty.
    pub fn new(assignment: Vec<usize>, world: usize) -> Result<Self, DistribError> {
        if world == 0 || assignment.is_empty() {
            return Err(DistribError::PlanMismatch("empty plan or zero world".into()));
        }
        if let Some(&bad) = assignment.iter().find(|&&r| r >= world) {
            return Err(DistribError::PlanMismatch(format!(
                "rank {bad} out of range for world {world}"
            )));
        }
        Ok(ShardingPlan { assignment, world })
    }

    /// Round-robin plan over `tables` tables.
    pub fn round_robin(tables: usize, world: usize) -> Self {
        ShardingPlan { assignment: (0..tables).map(|i| i % world).collect(), world }
    }

    /// Builds a plan from a `codesign`-style assignment vector.
    ///
    /// # Errors
    /// Same as [`ShardingPlan::new`].
    pub fn from_assignment(assignment: &[usize], world: usize) -> Result<Self, DistribError> {
        Self::new(assignment.to_vec(), world)
    }

    /// Number of participating GPUs.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Number of tables covered.
    pub fn table_count(&self) -> usize {
        self.assignment.len()
    }

    /// Indices of the tables owned by `rank`.
    pub fn tables_of(&self, rank: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &r)| r == rank)
            .map(|(i, _)| i)
            .collect()
    }

    /// The raw assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Rebalance neighbors of this plan: every plan reachable by
    /// reassigning exactly one table to a different rank, enumerated in a
    /// deterministic order (table-major, then target rank ascending).
    /// This is the sharding move set the optimization-search layer
    /// expands.
    pub fn rebalance_moves(&self) -> Vec<ShardingPlan> {
        let mut out = Vec::new();
        for table in 0..self.assignment.len() {
            for rank in 0..self.world {
                if rank == self.assignment[table] {
                    continue;
                }
                let mut a = self.assignment.clone();
                a[table] = rank;
                out.push(ShardingPlan { assignment: a, world: self.world });
            }
        }
        out
    }
}

impl std::fmt::Display for ShardingPlan {
    /// Renders per-rank table counts plus the assignment, e.g.
    /// `shard[w4: 7/7/6/6; t0->r0 t1->r1 ..]` truncated past 8 tables —
    /// compact enough for report lines, precise enough to reproduce.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut counts = vec![0usize; self.world];
        for &r in &self.assignment {
            counts[r] += 1;
        }
        let loads: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
        write!(f, "shard[w{}: {}", self.world, loads.join("/"))?;
        let shown = self.assignment.len().min(8);
        write!(f, ";")?;
        for (t, &r) in self.assignment.iter().take(shown).enumerate() {
            write!(f, " t{t}->r{r}")?;
        }
        if self.assignment.len() > shown {
            write!(f, " .. ({} tables)", self.assignment.len())?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_partitions() {
        let p = ShardingPlan::round_robin(26, 4);
        let total: usize = (0..4).map(|r| p.tables_of(r).len()).sum();
        assert_eq!(total, 26);
        assert_eq!(p.tables_of(0), vec![0, 4, 8, 12, 16, 20, 24]);
    }

    #[test]
    fn out_of_range_rank_rejected() {
        assert!(matches!(
            ShardingPlan::new(vec![0, 5], 4),
            Err(DistribError::PlanMismatch(_))
        ));
    }

    #[test]
    fn empty_plan_rejected() {
        assert!(ShardingPlan::new(vec![], 4).is_err());
        assert!(ShardingPlan::new(vec![0], 0).is_err());
    }
}
