//! Sharding-plan sweeps: the distributed counterpart of
//! [`dlperf_core::sweep`].
//!
//! Enumerates candidate `(strategy, world size, topology, sharding plan)`
//! scenarios for a DLRM config and prices them all through
//! [`DistributedPredictor`] on [`dlperf_core::sweep::par_map`] — the same
//! work-distributing, cancellation-aware primitive the single-GPU engine
//! uses — with one shared [`MemoCache`] answering kernel-model queries.
//! Data-parallel MLP segments are identical across ranks and plans, so the
//! cache hit rate across a plan sweep is high and the parallel sweep stays
//! bitwise identical to the sequential one (pure evaluations, index-slotted
//! results).
//!
//! Scenario enumeration is *total*: a cell whose plan cannot be
//! constructed (or whose topology name is unknown) is emitted as a
//! labeled degraded cell and priced into a degraded result — never
//! silently dropped — so outcome lengths are stable functions of the
//! requested axes.

use dlperf_core::sweep::par_map;
use dlperf_gpusim::DeviceSpec;
use dlperf_kernels::{MemoCache, MemoCacheStats};
use dlperf_models::DlrmConfig;
use dlperf_runtime::CancellationToken;

use crate::builder::{DistributedDlrm, ParallelismStrategy};
use crate::plan::ShardingPlan;
use crate::predictor::{DistributedPrediction, DistributedPredictor, SegmentBaselines};
use crate::topology::Topology;

/// One cell of a sharding sweep: a parallelism strategy, a candidate plan
/// (or the reason it could not be built), and optionally a pinned
/// topology.
#[derive(Debug, Clone)]
pub struct ShardingScenario {
    /// Display label, e.g. `"w4/round_robin"` or
    /// `"ib2x2/hybrid/w4/block"`.
    pub label: String,
    /// The candidate plan, or why constructing it failed (the cell is
    /// then priced as a degraded result instead of vanishing).
    pub plan: Result<ShardingPlan, String>,
    /// How the job is parallelized.
    pub strategy: ParallelismStrategy,
    /// The interconnect to price collectives on; `None` derives one from
    /// the predictor's device class.
    pub topology: Option<Topology>,
}

impl ShardingScenario {
    /// A plain hybrid-parallel cell on the derived topology.
    pub fn of(label: impl Into<String>, plan: ShardingPlan) -> Self {
        ShardingScenario {
            label: label.into(),
            plan: Ok(plan),
            strategy: ParallelismStrategy::Hybrid,
            topology: None,
        }
    }
}

/// The outcome of one sharding scenario.
#[derive(Debug, Clone)]
pub struct ShardingResult {
    /// The scenario's label.
    pub label: String,
    /// The prediction, when the job built and priced successfully.
    pub prediction: Option<DistributedPrediction>,
    /// The failure, when it did not.
    pub error: Option<String>,
    /// Set when the cell was priced in a degraded mode (unknown topology
    /// modeled conservatively) rather than exactly as requested.
    pub degraded: Option<String>,
}

/// Enumerates candidate plans for `tables` embedding tables at each world
/// size: round-robin, block-contiguous, and a deliberately skewed
/// all-on-rank-0 straggler (the load-imbalance reference point of §V-B).
/// Order is deterministic: world sizes as given, plans in the order above.
/// Every world contributes exactly three cells — a plan that cannot be
/// built (zero tables, say) becomes a degraded cell, and at world 1 the
/// "skewed" plan is the trivial plan, labeled as such.
pub fn enumerate_plans(tables: usize, worlds: &[usize]) -> Vec<ShardingScenario> {
    let mut out = Vec::new();
    for &w in worlds {
        out.push(ShardingScenario::of(
            format!("w{w}/round_robin"),
            ShardingPlan::round_robin(tables, w),
        ));
        let block: Vec<usize> = (0..tables).map(|t| t * w / tables.max(1)).collect();
        out.push(cell_of(format!("w{w}/block"), ShardingPlan::new(block, w)));
        out.push(cell_of(format!("w{w}/skewed0"), ShardingPlan::new(vec![0; tables], w)));
    }
    out
}

fn cell_of(label: String, plan: Result<ShardingPlan, crate::DistribError>) -> ShardingScenario {
    ShardingScenario {
        label,
        plan: plan.map_err(|e| e.to_string()),
        strategy: ParallelismStrategy::Hybrid,
        topology: None,
    }
}

/// Enumerates the full `(topology × strategy × world × plan)` matrix:
/// every topology name is resolved per world via
/// [`Topology::from_name`] (unknown names resolve to conservatively
/// degraded topologies, never to missing cells), crossed with every
/// strategy and the three candidate plans of [`enumerate_plans`]. Labels
/// read `"{topology}/{strategy}/w{world}/{plan}"`. Order is
/// deterministic: topologies, then strategies, then worlds, then plans.
pub fn enumerate_matrix(
    tables: usize,
    worlds: &[usize],
    strategies: &[ParallelismStrategy],
    topologies: &[&str],
    device: &DeviceSpec,
) -> Vec<ShardingScenario> {
    let mut out = Vec::new();
    for &topo_name in topologies {
        for &strategy in strategies {
            for cell in enumerate_plans(tables, worlds) {
                let world = cell
                    .plan
                    .as_ref()
                    .map(|p| p.world())
                    .unwrap_or_else(|_| world_of_label(&cell.label));
                let topology = Topology::from_name(topo_name, device, world);
                out.push(ShardingScenario {
                    label: format!("{topo_name}/{strategy}/{}", cell.label),
                    plan: cell.plan,
                    strategy,
                    topology: Some(topology),
                });
            }
        }
    }
    out
}

/// Recovers the world size from an enumerated label (`"w{w}/..."`) for
/// cells whose plan failed to build; falls back to 1.
fn world_of_label(label: &str) -> usize {
    label
        .strip_prefix('w')
        .and_then(|rest| rest.split('/').next())
        .and_then(|w| w.parse().ok())
        .unwrap_or(1)
}

/// What a sharding sweep produced.
#[derive(Debug, Clone)]
pub struct ShardingSweepOutcome {
    /// One slot per scenario, in input order; `None` only under
    /// cancellation.
    pub results: Vec<Option<ShardingResult>>,
    /// Cache counters after the sweep.
    pub cache: MemoCacheStats,
}

impl ShardingSweepOutcome {
    /// The completed result with the lowest predicted E2E time.
    pub fn best(&self) -> Option<&ShardingResult> {
        self.results
            .iter()
            .flatten()
            .filter(|r| r.prediction.is_some())
            .min_by(|a, b| {
                let ta = a.prediction.as_ref().map(|p| p.e2e_us).unwrap_or(f64::INFINITY);
                let tb = b.prediction.as_ref().map(|p| p.e2e_us).unwrap_or(f64::INFINITY);
                ta.partial_cmp(&tb).expect("predictions are finite")
            })
    }
}

/// Prices every scenario on `threads` workers, sharing one memo cache.
/// Results are bitwise identical at any thread count: every cell is a
/// pure function of `(predictor, config, scenario)`, and cells pinned to
/// a topology or strategy price through the same shared baselines.
pub fn sweep_shardings(
    predictor: &DistributedPredictor,
    config: &DlrmConfig,
    scenarios: &[ShardingScenario],
    threads: usize,
    token: &CancellationToken,
) -> ShardingSweepOutcome {
    let cache = MemoCache::new();
    // Segment baselines from the first buildable scenario: every job's
    // segments then re-predict incrementally against them (identical DP
    // segments splice outright; sharded segments recompute only their
    // dirty embedding span). Values are bitwise identical to the plain
    // memoized path, which remains the fallback when nothing builds.
    let baselines = (!token.is_cancelled())
        .then(|| {
            scenarios
                .iter()
                .find_map(|s| {
                    let plan = s.plan.as_ref().ok()?;
                    DistributedDlrm::new(config.clone(), plan.clone())
                        .ok()
                        .map(|j| j.with_strategy(s.strategy))
                })
                .map(|job| SegmentBaselines::new(predictor, &job, Some(&cache)))
        })
        .flatten();
    let results = par_map(threads, token, scenarios, |_, s| {
        let plan = match &s.plan {
            Ok(p) => p.clone(),
            Err(reason) => {
                return ShardingResult {
                    label: s.label.clone(),
                    prediction: None,
                    error: Some(format!("degraded: {reason}")),
                    degraded: Some(reason.clone()),
                }
            }
        };
        let built = DistributedDlrm::new(config.clone(), plan).map(|j| j.with_strategy(s.strategy));
        match built {
            Ok(job) => {
                let cell_predictor;
                let active: &DistributedPredictor = match &s.topology {
                    Some(t) => {
                        cell_predictor = predictor.clone().with_topology(t.clone());
                        &cell_predictor
                    }
                    None => predictor,
                };
                let priced = match &baselines {
                    Some(b) => active.predict_incremental(&job, b, Some(&cache)).map(|r| r.0),
                    None => active.predict_memoized(&job, &cache),
                };
                match priced {
                    Ok(p) => ShardingResult {
                        label: s.label.clone(),
                        prediction: Some(p),
                        error: None,
                        degraded: s
                            .topology
                            .as_ref()
                            .and_then(|t| t.degraded().map(str::to_string)),
                    },
                    Err(e) => ShardingResult {
                        label: s.label.clone(),
                        prediction: None,
                        error: Some(format!("lowering failed: {e}")),
                        degraded: None,
                    },
                }
            }
            Err(e) => ShardingResult {
                label: s.label.clone(),
                prediction: None,
                error: Some(format!("invalid plan: {e}")),
                degraded: None,
            },
        }
    });
    ShardingSweepOutcome { results, cache: cache.stats() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_core::pipeline::Pipeline;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_kernels::CalibrationEffort;

    fn predictor(cfg: &DlrmConfig) -> DistributedPredictor {
        let job =
            DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(cfg.rows_per_table.len(), 2))
                .unwrap();
        let segs = job.segments(0).to_vec();
        let device = DeviceSpec::v100();
        let pipe = Pipeline::analyze(&device, &segs, CalibrationEffort::Quick, 6, 17);
        DistributedPredictor::new(pipe.predictor().clone(), device)
    }

    #[test]
    fn enumeration_is_deterministic_and_covers_worlds() {
        let a = enumerate_plans(8, &[1, 2, 4]);
        let b = enumerate_plans(8, &[1, 2, 4]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(
                x.plan.as_ref().unwrap().assignment(),
                y.plan.as_ref().unwrap().assignment()
            );
        }
        // Exactly three cells per world, every world, no silent drops.
        assert_eq!(a.len(), 3 * 3);
    }

    #[test]
    fn outcome_lengths_are_stable_even_for_unbuildable_cells() {
        // Zero tables: block and skewed plans cannot be built, but the
        // cells (and their results) still exist, labeled degraded.
        let cells = enumerate_plans(0, &[1, 2]);
        assert_eq!(cells.len(), 6);
        let degraded: Vec<&ShardingScenario> =
            cells.iter().filter(|c| c.plan.is_err()).collect();
        assert!(!degraded.is_empty(), "empty plans must surface as degraded cells");

        let cfg = DlrmConfig::default_config(512);
        let pred = predictor(&cfg);
        let token = CancellationToken::new();
        let out = sweep_shardings(&pred, &cfg, &cells, 1, &token);
        assert_eq!(out.results.len(), cells.len(), "one result slot per cell, always");
        for (cell, res) in cells.iter().zip(&out.results) {
            let res = res.as_ref().unwrap();
            if cell.plan.is_err() {
                assert!(res.error.as_deref().unwrap().starts_with("degraded:"));
                assert!(res.degraded.is_some());
            }
        }
    }

    #[test]
    fn matrix_crosses_topology_strategy_world_and_plan() {
        let device = DeviceSpec::v100();
        let strategies = [ParallelismStrategy::Hybrid, ParallelismStrategy::DataParallel];
        let cells = enumerate_matrix(8, &[2, 4], &strategies, &["auto", "ib2x2"], &device);
        assert_eq!(cells.len(), 2 * 2 * 2 * 3);
        assert!(cells.iter().all(|c| c.topology.is_some()));
        let labels: std::collections::BTreeSet<&str> =
            cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels.len(), cells.len(), "labels must be unique");
        assert!(labels.contains("ib2x2/dp/w4/block"), "{labels:?}");
        // ib2x2 pinned to world 4 resolves cleanly; at world 2 it cannot
        // (2x2 needs 4 ranks) and the topology degrades instead of lying.
        let mismatched = cells
            .iter()
            .find(|c| c.label == "ib2x2/hybrid/w2/round_robin")
            .unwrap();
        assert!(mismatched.topology.as_ref().unwrap().degraded().is_some());
    }

    #[test]
    fn parallel_sweep_matches_sequential_bitwise_and_hits_cache() {
        let cfg = DlrmConfig::default_config(512);
        let pred = predictor(&cfg);
        let scenarios = enumerate_plans(cfg.rows_per_table.len(), &[2, 4]);
        let token = CancellationToken::new();
        let seq = sweep_shardings(&pred, &cfg, &scenarios, 1, &token);
        let par = sweep_shardings(&pred, &cfg, &scenarios, 4, &token);
        let bits = |o: &ShardingSweepOutcome| -> Vec<Option<u64>> {
            o.results
                .iter()
                .map(|r| {
                    r.as_ref()
                        .and_then(|r| r.prediction.as_ref())
                        .map(|p| p.e2e_us.to_bits())
                })
                .collect()
        };
        assert_eq!(bits(&seq), bits(&par));
        assert!(seq.cache.hits > 0, "DP segments repeat across plans: {}", seq.cache);
        // The sweep should prefer a balanced plan over the straggler.
        let best = seq.best().unwrap();
        assert!(!best.label.contains("skewed"), "picked {}", best.label);
    }
}
