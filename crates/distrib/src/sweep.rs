//! Sharding-plan sweeps: the distributed counterpart of
//! [`dlperf_core::sweep`].
//!
//! Enumerates candidate `(world size, sharding plan)` scenarios for a DLRM
//! config and prices them all through [`DistributedPredictor`] on
//! [`dlperf_core::sweep::par_map`] — the same work-distributing,
//! cancellation-aware primitive the single-GPU engine uses — with one
//! shared [`MemoCache`] answering kernel-model queries. Data-parallel MLP
//! segments are identical across ranks and plans, so the cache hit rate
//! across a plan sweep is high and the parallel sweep stays bitwise
//! identical to the sequential one (pure evaluations, index-slotted
//! results).

use dlperf_core::sweep::par_map;
use dlperf_kernels::{MemoCache, MemoCacheStats};
use dlperf_models::DlrmConfig;
use dlperf_runtime::CancellationToken;

use crate::builder::DistributedDlrm;
use crate::plan::ShardingPlan;
use crate::predictor::{DistributedPrediction, DistributedPredictor, SegmentBaselines};

/// One cell of a sharding sweep: a world size plus a candidate plan.
#[derive(Debug, Clone)]
pub struct ShardingScenario {
    /// Display label, e.g. `"w4/round_robin"`.
    pub label: String,
    /// The candidate plan (carries the world size).
    pub plan: ShardingPlan,
}

/// The outcome of one sharding scenario.
#[derive(Debug, Clone)]
pub struct ShardingResult {
    /// The scenario's label.
    pub label: String,
    /// The prediction, when the job built and priced successfully.
    pub prediction: Option<DistributedPrediction>,
    /// The failure, when it did not.
    pub error: Option<String>,
}

/// Enumerates candidate plans for `tables` embedding tables at each world
/// size: round-robin, block-contiguous, and a deliberately skewed
/// all-on-rank-0 straggler (the load-imbalance reference point of §V-B).
/// Order is deterministic: world sizes as given, plans in the order above.
pub fn enumerate_plans(tables: usize, worlds: &[usize]) -> Vec<ShardingScenario> {
    let mut out = Vec::new();
    for &w in worlds {
        out.push(ShardingScenario {
            label: format!("w{w}/round_robin"),
            plan: ShardingPlan::round_robin(tables, w),
        });
        let block: Vec<usize> = (0..tables).map(|t| t * w / tables.max(1)).collect();
        if let Ok(plan) = ShardingPlan::new(block, w) {
            out.push(ShardingScenario { label: format!("w{w}/block"), plan });
        }
        if w > 1 {
            if let Ok(plan) = ShardingPlan::new(vec![0; tables], w) {
                out.push(ShardingScenario { label: format!("w{w}/skewed0"), plan });
            }
        }
    }
    out
}

/// What a sharding sweep produced.
#[derive(Debug, Clone)]
pub struct ShardingSweepOutcome {
    /// One slot per scenario, in input order; `None` only under
    /// cancellation.
    pub results: Vec<Option<ShardingResult>>,
    /// Cache counters after the sweep.
    pub cache: MemoCacheStats,
}

impl ShardingSweepOutcome {
    /// The completed result with the lowest predicted E2E time.
    pub fn best(&self) -> Option<&ShardingResult> {
        self.results
            .iter()
            .flatten()
            .filter(|r| r.prediction.is_some())
            .min_by(|a, b| {
                let ta = a.prediction.as_ref().map(|p| p.e2e_us).unwrap_or(f64::INFINITY);
                let tb = b.prediction.as_ref().map(|p| p.e2e_us).unwrap_or(f64::INFINITY);
                ta.partial_cmp(&tb).expect("predictions are finite")
            })
    }
}

/// Prices every scenario on `threads` workers, sharing one memo cache.
/// Results are bitwise identical at any thread count.
pub fn sweep_shardings(
    predictor: &DistributedPredictor,
    config: &DlrmConfig,
    scenarios: &[ShardingScenario],
    threads: usize,
    token: &CancellationToken,
) -> ShardingSweepOutcome {
    let cache = MemoCache::new();
    // Segment baselines from the first buildable scenario: every job's
    // segments then re-predict incrementally against them (identical DP
    // segments splice outright; sharded segments recompute only their
    // dirty embedding span). Values are bitwise identical to the plain
    // memoized path, which remains the fallback when nothing builds.
    let baselines = (!token.is_cancelled())
        .then(|| {
            scenarios
                .iter()
                .find_map(|s| DistributedDlrm::new(config.clone(), s.plan.clone()).ok())
                .map(|job| SegmentBaselines::new(predictor, &job, Some(&cache)))
        })
        .flatten();
    let results = par_map(threads, token, scenarios, |_, s| {
        let built = DistributedDlrm::new(config.clone(), s.plan.clone());
        match built {
            Ok(job) => {
                let priced = match &baselines {
                    Some(b) => predictor.predict_incremental(&job, b, Some(&cache)).map(|r| r.0),
                    None => predictor.predict_memoized(&job, &cache),
                };
                match priced {
                    Ok(p) => ShardingResult {
                        label: s.label.clone(),
                        prediction: Some(p),
                        error: None,
                    },
                    Err(e) => ShardingResult {
                        label: s.label.clone(),
                        prediction: None,
                        error: Some(format!("lowering failed: {e}")),
                    },
                }
            }
            Err(e) => ShardingResult {
                label: s.label.clone(),
                prediction: None,
                error: Some(format!("invalid plan: {e}")),
            },
        }
    });
    ShardingSweepOutcome { results, cache: cache.stats() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_core::pipeline::Pipeline;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_kernels::CalibrationEffort;

    fn predictor(cfg: &DlrmConfig) -> DistributedPredictor {
        let job =
            DistributedDlrm::new(cfg.clone(), ShardingPlan::round_robin(cfg.rows_per_table.len(), 2))
                .unwrap();
        let segs = job.segments(0).to_vec();
        let device = DeviceSpec::v100();
        let pipe = Pipeline::analyze(&device, &segs, CalibrationEffort::Quick, 6, 17);
        DistributedPredictor::new(pipe.predictor().clone(), device)
    }

    #[test]
    fn enumeration_is_deterministic_and_covers_worlds() {
        let a = enumerate_plans(8, &[1, 2, 4]);
        let b = enumerate_plans(8, &[1, 2, 4]);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.plan.assignment(), y.plan.assignment());
        }
        // world=1 has no distinct skewed plan; larger worlds have 3 each.
        assert_eq!(a.len(), 2 + 3 + 3);
    }

    #[test]
    fn parallel_sweep_matches_sequential_bitwise_and_hits_cache() {
        let cfg = DlrmConfig::default_config(512);
        let pred = predictor(&cfg);
        let scenarios = enumerate_plans(cfg.rows_per_table.len(), &[2, 4]);
        let token = CancellationToken::new();
        let seq = sweep_shardings(&pred, &cfg, &scenarios, 1, &token);
        let par = sweep_shardings(&pred, &cfg, &scenarios, 4, &token);
        let bits = |o: &ShardingSweepOutcome| -> Vec<Option<u64>> {
            o.results
                .iter()
                .map(|r| {
                    r.as_ref()
                        .and_then(|r| r.prediction.as_ref())
                        .map(|p| p.e2e_us.to_bits())
                })
                .collect()
        };
        assert_eq!(bits(&seq), bits(&par));
        assert!(seq.cache.hits > 0, "DP segments repeat across plans: {}", seq.cache);
        // The sweep should prefer a balanced plan over the straggler.
        let best = seq.best().unwrap();
        assert!(!best.label.contains("skewed"), "picked {}", best.label);
    }
}
