//! Per-rank segment-graph construction for hybrid-parallel DLRM.

use dlperf_gpusim::{CollectiveKind, CollectiveSpec, MemcpyKind};
use dlperf_graph::{Graph, OpKind, TensorMeta};
use dlperf_models::common::{mlp_backward, mlp_forward};
use dlperf_models::DlrmConfig;

use crate::plan::ShardingPlan;
use crate::DistribError;

/// How the DLRM job is split across the cluster. The paper's canonical
/// scheme is [`ParallelismStrategy::Hybrid`]; the other strategies exist
/// so sweeps can rank alternatives on the same topology and show *why*
/// hybrid wins (or loses, on bandwidth-starved fabrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ParallelismStrategy {
    /// Model-parallel embeddings + data-parallel MLPs (DLRM canonical):
    /// two all-to-alls on embedding outputs, one all-reduce on MLP grads.
    Hybrid,
    /// Everything replicated: no all-to-all, but the all-reduce carries
    /// MLP *and* embedding-output gradients.
    DataParallel,
    /// Everything sharded, full batch everywhere: all-to-alls but no
    /// gradient all-reduce (each rank owns its parameters outright).
    ModelParallel,
    /// Stage-partitioned pipeline: per-boundary activation transfers
    /// (modeled as all-gathers) and a pipeline-bubble compute inflation
    /// of `(2w−1)/w`, no gradient all-reduce.
    PipelineParallel,
}

impl ParallelismStrategy {
    /// Every strategy, in canonical sweep order.
    pub const ALL: [ParallelismStrategy; 4] = [
        ParallelismStrategy::Hybrid,
        ParallelismStrategy::DataParallel,
        ParallelismStrategy::ModelParallel,
        ParallelismStrategy::PipelineParallel,
    ];

    /// Parses a sweep-axis name (`hybrid`/`dp`/`mp`/`pp`, plus the long
    /// spellings); `None` for anything unrecognized so callers can fall
    /// back degraded-not-wrong.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "hybrid" => Some(ParallelismStrategy::Hybrid),
            "dp" | "data" | "data_parallel" | "data-parallel" => {
                Some(ParallelismStrategy::DataParallel)
            }
            "mp" | "model" | "model_parallel" | "model-parallel" => {
                Some(ParallelismStrategy::ModelParallel)
            }
            "pp" | "pipeline" | "pipeline_parallel" | "pipeline-parallel" => {
                Some(ParallelismStrategy::PipelineParallel)
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for ParallelismStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ParallelismStrategy::Hybrid => "hybrid",
            ParallelismStrategy::DataParallel => "dp",
            ParallelismStrategy::ModelParallel => "mp",
            ParallelismStrategy::PipelineParallel => "pp",
        })
    }
}

/// A distributed DLRM training job: configuration + world + sharding +
/// parallelism strategy (hybrid unless overridden).
#[derive(Debug, Clone)]
pub struct DistributedDlrm {
    config: DlrmConfig,
    plan: ShardingPlan,
    strategy: ParallelismStrategy,
}

impl DistributedDlrm {
    /// Creates the distributed job description (hybrid parallelism).
    ///
    /// # Errors
    /// * [`DistribError::BatchNotDivisible`] if the global batch cannot be
    ///   split evenly across ranks;
    /// * [`DistribError::PlanMismatch`] if the plan does not cover exactly
    ///   the config's tables.
    pub fn new(config: DlrmConfig, plan: ShardingPlan) -> Result<Self, DistribError> {
        if !config.batch_size.is_multiple_of(plan.world() as u64) {
            return Err(DistribError::BatchNotDivisible {
                batch: config.batch_size,
                world: plan.world(),
            });
        }
        if plan.table_count() != config.rows_per_table.len() {
            return Err(DistribError::PlanMismatch(format!(
                "plan covers {} tables, config has {}",
                plan.table_count(),
                config.rows_per_table.len()
            )));
        }
        Ok(DistributedDlrm { config, plan, strategy: ParallelismStrategy::Hybrid })
    }

    /// Rebinds the job to a different parallelism strategy.
    pub fn with_strategy(mut self, strategy: ParallelismStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The active parallelism strategy.
    pub fn strategy(&self) -> ParallelismStrategy {
        self.strategy
    }

    /// Compute-time inflation of the strategy: 1 except for pipeline
    /// parallelism, whose fill/drain bubble stretches every segment by
    /// `(2w−1)/w` (w stages, one microbatch in flight per stage).
    pub fn compute_inflation(&self) -> f64 {
        match self.strategy {
            ParallelismStrategy::PipelineParallel => {
                let w = self.world() as f64;
                (2.0 * w - 1.0) / w
            }
            _ => 1.0,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &DlrmConfig {
        &self.config
    }

    /// The sharding plan.
    pub fn plan(&self) -> &ShardingPlan {
        &self.plan
    }

    /// World size.
    pub fn world(&self) -> usize {
        self.plan.world()
    }

    /// Per-rank local batch size.
    pub fn local_batch(&self) -> u64 {
        self.config.batch_size / self.world() as u64
    }

    /// Row counts of the tables owned by `rank`.
    pub fn rank_rows(&self, rank: usize) -> Vec<u64> {
        self.plan
            .tables_of(rank)
            .into_iter()
            .map(|i| self.config.rows_per_table[i])
            .collect()
    }

    /// Total dense (MLP) parameter bytes, the all-reduce payload.
    pub fn mlp_param_bytes(&self) -> u64 {
        let mlp = |sizes: &[u64]| -> u64 {
            sizes.windows(2).map(|p| p[0] * p[1] + p[1]).sum::<u64>()
        };
        let n_int = self.config.num_tables() + 1;
        let tri = n_int * (n_int - 1) / 2;
        let mut top = vec![self.config.embedding_dim + tri];
        top.extend_from_slice(&self.config.top_mlp);
        4 * (mlp(&self.config.bottom_mlp) + mlp(&top))
    }

    /// The three collectives of one iteration under the active strategy,
    /// sized by the *largest* rank payload (the straggler bounds a
    /// collective). Slots a strategy leaves unused carry zero bytes so
    /// the timeline shape — and every downstream prediction layout —
    /// stays fixed at `[C1, C2, C3]`.
    pub fn collectives(&self) -> [CollectiveSpec; 3] {
        let (b, d) = (self.config.batch_size, self.config.embedding_dim);
        let max_tables = (0..self.world())
            .map(|r| self.rank_rows(r).len() as u64)
            .max()
            .unwrap_or(0);
        let a2a_bytes = b * max_tables * d * 4;
        let world = self.world() as u32;
        let b_local = self.local_batch();
        let t_total = self.config.num_tables();
        let (c1, c2, c3) = match self.strategy {
            ParallelismStrategy::Hybrid => {
                (
                    (CollectiveKind::AllToAll, a2a_bytes),
                    (CollectiveKind::AllToAll, a2a_bytes),
                    (CollectiveKind::AllReduce, self.mlp_param_bytes()),
                )
            }
            // Replicated tables: no exchange on the forward/backward
            // boundaries, one fat gradient all-reduce (MLP params plus the
            // dense embedding-output gradients).
            ParallelismStrategy::DataParallel => (
                (CollectiveKind::AllToAll, 0),
                (CollectiveKind::AllToAll, 0),
                (
                    CollectiveKind::AllReduce,
                    self.mlp_param_bytes() + b_local * t_total * d * 4,
                ),
            ),
            // Fully sharded: the all-to-alls remain, nothing is replicated
            // so there is no gradient synchronization.
            ParallelismStrategy::ModelParallel => (
                (CollectiveKind::AllToAll, a2a_bytes),
                (CollectiveKind::AllToAll, a2a_bytes),
                (CollectiveKind::AllReduce, 0),
            ),
            // Stage boundaries move one activation tensor forward and its
            // gradient backward; modeled as all-gathers of the per-stage
            // activation slice.
            ParallelismStrategy::PipelineParallel => (
                (CollectiveKind::AllGather, b_local * d * 4),
                (CollectiveKind::AllGather, b_local * d * 4),
                (CollectiveKind::AllReduce, 0),
            ),
        };
        [
            CollectiveSpec { kind: c1.0, bytes_per_rank: c1.1, world },
            CollectiveSpec { kind: c2.0, bytes_per_rank: c2.1, world },
            CollectiveSpec { kind: c3.0, bytes_per_rank: c3.1, world },
        ]
    }

    /// Builds `rank`'s four compute-segment graphs (S1–S4 of the iteration
    /// timeline) under the active strategy: hybrid runs MLPs on the local
    /// batch and embeddings on the full batch over the plan's tables;
    /// data/pipeline parallelism run *everything* on the local batch over
    /// *all* tables; model parallelism runs the full batch over the plan's
    /// tables. Cross-segment tensors appear as external inputs of later
    /// segments; only shapes matter for prediction and simulation.
    ///
    /// # Panics
    /// Panics if `rank >= world`.
    pub fn segments(&self, rank: usize) -> [Graph; 4] {
        assert!(rank < self.world(), "rank {rank} out of range");
        let cfg = &self.config;
        let b = cfg.batch_size;
        let b_local = match self.strategy {
            ParallelismStrategy::ModelParallel => b,
            _ => self.local_batch(),
        };
        let b_emb = match self.strategy {
            ParallelismStrategy::Hybrid | ParallelismStrategy::ModelParallel => b,
            _ => b_local,
        };
        let d = cfg.embedding_dim;
        let l = cfg.lookups_per_table;
        let t_total = cfg.num_tables();
        let n_int = t_total + 1;
        let tri = n_int * (n_int - 1) / 2;
        let rows = match self.strategy {
            ParallelismStrategy::Hybrid | ParallelismStrategy::ModelParallel => {
                self.rank_rows(rank)
            }
            _ => self.config.rows_per_table.clone(),
        };
        let t_local = rows.len() as u64;
        let avg_rows = if rows.is_empty() {
            1
        } else {
            (rows.iter().sum::<u64>() as f64 / rows.len() as f64).round().max(1.0) as u64
        };

        // ---- S1: inputs, bottom MLP fwd (local batch), embedding fwd (full batch, local tables).
        let mut s1 = Graph::new(format!("{}::rank{rank}::s1", cfg.name));
        let dense_cpu =
            s1.add_tensor(TensorMeta::activation(&[b_local, cfg.bottom_mlp[0]]).with_batch_dim(0));
        let dense =
            s1.add_tensor(TensorMeta::activation(&[b_local, cfg.bottom_mlp[0]]).with_batch_dim(0));
        s1.add_node("input::to_dense", OpKind::To { kind: MemcpyKind::HostToDevice }, vec![dense_cpu], vec![dense]);
        mlp_forward(&mut s1, "bot", dense, b_local, &cfg.bottom_mlp, true);
        if t_local > 0 {
            let idx_cpu = s1.add_tensor(TensorMeta::index(&[t_local, b_emb, l]));
            let idx = s1.add_tensor(TensorMeta::index(&[t_local, b_emb, l]));
            s1.add_node("input::to_indices", OpKind::To { kind: MemcpyKind::HostToDevice }, vec![idx_cpu], vec![idx]);
            let w = s1.add_tensor(TensorMeta::weight(&[t_local, avg_rows, d]));
            let out = s1.add_tensor(TensorMeta::activation(&[b_emb, t_local * d]));
            s1.add_node("emb::batched_embedding", OpKind::BatchedEmbedding, vec![w, idx], vec![out]);
        }

        // ---- S2: interaction + top MLP + loss, forward and backward (local batch).
        let mut s2 = Graph::new(format!("{}::rank{rank}::s2", cfg.name));
        let bot_out = s2.add_tensor(TensorMeta::activation(&[b_local, d]).with_batch_dim(0));
        let emb_all = s2.add_tensor(TensorMeta::activation(&[b_local, t_total * d]).with_batch_dim(0));
        let labels = s2.add_tensor(TensorMeta::activation(&[b_local, 1]).with_batch_dim(0));
        let cat_all = s2.add_tensor(TensorMeta::activation(&[b_local, n_int * d]).with_batch_dim(0));
        s2.add_node("int::cat", OpKind::Cat { dim: 1 }, vec![bot_out, emb_all], vec![cat_all]);
        let t3 = s2.add_tensor(TensorMeta::activation(&[b_local, n_int, d]).with_batch_dim(0));
        s2.add_node("int::reshape", OpKind::Reshape, vec![cat_all], vec![t3]);
        let t3t = s2.add_tensor(TensorMeta::activation(&[b_local, d, n_int]).with_batch_dim(0));
        s2.add_node("int::transpose", OpKind::Transpose, vec![t3], vec![t3t]);
        let z = s2.add_tensor(TensorMeta::activation(&[b_local, n_int, n_int]).with_batch_dim(0));
        s2.add_node("int::bmm", OpKind::Bmm, vec![t3, t3t], vec![z]);
        let zflat = s2.add_tensor(TensorMeta::activation(&[b_local, tri]).with_batch_dim(0));
        s2.add_node("int::tril", OpKind::Tril, vec![z], vec![zflat]);
        let top_in = s2.add_tensor(TensorMeta::activation(&[b_local, d + tri]).with_batch_dim(0));
        s2.add_node("int::cat_out", OpKind::Cat { dim: 1 }, vec![bot_out, zflat], vec![top_in]);
        let mut top_sizes = vec![d + tri];
        top_sizes.extend_from_slice(&cfg.top_mlp);
        let top = mlp_forward(&mut s2, "top", top_in, b_local, &top_sizes, false);
        let pred = s2.add_tensor(TensorMeta::activation(&[b_local, 1]).with_batch_dim(0));
        s2.add_node("loss::sigmoid", OpKind::Sigmoid, vec![top.output], vec![pred]);
        let loss = s2.add_tensor(TensorMeta::activation(&[]));
        s2.add_node("loss::mse_loss", OpKind::MseLoss, vec![pred, labels], vec![loss]);
        let g_pred = s2.add_tensor(TensorMeta::activation(&[b_local, 1]).with_batch_dim(0));
        s2.add_node("loss::mse_loss_backward", OpKind::MseLossBackward, vec![loss, pred, labels], vec![g_pred]);
        let g_top_out = s2.add_tensor(TensorMeta::activation(&[b_local, 1]).with_batch_dim(0));
        s2.add_node("loss::sigmoid_backward", OpKind::SigmoidBackward, vec![g_pred, pred], vec![g_top_out]);
        let mut s2_grads = Vec::new();
        let g_top_in = mlp_backward(&mut s2, "top", &top, b_local, g_top_out, &mut s2_grads);
        let g_bot_direct = s2.add_tensor(TensorMeta::activation(&[b_local, d]).with_batch_dim(0));
        let g_zflat = s2.add_tensor(TensorMeta::activation(&[b_local, tri]).with_batch_dim(0));
        s2.add_node("int::cat_out_backward", OpKind::CatBackward { dim: 1 }, vec![g_top_in], vec![g_bot_direct, g_zflat]);
        let g_z = s2.add_tensor(TensorMeta::activation(&[b_local, n_int, n_int]).with_batch_dim(0));
        s2.add_node("int::tril_backward", OpKind::TrilBackward, vec![g_zflat], vec![g_z]);
        let g_t3 = s2.add_tensor(TensorMeta::activation(&[b_local, n_int, d]).with_batch_dim(0));
        let g_t3t = s2.add_tensor(TensorMeta::activation(&[b_local, d, n_int]).with_batch_dim(0));
        s2.add_node("int::bmm_backward", OpKind::BmmBackward, vec![g_z, t3, t3t], vec![g_t3, g_t3t]);
        let g_bot_from_int = s2.add_tensor(TensorMeta::activation(&[b_local, d]).with_batch_dim(0));
        let g_emb = s2.add_tensor(TensorMeta::activation(&[b_local, t_total * d]).with_batch_dim(0));
        s2.add_node("int::cat_backward", OpKind::CatBackward { dim: 1 }, vec![g_t3], vec![g_bot_from_int, g_emb]);
        let g_bot = s2.add_tensor(TensorMeta::activation(&[b_local, d]).with_batch_dim(0));
        s2.add_node("int::add_bot_grads", OpKind::Add, vec![g_bot_direct, g_bot_from_int], vec![g_bot]);
        let _ = g_t3t;

        // ---- S3: embedding bwd (full batch, local tables) + bottom MLP bwd.
        let mut s3 = Graph::new(format!("{}::rank{rank}::s3", cfg.name));
        if t_local > 0 {
            let w = s3.add_tensor(TensorMeta::weight(&[t_local, avg_rows, d]));
            let idx = s3.add_tensor(TensorMeta::index(&[t_local, b_emb, l]));
            let g_local = s3.add_tensor(TensorMeta::activation(&[b_emb, t_local * d]));
            s3.add_node(
                "emb::batched_embedding_backward",
                OpKind::BatchedEmbeddingBackward,
                vec![w, idx, g_local],
                vec![],
            );
        }
        // Bottom backward: rebuild the tape shapes and emit its backward.
        let bot_in = s3.add_tensor(TensorMeta::activation(&[b_local, cfg.bottom_mlp[0]]).with_batch_dim(0));
        let bot_tape = mlp_forward(&mut s3, "bot_shadow", bot_in, b_local, &cfg.bottom_mlp, true);
        let g_bot = s3.add_tensor(TensorMeta::activation(&[b_local, d]).with_batch_dim(0));
        let mut s3_grads = Vec::new();
        mlp_backward(&mut s3, "bot", &bot_tape, b_local, g_bot, &mut s3_grads);
        // Drop the shadow forward nodes: keep only backward + embedding ops.
        let keep: Vec<_> = s3
            .nodes()
            .iter()
            .filter(|n| !n.name.starts_with("bot_shadow"))
            .cloned()
            .collect();
        s3.set_nodes(keep);

        // ---- S4: optimizer over all dense parameter gradients.
        let mut s4 = Graph::new(format!("{}::rank{rank}::s4", cfg.name));
        let mut opt_inputs = Vec::new();
        let mlp_layers =
            |sizes: &[u64]| sizes.windows(2).map(|p| (p[1], p[0])).collect::<Vec<_>>();
        for (outf, inf) in mlp_layers(&cfg.bottom_mlp).into_iter().chain(mlp_layers(&top_sizes)) {
            opt_inputs.push(s4.add_tensor(TensorMeta::weight(&[outf, inf])));
            opt_inputs.push(s4.add_tensor(TensorMeta::weight(&[outf])));
        }
        s4.add_node("optimizer::step", OpKind::OptimizerStep, opt_inputs, vec![]);

        for g in [&mut s1, &mut s2, &mut s3, &mut s4] {
            dlperf_models::common::add_host_accessories(g, cfg.host_accessory_ops);
            debug_assert_eq!(g.validate(), Ok(()));
        }
        [s1, s2, s3, s4]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_graph::lower;

    fn job(world: usize) -> DistributedDlrm {
        let cfg = DlrmConfig::default_config(2048);
        let plan = ShardingPlan::round_robin(cfg.rows_per_table.len(), world);
        DistributedDlrm::new(cfg, plan).unwrap()
    }

    #[test]
    fn segments_build_and_lower_for_all_ranks() {
        let j = job(4);
        for rank in 0..4 {
            for seg in j.segments(rank) {
                assert!(seg.validate().is_ok(), "{} invalid", seg.name);
                assert!(lower::lower_graph(&seg).is_ok(), "{} fails to lower", seg.name);
            }
        }
    }

    #[test]
    fn local_batch_and_tables_split() {
        let j = job(4);
        assert_eq!(j.local_batch(), 512);
        assert_eq!(j.rank_rows(0).len(), 2);
        let total: usize = (0..4).map(|r| j.rank_rows(r).len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn collectives_sized_by_straggler() {
        let cfg = DlrmConfig::default_config(1024);
        // Skewed plan: rank 0 owns 7 tables, rank 1 owns 1.
        let plan = ShardingPlan::new(vec![0, 0, 0, 0, 0, 0, 0, 1], 2).unwrap();
        let j = DistributedDlrm::new(cfg, plan).unwrap();
        let [a2a, _, ar] = j.collectives();
        assert_eq!(a2a.bytes_per_rank, 1024 * 7 * 64 * 4);
        assert_eq!(ar.kind, dlperf_gpusim::CollectiveKind::AllReduce);
        assert_eq!(ar.bytes_per_rank, j.mlp_param_bytes());
    }

    #[test]
    fn strategies_shape_the_collectives() {
        let j = job(4);
        let dp = j.clone().with_strategy(ParallelismStrategy::DataParallel);
        let [c1, c2, c3] = dp.collectives();
        assert_eq!((c1.bytes_per_rank, c2.bytes_per_rank), (0, 0));
        assert!(c3.bytes_per_rank > dp.mlp_param_bytes(), "DP all-reduce carries emb grads too");
        let mp = j.clone().with_strategy(ParallelismStrategy::ModelParallel);
        let [m1, _, m3] = mp.collectives();
        assert!(m1.bytes_per_rank > 0);
        assert_eq!(m3.bytes_per_rank, 0, "MP owns its parameters outright");
        let pp = j.clone().with_strategy(ParallelismStrategy::PipelineParallel);
        let [p1, _, p3] = pp.collectives();
        assert_eq!(p1.kind, CollectiveKind::AllGather);
        assert_eq!(p3.bytes_per_rank, 0);
        assert!((pp.compute_inflation() - 7.0 / 4.0).abs() < 1e-12);
        assert_eq!(j.compute_inflation(), 1.0);
    }

    #[test]
    fn strategy_segments_build_and_lower_for_all_ranks() {
        for strategy in ParallelismStrategy::ALL {
            let j = job(2).with_strategy(strategy);
            for rank in 0..2 {
                for seg in j.segments(rank) {
                    assert!(seg.validate().is_ok(), "{strategy}: {} invalid", seg.name);
                    assert!(lower::lower_graph(&seg).is_ok(), "{strategy}: {} fails", seg.name);
                }
            }
        }
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in ParallelismStrategy::ALL {
            assert_eq!(ParallelismStrategy::from_name(&s.to_string()), Some(s));
        }
        assert_eq!(ParallelismStrategy::from_name("Data-Parallel"), Some(ParallelismStrategy::DataParallel));
        assert_eq!(ParallelismStrategy::from_name("warp"), None);
    }

    #[test]
    fn indivisible_batch_rejected() {
        let cfg = DlrmConfig::default_config(1000);
        let plan = ShardingPlan::round_robin(8, 3);
        assert!(matches!(
            DistributedDlrm::new(cfg, plan),
            Err(DistribError::BatchNotDivisible { .. })
        ));
    }

    #[test]
    fn plan_table_mismatch_rejected() {
        let cfg = DlrmConfig::default_config(1024); // 8 tables
        let plan = ShardingPlan::round_robin(10, 2);
        assert!(matches!(DistributedDlrm::new(cfg, plan), Err(DistribError::PlanMismatch(_))));
    }

    #[test]
    fn rank_without_tables_still_has_valid_segments() {
        let cfg = DlrmConfig::default_config(512);
        // All 8 tables on rank 0; rank 1 computes only MLPs.
        let plan = ShardingPlan::new(vec![0; 8], 2).unwrap();
        let j = DistributedDlrm::new(cfg, plan).unwrap();
        let segs = j.segments(1);
        for seg in &segs {
            assert!(seg.validate().is_ok());
        }
        // No embedding op on rank 1's S1.
        assert!(!segs[0]
            .nodes()
            .iter()
            .any(|n| n.op == OpKind::BatchedEmbedding));
    }
}
