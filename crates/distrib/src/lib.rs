//! # dlperf-distrib
//!
//! Multi-GPU DLRM training performance modeling — the extension the paper
//! names as work in progress (§V-B: "the extension of this work to
//! (distributed) multi-GPU platforms also requires kernel performance
//! models of communication collectives (e.g., all_to_all, all_reduce)").
//!
//! The modeled scheme is DLRM's canonical **hybrid parallelism**:
//!
//! * embedding tables are **model-parallel** — sharded across GPUs by a
//!   [`ShardingPlan`]; each rank looks up its own tables for the *full*
//!   batch and exchanges outputs with an `all_to_all`;
//! * the MLPs are **data-parallel** — every rank processes `B / world`
//!   samples and synchronizes gradients with an `all_reduce`.
//!
//! One training iteration is four compute segments separated by three
//! collectives:
//!
//! ```text
//! S1: input copies + bottom MLP (B/w) + embedding fwd (B, local tables)
//! C1: all_to_all (embedding outputs)
//! S2: interaction + top MLP + loss + their backwards (B/w)
//! C2: all_to_all (embedding gradients)
//! S3: embedding bwd (B, local tables) + bottom MLP bwd (B/w)
//! C3: all_reduce (MLP gradients)
//! S4: optimizer step
//! ```
//!
//! [`engine::MultiGpuEngine`] measures this timeline on the simulated
//! cluster (per-rank discrete-event execution, barrier at each collective);
//! [`predictor::DistributedPredictor`] prices it from the execution graphs
//! plus the collective performance model — never running anything, so
//! embedding-sharding plans can be compared offline (the paper's
//! load-balancing use case, end to end).

pub mod builder;
pub mod comms;
pub mod engine;
pub mod plan;
pub mod predictor;
pub mod search;
pub mod sweep;
pub mod topology;

pub use builder::{DistributedDlrm, ParallelismStrategy};
pub use comms::{CollectiveEstimate, CommModel};
pub use engine::{DistributedRunResult, MultiGpuEngine};
pub use plan::ShardingPlan;
pub use predictor::{DistributedPrediction, DistributedPredictor, SegmentBaselines};
pub use search::{DistribAxis, DistribMove};
pub use sweep::{
    enumerate_matrix, enumerate_plans, sweep_shardings, ShardingResult, ShardingScenario,
    ShardingSweepOutcome,
};
pub use topology::{Topology, TopologyShape};

/// Errors raised by distributed-model construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistribError {
    /// The batch size is not divisible by the world size.
    BatchNotDivisible { batch: u64, world: usize },
    /// The sharding plan does not match the table count or world size.
    PlanMismatch(String),
}

impl std::fmt::Display for DistribError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistribError::BatchNotDivisible { batch, world } => {
                write!(f, "batch {batch} not divisible by world {world}")
            }
            DistribError::PlanMismatch(s) => write!(f, "sharding plan mismatch: {s}"),
        }
    }
}

impl std::error::Error for DistribError {}
