//! The closed-form α–β communication cost model over a [`Topology`].
//!
//! Every collective is priced as *steps × (α + chunk/β)*: α aggregates the
//! per-hop link latencies of the worst transfer of a step, β is the
//! bottleneck per-direction bandwidth after congestion sharing (a PCIe
//! root complex crossed by both GPUs of a switch, a node uplink shared by
//! every GPU of the node). The closed forms mirror the schedules the
//! `gpusim` link-level oracle executes — ring reduce-scatter/all-gather,
//! binomial tree, hierarchical leader rings, pairwise all-to-all rounds —
//! so the differential suite in `tests/comms.rs` can pin the model's
//! per-collective GMAE against [`Topology::oracle_time_algo`] the way
//! `tests/accuracy.rs` pins kernel models against the kernel simulator.
//!
//! All evaluations are pure functions of `(topology, spec)`: bitwise
//! deterministic at any thread count, cache-independent, and free of
//! global state beyond monotonic observability counters.

use dlperf_gpusim::interconnect::CollectiveAlgo;
use dlperf_gpusim::{CollectiveKind, CollectiveSpec, LinkSpec};

use crate::topology::{Topology, TopologyShape};

/// One priced collective: the chosen algorithm and its α–β time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveEstimate {
    /// Closed-form time (µs), launch overhead included.
    pub time_us: f64,
    /// The schedule the model selected.
    pub algo: CollectiveAlgo,
    /// Whether the underlying topology is a degraded fallback.
    pub degraded: bool,
}

/// Process-wide α–β model counters: evaluations and degraded-topology
/// evaluations across every [`CommModel`] instance.
struct CommCounters {
    _group: std::sync::Arc<dlperf_obs::CounterGroup>,
    evaluations: dlperf_obs::CounterHandle,
    degraded_evals: dlperf_obs::CounterHandle,
    link_faults: dlperf_obs::CounterHandle,
}

fn comm_counters() -> &'static CommCounters {
    static G: std::sync::OnceLock<CommCounters> = std::sync::OnceLock::new();
    G.get_or_init(|| {
        let group = dlperf_obs::CounterGroup::register(
            "distrib.comms",
            &["evaluations", "degraded_evals", "link_faults"],
        );
        CommCounters {
            evaluations: group.handle("evaluations"),
            degraded_evals: group.handle("degraded_evals"),
            link_faults: group.handle("link_faults"),
            _group: group,
        }
    })
}

/// Records one link-fault application against the comms counter group
/// (called by the engine/predictor paths that degrade collectives).
pub(crate) fn record_link_fault() {
    comm_counters().link_faults.incr();
}

/// The α–β cost model, bound to one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct CommModel {
    topology: Topology,
}

/// Worst-case single-transfer α–β parameters for one shape, derived once
/// per evaluation: `intra` covers rank-adjacent links, `cross` covers
/// transfers through the shared fabric (root complex or IB core).
struct ShapeParams {
    /// Per-step latency of an intra-island transfer (µs).
    intra_lat: f64,
    /// Bottleneck bandwidth of an intra-island transfer (bytes/µs).
    intra_bw: f64,
    /// Per-step latency of a fabric-crossing transfer (µs).
    cross_lat: f64,
    /// Bottleneck bandwidth of a fabric-crossing transfer (bytes/µs).
    cross_bw: f64,
}

impl CommModel {
    /// Binds the model to `topology`.
    pub fn new(topology: Topology) -> Self {
        CommModel { topology }
    }

    /// The natural model for a homogeneous cluster of `device`s (see
    /// [`Topology::for_device`]).
    ///
    /// # Panics
    /// Panics if `world` is zero.
    pub fn for_device(device: &dlperf_gpusim::DeviceSpec, world: usize) -> Self {
        Self::new(Topology::for_device(device, world))
    }

    /// The bound topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn params(&self) -> ShapeParams {
        let links = self.topology.rank_links();
        let max_lat = links.iter().map(|l| l.latency_us).fold(0.0, f64::max);
        let min_bw =
            links.iter().map(LinkSpec::bytes_per_us).fold(f64::INFINITY, f64::min);
        match self.topology.shape() {
            TopologyShape::Mesh => ShapeParams {
                intra_lat: max_lat,
                intra_bw: min_bw,
                cross_lat: max_lat,
                cross_bw: min_bw,
            },
            // GPU→switch→root→switch→GPU: four hops of the bottleneck
            // link; switch-local peers take the two-hop short path.
            TopologyShape::PcieTree => ShapeParams {
                intra_lat: 2.0 * max_lat,
                intra_bw: min_bw,
                cross_lat: 4.0 * max_lat,
                cross_bw: min_bw,
            },
            // GPU→node-switch→core→node-switch→GPU: two intra hops plus
            // two uplink hops; the uplink bounds the crossing bandwidth.
            TopologyShape::Hierarchical { inter, .. } => {
                let inter = inter.scaled(self.topology.bandwidth_scale());
                ShapeParams {
                    intra_lat: 2.0 * max_lat,
                    intra_bw: min_bw,
                    cross_lat: 2.0 * max_lat + 2.0 * inter.latency_us,
                    cross_bw: min_bw.min(inter.bytes_per_us()),
                }
            }
        }
    }

    /// Closed-form α–β time (µs) of `spec` under `algo`, launch overhead
    /// included. Zero when the world is one or the payload empty (nothing
    /// crosses a wire, so nothing launches).
    ///
    /// # Panics
    /// Panics if `spec.world` does not match the topology.
    pub fn time_algo(&self, spec: &CollectiveSpec, algo: CollectiveAlgo) -> f64 {
        assert_eq!(
            spec.world as usize,
            self.topology.world(),
            "collective world must match the topology"
        );
        let w = self.topology.world();
        if w <= 1 || spec.bytes_per_rank == 0 {
            return 0.0;
        }
        comm_counters().evaluations.incr();
        if self.topology.degraded().is_some() {
            comm_counters().degraded_evals.incr();
        }
        let p = self.params();
        let bytes = spec.bytes_per_rank as f64;
        let chunk = bytes / w as f64;
        let wire = match spec.kind {
            CollectiveKind::AllReduce => match algo {
                CollectiveAlgo::Ring => 2.0 * (w - 1) as f64 * self.ring_step(&p, chunk),
                CollectiveAlgo::Tree => self.tree_allreduce(&p, bytes),
                CollectiveAlgo::Hierarchical { groups }
                    if groups > 0 && groups < w && w.is_multiple_of(groups) =>
                {
                    self.hierarchical_allreduce(&p, bytes, groups)
                }
                CollectiveAlgo::Hierarchical { .. } => {
                    2.0 * (w - 1) as f64 * self.ring_step(&p, chunk)
                }
            },
            CollectiveKind::AllGather => (w - 1) as f64 * self.ring_step(&p, chunk),
            CollectiveKind::AllToAll => self.all_to_all(&p, chunk),
        };
        wire + self.topology.launch_us()
    }

    /// The worst transfer of one ring step with `chunk` bytes: on a ring
    /// over rank order at least one transfer crosses the shared fabric
    /// whenever islands exist, and per-direction link loads stay at one,
    /// so the crossing pair's α–β is the step.
    fn ring_step(&self, p: &ShapeParams, chunk: f64) -> f64 {
        let w = self.topology.world();
        let crossing = match self.topology.shape() {
            TopologyShape::Mesh => false,
            // Two GPUs under one switch never leave it.
            TopologyShape::PcieTree => w > 2,
            TopologyShape::Hierarchical { nodes, .. } => *nodes > 1,
        };
        if crossing {
            p.cross_lat + chunk / p.cross_bw.max(1e-9)
        } else {
            p.intra_lat + chunk / p.intra_bw.max(1e-9)
        }
    }

    /// Pairwise all-to-all: `w−1` rounds of `chunk`-sized sends to rank
    /// `(i+r) mod w`. Rounds whose destinations leave the local island
    /// share the island's uplink; the closed form counts the sharers per
    /// round exactly as the oracle's router does.
    fn all_to_all(&self, p: &ShapeParams, chunk: f64) -> f64 {
        let w = self.topology.world();
        match self.topology.shape() {
            TopologyShape::Mesh => (w - 1) as f64 * (p.cross_lat + chunk / p.cross_bw.max(1e-9)),
            TopologyShape::PcieTree => {
                if w <= 2 {
                    return p.intra_lat + chunk / p.intra_bw.max(1e-9);
                }
                // Round 1 and round w−1 send each switch's odd (resp.
                // even) GPU across the root alone; every other round sends
                // both GPUs of a switch through its uplink.
                (1..w)
                    .map(|r| {
                        let load = if r == 1 || r == w - 1 { 1.0 } else { 2.0 };
                        p.cross_lat + load * chunk / p.cross_bw.max(1e-9)
                    })
                    .sum()
            }
            TopologyShape::Hierarchical { nodes, gpus_per_node, .. } => {
                let (m, g) = (*nodes, *gpus_per_node);
                if m <= 1 {
                    return (w - 1) as f64 * (p.intra_lat + chunk / p.intra_bw.max(1e-9));
                }
                (1..w)
                    .map(|r| {
                        // Of a node's g ranks, those whose destination
                        // stays in-node avoid the uplink: the shifted
                        // destination block overlaps the node by g−(r mod g)
                        // ranks when ⌊r/g⌋ wraps to zero and by r mod g
                        // when it wraps to m−1.
                        let (q, k) = (r % g, r / g);
                        let same = if k == 0 { g - q } else { 0 }
                            + if (k + 1) % m == 0 && q > 0 { q } else { 0 };
                        let inter_load = (g - same.min(g)) as f64;
                        if inter_load == 0.0 {
                            p.intra_lat + chunk / p.intra_bw.max(1e-9)
                        } else {
                            let uplink = inter_load * chunk / p.cross_bw.max(1e-9);
                            p.cross_lat + uplink.max(chunk / p.intra_bw.max(1e-9))
                        }
                    })
                    .sum()
            }
        }
    }

    /// Binomial-tree all-reduce: `⌈log₂ w⌉` reduce levels of full-payload
    /// transfers plus the mirror broadcast. On trees and hierarchies only
    /// the first level(s) stay island-local.
    fn tree_allreduce(&self, p: &ShapeParams, bytes: f64) -> f64 {
        let w = self.topology.world();
        let local_levels = match self.topology.shape() {
            TopologyShape::Mesh => usize::MAX,
            TopologyShape::PcieTree => 1,
            TopologyShape::Hierarchical { gpus_per_node, .. } => {
                // Levels with span < g stay inside the node.
                (usize::BITS - (*gpus_per_node).leading_zeros()) as usize - 1
            }
        };
        let mut total = 0.0;
        let mut span = 1usize;
        let mut level = 0usize;
        while span < w {
            total += if level < local_levels {
                p.intra_lat + bytes / p.intra_bw.max(1e-9)
            } else {
                p.cross_lat + bytes / p.cross_bw.max(1e-9)
            };
            span *= 2;
            level += 1;
        }
        2.0 * total
    }

    /// Hierarchical all-reduce: per-node ring reduce-scatter, leader ring
    /// across nodes on the scattered payload, per-node all-gather.
    fn hierarchical_allreduce(&self, p: &ShapeParams, bytes: f64, g: usize) -> f64 {
        let m = self.topology.world() / g;
        let mut total = 0.0;
        if g > 1 {
            total += 2.0
                * (g - 1) as f64
                * (p.intra_lat + (bytes / g as f64) / p.intra_bw.max(1e-9));
        }
        if m > 1 {
            total += 2.0
                * (m - 1) as f64
                * (p.cross_lat + (bytes / (g * m) as f64) / p.cross_bw.max(1e-9));
        }
        total
    }

    /// The all-reduce schedule the model selects for `spec`: the variant
    /// with the lowest closed-form time, tie-broken Ring → Tree →
    /// Hierarchical so the choice is deterministic. Non-all-reduce kinds
    /// always get Ring (the variants price identically there).
    pub fn allreduce_algo(&self, spec: &CollectiveSpec) -> CollectiveAlgo {
        if spec.kind != CollectiveKind::AllReduce {
            return CollectiveAlgo::Ring;
        }
        let mut candidates = vec![CollectiveAlgo::Ring, CollectiveAlgo::Tree];
        if let TopologyShape::Hierarchical { nodes, gpus_per_node, .. } = self.topology.shape() {
            if *nodes > 1 && *gpus_per_node > 1 {
                candidates.push(CollectiveAlgo::Hierarchical { groups: *gpus_per_node });
            }
        }
        candidates
            .into_iter()
            .min_by(|a, b| {
                self.time_algo(spec, *a)
                    .partial_cmp(&self.time_algo(spec, *b))
                    .expect("collective times are finite")
            })
            .expect("candidate list is non-empty")
    }

    /// Best-variant closed-form time (µs) of `spec`.
    ///
    /// # Panics
    /// Panics if `spec.world` does not match the topology.
    pub fn collective_time(&self, spec: &CollectiveSpec) -> f64 {
        self.time_algo(spec, self.allreduce_algo(spec))
    }

    /// Best-variant estimate with the chosen schedule and degradation
    /// flag attached.
    ///
    /// # Panics
    /// Panics if `spec.world` does not match the topology.
    pub fn estimate(&self, spec: &CollectiveSpec) -> CollectiveEstimate {
        let algo = self.allreduce_algo(spec);
        CollectiveEstimate {
            time_us: self.time_algo(spec, algo),
            algo,
            degraded: self.topology.degraded().is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_gpusim::DeviceSpec;

    fn spec(kind: CollectiveKind, bytes: u64, world: u32) -> CollectiveSpec {
        CollectiveSpec { kind, bytes_per_rank: bytes, world }
    }

    #[test]
    fn mesh_closed_form_matches_oracle_exactly() {
        // Full meshes have no congestion: closed form and oracle agree to
        // float precision for the ring schedules.
        let t = Topology::nvlink_mesh(&DeviceSpec::v100(), 4);
        let m = CommModel::new(t.clone());
        for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll, CollectiveKind::AllGather]
        {
            let s = spec(kind, 64 << 20, 4);
            let model = m.time_algo(&s, CollectiveAlgo::Ring);
            let oracle = t.oracle_time_algo(&s, CollectiveAlgo::Ring);
            assert!(
                (model - oracle).abs() / oracle < 1e-9,
                "{kind}: model {model} vs oracle {oracle}"
            );
        }
    }

    #[test]
    fn small_payload_prefers_tree_large_prefers_ring() {
        let m = CommModel::new(Topology::nvlink_mesh(&DeviceSpec::v100(), 8));
        let small = m.allreduce_algo(&spec(CollectiveKind::AllReduce, 4 << 10, 8));
        let large = m.allreduce_algo(&spec(CollectiveKind::AllReduce, 256 << 20, 8));
        assert_eq!(small, CollectiveAlgo::Tree, "tiny payloads are latency-bound");
        assert_eq!(large, CollectiveAlgo::Ring, "large payloads are bandwidth-bound");
    }

    #[test]
    fn hierarchy_prefers_hierarchical_allreduce_for_large_payloads() {
        let m = CommModel::new(Topology::multi_node_ib(&DeviceSpec::v100(), 2, 4));
        let s = spec(CollectiveKind::AllReduce, 256 << 20, 8);
        let algo = m.allreduce_algo(&s);
        assert_eq!(algo, CollectiveAlgo::Hierarchical { groups: 4 });
        // And the choice is never worse than plain ring.
        assert!(m.time_algo(&s, algo) <= m.time_algo(&s, CollectiveAlgo::Ring));
    }

    #[test]
    fn zero_world_or_payload_is_free() {
        let m = CommModel::new(Topology::nvlink_mesh(&DeviceSpec::v100(), 1));
        assert_eq!(m.collective_time(&spec(CollectiveKind::AllReduce, 1 << 20, 1)), 0.0);
        let m4 = CommModel::new(Topology::nvlink_mesh(&DeviceSpec::v100(), 4));
        assert_eq!(m4.collective_time(&spec(CollectiveKind::AllToAll, 0, 4)), 0.0);
    }

    #[test]
    fn degraded_topology_still_prices_and_flags() {
        let t = Topology::from_name("warp-drive", &DeviceSpec::v100(), 4);
        let m = CommModel::new(t);
        let e = m.estimate(&spec(CollectiveKind::AllReduce, 16 << 20, 4));
        assert!(e.degraded);
        assert!(e.time_us.is_finite() && e.time_us > 0.0);
    }

    #[test]
    fn pcie_tree_all_to_all_tracks_oracle_congestion() {
        let t = Topology::pcie_tree(&DeviceSpec::titan_xp(), 8);
        let m = CommModel::new(t.clone());
        let s = spec(CollectiveKind::AllToAll, 32 << 20, 8);
        let model = m.collective_time(&s);
        let oracle = t.oracle_time(&s);
        let err = (model - oracle).abs() / oracle;
        assert!(err < 0.1, "tree a2a err {:.1}% (model {model} vs oracle {oracle})", err * 100.0);
    }
}
