//! The lockstep multi-GPU engine: simulated measurement of one
//! hybrid-parallel training iteration.
//!
//! Each rank executes its compute segments on its own simulated GPU (with
//! independent noise); every collective is a barrier — it starts when the
//! slowest rank arrives and all ranks leave together, as NCCL-synchronized
//! training behaves.
//!
//! A [`dlperf_faults::FaultPlan`] can be installed on the engine: straggler
//! ranks and kernel slowdowns degrade the per-rank engines, and collectives
//! run under a timeout + exponential-backoff retry model whose penalties
//! (and eventual drops) are surfaced in [`DistributedRunResult`] instead of
//! aborting the run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};

use dlperf_faults::{FaultInjector, FaultPlan};
use dlperf_gpusim::DeviceSpec;
use dlperf_trace::engine::{EngineError, ExecutionEngine};

use crate::builder::DistributedDlrm;
use crate::comms::CommModel;
use crate::topology::Topology;

/// Measured timeline of one distributed iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedRunResult {
    /// End-to-end iteration time (µs).
    pub e2e_us: f64,
    /// Per-segment compute time: `max` over ranks (µs), S1..S4.
    pub segment_us: [f64; 4],
    /// Per-collective time (µs), C1..C3 — includes any retry penalties.
    pub comm_us: [f64; 3],
    /// Per-rank per-segment compute times (`[rank][segment]`).
    pub per_rank_us: Vec<[f64; 4]>,
    /// Total collective retries this iteration (0 when healthy).
    pub collective_retries: u32,
    /// Latency added by collective timeouts and backoff (µs); already
    /// folded into `comm_us` so the timeline stays consistent.
    pub retry_added_us: f64,
    /// Which collectives (C1..C3) were abandoned after exhausting retries.
    pub dropped_collectives: [bool; 3],
    /// Human-readable degradation notes (empty when nothing degraded).
    pub degradation: Vec<String>,
}

impl DistributedRunResult {
    /// Fraction of the iteration spent in collectives.
    pub fn comm_share(&self) -> f64 {
        self.comm_us.iter().sum::<f64>() / self.e2e_us
    }

    /// Compute imbalance of a segment: max / mean over ranks (1 = balanced).
    pub fn segment_imbalance(&self, segment: usize) -> f64 {
        let vals: Vec<f64> = self.per_rank_us.iter().map(|r| r[segment]).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            vals.iter().copied().fold(0.0f64, f64::max) / mean
        }
    }
}

/// Process-wide cluster-engine counters — iteration counts and degradation
/// totals across every [`MultiGpuEngine`] instance; per-run numbers stay in
/// [`DistributedRunResult`].
struct EngineCounters {
    _group: std::sync::Arc<dlperf_obs::CounterGroup>,
    runs: dlperf_obs::CounterHandle,
    collective_retries: dlperf_obs::CounterHandle,
    dropped_collectives: dlperf_obs::CounterHandle,
}

fn engine_counters() -> &'static EngineCounters {
    static G: std::sync::OnceLock<EngineCounters> = std::sync::OnceLock::new();
    G.get_or_init(|| {
        let group = dlperf_obs::CounterGroup::register(
            "distrib.engine",
            &["runs", "collective_retries", "dropped_collectives"],
        );
        EngineCounters {
            runs: group.handle("runs"),
            collective_retries: group.handle("collective_retries"),
            dropped_collectives: group.handle("dropped_collectives"),
            _group: group,
        }
    })
}

/// A homogeneous cluster of simulated GPUs.
#[derive(Debug)]
pub struct MultiGpuEngine {
    device: DeviceSpec,
    seed: u64,
    rng: StdRng,
    profiling: bool,
    injector: Option<FaultInjector>,
    /// Explicit interconnect topology; `None` derives one from the device
    /// class per job (NVLink mesh or PCIe tree).
    topology: Option<Topology>,
    /// Iteration counter keying per-iteration fault sites.
    iteration: u64,
    /// Wall-clock budget (µs) for collective retry penalties per
    /// collective; `None` retries to the plan's `max_retries` unbounded.
    retry_deadline_us: Option<f64>,
}

impl MultiGpuEngine {
    /// Creates a cluster engine of identical `device`s.
    pub fn new(device: DeviceSpec, seed: u64) -> Self {
        MultiGpuEngine {
            device,
            seed,
            rng: StdRng::seed_from_u64(seed ^ 0xc0),
            profiling: false,
            injector: None,
            topology: None,
            iteration: 0,
            retry_deadline_us: None,
        }
    }

    /// Pins the cluster to an explicit interconnect topology. A job whose
    /// world does not match the topology falls back to the derived one
    /// (and says so in the run's degradation notes) — degraded, not wrong.
    pub fn set_topology(&mut self, topology: Option<Topology>) {
        self.topology = topology;
    }

    /// The pinned topology, if any.
    pub fn topology(&self) -> Option<&Topology> {
        self.topology.as_ref()
    }

    /// Creates a cluster engine with a fault plan installed.
    pub fn with_faults(device: DeviceSpec, seed: u64, plan: FaultPlan) -> Self {
        let mut e = Self::new(device, seed);
        e.set_fault_plan(plan);
        e
    }

    /// Enables profiler-overhead injection in per-rank runs.
    pub fn set_profiling(&mut self, profiling: bool) {
        self.profiling = profiling;
    }

    /// Installs (or replaces) the fault plan and resets the iteration
    /// counter, so the same engine state + plan replays identically.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = Some(FaultInjector::new(plan));
        self.iteration = 0;
    }

    /// Removes any installed fault plan.
    pub fn clear_faults(&mut self) {
        self.injector = None;
        self.iteration = 0;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.injector.as_ref().map(FaultInjector::plan)
    }

    /// Caps the retry penalty any single collective may accumulate: once
    /// timeouts + backoff reach the deadline, the collective is dropped
    /// (gradient skipped, as under PR 1's drop semantics) instead of
    /// retrying further. This is the distributed-training analogue of the
    /// supervisor's run deadline — a flaky wire degrades, it does not hang
    /// the job. `None` (the default) restores unbounded retries up to the
    /// plan's `max_retries`.
    ///
    /// Attempt outcomes at a site are unchanged by the deadline (they are
    /// stateless hash draws), so enabling it never reorders which
    /// collectives fail — it only truncates how long failure is allowed
    /// to cost.
    ///
    /// # Panics
    /// Panics if `deadline_us` is negative, NaN, or infinite.
    pub fn set_retry_deadline_us(&mut self, deadline_us: Option<f64>) {
        if let Some(d) = deadline_us {
            assert!(d >= 0.0 && d.is_finite(), "retry deadline must be non-negative and finite");
        }
        self.retry_deadline_us = deadline_us;
    }

    /// The configured collective retry deadline, if any.
    pub fn retry_deadline_us(&self) -> Option<f64> {
        self.retry_deadline_us
    }

    /// Measures one distributed iteration.
    ///
    /// # Errors
    /// Propagates [`EngineError`]s from malformed segment graphs or
    /// degenerate kernel times.
    pub fn run(&mut self, job: &DistributedDlrm) -> Result<DistributedRunResult, EngineError> {
        let _span = dlperf_obs::span("distrib.run", dlperf_obs::SpanKind::Work);
        let iteration = self.iteration;
        self.iteration += 1;

        let world = job.world();
        let mut degradation = Vec::new();
        let comm_model = CommModel::new(match &self.topology {
            Some(t) if t.world() == world => t.clone(),
            Some(t) => {
                if iteration == 0 {
                    degradation.push(format!(
                        "topology `{}` is sized for world {}, job world is {world}; \
                         using the derived device topology instead",
                        t.label(),
                        t.world()
                    ));
                }
                Topology::for_device(&self.device, world)
            }
            None => Topology::for_device(&self.device, world),
        });
        if let Some(note) = comm_model.topology().degraded() {
            if iteration == 0 {
                degradation.push(note.to_string());
            }
        }
        let mut per_rank_us = vec![[0.0f64; 4]; world];
        for (rank, rank_us) in per_rank_us.iter_mut().enumerate() {
            let mut engine =
                ExecutionEngine::new(self.device.clone(), self.seed ^ (rank as u64) << 8);
            engine.set_profiling(self.profiling);
            if let Some(inj) = &self.injector {
                let profile = inj.slowdown_profile(rank);
                if !profile.is_identity() {
                    if profile.global != 1.0 && iteration == 0 {
                        degradation
                            .push(format!("rank {rank} straggling ×{:.2}", profile.global));
                    }
                    engine.set_slowdown(profile);
                }
                engine.set_host_jitter(inj.host_jitter_us());
            }
            // The pipeline bubble stretches every segment; ×1 for the
            // other strategies, so the hybrid path is bitwise unchanged.
            let inflation = job.compute_inflation();
            for (i, seg) in job.segments(rank).iter().enumerate() {
                rank_us[i] = engine.run(seg)?.e2e_us * inflation;
            }
        }
        let mut segment_us = [0.0f64; 4];
        for (i, seg) in segment_us.iter_mut().enumerate() {
            *seg = per_rank_us.iter().map(|r| r[i]).fold(0.0, f64::max);
        }

        // Collectives with run-to-run jitter (NCCL timing variance), then
        // the fault plan's timeout/retry model on top.
        let jitter = LogNormal::new(0.0, 0.04).expect("valid lognormal");
        let specs = job.collectives();
        let mut comm_us = [0.0f64; 3];
        let mut collective_retries = 0u32;
        let mut retry_added_us = 0.0f64;
        let mut dropped_collectives = [false; 3];
        for (idx, (c, spec)) in comm_us.iter_mut().zip(&specs).enumerate() {
            let jitter_factor = jitter.sample(&mut self.rng);
            let mut model_us = comm_model.collective_time(spec);
            // A single rank (or an empty payload) exchanges nothing;
            // there is no wire to fail.
            if spec.world <= 1 || spec.bytes_per_rank == 0 {
                *c = model_us * jitter_factor;
                continue;
            }
            if let Some(inj) = &self.injector {
                if let Some(factor) = inj.link_degradation(iteration, idx) {
                    // Reprice on the derated fabric: latency unchanged,
                    // every link's bandwidth scaled down — the α–β
                    // semantics of a flapping or downtrained wire.
                    model_us = CommModel::new(
                        comm_model.topology().scaled_bandwidth(factor),
                    )
                    .collective_time(spec);
                    crate::comms::record_link_fault();
                    degradation.push(format!(
                        "C{} {} link degraded ×{factor:.2} bandwidth",
                        idx + 1,
                        spec.kind
                    ));
                }
            }
            let base = model_us * jitter_factor;
            *c = base;
            if let Some(inj) = &self.injector {
                let outcome =
                    inj.collective_outcome_with_budget(iteration, idx, base, self.retry_deadline_us);
                *c = outcome.total_us;
                collective_retries += outcome.retries;
                retry_added_us += outcome.added_latency_us;
                let deadline_hit = outcome.dropped
                    && self.retry_deadline_us.is_some_and(|d| outcome.added_latency_us >= d);
                if outcome.retries > 0 || deadline_hit {
                    degradation.push(format!(
                        "C{} {} {}: {} retr{}, +{:.0} µs{}",
                        idx + 1,
                        spec.kind,
                        if outcome.dropped { "dropped" } else { "recovered" },
                        outcome.retries,
                        if outcome.retries == 1 { "y" } else { "ies" },
                        outcome.added_latency_us,
                        if deadline_hit { " (retry deadline hit)" } else { "" }
                    ));
                }
                if outcome.dropped {
                    dropped_collectives[idx] = true;
                }
            }
        }

        let c = engine_counters();
        c.runs.incr();
        c.collective_retries.add(u64::from(collective_retries));
        c.dropped_collectives.add(dropped_collectives.iter().filter(|&&d| d).count() as u64);

        Ok(DistributedRunResult {
            e2e_us: segment_us.iter().sum::<f64>() + comm_us.iter().sum::<f64>(),
            segment_us,
            comm_us,
            per_rank_us,
            collective_retries,
            retry_added_us,
            dropped_collectives,
            degradation,
        })
    }

    /// Mean E2E time over `iters` iterations.
    ///
    /// # Errors
    /// Propagates [`EngineError`]s.
    pub fn measure_e2e(&mut self, job: &DistributedDlrm, iters: usize) -> Result<f64, EngineError> {
        assert!(iters > 0, "need at least one iteration");
        let mut total = 0.0;
        for _ in 0..iters {
            total += self.run(job)?.e2e_us;
        }
        Ok(total / iters as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ShardingPlan;
    use dlperf_models::DlrmConfig;

    fn job(world: usize, batch: u64) -> DistributedDlrm {
        let cfg = DlrmConfig::default_config(batch);
        let plan = ShardingPlan::round_robin(cfg.rows_per_table.len(), world);
        DistributedDlrm::new(cfg, plan).unwrap()
    }

    #[test]
    fn run_produces_consistent_timeline() {
        let mut e = MultiGpuEngine::new(DeviceSpec::v100(), 1);
        let r = e.run(&job(4, 2048)).unwrap();
        assert!(r.e2e_us > 0.0);
        let parts: f64 = r.segment_us.iter().sum::<f64>() + r.comm_us.iter().sum::<f64>();
        assert!((r.e2e_us - parts).abs() < 1e-9);
        assert!(r.comm_share() > 0.0 && r.comm_share() < 1.0);
    }

    #[test]
    fn single_gpu_has_no_comm() {
        let mut e = MultiGpuEngine::new(DeviceSpec::v100(), 2);
        let r = e.run(&job(1, 2048)).unwrap();
        assert_eq!(r.comm_us, [0.0; 3]);
    }

    #[test]
    fn skewed_plan_creates_segment_imbalance() {
        let cfg = DlrmConfig::default_config(1024);
        let skewed = DistributedDlrm::new(
            cfg.clone(),
            ShardingPlan::new(vec![0, 0, 0, 0, 0, 0, 0, 1], 2).unwrap(),
        )
        .unwrap();
        let balanced =
            DistributedDlrm::new(cfg, ShardingPlan::round_robin(8, 2)).unwrap();
        let mut e = MultiGpuEngine::new(DeviceSpec::v100(), 3);
        let rs = e.run(&skewed).unwrap();
        let rb = e.run(&balanced).unwrap();
        // S1 contains the embedding forward: the skewed plan must be less
        // balanced there.
        assert!(rs.segment_imbalance(0) > rb.segment_imbalance(0));
    }

    #[test]
    fn healthy_run_reports_no_degradation() {
        let mut e = MultiGpuEngine::new(DeviceSpec::v100(), 5);
        let r = e.run(&job(4, 1024)).unwrap();
        assert_eq!(r.collective_retries, 0);
        assert_eq!(r.retry_added_us, 0.0);
        assert_eq!(r.dropped_collectives, [false; 3]);
        assert!(r.degradation.is_empty());
    }

    #[test]
    fn straggler_rank_inflates_segment_imbalance() {
        let j = job(4, 1024);
        let mut healthy = MultiGpuEngine::new(DeviceSpec::v100(), 6);
        let rh = healthy.run(&j).unwrap();
        // DLRM segments are host-overhead dominated, so a GPU-side straggler
        // needs a large factor before it dominates rank-to-rank noise.
        let mut faulty = MultiGpuEngine::with_faults(
            DeviceSpec::v100(),
            6,
            FaultPlan::healthy(0).with_straggler(0, 10.0),
        );
        let rf = faulty.run(&j).unwrap();
        // The fault is confined to rank 0: every other rank's times are
        // bitwise identical to the healthy run.
        for rank in 1..4 {
            assert_eq!(rf.per_rank_us[rank], rh.per_rank_us[rank], "rank {rank} was touched");
        }
        for seg in 0..4 {
            assert!(rf.per_rank_us[0][seg] > rh.per_rank_us[0][seg], "rank 0 S{seg} not slowed");
        }
        assert!(
            rf.segment_imbalance(1) > rh.segment_imbalance(1),
            "straggler should skew S2: {} vs {}",
            rf.segment_imbalance(1),
            rh.segment_imbalance(1)
        );
        assert!(rf.e2e_us > rh.e2e_us);
        assert!(rf.degradation.iter().any(|d| d.contains("straggling")));
    }

    #[test]
    fn flaky_collectives_add_retry_latency_consistently() {
        let j = job(4, 1024);
        let plan = FaultPlan::healthy(11).with_collective_faults(0.9, 800.0, 3, 40.0);
        let mut e = MultiGpuEngine::with_faults(DeviceSpec::v100(), 7, plan);
        // Accumulate over a few iterations: p=0.9 makes retries certain in
        // expectation without depending on one specific hash value.
        let mut retries = 0;
        for _ in 0..5 {
            let r = e.run(&j).unwrap();
            let parts: f64 = r.segment_us.iter().sum::<f64>() + r.comm_us.iter().sum::<f64>();
            assert!((r.e2e_us - parts).abs() < 1e-9, "timeline must stay consistent");
            assert!(r.e2e_us.is_finite() && r.e2e_us > 0.0);
            retries += r.collective_retries;
            if r.collective_retries > 0 {
                assert!(r.retry_added_us > 0.0);
                assert!(!r.degradation.is_empty());
            }
        }
        assert!(retries > 0, "p=0.9 over 15 collectives must retry at least once");
    }

    #[test]
    fn retry_deadline_caps_flaky_collective_penalties() {
        let j = job(4, 1024);
        let plan = FaultPlan::healthy(11).with_collective_faults(0.9, 800.0, 6, 40.0);

        let mut unbounded = MultiGpuEngine::with_faults(DeviceSpec::v100(), 7, plan.clone());
        let mut capped = MultiGpuEngine::with_faults(DeviceSpec::v100(), 7, plan);
        let deadline = 1000.0;
        capped.set_retry_deadline_us(Some(deadline));
        assert_eq!(capped.retry_deadline_us(), Some(deadline));

        let mut saw_cap = false;
        for _ in 0..5 {
            let ru = unbounded.run(&j).unwrap();
            let rc = capped.run(&j).unwrap();
            // Attempt outcomes are stateless hash draws, so the deadline
            // never *adds* latency — it only truncates.
            assert!(
                rc.retry_added_us <= ru.retry_added_us + 1e-9,
                "deadline added latency: {} vs {}",
                rc.retry_added_us,
                ru.retry_added_us
            );
            // Per-collective penalty can never exceed the deadline.
            for idx in 0..3 {
                assert!(rc.comm_us[idx] <= ru.comm_us[idx] + 1e-9);
            }
            if ru.retry_added_us > rc.retry_added_us + 1e-9 {
                saw_cap = true;
                assert!(
                    rc.degradation.iter().any(|d| d.contains("retry deadline hit")),
                    "capped run must report the deadline: {:?}",
                    rc.degradation
                );
                assert!(rc.dropped_collectives.iter().any(|&d| d));
            }
        }
        assert!(saw_cap, "p=0.9 over 15 collectives must hit the deadline at least once");
    }

    #[test]
    fn no_deadline_is_bitwise_identical_to_the_old_path() {
        let j = job(4, 1024);
        let plan = FaultPlan::healthy(11).with_collective_faults(0.5, 800.0, 3, 40.0);
        let mut a = MultiGpuEngine::with_faults(DeviceSpec::v100(), 7, plan.clone());
        let mut b = MultiGpuEngine::with_faults(DeviceSpec::v100(), 7, plan);
        b.set_retry_deadline_us(Some(1e12)); // effectively unbounded
        for _ in 0..3 {
            let ra = a.run(&j).unwrap();
            let rb = b.run(&j).unwrap();
            assert_eq!(ra.e2e_us.to_bits(), rb.e2e_us.to_bits());
            assert_eq!(ra.collective_retries, rb.collective_retries);
        }
    }

    #[test]
    fn single_gpu_collectives_never_fault() {
        let plan = FaultPlan::healthy(1).with_collective_faults(1.0, 500.0, 3, 10.0);
        let mut e = MultiGpuEngine::with_faults(DeviceSpec::v100(), 8, plan);
        let r = e.run(&job(1, 1024)).unwrap();
        assert_eq!(r.comm_us, [0.0; 3]);
        assert_eq!(r.collective_retries, 0);
        assert_eq!(r.dropped_collectives, [false; 3]);
    }

    #[test]
    fn nvlink_cluster_beats_pcie_cluster_on_comm() {
        let job = job(4, 2048);
        let mut v = MultiGpuEngine::new(DeviceSpec::v100(), 4);
        let mut xp = MultiGpuEngine::new(DeviceSpec::titan_xp(), 4);
        let cv: f64 = v.run(&job).unwrap().comm_us.iter().sum();
        let cxp: f64 = xp.run(&job).unwrap().comm_us.iter().sum();
        assert!(cxp > 3.0 * cv, "PCIe comm {cxp} vs NVLink {cv}");
    }
}
