//! The lockstep multi-GPU engine: simulated measurement of one
//! hybrid-parallel training iteration.
//!
//! Each rank executes its compute segments on its own simulated GPU (with
//! independent noise); every collective is a barrier — it starts when the
//! slowest rank arrives and all ranks leave together, as NCCL-synchronized
//! training behaves.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};

use dlperf_gpusim::{collective, DeviceSpec};
use dlperf_graph::lower::LowerError;
use dlperf_trace::engine::ExecutionEngine;

use crate::builder::DistributedDlrm;

/// Measured timeline of one distributed iteration.
#[derive(Debug, Clone)]
pub struct DistributedRunResult {
    /// End-to-end iteration time (µs).
    pub e2e_us: f64,
    /// Per-segment compute time: `max` over ranks (µs), S1..S4.
    pub segment_us: [f64; 4],
    /// Per-collective time (µs), C1..C3.
    pub comm_us: [f64; 3],
    /// Per-rank per-segment compute times (`[rank][segment]`).
    pub per_rank_us: Vec<[f64; 4]>,
}

impl DistributedRunResult {
    /// Fraction of the iteration spent in collectives.
    pub fn comm_share(&self) -> f64 {
        self.comm_us.iter().sum::<f64>() / self.e2e_us
    }

    /// Compute imbalance of a segment: max / mean over ranks (1 = balanced).
    pub fn segment_imbalance(&self, segment: usize) -> f64 {
        let vals: Vec<f64> = self.per_rank_us.iter().map(|r| r[segment]).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            vals.iter().copied().fold(0.0f64, f64::max) / mean
        }
    }
}

/// A homogeneous cluster of simulated GPUs.
#[derive(Debug)]
pub struct MultiGpuEngine {
    device: DeviceSpec,
    seed: u64,
    rng: StdRng,
    profiling: bool,
}

impl MultiGpuEngine {
    /// Creates a cluster engine of identical `device`s.
    pub fn new(device: DeviceSpec, seed: u64) -> Self {
        MultiGpuEngine { device, seed, rng: StdRng::seed_from_u64(seed ^ 0xc0), profiling: false }
    }

    /// Enables profiler-overhead injection in per-rank runs.
    pub fn set_profiling(&mut self, profiling: bool) {
        self.profiling = profiling;
    }

    /// Measures one distributed iteration.
    ///
    /// # Errors
    /// Propagates lowering errors from malformed segment graphs.
    pub fn run(&mut self, job: &DistributedDlrm) -> Result<DistributedRunResult, LowerError> {
        let world = job.world();
        let mut per_rank_us = vec![[0.0f64; 4]; world];
        for (rank, rank_us) in per_rank_us.iter_mut().enumerate() {
            let mut engine =
                ExecutionEngine::new(self.device.clone(), self.seed ^ (rank as u64) << 8);
            engine.set_profiling(self.profiling);
            for (i, seg) in job.segments(rank).iter().enumerate() {
                rank_us[i] = engine.run(seg)?.e2e_us;
            }
        }
        let mut segment_us = [0.0f64; 4];
        for (i, seg) in segment_us.iter_mut().enumerate() {
            *seg = per_rank_us.iter().map(|r| r[i]).fold(0.0, f64::max);
        }

        // Collectives with run-to-run jitter (NCCL timing variance).
        let jitter = LogNormal::new(0.0, 0.04).expect("valid lognormal");
        let specs = job.collectives();
        let mut comm_us = [0.0f64; 3];
        for (c, spec) in comm_us.iter_mut().zip(&specs) {
            *c = collective::simulate(&self.device, spec) * jitter.sample(&mut self.rng);
        }

        Ok(DistributedRunResult {
            e2e_us: segment_us.iter().sum::<f64>() + comm_us.iter().sum::<f64>(),
            segment_us,
            comm_us,
            per_rank_us,
        })
    }

    /// Mean E2E time over `iters` iterations.
    ///
    /// # Errors
    /// Propagates lowering errors.
    pub fn measure_e2e(&mut self, job: &DistributedDlrm, iters: usize) -> Result<f64, LowerError> {
        assert!(iters > 0, "need at least one iteration");
        let mut total = 0.0;
        for _ in 0..iters {
            total += self.run(job)?.e2e_us;
        }
        Ok(total / iters as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ShardingPlan;
    use dlperf_models::DlrmConfig;

    fn job(world: usize, batch: u64) -> DistributedDlrm {
        let cfg = DlrmConfig::default_config(batch);
        let plan = ShardingPlan::round_robin(cfg.rows_per_table.len(), world);
        DistributedDlrm::new(cfg, plan).unwrap()
    }

    #[test]
    fn run_produces_consistent_timeline() {
        let mut e = MultiGpuEngine::new(DeviceSpec::v100(), 1);
        let r = e.run(&job(4, 2048)).unwrap();
        assert!(r.e2e_us > 0.0);
        let parts: f64 = r.segment_us.iter().sum::<f64>() + r.comm_us.iter().sum::<f64>();
        assert!((r.e2e_us - parts).abs() < 1e-9);
        assert!(r.comm_share() > 0.0 && r.comm_share() < 1.0);
    }

    #[test]
    fn single_gpu_has_no_comm() {
        let mut e = MultiGpuEngine::new(DeviceSpec::v100(), 2);
        let r = e.run(&job(1, 2048)).unwrap();
        assert_eq!(r.comm_us, [0.0; 3]);
    }

    #[test]
    fn skewed_plan_creates_segment_imbalance() {
        let cfg = DlrmConfig::default_config(1024);
        let skewed = DistributedDlrm::new(
            cfg.clone(),
            ShardingPlan::new(vec![0, 0, 0, 0, 0, 0, 0, 1], 2).unwrap(),
        )
        .unwrap();
        let balanced =
            DistributedDlrm::new(cfg, ShardingPlan::round_robin(8, 2)).unwrap();
        let mut e = MultiGpuEngine::new(DeviceSpec::v100(), 3);
        let rs = e.run(&skewed).unwrap();
        let rb = e.run(&balanced).unwrap();
        // S1 contains the embedding forward: the skewed plan must be less
        // balanced there.
        assert!(rs.segment_imbalance(0) > rb.segment_imbalance(0));
    }

    #[test]
    fn nvlink_cluster_beats_pcie_cluster_on_comm() {
        let job = job(4, 2048);
        let mut v = MultiGpuEngine::new(DeviceSpec::v100(), 4);
        let mut xp = MultiGpuEngine::new(DeviceSpec::titan_xp(), 4);
        let cv: f64 = v.run(&job).unwrap().comm_us.iter().sum();
        let cxp: f64 = xp.run(&job).unwrap().comm_us.iter().sum();
        assert!(cxp > 3.0 * cv, "PCIe comm {cxp} vs NVLink {cv}");
    }
}
