//! The distrib crate's contribution to the unified optimization search:
//! sharding-rebalance and parallelism-strategy moves, plus the scorer
//! that prices them through [`DistributedPredictor`].
//!
//! `dlperf-core`'s `search` module owns the beam loop and the graph /
//! device axes; this module plugs in the multi-GPU axis as the search's
//! "extra" type parameter. A [`DistribMove`] is one point of that axis —
//! a `(strategy, plan)` pair — and [`DistribAxis`] implements both hooks:
//!
//! * [`MoveGenerator`]: from a single-GPU candidate it seeds one
//!   round-robin plan per configured `(world, strategy)` cell; from a
//!   distributed candidate it emits single-table rebalances of the
//!   current plan (capped, deterministic order) and strategy switches on
//!   the same plan.
//! * [`ExtraScorer`]: builds the [`DistributedDlrm`] job and prices it
//!   with the collective-aware predictor, memoized through one shared
//!   cache (hits are bitwise identical to misses, so caching is
//!   invisible to the ranking — the same contract as everywhere else).
//!
//! Only `ResizeBatch` graph mutations compose with this axis (the
//! distributed job is rebuilt from its [`DlrmConfig`], so single-graph
//! rewrites like fusion have no distributed counterpart yet); the
//! generator therefore only expands from candidates whose mutation list
//! is batch-only, and the scorer rejects anything else defensively.

use std::sync::Arc;

use dlperf_core::{Candidate, ExtraScorer, GraphMutation, MoveGenerator, DEFAULT_MEMO_CAPACITY};
use dlperf_graph::Graph;
use dlperf_kernels::MemoCache;
use dlperf_models::DlrmConfig;

use crate::builder::{DistributedDlrm, ParallelismStrategy};
use crate::plan::ShardingPlan;
use crate::predictor::DistributedPredictor;

/// One move on the multi-GPU axis: run the job under `strategy` with
/// tables sharded by `plan`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DistribMove {
    /// The parallelism strategy to run under.
    pub strategy: ParallelismStrategy,
    /// The embedding-table sharding plan.
    pub plan: ShardingPlan,
}

impl std::fmt::Display for DistribMove {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} x {}", self.strategy, self.plan)
    }
}

/// The multi-GPU axis of the unified search space.
pub struct DistribAxis {
    config: DlrmConfig,
    predictor: DistributedPredictor,
    worlds: Vec<usize>,
    strategies: Vec<ParallelismStrategy>,
    max_rebalances: usize,
    cache: Arc<MemoCache>,
}

impl DistribAxis {
    /// An axis over `worlds` × `strategies` for the DLRM described by
    /// `config`, priced by `predictor`.
    pub fn new(
        config: DlrmConfig,
        predictor: DistributedPredictor,
        worlds: Vec<usize>,
        strategies: Vec<ParallelismStrategy>,
    ) -> Self {
        DistribAxis {
            config,
            predictor,
            worlds,
            strategies,
            max_rebalances: 8,
            cache: Arc::new(MemoCache::with_capacity(DEFAULT_MEMO_CAPACITY)),
        }
    }

    /// Caps the rebalance neighbors emitted per expansion (builder
    /// style); the cap keeps the branching factor of wide plans bounded.
    pub fn with_max_rebalances(mut self, cap: usize) -> Self {
        self.max_rebalances = cap;
        self
    }

    /// Whether this axis can represent a candidate's mutation list: only
    /// batch resizes translate to the distributed job builder.
    fn composes_with(mutations: &[GraphMutation]) -> bool {
        mutations.iter().all(|m| matches!(m, GraphMutation::ResizeBatch(_)))
    }

    /// The candidate's effective batch size under this axis.
    fn batch_of(&self, mutations: &[GraphMutation]) -> u64 {
        mutations
            .iter()
            .rev()
            .find_map(|m| match m {
                GraphMutation::ResizeBatch(b) => Some(*b),
                _ => None,
            })
            .unwrap_or(self.config.batch_size)
    }
}

impl MoveGenerator<DistribMove> for DistribAxis {
    fn expand(&self, _graph: &Graph, cand: &Candidate<DistribMove>) -> Vec<Candidate<DistribMove>> {
        if !Self::composes_with(&cand.mutations) {
            return Vec::new();
        }
        let tables = self.config.rows_per_table.len();
        let batch = self.batch_of(&cand.mutations);
        let mut out = Vec::new();
        let mut child = |m: DistribMove| {
            let mut c = cand.clone();
            c.extra = Some(m);
            out.push(c);
        };
        match &cand.extra {
            None => {
                // Seed moves: one round-robin plan per (world, strategy)
                // cell whose world divides the batch.
                for &w in &self.worlds {
                    if w == 0 || tables < w || !batch.is_multiple_of(w as u64) {
                        continue;
                    }
                    for &s in &self.strategies {
                        child(DistribMove { strategy: s, plan: ShardingPlan::round_robin(tables, w) });
                    }
                }
            }
            Some(cur) => {
                // Rebalance the current plan one table at a time…
                for plan in cur.plan.rebalance_moves().into_iter().take(self.max_rebalances) {
                    child(DistribMove { strategy: cur.strategy, plan });
                }
                // …and switch strategies on the same plan.
                for &s in &self.strategies {
                    if s != cur.strategy {
                        child(DistribMove { strategy: s, plan: cur.plan.clone() });
                    }
                }
            }
        }
        out
    }
}

impl ExtraScorer<DistribMove> for DistribAxis {
    fn price(&self, mutations: &[GraphMutation], extra: &DistribMove) -> Result<f64, String> {
        if !Self::composes_with(mutations) {
            return Err("distributed axis only composes with batch resizes".into());
        }
        let mut config = self.config.clone();
        config.batch_size = self.batch_of(mutations);
        let job = DistributedDlrm::new(config, extra.plan.clone())
            .map_err(|e| e.to_string())?
            .with_strategy(extra.strategy);
        self.predictor
            .predict_memoized(&job, &self.cache)
            .map(|p| p.e2e_us)
            .map_err(|e| format!("lowering failed: {e}"))
    }
}
