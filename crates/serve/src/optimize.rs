//! The served face of the unified optimization search.
//!
//! `Op::Optimize` runs [`dlperf_core::OptimizationSearch`] over the
//! server's calibrated pipelines: the request picks the model, the
//! baseline batch, the device axis, and (optionally) the batch-resize
//! targets and search knobs; the answer is the search's top-k ranking
//! with predicted deltas and confidence bands.
//!
//! Determinism contract, inherited from the search: an admitted answer is
//! bitwise identical to running `OptimizationSearch` offline over the
//! same pipelines, graph, and knobs — admission, deadlines, and worker
//! chaos change *whether* the request is answered, never *what* the
//! ranking says. The server always prices with one thread and a fresh
//! per-request search (the search builds its own memo caches), so no
//! cross-request state can leak into the bits.

use dlperf_core::pipeline::Pipeline;
use dlperf_core::{GraphMoves, NoExtra, OptimizationSearch, SearchConfig, SearchError};
use dlperf_runtime::CancellationToken;

use crate::api::{Body, ErrorCode, OptimizationBody, OptimizationEntry, OptimizeQuery};
use crate::server::Shared;

/// Server-side caps on the client-tunable search knobs: a hostile query
/// may not turn one request into an unbounded search.
const MAX_BEAM_WIDTH: usize = 64;
const MAX_DEPTH: usize = 6;
const MAX_TOP_K: usize = 100;
const DEFAULT_BEAM_WIDTH: usize = 8;
const DEFAULT_DEPTH: usize = 2;
const DEFAULT_TOP_K: usize = 10;

/// Runs one optimization-search query. Always returns a body: an
/// [`OptimizationBody`] on success, a typed error for unknown names, bad
/// batches, or an expired deadline.
pub(crate) fn run(shared: &Shared, q: &OptimizeQuery, token: &CancellationToken) -> Body {
    let Some(entry) = shared.models.get(&q.model) else {
        return Body::error(ErrorCode::NotFound, format!("unknown model `{}`", q.model));
    };
    if q.batch == 0 || q.batch > (1 << 24) {
        return Body::error(
            ErrorCode::BadRequest,
            format!("batch {} out of range [1, 2^24]", q.batch),
        );
    }

    // Resolve the device axis exactly like the recommender: canonical
    // names, set-dedup in first-occurrence order so aliases and repeats
    // never widen the axis.
    let requested_devices = q.devices.as_deref().unwrap_or_default();
    let device_names: Vec<String> = if requested_devices.is_empty() {
        let mut names: Vec<String> = shared.engines.keys().cloned().collect();
        names.sort();
        names
    } else {
        let mut names = Vec::new();
        for d in requested_devices {
            match shared.engine(d) {
                Some(e) => names.push(e.pipeline.device().name.clone()),
                None => {
                    return Body::error(ErrorCode::NotFound, format!("unknown device `{d}`"));
                }
            }
        }
        let mut seen = std::collections::HashSet::new();
        names.retain(|n| seen.insert(n.clone()));
        names
    };
    let pipelines: Vec<Pipeline> = device_names
        .iter()
        .map(|n| shared.engine(n).expect("resolved above").pipeline.clone())
        .collect();

    let graph = entry.graph(q.batch);
    let base = match graph.as_ref() {
        Ok(g) => g,
        Err(e) => {
            return Body::error(ErrorCode::BadRequest, format!("graph preparation failed: {e}"));
        }
    };

    let config = SearchConfig {
        beam_width: q.beam_width.unwrap_or(DEFAULT_BEAM_WIDTH).clamp(1, MAX_BEAM_WIDTH),
        max_depth: q.max_depth.unwrap_or(DEFAULT_DEPTH).clamp(1, MAX_DEPTH),
        top_k: q.top_k.unwrap_or(DEFAULT_TOP_K).clamp(1, MAX_TOP_K),
        ..SearchConfig::default()
    };
    let search = OptimizationSearch::<NoExtra>::new(&pipelines)
        .with_config(config)
        .with_graph_moves(GraphMoves {
            batches: q.batches.clone().unwrap_or_default(),
            ..GraphMoves::default()
        })
        .with_token(token.clone());
    match search.run(base) {
        Ok(report) => Body::Optimization(OptimizationBody {
            baseline_e2e_us: report.baseline_e2e_us,
            incremental_frac: report.incremental_frac(),
            evals: report.evals as u64,
            prunes: report.prunes as u64,
            ranked: report
                .ranked
                .into_iter()
                .map(|sc| OptimizationEntry {
                    description: sc.description,
                    e2e_us: sc.e2e_us,
                    delta_us: sc.delta_us,
                    speedup: sc.speedup,
                    ci_low_us: sc.ci_low_us,
                    ci_high_us: sc.ci_high_us,
                    incremental: sc.incremental,
                })
                .collect(),
        }),
        Err(SearchError::Cancelled) => {
            Body::error(ErrorCode::DeadlineExceeded, "deadline expired mid-search")
        }
        Err(e) => Body::error(ErrorCode::Internal, format!("optimization search failed: {e}")),
    }
}
