//! `dlperf-serve` — the prediction service daemon.
//!
//! Speaks the newline-delimited JSON protocol of `dlperf_serve::api` over
//! three interchangeable transports:
//!
//! * **stdio** (default): one request line on stdin, one response line on
//!   stdout; EOF exits cleanly. This is the transport the chaos CI job
//!   replays corpora through.
//! * **TCP** (`--listen HOST:PORT`): thread per connection.
//! * **Unix socket** (`--uds PATH`, Unix only): thread per connection.
//!
//! ```text
//! dlperf-serve --models dlrm-default,dcn --devices v100,p100 \
//!              --workers 4 --queue 256 --deadline-ms 2000
//! echo '{"id": 1, "op": {"Predict": {"model": "dlrm-default", "batch": 2048, "device": "v100"}}}' | dlperf-serve
//! ```
//!
//! Set `DLPERF_SELF_TRACE=/path.json` to record the server's own spans
//! through `dlperf-obs` and write a Chrome trace the `trace` crate can
//! re-ingest on exit.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use dlperf_core::pipeline::Pipeline;
use dlperf_faults::FaultPlan;
use dlperf_gpusim::DeviceSpec;
use dlperf_kernels::CalibrationEffort;
use dlperf_models::zoo;
use dlperf_serve::api::{read_bounded_line, LineRead, MAX_DEADLINE_MS};
use dlperf_serve::{Server, ServerConfig};
use dlperf_trace::ChromeTraceSink;

struct Opts {
    models: Vec<String>,
    devices: Vec<String>,
    effort: CalibrationEffort,
    listen: Option<String>,
    uds: Option<String>,
    chaos: Option<FaultPlan>,
    cfg: ServerConfig,
}

const USAGE: &str = "\
dlperf-serve: overload-safe prediction-as-a-service

USAGE:
    dlperf-serve [OPTIONS]

OPTIONS:
    --models a,b,c          Catalog models to serve [default: dlrm-default]
    --devices a,b,c         Devices to calibrate and serve [default: v100]
    --effort quick|full     Calibration effort [default: quick]
    --listen HOST:PORT      Also serve TCP connections
    --uds PATH              Also serve a Unix socket (Unix only)
    --workers N             Worker threads [default: 4]
    --queue N               Admission queue capacity [default: 256]
    --deadline-ms F         Default per-request deadline [default: 2000]
    --latency-budget-ms F   Admission estimated-wait budget [default: 10000]
    --memo-cap N            Per-device kernel-memo capacity [default: 262144]
    --prepared-cap N        Per-model prepared-graph capacity [default: 256]
    --base-batch N          Batch the catalog graphs are built at [default: 2048]
    --chaos SEED,P_PANIC,P_KILL,P_HANG
                            Inject worker faults (testing/drills)
    -h, --help              This help

Requests are newline-delimited JSON on stdin; responses on stdout.
Set DLPERF_SELF_TRACE=/path.json to record a self-trace.";

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        models: vec!["dlrm-default".to_string()],
        devices: vec!["v100".to_string()],
        effort: CalibrationEffort::Quick,
        listen: None,
        uds: None,
        chaos: None,
        cfg: ServerConfig::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().ok_or_else(|| format!("{flag} needs a value (see --help)"))
        };
        match arg.as_str() {
            "--models" => opts.models = split_list(&value("--models")?),
            "--devices" => opts.devices = split_list(&value("--devices")?),
            "--effort" => {
                opts.effort = match value("--effort")?.as_str() {
                    "quick" => CalibrationEffort::Quick,
                    "full" => CalibrationEffort::Full,
                    other => return Err(format!("unknown effort `{other}` (quick|full)")),
                }
            }
            "--listen" => opts.listen = Some(value("--listen")?),
            "--uds" => opts.uds = Some(value("--uds")?),
            "--workers" => opts.cfg.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue" => opts.cfg.queue_capacity = parse_num(&value("--queue")?, "--queue")?,
            "--deadline-ms" => {
                let ms: f64 = parse_num(&value("--deadline-ms")?, "--deadline-ms")?;
                if !ms.is_finite() || !(1.0..=MAX_DEADLINE_MS).contains(&ms) {
                    return Err(format!("--deadline-ms must be in [1, {MAX_DEADLINE_MS:.0}]"));
                }
                opts.cfg.default_deadline = Duration::from_secs_f64(ms / 1000.0);
            }
            "--latency-budget-ms" => {
                opts.cfg.latency_budget_ms =
                    parse_num(&value("--latency-budget-ms")?, "--latency-budget-ms")?;
            }
            "--memo-cap" => {
                opts.cfg.memo_capacity = parse_num(&value("--memo-cap")?, "--memo-cap")?;
            }
            "--prepared-cap" => {
                opts.cfg.prepared_capacity =
                    parse_num(&value("--prepared-cap")?, "--prepared-cap")?;
            }
            "--base-batch" => {
                opts.cfg.base_batch = parse_num(&value("--base-batch")?, "--base-batch")?;
            }
            "--chaos" => {
                let spec = value("--chaos")?;
                let parts: Vec<&str> = spec.split(',').collect();
                if parts.len() != 4 {
                    return Err("--chaos wants SEED,P_PANIC,P_KILL,P_HANG".to_string());
                }
                let seed: u64 = parse_num(parts[0], "--chaos seed")?;
                let p: f64 = parse_num(parts[1], "--chaos p_panic")?;
                let k: f64 = parse_num(parts[2], "--chaos p_kill")?;
                let h: f64 = parse_num(parts[3], "--chaos p_hang")?;
                opts.chaos = Some(FaultPlan::healthy(seed).with_worker_faults(p, k, h));
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}` (see --help)")),
        }
    }
    Ok(opts)
}

fn split_list(s: &str) -> Vec<String> {
    s.split(',').map(str::trim).filter(|p| !p.is_empty()).map(str::to_string).collect()
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.trim().parse().map_err(|_| format!("{flag}: cannot parse `{s}`"))
}

fn main() {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dlperf-serve: {e}");
            std::process::exit(2);
        }
    };

    let self_trace = std::env::var("DLPERF_SELF_TRACE").ok();
    let sink = self_trace.as_ref().map(|_| {
        let sink = ChromeTraceSink::install("dlperf-serve", "host");
        dlperf_obs::enable();
        sink
    });

    // Analysis track, once at boot: calibrate one pipeline per device
    // against the served catalog graphs.
    let workloads: Vec<_> = opts
        .models
        .iter()
        .map(|m| {
            zoo::build(m, opts.cfg.base_batch).unwrap_or_else(|e| {
                eprintln!("dlperf-serve: {e}");
                std::process::exit(2);
            })
        })
        .collect();
    let mut pipelines = Vec::new();
    for name in &opts.devices {
        let Some(device) = DeviceSpec::by_name(name) else {
            eprintln!("dlperf-serve: unknown device `{name}`");
            std::process::exit(2);
        };
        eprintln!("calibrating {} ...", device.name);
        pipelines.push(Pipeline::analyze(&device, &workloads, opts.effort, 15, 11));
    }

    let model_names: Vec<&str> = opts.models.iter().map(String::as_str).collect();
    let server = match Server::start(pipelines, &model_names, opts.cfg.clone(), opts.chaos) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("dlperf-serve: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "serving {} on {} (workers {}, queue {}, deadline {:?})",
        opts.models.join(","),
        server.devices().join(","),
        opts.cfg.workers,
        opts.cfg.queue_capacity,
        opts.cfg.default_deadline,
    );

    if let Some(addr) = &opts.listen {
        match std::net::TcpListener::bind(addr) {
            Ok(listener) => {
                eprintln!("listening on tcp {addr}");
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    for conn in listener.incoming().flatten() {
                        let server = Arc::clone(&server);
                        std::thread::spawn(move || serve_stream(&server, conn));
                    }
                });
            }
            Err(e) => {
                eprintln!("dlperf-serve: cannot bind {addr}: {e}");
                std::process::exit(2);
            }
        }
    }

    #[cfg(unix)]
    if let Some(path) = &opts.uds {
        std::fs::remove_file(path).ok();
        match std::os::unix::net::UnixListener::bind(path) {
            Ok(listener) => {
                eprintln!("listening on unix {path}");
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    for conn in listener.incoming().flatten() {
                        let server = Arc::clone(&server);
                        std::thread::spawn(move || serve_stream(&server, conn));
                    }
                });
            }
            Err(e) => {
                eprintln!("dlperf-serve: cannot bind {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    #[cfg(not(unix))]
    if opts.uds.is_some() {
        eprintln!("dlperf-serve: --uds is only supported on Unix");
        std::process::exit(2);
    }

    // The stdio transport doubles as the lifetime anchor: EOF on stdin is
    // a graceful shutdown, whatever the listeners are doing.
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut reader = stdin.lock();
    loop {
        let reply = match read_bounded_line(&mut reader) {
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::Oversized) => server.reject_line("request line exceeds size cap"),
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                server.submit_json(&line)
            }
        };
        let mut out = stdout.lock();
        if writeln!(out, "{reply}").and_then(|()| out.flush()).is_err() {
            break;
        }
    }

    let stats = server.stats();
    eprintln!(
        "shutting down: {} completed, {} shed, {} deadline-expired, {} panics contained",
        stats.completed,
        stats.shed_queue + stats.shed_latency,
        stats.deadline_expired,
        stats.panics,
    );
    if let (Some(path), Some(sink)) = (self_trace, sink) {
        dlperf_obs::disable();
        dlperf_obs::flush();
        dlperf_obs::clear_sinks();
        match sink.write_json(&path) {
            Ok(()) => eprintln!("self-trace written to {path}"),
            Err(e) => eprintln!("self-trace write failed: {e}"),
        }
    }
}

/// Runs the line protocol over one bidirectional byte stream. Lines are
/// read through the bounded reader, so a peer streaming gigabytes with no
/// newline gets a 400 and a drain, never an unbounded buffer.
fn serve_stream<S: std::io::Read + Write>(server: &Server, stream: S)
where
    for<'a> &'a S: std::io::Read + Write,
{
    let mut reader = std::io::BufReader::new(&stream);
    let mut writer = &stream;
    loop {
        let reply = match read_bounded_line(&mut reader) {
            Err(_) | Ok(LineRead::Eof) => break,
            Ok(LineRead::Oversized) => server.reject_line("request line exceeds size cap"),
            Ok(LineRead::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                server.submit_json(&line)
            }
        };
        if writeln!(writer, "{reply}").and_then(|()| writer.flush()).is_err() {
            break;
        }
    }
}
