//! The objective-driven configuration recommender.
//!
//! Turns a device catalog plus latency/memory bounds into a ranked list of
//! `(device, batch, sharding)` configurations, each with a reasoning
//! string saying *why* it ranks where it does and each rejection saying
//! *why not*. Prices come from the same bounded caches and cancellable
//! walks as `Op::Predict`, so a recommendation is exactly as deterministic
//! as the predictions it is built from.

use dlperf_core::predictor::PredictError;
use dlperf_distrib::{enumerate_matrix, sweep_shardings, DistributedPredictor, ParallelismStrategy};
use dlperf_graph::memory;
use dlperf_models::zoo;
use dlperf_runtime::CancellationToken;

use crate::api::{
    Body, ConfigChoice, ErrorCode, Objective, RecommendQuery, RecommendationBody, RejectedConfig,
};
use crate::server::Shared;

/// Default batch ladder when the query names none.
const DEFAULT_BATCHES: [u64; 5] = [256, 512, 1024, 2048, 4096];

/// Runs one recommendation query. Always returns a body: a
/// [`RecommendationBody`] on success, a typed error for unknown names or
/// an expired deadline.
pub(crate) fn run(shared: &Shared, q: &RecommendQuery, token: &CancellationToken) -> Body {
    let Some(entry) = shared.models.get(&q.model) else {
        return Body::error(ErrorCode::NotFound, format!("unknown model `{}`", q.model));
    };
    let device_names: Vec<String> = if q.devices.is_empty() {
        let mut names: Vec<String> = shared.engines.keys().cloned().collect();
        names.sort();
        names
    } else {
        let mut names = Vec::new();
        for d in &q.devices {
            match shared.engine(d) {
                Some(e) => names.push(e.pipeline.device().name.clone()),
                None => {
                    return Body::error(ErrorCode::NotFound, format!("unknown device `{d}`"));
                }
            }
        }
        // Set-dedup in first-occurrence order: aliases of one device, or
        // non-adjacent repeats, must not be priced (and ranked) twice.
        let mut seen = std::collections::HashSet::new();
        names.retain(|n| seen.insert(n.clone()));
        names
    };
    let batches: &[u64] = if q.batches.is_empty() { &DEFAULT_BATCHES } else { &q.batches };

    // The multi-GPU axes resolve up front: strategy names are a closed
    // vocabulary (unknown ones are a typed error, like unknown devices),
    // while topology names always resolve — unknown ones price on the
    // most conservative shape and surface as degraded candidates.
    let mut strategies: Vec<ParallelismStrategy> = Vec::new();
    for name in q.strategies.as_deref().unwrap_or_default() {
        match ParallelismStrategy::from_name(name) {
            Some(s) if !strategies.contains(&s) => strategies.push(s),
            Some(_) => {}
            None => {
                return Body::error(
                    ErrorCode::NotFound,
                    format!("unknown parallelism strategy `{name}`"),
                );
            }
        }
    }
    if strategies.is_empty() {
        strategies.push(ParallelismStrategy::Hybrid);
    }
    let requested_topologies = q.topologies.as_deref().unwrap_or_default();
    let topology_names: Vec<&str> = if requested_topologies.is_empty() {
        vec!["auto"]
    } else {
        requested_topologies.iter().map(String::as_str).collect()
    };

    let mut ranked: Vec<ConfigChoice> = Vec::new();
    let mut rejected: Vec<RejectedConfig> = Vec::new();

    for device_name in &device_names {
        let engine = shared.engine(device_name).expect("resolved above");
        let device = engine.pipeline.device().clone();
        for &batch in batches {
            if token.is_cancelled() {
                return Body::error(ErrorCode::DeadlineExceeded, "deadline expired mid-search");
            }
            if batch == 0 || batch > (1 << 24) {
                rejected.push(RejectedConfig {
                    device: device_name.clone(),
                    batch,
                    reason: "batch out of range [1, 2^24]".into(),
                });
                continue;
            }
            let graph = entry.graph(batch);
            let g = match graph.as_ref() {
                Ok(g) => g,
                Err(e) => {
                    rejected.push(RejectedConfig {
                        device: device_name.clone(),
                        batch,
                        reason: format!("graph preparation failed: {e}"),
                    });
                    continue;
                }
            };
            let report = memory::estimate(g);
            if !report.fits(device.memory_bytes, 0.1) {
                rejected.push(RejectedConfig {
                    device: device_name.clone(),
                    batch,
                    reason: format!(
                        "needs {:.1} GiB, device has {:.1} GiB (10% reserved)",
                        report.peak_bytes() as f64 / (1u64 << 30) as f64,
                        device.memory_bytes as f64 / (1u64 << 30) as f64
                    ),
                });
                continue;
            }
            match engine.pipeline.predict_memoized_cancellable(g, &engine.cache, token) {
                Ok(p) => {
                    push_candidate(
                        &mut ranked,
                        &mut rejected,
                        q,
                        device_name,
                        batch,
                        None,
                        p.e2e_us,
                    );
                }
                Err(PredictError::Cancelled) => {
                    return Body::error(
                        ErrorCode::DeadlineExceeded,
                        "deadline expired mid-search",
                    );
                }
                Err(PredictError::Lower(e)) => {
                    rejected.push(RejectedConfig {
                        device: device_name.clone(),
                        batch,
                        reason: format!("lowering failed: {e}"),
                    });
                }
            }

            // The multi-GPU axis, for DLRM models when world sizes were
            // asked for.
            if !q.world_sizes.is_empty() {
                if let Some(config) = zoo::dlrm_config(&q.model, batch) {
                    let predictor = DistributedPredictor::new(
                        engine.pipeline.predictor().clone(),
                        device.clone(),
                    );
                    let scenarios = enumerate_matrix(
                        config.rows_per_table.len(),
                        &q.world_sizes,
                        &strategies,
                        &topology_names,
                        &device,
                    );
                    let outcome =
                        sweep_shardings(&predictor, &config, &scenarios, 1, token);
                    if token.is_cancelled() {
                        return Body::error(
                            ErrorCode::DeadlineExceeded,
                            "deadline expired mid-search",
                        );
                    }
                    for result in outcome.results.iter().flatten() {
                        // A degraded cell still ranks, but says so.
                        let label = match &result.degraded {
                            Some(d) => format!("{} (degraded: {d})", result.label),
                            None => result.label.clone(),
                        };
                        match (&result.prediction, &result.error) {
                            (Some(p), _) => push_candidate(
                                &mut ranked,
                                &mut rejected,
                                q,
                                device_name,
                                batch,
                                Some(label),
                                p.e2e_us,
                            ),
                            (None, Some(e)) => rejected.push(RejectedConfig {
                                device: device_name.clone(),
                                batch,
                                reason: format!("sharding {}: {e}", result.label),
                            }),
                            (None, None) => {}
                        }
                    }
                }
            }
        }
    }

    sort_ranked(&mut ranked, q.objective);
    for (position, choice) in ranked.iter_mut().enumerate() {
        choice.reasoning = format!("rank {}: {}", position + 1, choice.reasoning);
    }
    let recommended = ranked.first().cloned();
    Body::Recommendation(RecommendationBody { recommended, ranked, rejected })
}

#[allow(clippy::too_many_arguments)]
fn push_candidate(
    ranked: &mut Vec<ConfigChoice>,
    rejected: &mut Vec<RejectedConfig>,
    q: &RecommendQuery,
    device: &str,
    batch: u64,
    sharding: Option<String>,
    e2e_us: f64,
) {
    let latency_ms = e2e_us / 1000.0;
    let samples_per_sec = if e2e_us > 0.0 { batch as f64 * 1e6 / e2e_us } else { 0.0 };
    let config_label = match &sharding {
        Some(s) => format!("batch {batch} on {device} sharded {s}"),
        None => format!("batch {batch} on {device}"),
    };
    if let Some(bound) = q.max_latency_ms {
        if latency_ms > bound {
            rejected.push(RejectedConfig {
                device: device.to_string(),
                batch,
                reason: format!(
                    "{config_label}: predicted {latency_ms:.2} ms exceeds the {bound:.2} ms bound"
                ),
            });
            return;
        }
    }
    let bound_note = match q.max_latency_ms {
        Some(bound) => format!(", within the {bound:.2} ms bound"),
        None => String::new(),
    };
    ranked.push(ConfigChoice {
        device: device.to_string(),
        batch,
        sharding,
        e2e_us,
        samples_per_sec,
        reasoning: format!(
            "{config_label} predicts {latency_ms:.2} ms/batch ({samples_per_sec:.0} samples/s){bound_note}"
        ),
    });
}

/// Deterministic objective ordering with a stable `(device, batch,
/// sharding)` tie-break, so equal predictions rank identically run-to-run.
fn sort_ranked(ranked: &mut [ConfigChoice], objective: Objective) {
    ranked.sort_by(|a, b| {
        let primary = match objective {
            Objective::Latency => {
                a.e2e_us.partial_cmp(&b.e2e_us).unwrap_or(std::cmp::Ordering::Equal)
            }
            Objective::Throughput => b
                .samples_per_sec
                .partial_cmp(&a.samples_per_sec)
                .unwrap_or(std::cmp::Ordering::Equal),
        };
        primary
            .then_with(|| a.device.cmp(&b.device))
            .then_with(|| a.batch.cmp(&b.batch))
            .then_with(|| a.sharding.cmp(&b.sharding))
    });
}
