//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! One [`Request`] per line in, one [`Response`] per line out, matched by
//! `id`. The same shapes travel over stdin/stdout, TCP, and Unix sockets;
//! [`crate::Server::submit_json`] is the single entry point all three
//! transports share, so every transport gets identical admission,
//! deadline, and error behavior.
//!
//! Hostile input is screened *before* the JSON parser sees it
//! ([`prescreen`]): the vendored parser recurses on nested containers, so
//! a 10 MB line of `[[[[…` would otherwise be a stack-overflow request.

use dlperf_trace::screen;
use serde::{Deserialize, Serialize};

/// Longest request line the server will parse, in bytes.
pub const MAX_LINE_BYTES: usize = 256 * 1024;
/// Deepest container nesting the server will parse.
pub const MAX_JSON_DEPTH: usize = 64;
/// Largest per-request deadline honored, in milliseconds (one day).
/// Client deadlines are clamped here rather than fed to `Duration`
/// arithmetic raw: `Duration::from_secs_f64` panics on values that
/// overflow it, and a deadline is a bound, not a trusted input.
pub const MAX_DEADLINE_MS: f64 = 86_400_000.0;

/// One request envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed back in the response.
    pub id: u64,
    /// What to do.
    pub op: Op,
}

/// The operations the server understands.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Op {
    /// Price one `(model, batch, device)` configuration.
    Predict(PredictQuery),
    /// Rank candidate configurations against an objective.
    Recommend(RecommendQuery),
    /// Search the unified what-if space for the top-k optimizations.
    Optimize(OptimizeQuery),
    /// Server counters and cache statistics.
    Stats,
    /// Liveness probe.
    Ping,
}

/// A single-prediction query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictQuery {
    /// Model name from the catalog (`dlperf_models::zoo::MODEL_NAMES`).
    pub model: String,
    /// Batch size to price.
    pub batch: u64,
    /// Device name (accepts the `DeviceSpec::by_name` aliases).
    pub device: String,
    /// Per-request deadline; the server default applies when absent.
    pub deadline_ms: Option<f64>,
}

/// What the recommender should optimize for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Lowest predicted per-batch time.
    Latency,
    /// Highest predicted samples per second.
    Throughput,
}

/// A configuration-search query: which `(device, batch, sharding)` should
/// I train on, given latency bounds and an objective?
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecommendQuery {
    /// Model name from the catalog.
    pub model: String,
    /// Candidate batch sizes; empty means a default ladder.
    pub batches: Vec<u64>,
    /// Candidate device names; empty means every device the server holds.
    pub devices: Vec<String>,
    /// Upper bound on predicted per-batch latency, when set.
    pub max_latency_ms: Option<f64>,
    /// DLRM sharding world sizes to evaluate (ignored for non-DLRM
    /// models); empty skips the sharding axis.
    pub world_sizes: Vec<usize>,
    /// Parallelism strategies for the multi-GPU axis (`"hybrid"`, `"dp"`,
    /// `"mp"`, `"pp"`); absent or empty means hybrid only. Only used with
    /// `world_sizes`. Unknown names are a typed `NotFound` error.
    /// (`Option` rather than a bare `Vec` so the field can be omitted
    /// from the request JSON — the vendored serde only defaults `Option`
    /// fields.)
    pub strategies: Option<Vec<String>>,
    /// Interconnect topologies to price collectives on (`"auto"`,
    /// `"nvlink"`, `"pcie"`, `"ib<N>x<G>"`); absent or empty means the
    /// device-derived default. Unknown names price conservatively and the
    /// candidate is labeled degraded — never silently dropped.
    pub topologies: Option<Vec<String>>,
    /// Ranking objective.
    pub objective: Objective,
    /// Per-request deadline; the server default applies when absent.
    pub deadline_ms: Option<f64>,
}

/// An optimization-search query: which combination of graph rewrites,
/// batch changes, and device moves buys back the most iteration time?
/// Served by the same beam / branch-and-bound search as the offline
/// `dlperf_core::OptimizationSearch`, so an admitted answer is bitwise
/// identical to running that search offline on the same inputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizeQuery {
    /// Model name from the catalog.
    pub model: String,
    /// Batch size the search starts from (the baseline configuration).
    pub batch: u64,
    /// Device names forming the device axis; the first is the baseline
    /// device. Absent or empty means every device the server holds,
    /// sorted by name. (`Option` rather than a bare `Vec` so the field
    /// can be omitted from the request JSON — the vendored serde only
    /// defaults `Option` fields.)
    pub devices: Option<Vec<String>>,
    /// Batch sizes `ResizeBatch` moves may target; absent or empty skips
    /// the batch-resize axis.
    pub batches: Option<Vec<u64>>,
    /// Beam width (candidates expanded per depth); server default 8.
    pub beam_width: Option<usize>,
    /// Maximum moves composed on one path; server default 2.
    pub max_depth: Option<usize>,
    /// Entries in the ranked answer; server default 10.
    pub top_k: Option<usize>,
    /// Per-request deadline; the server default applies when absent.
    pub deadline_ms: Option<f64>,
}

/// One ranked optimization in an [`OptimizationBody`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizationEntry {
    /// Human-readable move list, e.g. `"fuse embedding bags [on P100]"`.
    pub description: String,
    /// Predicted end-to-end iteration time (µs).
    pub e2e_us: f64,
    /// `baseline − e2e`: microseconds bought back per iteration.
    pub delta_us: f64,
    /// `baseline / e2e` (> 1 = faster than baseline).
    pub speedup: f64,
    /// Lower edge of the one-sigma confidence band (µs), when the pricing
    /// device's kernel models kept calibration error statistics.
    pub ci_low_us: Option<f64>,
    /// Upper edge of the one-sigma confidence band (µs).
    pub ci_high_us: Option<f64>,
    /// Whether the incremental predictor served this evaluation without a
    /// full-walk fallback.
    pub incremental: bool,
}

/// The optimization search's answer: ranked "optimizations worth doing".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizationBody {
    /// Predicted time of the unmodified baseline (µs).
    pub baseline_e2e_us: f64,
    /// Top-k candidates, fastest predicted time first.
    pub ranked: Vec<OptimizationEntry>,
    /// Candidates priced.
    pub evals: u64,
    /// Candidates cut by the branch-and-bound bound.
    pub prunes: u64,
    /// Fraction of evaluations served by the incremental predictor.
    pub incremental_frac: f64,
}

/// One response envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// The request's correlation id (0 when the request was unparseable).
    pub id: u64,
    /// The outcome.
    pub body: Body,
}

/// Response payloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Body {
    /// A priced configuration.
    Prediction(PredictionBody),
    /// A ranked configuration search.
    Recommendation(RecommendationBody),
    /// A ranked optimization search.
    Optimization(OptimizationBody),
    /// Server counters.
    Stats(StatsBody),
    /// Liveness answer.
    Pong,
    /// Any failure, including sheds and deadline misses.
    Error(ErrorBody),
}

/// A priced configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionBody {
    /// Predicted E2E per-batch time (µs).
    pub e2e_us: f64,
    /// Predicted GPU active time (µs).
    pub active_us: f64,
    /// Final CPU clock (µs).
    pub cpu_us: f64,
    /// Final GPU clock (µs).
    pub gpu_us: f64,
    /// Predicted GPU utilization.
    pub utilization: f64,
    /// Kernels priced by the roofline fallback rather than a calibrated
    /// model.
    pub degraded_kernels: usize,
    /// `"calibrated"`, or `"degraded"` when the circuit breaker answered
    /// from the roofline twin (or any kernel lacked a calibrated model).
    pub confidence: String,
}

/// One candidate configuration in a recommendation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigChoice {
    /// Device name.
    pub device: String,
    /// Batch size.
    pub batch: u64,
    /// Sharding-plan label (e.g. `"w4/round_robin"`) when the candidate
    /// is a multi-GPU plan; absent for single-GPU candidates.
    pub sharding: Option<String>,
    /// Predicted per-batch time (µs).
    pub e2e_us: f64,
    /// Predicted training throughput.
    pub samples_per_sec: f64,
    /// Why this candidate ranks where it does.
    pub reasoning: String,
}

/// A candidate the recommender ruled out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RejectedConfig {
    /// Device name.
    pub device: String,
    /// Batch size.
    pub batch: u64,
    /// Why it was rejected (memory, latency bound, build failure).
    pub reason: String,
}

/// The recommender's answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecommendationBody {
    /// The top-ranked feasible configuration, when any exists.
    pub recommended: Option<ConfigChoice>,
    /// Every feasible configuration, best first.
    pub ranked: Vec<ConfigChoice>,
    /// Every infeasible configuration with its reason.
    pub rejected: Vec<RejectedConfig>,
}

/// Server counters, cache statistics, and breaker state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsBody {
    /// Requests admitted past the queue.
    pub admitted: u64,
    /// Requests answered (any body, including errors).
    pub completed: u64,
    /// Requests shed because the queue was full.
    pub shed_queue: u64,
    /// Requests shed because estimated wait exceeded the latency budget.
    pub shed_latency: u64,
    /// Requests whose deadline expired (queued or mid-walk).
    pub deadline_expired: u64,
    /// Worker panics contained by the per-request isolation boundary.
    pub panics: u64,
    /// Answers served by the degraded roofline twin while the breaker was
    /// open.
    pub degraded_answers: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_trips: u64,
    /// Requests rejected as malformed or referencing unknown names.
    pub rejected: u64,
    /// Current admission-queue depth.
    pub queue_depth: u64,
    /// Memo-cache hits across the server's full-fidelity caches.
    pub memo_hits: u64,
    /// Memo-cache misses.
    pub memo_misses: u64,
    /// Memo-cache entries currently resident.
    pub memo_entries: u64,
    /// Memo-cache evictions under the capacity cap.
    pub memo_evictions: u64,
    /// Prepared-graph entries currently resident (all models).
    pub prepared_entries: u64,
    /// Prepared-graph evictions under the capacity cap.
    pub prepared_evictions: u64,
    /// `"closed"`, `"open"`, or `"half-open"`.
    pub breaker: String,
}

/// Machine-readable failure classes, HTTP-flavored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Malformed request (bad JSON, zero batch, hostile input).
    BadRequest,
    /// Unknown model or device name.
    NotFound,
    /// Load-shed by admission control; retry later.
    Shed,
    /// The request's deadline expired before an answer was ready.
    DeadlineExceeded,
    /// A server-side failure (contained panic, lowering error).
    Internal,
}

impl ErrorCode {
    /// The HTTP-alike numeric code.
    pub fn as_u16(self) -> u16 {
        match self {
            ErrorCode::BadRequest => 400,
            ErrorCode::NotFound => 404,
            ErrorCode::Shed => 429,
            ErrorCode::DeadlineExceeded => 504,
            ErrorCode::Internal => 500,
        }
    }

    /// The stable string kind clients switch on.
    pub fn kind(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::NotFound => "not-found",
            ErrorCode::Shed => "shed",
            ErrorCode::DeadlineExceeded => "deadline",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A typed failure payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Numeric code (400/404/429/504/500).
    pub code: u16,
    /// Stable kind string (`"shed"`, `"deadline"`, …).
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorBody {
    /// A typed error body.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ErrorBody { code: code.as_u16(), kind: code.kind().to_string(), message: message.into() }
    }
}

impl Body {
    /// Shorthand for an error body.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Self {
        Body::Error(ErrorBody::new(code, message))
    }
}

/// Rejects hostile request lines before the JSON parser runs: over-long
/// lines, container nesting past [`MAX_JSON_DEPTH`] (the vendored parser
/// recurses per level), and interior NUL/control garbage that no valid
/// request contains.
///
/// The implementation is the shared [`dlperf_trace::screen`] helper also
/// used by the trace-corpus ingest scanner; the wire constants above are
/// this protocol's and are unchanged.
///
/// # Errors
/// A static reason string suitable for a 400 response.
pub fn prescreen(line: &str) -> Result<(), &'static str> {
    screen::prescreen_line(
        line,
        &screen::ScreenLimits { max_line_bytes: MAX_LINE_BYTES, max_json_depth: MAX_JSON_DEPTH },
    )
}

/// Outcome of one [`read_bounded_line`] call (the shared
/// [`dlperf_trace::screen::LineRead`], re-exported so existing
/// `serve::api::LineRead` callers keep compiling).
pub use dlperf_trace::screen::LineRead;

/// Reads one protocol line while never buffering more than
/// [`MAX_LINE_BYTES`] + 1 bytes, whatever the peer sends. This is the
/// transport-side half of the hostile-input screen: [`prescreen`] checks
/// a line it is handed, but only a capped read keeps a newline-less
/// multi-gigabyte stream from exhausting memory before that check runs.
/// Delegates to the shared [`dlperf_trace::screen`] reader with this
/// protocol's cap.
///
/// # Errors
/// Propagates transport I/O errors; non-UTF-8 lines surface as
/// `InvalidData`, matching what `BufRead::lines` would have produced.
pub fn read_bounded_line<R: std::io::BufRead>(reader: &mut R) -> std::io::Result<LineRead> {
    screen::read_bounded_line(reader, MAX_LINE_BYTES)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn request_and_response_round_trip_as_json() {
        let req = Request {
            id: 7,
            op: Op::Predict(PredictQuery {
                model: "dlrm-default".into(),
                batch: 2048,
                device: "v100".into(),
                deadline_ms: Some(250.0),
            }),
        };
        let line = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back.id, 7);
        match back.op {
            Op::Predict(q) => {
                assert_eq!(q.model, "dlrm-default");
                assert_eq!(q.batch, 2048);
                assert_eq!(q.deadline_ms, Some(250.0));
            }
            other => panic!("wrong op: {other:?}"),
        }

        let resp = Response { id: 7, body: Body::error(ErrorCode::Shed, "queue full") };
        let line = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&line).unwrap();
        match back.body {
            Body::Error(e) => {
                assert_eq!(e.code, 429);
                assert_eq!(e.kind, "shed");
            }
            other => panic!("wrong body: {other:?}"),
        }
    }

    #[test]
    fn optional_fields_default_when_absent() {
        let line = r#"{"id": 1, "op": {"Predict": {"model": "dcn", "batch": 64, "device": "t4"}}}"#;
        let req: Request = serde_json::from_str(line).unwrap();
        match req.op {
            Op::Predict(q) => assert_eq!(q.deadline_ms, None),
            other => panic!("wrong op: {other:?}"),
        }
    }

    #[test]
    fn bounded_read_survives_an_oversized_line_and_resumes() {
        // A 3x-over-cap line, then a valid line: the oversized one is
        // reported (and drained) without ever materializing in full, and
        // the stream stays usable.
        let mut data = vec![b'x'; MAX_LINE_BYTES * 3];
        data.push(b'\n');
        data.extend_from_slice(b"{\"id\":1}\r\n");
        let mut reader = std::io::BufReader::with_capacity(4096, &data[..]);
        assert!(matches!(read_bounded_line(&mut reader).unwrap(), LineRead::Oversized));
        match read_bounded_line(&mut reader).unwrap() {
            LineRead::Line(line) => assert_eq!(line, "{\"id\":1}"),
            other => panic!("expected the next line, got {other:?}"),
        }
        assert!(matches!(read_bounded_line(&mut reader).unwrap(), LineRead::Eof));
    }

    #[test]
    fn bounded_read_handles_caps_and_unterminated_tails() {
        // Exactly at the cap: accepted (prescreen allows len == cap).
        let mut data = vec![b'y'; MAX_LINE_BYTES];
        data.push(b'\n');
        let mut reader = std::io::BufReader::new(&data[..]);
        match read_bounded_line(&mut reader).unwrap() {
            LineRead::Line(line) => assert_eq!(line.len(), MAX_LINE_BYTES),
            other => panic!("expected a line at the cap, got {other:?}"),
        }
        // One byte over, never newline-terminated: oversized, then EOF.
        let data = vec![b'z'; MAX_LINE_BYTES + 1];
        let mut reader = std::io::BufReader::new(&data[..]);
        assert!(matches!(read_bounded_line(&mut reader).unwrap(), LineRead::Oversized));
        assert!(matches!(read_bounded_line(&mut reader).unwrap(), LineRead::Eof));
        // A final line without a trailing newline still parses.
        let mut reader = std::io::BufReader::new(&b"ping"[..]);
        match read_bounded_line(&mut reader).unwrap() {
            LineRead::Line(line) => assert_eq!(line, "ping"),
            other => panic!("expected the tail line, got {other:?}"),
        }
    }

    #[test]
    fn prescreen_rejects_hostile_lines() {
        assert!(prescreen(&"x".repeat(MAX_LINE_BYTES + 1)).is_err());
        assert!(prescreen(&"[".repeat(MAX_JSON_DEPTH + 1)).is_err());
        assert!(prescreen("{\"id\"\0}").is_err());
        // Brackets inside strings do not count toward depth.
        let quoted = format!("{{\"s\": \"{}\"}}", "[".repeat(MAX_JSON_DEPTH * 2));
        assert!(prescreen(&quoted).is_ok());
        assert!(prescreen(r#"{"id": 1, "op": "Ping"}"#).is_ok());
    }
}
