//! # dlperf-serve
//!
//! Overload-safe prediction-as-a-service over the dlperf pipeline: the
//! performance model, turned into a long-running daemon that answers
//! "price this configuration" and "which configuration should I train
//! on?" questions while staying up under overload, hostile input, and
//! injected worker chaos.
//!
//! The serving stack, outside in:
//!
//! * [`api`] — newline-delimited JSON wire protocol with typed error
//!   bodies (`400/404/429/504/500`) and a hostile-input prescreen;
//! * [`Server`] — admission control with explicit load shedding, deadline
//!   propagation into the prediction walk, a circuit breaker that
//!   degrades to roofline answers, per-request panic isolation, and
//!   worker self-healing;
//! * [`recommend`] (served as `Op::Recommend`) — the objective-driven
//!   configuration recommender;
//! * [`optimize`] (served as `Op::Optimize`) — the unified
//!   [`dlperf_core::OptimizationSearch`] behind the wire protocol: ranked
//!   graph-rewrite / batch / device optimizations with predicted deltas
//!   and confidence bands.
//!
//! Answers for admitted full-fidelity requests are bitwise identical to
//! the offline [`dlperf_core::pipeline::Pipeline::predict_memoized`] path:
//! every robustness mechanism changes *whether* a request is answered,
//! never *what* an answered request says.

pub mod api;
mod optimize;
mod recommend;
mod server;

pub use api::{
    Body, ConfigChoice, ErrorBody, ErrorCode, Objective, Op, OptimizationBody, OptimizationEntry,
    OptimizeQuery, PredictQuery, PredictionBody, RecommendQuery, RecommendationBody,
    RejectedConfig, Request, Response, StatsBody,
};
pub use server::{Server, ServerConfig};

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use dlperf_core::pipeline::Pipeline;
    use dlperf_core::{prepare_graph, GraphMutation};
    use dlperf_faults::FaultPlan;
    use dlperf_gpusim::DeviceSpec;
    use dlperf_kernels::{CalibrationEffort, MemoCache};
    use dlperf_models::zoo;

    use super::*;

    fn quick_pipeline_for(device: &DeviceSpec) -> Pipeline {
        let workloads = vec![zoo::build("dlrm-default", 512).unwrap()];
        Pipeline::analyze(device, &workloads, CalibrationEffort::Quick, 5, 11)
    }

    fn quick_pipeline() -> Pipeline {
        quick_pipeline_for(&DeviceSpec::v100())
    }

    fn small_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            base_batch: 512,
            memo_capacity: 1 << 14,
            prepared_capacity: 32,
            ..ServerConfig::default()
        }
    }

    fn predict_req(id: u64, batch: u64) -> Request {
        Request {
            id,
            op: Op::Predict(PredictQuery {
                model: "dlrm-default".into(),
                batch,
                device: "v100".into(),
                deadline_ms: None,
            }),
        }
    }

    #[test]
    fn predict_matches_offline_pipeline_bitwise() {
        let pipeline = quick_pipeline();
        let base = zoo::build("dlrm-default", 512).unwrap();
        let offline_graph =
            prepare_graph(&base, &[GraphMutation::ResizeBatch(768)]).unwrap();
        let offline =
            pipeline.predict_memoized(&offline_graph, &MemoCache::new()).unwrap();

        let server =
            Server::start(vec![pipeline], &["dlrm-default"], small_config(), None).unwrap();
        for _ in 0..2 {
            // Second round hits both caches; the bits must not move.
            let resp = server.submit(predict_req(1, 768));
            match resp.body {
                Body::Prediction(p) => {
                    assert_eq!(p.e2e_us.to_bits(), offline.e2e_us.to_bits());
                    assert_eq!(p.active_us.to_bits(), offline.active_us.to_bits());
                    assert_eq!(p.confidence, "calibrated");
                }
                other => panic!("expected prediction, got {other:?}"),
            }
        }
        let stats = server.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn unknown_names_and_bad_batches_get_typed_errors() {
        let server =
            Server::start(vec![quick_pipeline()], &["dlrm-default"], small_config(), None)
                .unwrap();
        let cases = [
            (
                Request {
                    id: 1,
                    op: Op::Predict(PredictQuery {
                        model: "alexnet".into(),
                        batch: 64,
                        device: "v100".into(),
                        deadline_ms: None,
                    }),
                },
                404,
            ),
            (
                Request {
                    id: 2,
                    op: Op::Predict(PredictQuery {
                        model: "dlrm-default".into(),
                        batch: 64,
                        device: "h100".into(),
                        deadline_ms: None,
                    }),
                },
                404,
            ),
            (predict_req(3, 0), 400),
        ];
        for (req, code) in cases {
            let id = req.id;
            let resp = server.submit(req);
            assert_eq!(resp.id, id);
            match resp.body {
                Body::Error(e) => assert_eq!(e.code, code),
                other => panic!("expected error, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_json_is_rejected_not_parsed() {
        let server =
            Server::start(vec![quick_pipeline()], &["dlrm-default"], small_config(), None)
                .unwrap();
        for hostile in [
            "",
            "not json at all",
            "{\"id\": ",
            &"[".repeat(api::MAX_JSON_DEPTH * 4),
            &"x".repeat(api::MAX_LINE_BYTES + 16),
            "{\"id\": 1, \"op\": {\"Launch\": {}}}",
        ] {
            let line = server.submit_json(hostile);
            let resp: Response = serde_json::from_str(&line).unwrap();
            match resp.body {
                Body::Error(e) => assert_eq!(e.code, 400, "input {:?}", &hostile[..hostile.len().min(40)]),
                other => panic!("expected 400, got {other:?}"),
            }
        }
        // And a valid line still works afterwards.
        let line = server.submit_json("{\"id\": 9, \"op\": \"Ping\"}");
        let resp: Response = serde_json::from_str(&line).unwrap();
        assert!(matches!(resp.body, Body::Pong), "got {resp:?}");
    }

    #[test]
    fn zero_capacity_queue_sheds_deterministically() {
        let cfg = ServerConfig { queue_capacity: 0, ..small_config() };
        let server =
            Server::start(vec![quick_pipeline()], &["dlrm-default"], cfg, None).unwrap();
        let resp = server.submit(predict_req(1, 512));
        match resp.body {
            Body::Error(e) => {
                assert_eq!(e.code, 429);
                assert_eq!(e.kind, "shed");
            }
            other => panic!("expected shed, got {other:?}"),
        }
        assert_eq!(server.stats().shed_queue, 1);
        assert_eq!(server.stats().admitted, 0);
    }

    #[test]
    fn injected_hang_becomes_deadline_error_within_budget() {
        let plan = FaultPlan::healthy(77).with_worker_faults(0.0, 0.0, 1.0);
        let server = Server::start(
            vec![quick_pipeline()],
            &["dlrm-default"],
            small_config(),
            Some(plan),
        )
        .unwrap();
        let started = Instant::now();
        let resp = server.submit(Request {
            id: 5,
            op: Op::Predict(PredictQuery {
                model: "dlrm-default".into(),
                batch: 512,
                device: "v100".into(),
                deadline_ms: Some(80.0),
            }),
        });
        let wall = started.elapsed();
        match resp.body {
            Body::Error(e) => {
                assert_eq!(e.code, 504);
                assert_eq!(e.kind, "deadline");
            }
            other => panic!("expected deadline error, got {other:?}"),
        }
        assert!(wall < Duration::from_secs(5), "hang not bounded: {wall:?}");
        assert!(server.stats().deadline_expired >= 1);
    }

    #[test]
    fn injected_kill_respawns_the_worker_pool() {
        let plan = FaultPlan::healthy(3).with_worker_faults(0.0, 1.0, 0.0);
        let cfg = ServerConfig { workers: 1, ..small_config() };
        let server =
            Server::start(vec![quick_pipeline()], &["dlrm-default"], cfg, Some(plan)).unwrap();
        // Every predict kills the (sole) worker; the pool must heal each
        // time and keep answering.
        for id in 0..3 {
            let resp = server.submit(predict_req(id, 512));
            match resp.body {
                Body::Error(e) => {
                    assert_eq!(e.code, 500);
                    assert!(e.message.contains("killed"), "{}", e.message);
                }
                other => panic!("expected kill error, got {other:?}"),
            }
        }
        let resp = server.submit(Request { id: 99, op: Op::Ping });
        assert!(matches!(resp.body, Body::Pong));
    }

    #[test]
    fn breaker_trips_to_degraded_answers_and_recovers() {
        let plan = FaultPlan::healthy(13).with_worker_faults(1.0, 0.0, 0.0);
        let cfg = ServerConfig {
            workers: 1,
            breaker_threshold: 2,
            breaker_cooldown: 3,
            ..small_config()
        };
        let server =
            Server::start(vec![quick_pipeline()], &["dlrm-default"], cfg, Some(plan)).unwrap();

        // Two injected panics trip the breaker...
        for id in 0..2 {
            let resp = server.submit(predict_req(id, 512));
            match resp.body {
                Body::Error(e) => {
                    assert_eq!(e.code, 500);
                    assert!(e.message.contains("panic"), "{}", e.message);
                }
                other => panic!("expected panic error, got {other:?}"),
            }
        }
        let stats = server.stats();
        assert_eq!(stats.panics, 2);
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.breaker, "open");

        // ...after which the cooldown serves degraded roofline answers
        // (no injection on the degraded path, so these always succeed).
        for id in 10..13 {
            let resp = server.submit(predict_req(id, 512));
            match resp.body {
                Body::Prediction(p) => {
                    assert_eq!(p.confidence, "degraded");
                    assert!(p.degraded_kernels > 0);
                    assert!(p.e2e_us > 0.0);
                }
                other => panic!("expected degraded prediction, got {other:?}"),
            }
        }
        assert_eq!(server.stats().degraded_answers, 3);

        // Cooldown exhausted: the half-open probe takes the full path,
        // panics again (injection probability 1.0), and re-trips.
        let resp = server.submit(predict_req(20, 512));
        assert!(matches!(resp.body, Body::Error(_)));
        assert_eq!(server.stats().breaker_trips, 2);
    }

    #[test]
    fn recommend_ranks_by_objective_and_explains_rejections() {
        let pipeline = quick_pipeline();
        let server = Server::start(
            vec![pipeline],
            &["dlrm-default"],
            small_config(),
            None,
        )
        .unwrap();
        let resp = server.submit(Request {
            id: 42,
            op: Op::Recommend(RecommendQuery {
                model: "dlrm-default".into(),
                batches: vec![256, 1024],
                devices: vec![],
                max_latency_ms: None,
                world_sizes: vec![],
                strategies: None,
                topologies: None,
                objective: Objective::Latency,
                deadline_ms: Some(60_000.0),
            }),
        });
        let rec = match resp.body {
            Body::Recommendation(r) => r,
            other => panic!("expected recommendation, got {other:?}"),
        };
        assert_eq!(rec.ranked.len(), 2);
        let best = rec.recommended.as_ref().unwrap();
        assert_eq!(best.e2e_us.to_bits(), rec.ranked[0].e2e_us.to_bits());
        assert!(rec.ranked[0].e2e_us <= rec.ranked[1].e2e_us);
        assert!(best.reasoning.contains("rank 1"), "{}", best.reasoning);

        // A bound below the best candidate rejects everything, with
        // reasons.
        let floor_ms = rec.ranked[0].e2e_us / 1000.0;
        let resp = server.submit(Request {
            id: 43,
            op: Op::Recommend(RecommendQuery {
                model: "dlrm-default".into(),
                batches: vec![256, 1024],
                devices: vec!["v100".into()],
                max_latency_ms: Some(floor_ms / 100.0),
                world_sizes: vec![],
                strategies: None,
                topologies: None,
                objective: Objective::Throughput,
                deadline_ms: Some(60_000.0),
            }),
        });
        match resp.body {
            Body::Recommendation(r) => {
                assert!(r.recommended.is_none());
                assert_eq!(r.rejected.len(), 2);
                assert!(r.rejected[0].reason.contains("exceeds"), "{}", r.rejected[0].reason);
            }
            other => panic!("expected recommendation, got {other:?}"),
        }
    }

    #[test]
    fn hostile_deadlines_cannot_kill_the_worker_pool() {
        // Duration::from_secs_f64 panics on values like 1e300; fed raw
        // from deadline_ms it would unwind workers outside the request
        // catch_unwind boundary — each such request retiring one worker
        // for good. More hostile requests than workers proves both the
        // clamp and the respawn-on-death guard.
        let cfg = ServerConfig { workers: 2, ..small_config() };
        let server =
            Server::start(vec![quick_pipeline()], &["dlrm-default"], cfg, None).unwrap();
        let hostile = [1e300, f64::INFINITY, f64::NAN, -1e300, -1.0, f64::MIN_POSITIVE];
        for (i, ms) in hostile.iter().cycle().take(8).enumerate() {
            let resp = server.submit(Request {
                id: i as u64,
                op: Op::Predict(PredictQuery {
                    model: "dlrm-default".into(),
                    batch: 512,
                    device: "v100".into(),
                    deadline_ms: Some(*ms),
                }),
            });
            // Clamped-to-zero deadlines get a 504; the rest get answers.
            // What no request may get is a dead-pool "shut down" error.
            match resp.body {
                Body::Prediction(_) => {}
                Body::Error(e) => {
                    assert_eq!(e.code, 504, "deadline {ms}: unexpected error {e:?}")
                }
                other => panic!("deadline {ms}: got {other:?}"),
            }
        }
        let resp = server.submit(Request { id: 99, op: Op::Ping });
        assert!(matches!(resp.body, Body::Pong), "pool died: {resp:?}");
        assert_eq!(server.stats().panics, 0, "hostile deadlines must not panic workers");
    }

    #[test]
    fn transport_rejected_lines_are_counted_and_valid_json() {
        let server =
            Server::start(vec![quick_pipeline()], &["dlrm-default"], small_config(), None)
                .unwrap();
        let line = server.reject_line("request line exceeds size cap");
        let resp: Response = serde_json::from_str(&line).unwrap();
        match resp.body {
            Body::Error(e) => {
                assert_eq!(e.code, 400);
                assert!(e.message.contains("size cap"), "{}", e.message);
            }
            other => panic!("expected 400, got {other:?}"),
        }
        let stats = server.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn recommend_prices_each_device_once_despite_repeats_and_aliases() {
        let server = Server::start(
            vec![
                quick_pipeline_for(&DeviceSpec::v100()),
                quick_pipeline_for(&DeviceSpec::p100()),
            ],
            &["dlrm-default"],
            small_config(),
            None,
        )
        .unwrap();
        // Non-adjacent repeats (and an alias of the first device): each
        // canonical device must appear exactly once in the ranking.
        let resp = server.submit(Request {
            id: 60,
            op: Op::Recommend(RecommendQuery {
                model: "dlrm-default".into(),
                batches: vec![256],
                devices: vec!["v100".into(), "p100".into(), "tesla-v100".into()],
                max_latency_ms: None,
                world_sizes: vec![],
                strategies: None,
                topologies: None,
                objective: Objective::Latency,
                deadline_ms: Some(60_000.0),
            }),
        });
        match resp.body {
            Body::Recommendation(r) => {
                assert_eq!(r.ranked.len(), 2, "one entry per device: {:?}", r.ranked);
                let mut devices: Vec<&str> =
                    r.ranked.iter().map(|c| c.device.as_str()).collect();
                devices.sort_unstable();
                devices.dedup();
                assert_eq!(devices.len(), 2, "duplicate device priced twice");
            }
            other => panic!("expected recommendation, got {other:?}"),
        }
    }

    #[test]
    fn recommend_covers_the_sharding_axis_for_dlrm() {
        let server = Server::start(
            vec![quick_pipeline()],
            &["dlrm-default"],
            small_config(),
            None,
        )
        .unwrap();
        let resp = server.submit(Request {
            id: 50,
            op: Op::Recommend(RecommendQuery {
                model: "dlrm-default".into(),
                batches: vec![512],
                devices: vec!["v100".into()],
                max_latency_ms: None,
                world_sizes: vec![2],
                strategies: Some(vec!["dp".into(), "hybrid".into()]),
                topologies: Some(vec!["nvlink".into()]),
                objective: Objective::Latency,
                deadline_ms: Some(120_000.0),
            }),
        });
        match resp.body {
            Body::Recommendation(r) => {
                assert!(
                    r.ranked.iter().any(|c| c.sharding.is_some()),
                    "expected sharded candidates, got {:?}",
                    r.ranked.iter().map(|c| &c.reasoning).collect::<Vec<_>>()
                );
                assert!(r.ranked.iter().any(|c| c.sharding.is_none()));
                // The matrix labels carry the pinned topology and both
                // requested strategies.
                let shardings: Vec<&str> = r
                    .ranked
                    .iter()
                    .filter_map(|c| c.sharding.as_deref())
                    .collect();
                assert!(
                    shardings.iter().any(|s| s.starts_with("nvlink/dp/")),
                    "{shardings:?}"
                );
                assert!(
                    shardings.iter().any(|s| s.starts_with("nvlink/hybrid/")),
                    "{shardings:?}"
                );
            }
            other => panic!("expected recommendation, got {other:?}"),
        }

        // An unknown strategy name is a typed error, like an unknown
        // device; an unknown topology name still answers, degraded.
        let resp = server.submit(Request {
            id: 51,
            op: Op::Recommend(RecommendQuery {
                model: "dlrm-default".into(),
                batches: vec![512],
                devices: vec!["v100".into()],
                max_latency_ms: None,
                world_sizes: vec![2],
                strategies: Some(vec!["tensor-magic".into()]),
                topologies: None,
                objective: Objective::Latency,
                deadline_ms: Some(120_000.0),
            }),
        });
        match resp.body {
            Body::Error(e) => {
                assert_eq!(e.code, 404);
                assert!(e.message.contains("tensor-magic"), "{}", e.message);
            }
            other => panic!("expected 404, got {other:?}"),
        }
        let resp = server.submit(Request {
            id: 52,
            op: Op::Recommend(RecommendQuery {
                model: "dlrm-default".into(),
                batches: vec![512],
                devices: vec!["v100".into()],
                max_latency_ms: None,
                world_sizes: vec![2],
                strategies: None,
                topologies: Some(vec!["quantum-fabric".into()]),
                objective: Objective::Latency,
                deadline_ms: Some(120_000.0),
            }),
        });
        match resp.body {
            Body::Recommendation(r) => {
                assert!(
                    r.ranked
                        .iter()
                        .filter_map(|c| c.sharding.as_deref())
                        .any(|s| s.contains("degraded")),
                    "unknown topologies must answer with a degraded label"
                );
            }
            other => panic!("expected recommendation, got {other:?}"),
        }
    }

    #[test]
    fn optimize_matches_offline_search_bitwise() {
        use dlperf_core::{GraphMoves, NoExtra, OptimizationSearch, SearchConfig};

        let pipelines = vec![
            quick_pipeline_for(&DeviceSpec::v100()),
            quick_pipeline_for(&DeviceSpec::p100()),
        ];
        // The offline reference: same pipelines, same graph, same knobs.
        let base = prepare_graph(
            &zoo::build("dlrm-default", 512).unwrap(),
            &[GraphMutation::ResizeBatch(512)],
        )
        .unwrap();
        let offline = OptimizationSearch::<NoExtra>::new(&pipelines)
            .with_config(SearchConfig { max_depth: 2, ..SearchConfig::default() })
            .with_graph_moves(GraphMoves { batches: vec![256, 1024], ..GraphMoves::default() })
            .run(&base)
            .unwrap();

        let server =
            Server::start(pipelines, &["dlrm-default"], small_config(), None).unwrap();
        let resp = server.submit(Request {
            id: 70,
            op: Op::Optimize(OptimizeQuery {
                model: "dlrm-default".into(),
                batch: 512,
                devices: Some(vec!["tesla-v100".into(), "v100".into(), "p100".into()]),
                batches: Some(vec![256, 1024]),
                beam_width: None,
                max_depth: None,
                top_k: None,
                deadline_ms: Some(120_000.0),
            }),
        });
        let body = match resp.body {
            Body::Optimization(b) => b,
            other => panic!("expected optimization, got {other:?}"),
        };
        assert_eq!(body.baseline_e2e_us.to_bits(), offline.baseline_e2e_us.to_bits());
        assert_eq!(body.ranked.len(), offline.ranked.len());
        for (served, off) in body.ranked.iter().zip(&offline.ranked) {
            assert_eq!(served.description, off.description);
            assert_eq!(served.e2e_us.to_bits(), off.e2e_us.to_bits());
            assert_eq!(served.delta_us.to_bits(), off.delta_us.to_bits());
        }
        assert!(!body.ranked.is_empty());
        assert!(body.ranked[0].delta_us >= 0.0, "top entry must not lose time");
        assert!(body.evals >= body.ranked.len() as u64);

        // Unknown names stay typed errors on this op too.
        let resp = server.submit(Request {
            id: 71,
            op: Op::Optimize(OptimizeQuery {
                model: "alexnet".into(),
                batch: 512,
                devices: None,
                batches: None,
                beam_width: None,
                max_depth: None,
                top_k: None,
                deadline_ms: None,
            }),
        });
        match resp.body {
            Body::Error(e) => assert_eq!(e.code, 404),
            other => panic!("expected 404, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_submitters_share_bounded_caches() {
        let cfg = ServerConfig {
            workers: 4,
            memo_capacity: 1 << 14,
            prepared_capacity: 8,
            base_batch: 512,
            ..ServerConfig::default()
        };
        let server = Arc::new(
            Server::start(vec![quick_pipeline()], &["dlrm-default"], cfg, None).unwrap(),
        );
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    for i in 0..12u64 {
                        // 16 distinct batches churn the 8-entry prepared
                        // store.
                        let batch = 256 + 32 * ((t * 12 + i) % 16);
                        let resp = server.submit(predict_req(t * 100 + i, batch));
                        assert!(
                            matches!(resp.body, Body::Prediction(_)),
                            "got {resp:?}"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = server.stats();
        assert_eq!(stats.completed, 48);
        assert!(stats.prepared_entries <= 8, "prepared over cap: {stats:?}");
        assert!(stats.prepared_evictions > 0, "churn must evict: {stats:?}");
    }
}
