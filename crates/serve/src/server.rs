//! The overload-safe request engine.
//!
//! A fixed worker pool drains one shared admission queue; every request
//! passes four guards before its answer leaves the building:
//!
//! 1. **Admission** — a hard queue-depth cap plus an estimated-wait check
//!    against the latency budget. Both reject with an explicit `429 shed`
//!    body rather than letting the queue grow without bound.
//! 2. **Deadline** — a [`Watchdog`] arms a [`CancellationToken`] the
//!    prediction walk observes between op steps; deadline hits are typed
//!    `504 deadline` answers, whether they fire in the queue or mid-walk.
//! 3. **Circuit breaker** — repeated full-fidelity failures trip the
//!    server onto a degraded roofline twin (an empty [`ModelRegistry`],
//!    same overhead database), which keeps answering — marked
//!    `"degraded"` — until a half-open probe succeeds.
//! 4. **Panic isolation** — the whole route runs under `catch_unwind`;
//!    a panicking request becomes a `500 internal` answer, never a dead
//!    worker pool. An injected worker *kill* takes its thread down for
//!    real, and the thread's last act is to respawn a replacement, so the
//!    pool heals the way a supervised run does.
//!
//! Caches are bounded by construction: each device's [`MemoCache`] and
//! each model's [`PreparedStore`] carry capacity caps, so a hostile or
//! merely diverse request stream evicts, never grows.
//!
//! Determinism contract: an admitted, non-degraded answer is bitwise
//! identical to [`Pipeline::predict_memoized`] run offline on the same
//! prepared graph — admission, deadlines, eviction, and fault injection
//! change *whether and when* a request is answered, never *what value* an
//! answered request carries.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use dlperf_core::pipeline::Pipeline;
use dlperf_core::predictor::PredictError;
use dlperf_core::{prepare_graph, GraphMutation, PreparedStore};
use dlperf_faults::{site_key, FaultInjector, FaultPlan, WorkerFault};
use dlperf_gpusim::DeviceSpec;
use dlperf_graph::Graph;
use dlperf_kernels::{MemoCache, ModelRegistry};
use dlperf_models::zoo;
use dlperf_obs::{CounterGroup, CounterHandle};
use dlperf_runtime::{CancellationToken, Watchdog};

use crate::api::{
    Body, ErrorCode, Op, PredictQuery, PredictionBody, Request, Response, StatsBody,
    MAX_DEADLINE_MS,
};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Hard cap on queued-but-unserved requests; beyond it, shed.
    pub queue_capacity: usize,
    /// Deadline applied when a request carries none.
    pub default_deadline: Duration,
    /// Admission bound on estimated wait (queue depth × observed service
    /// time); beyond it, shed even with queue room.
    pub latency_budget_ms: f64,
    /// Consecutive full-fidelity failures that trip the breaker.
    pub breaker_threshold: u32,
    /// Degraded answers served per trip before a half-open probe.
    pub breaker_cooldown: u32,
    /// Per-device kernel-memo capacity (entries).
    pub memo_capacity: usize,
    /// Per-model prepared-graph capacity (entries).
    pub prepared_capacity: usize,
    /// Batch size the catalog models are built at; requests resize from
    /// here.
    pub base_batch: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 256,
            default_deadline: Duration::from_secs(2),
            latency_budget_ms: 10_000.0,
            breaker_threshold: 5,
            breaker_cooldown: 32,
            memo_capacity: 1 << 18,
            prepared_capacity: 256,
            base_batch: 2048,
        }
    }
}

/// Consecutive-failure circuit breaker with a degraded-answer cooldown.
struct Breaker {
    threshold: u32,
    cooldown_len: u32,
    consecutive: AtomicU32,
    cooldown: AtomicU32,
    trips: CounterHandle,
}

impl Breaker {
    /// While open, claims one degraded-answer slot per call.
    fn should_degrade(&self) -> bool {
        self.cooldown
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |c| c.checked_sub(1))
            .is_ok()
    }

    fn record_success(&self) {
        self.consecutive.store(0, Ordering::SeqCst);
    }

    fn record_failure(&self) {
        let failures = self.consecutive.fetch_add(1, Ordering::SeqCst) + 1;
        if failures >= self.threshold {
            self.cooldown.store(self.cooldown_len, Ordering::SeqCst);
            self.trips.incr();
        }
    }

    fn state(&self) -> &'static str {
        if self.cooldown.load(Ordering::SeqCst) > 0 {
            "open"
        } else if self.consecutive.load(Ordering::SeqCst) >= self.threshold {
            "half-open"
        } else {
            "closed"
        }
    }
}

/// One served device: the calibrated pipeline, its roofline twin, and
/// their (separately) bounded memo caches.
pub(crate) struct Engine {
    pub(crate) pipeline: Pipeline,
    degraded: Pipeline,
    pub(crate) cache: MemoCache,
    degraded_cache: MemoCache,
}

/// One served model: the base graph and its bounded prepared-graph store.
pub(crate) struct ModelEntry {
    base: Graph,
    prepared: Arc<PreparedStore>,
}

impl ModelEntry {
    /// The model's graph resized to `batch`, from the bounded store —
    /// a pure function of `(base, batch)`, so cache hits, misses, and
    /// evictions cannot change the value.
    pub(crate) fn graph(&self, batch: u64) -> Arc<Result<Graph, dlperf_core::MutationError>> {
        let muts = vec![GraphMutation::ResizeBatch(batch)];
        if let Some(g) = self.prepared.get(&muts) {
            return g;
        }
        let built = Arc::new(prepare_graph(&self.base, &muts));
        self.prepared.insert(muts, built)
    }
}

/// State shared by every worker and every transport thread.
pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) engines: HashMap<String, Engine>,
    pub(crate) models: HashMap<String, ModelEntry>,
    injector: Option<FaultInjector>,
    fault_seq: AtomicU64,
    depth: AtomicUsize,
    /// EWMA of observed service time, stored as `f64::to_bits`.
    ewma_us: AtomicU64,
    breaker: Breaker,
    #[allow(dead_code)]
    obs: Arc<CounterGroup>,
    admitted: CounterHandle,
    completed: CounterHandle,
    shed_queue: CounterHandle,
    shed_latency: CounterHandle,
    deadline_expired: CounterHandle,
    panics: CounterHandle,
    degraded_answers: CounterHandle,
    rejected: CounterHandle,
}

/// A queued unit of work.
struct Job {
    req: Request,
    reply: Sender<Response>,
    enqueued: Instant,
}

/// The serving engine. Construct with [`Server::start`]; submit with
/// [`Server::submit`] (typed) or [`Server::submit_json`] (wire form).
/// Dropping the server closes the queue and the workers drain out.
pub struct Server {
    shared: Arc<Shared>,
    tx: Option<Sender<Job>>,
}

impl Server {
    /// Boots a server over calibrated `pipelines` (one per device) and
    /// the named catalog `models`, optionally under a [`FaultPlan`]
    /// whose worker faults are injected into full-fidelity predictions.
    ///
    /// # Errors
    /// When no pipeline/model is given, a model name is unknown, or a
    /// device is duplicated.
    pub fn start(
        pipelines: Vec<Pipeline>,
        models: &[&str],
        cfg: ServerConfig,
        fault_plan: Option<FaultPlan>,
    ) -> Result<Server, String> {
        if pipelines.is_empty() {
            return Err("at least one calibrated pipeline is required".into());
        }
        if models.is_empty() {
            return Err("at least one model name is required".into());
        }
        let mut engines = HashMap::new();
        for pipeline in pipelines {
            let device = pipeline.device().clone();
            let degraded = Pipeline::from_assets(
                device.clone(),
                ModelRegistry::empty(device.clone()),
                pipeline.predictor().overheads().clone(),
            );
            let engine = Engine {
                pipeline,
                degraded,
                cache: MemoCache::with_capacity(cfg.memo_capacity),
                degraded_cache: MemoCache::with_capacity(cfg.memo_capacity),
            };
            if engines.insert(device.name.clone(), engine).is_some() {
                return Err(format!("duplicate pipeline for device `{}`", device.name));
            }
        }
        let mut model_map = HashMap::new();
        for &name in models {
            let base = zoo::build(name, cfg.base_batch)?;
            let prepared = Arc::new(PreparedStore::with_capacity(cfg.prepared_capacity));
            prepared.rebase(&base.index());
            model_map.insert(name.to_string(), ModelEntry { base, prepared });
        }

        let obs = CounterGroup::register(
            "serve",
            &[
                "admitted",
                "completed",
                "shed_queue",
                "shed_latency",
                "deadline_expired",
                "panics",
                "degraded_answers",
                "breaker_trips",
                "rejected",
            ],
        );
        let shared = Arc::new(Shared {
            engines,
            models: model_map,
            injector: fault_plan.map(FaultInjector::new),
            fault_seq: AtomicU64::new(0),
            depth: AtomicUsize::new(0),
            ewma_us: AtomicU64::new(0f64.to_bits()),
            breaker: Breaker {
                threshold: cfg.breaker_threshold.max(1),
                cooldown_len: cfg.breaker_cooldown.max(1),
                consecutive: AtomicU32::new(0),
                cooldown: AtomicU32::new(0),
                trips: obs.handle("breaker_trips"),
            },
            admitted: obs.handle("admitted"),
            completed: obs.handle("completed"),
            shed_queue: obs.handle("shed_queue"),
            shed_latency: obs.handle("shed_latency"),
            deadline_expired: obs.handle("deadline_expired"),
            panics: obs.handle("panics"),
            degraded_answers: obs.handle("degraded_answers"),
            rejected: obs.handle("rejected"),
            obs,
            cfg,
        });
        install_quiet_hook();
        let (tx, rx) = unbounded::<Job>();
        for _ in 0..shared.cfg.workers.max(1) {
            spawn_worker(shared.clone(), rx.clone());
        }
        Ok(Server { shared, tx: Some(tx) })
    }

    /// Submits one typed request and blocks for its response. Admission
    /// control runs on the calling thread, so a shed request never
    /// touches the queue.
    pub fn submit(&self, req: Request) -> Response {
        let id = req.id;
        let shared = &self.shared;
        let depth = shared.depth.fetch_add(1, Ordering::SeqCst);
        if depth >= shared.cfg.queue_capacity {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            shared.shed_queue.incr();
            return Response {
                id,
                body: Body::error(
                    ErrorCode::Shed,
                    format!(
                        "queue full ({depth} waiting >= capacity {}); retry later",
                        shared.cfg.queue_capacity
                    ),
                ),
            };
        }
        let ewma_us = f64::from_bits(shared.ewma_us.load(Ordering::Relaxed));
        let estimated_wait_ms = (depth as f64 + 1.0) * ewma_us / 1000.0;
        if estimated_wait_ms > shared.cfg.latency_budget_ms {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            shared.shed_latency.incr();
            return Response {
                id,
                body: Body::error(
                    ErrorCode::Shed,
                    format!(
                        "estimated wait {estimated_wait_ms:.1} ms exceeds budget {:.1} ms; retry later",
                        shared.cfg.latency_budget_ms
                    ),
                ),
            };
        }
        shared.admitted.incr();
        let (reply_tx, reply_rx) = unbounded();
        let job = Job { req, reply: reply_tx, enqueued: Instant::now() };
        let sent = self.tx.as_ref().is_some_and(|tx| tx.send(job).is_ok());
        if sent {
            match reply_rx.recv() {
                Ok(resp) => resp,
                Err(_) => Response {
                    id,
                    body: Body::error(ErrorCode::Internal, "server shut down mid-request"),
                },
            }
        } else {
            shared.depth.fetch_sub(1, Ordering::SeqCst);
            Response { id, body: Body::error(ErrorCode::Internal, "server is shut down") }
        }
    }

    /// Submits one wire-form request line and returns the response line.
    /// Never panics and always returns valid JSON, whatever the input —
    /// hostile lines are screened before the parser runs.
    pub fn submit_json(&self, line: &str) -> String {
        let resp = match crate::api::prescreen(line) {
            Err(reason) => {
                self.shared.rejected.incr();
                self.shared.completed.incr();
                Response { id: 0, body: Body::error(ErrorCode::BadRequest, reason) }
            }
            Ok(()) => match serde_json::from_str::<Request>(line) {
                Err(e) => {
                    self.shared.rejected.incr();
                    self.shared.completed.incr();
                    Response {
                        id: 0,
                        body: Body::error(ErrorCode::BadRequest, format!("unparseable request: {e}")),
                    }
                }
                Ok(req) => self.submit(req),
            },
        };
        encode_response(&resp)
    }

    /// The wire response for a line rejected by the transport before it
    /// was ever fully read (e.g. longer than [`crate::api::MAX_LINE_BYTES`],
    /// so buffering it for [`Server::submit_json`] would itself be the
    /// attack). Counted like any other prescreen rejection.
    pub fn reject_line(&self, reason: &str) -> String {
        self.shared.rejected.incr();
        self.shared.completed.incr();
        encode_response(&Response { id: 0, body: Body::error(ErrorCode::BadRequest, reason) })
    }

    /// A point-in-time counter snapshot (also served as `Op::Stats`).
    pub fn stats(&self) -> StatsBody {
        self.shared.stats()
    }

    /// The names of the devices this server prices.
    pub fn devices(&self) -> Vec<String> {
        let mut names: Vec<String> = self.shared.engines.keys().cloned().collect();
        names.sort();
        names
    }

    /// Closes the admission queue; workers drain and exit.
    pub fn shutdown(&mut self) {
        self.tx = None;
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Shared {
    fn stats(&self) -> StatsBody {
        let mut memo = dlperf_kernels::MemoCacheStats::default();
        for e in self.engines.values() {
            let s = e.cache.stats();
            let d = e.degraded_cache.stats();
            memo.hits += s.hits + d.hits;
            memo.misses += s.misses + d.misses;
            memo.entries += s.entries + d.entries;
            memo.evictions += s.evictions + d.evictions;
        }
        let mut prepared_entries = 0u64;
        let mut prepared_evictions = 0u64;
        for m in self.models.values() {
            let s = m.prepared.stats();
            prepared_entries += s.graphs as u64;
            prepared_evictions += s.evictions;
        }
        StatsBody {
            admitted: self.admitted.get(),
            completed: self.completed.get(),
            shed_queue: self.shed_queue.get(),
            shed_latency: self.shed_latency.get(),
            deadline_expired: self.deadline_expired.get(),
            panics: self.panics.get(),
            degraded_answers: self.degraded_answers.get(),
            breaker_trips: self.breaker.trips.get(),
            rejected: self.rejected.get(),
            queue_depth: self.depth.load(Ordering::SeqCst) as u64,
            memo_hits: memo.hits,
            memo_misses: memo.misses,
            memo_entries: memo.entries as u64,
            memo_evictions: memo.evictions,
            prepared_entries,
            prepared_evictions,
            breaker: self.breaker.state().to_string(),
        }
    }

    /// The engine for a device name, canonicalizing through
    /// [`DeviceSpec::by_name`] aliases.
    pub(crate) fn engine(&self, device: &str) -> Option<&Engine> {
        self.engines.get(device).or_else(|| {
            let canonical = DeviceSpec::by_name(device)?;
            self.engines.get(&canonical.name)
        })
    }
}

/// How a routed request left the worker.
enum Routed {
    Body(Body),
    /// Respond with the body, then let the worker thread die (and
    /// respawn a replacement): the injected-kill path.
    Kill(Body),
}

/// Respawns a replacement worker whenever its thread dies for any reason
/// other than a clean queue drain — the cooperative injected-kill return,
/// but also any panic that unwinds past [`serve_one`]'s `catch_unwind`
/// boundary. Tying the pool's self-healing to thread death (not to one
/// return value) means no single request, however hostile, can retire a
/// worker permanently.
struct RespawnGuard {
    shared: Arc<Shared>,
    rx: Receiver<Job>,
    armed: bool,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if self.armed {
            spawn_worker(self.shared.clone(), self.rx.clone());
        }
    }
}

fn spawn_worker(shared: Arc<Shared>, rx: Receiver<Job>) {
    std::thread::Builder::new()
        .name("dlperf-serve-worker".into())
        .spawn(move || {
            let mut guard = RespawnGuard { shared: shared.clone(), rx: rx.clone(), armed: true };
            loop {
                let job = match rx.recv() {
                    Ok(job) => job,
                    Err(_) => {
                        // Queue closed: the one exit that must NOT heal.
                        guard.armed = false;
                        return;
                    }
                };
                shared.depth.fetch_sub(1, Ordering::SeqCst);
                if !serve_one(&shared, job) {
                    // Injected kill: die for real; the guard respawns.
                    return;
                }
            }
        })
        .expect("serve worker thread spawns");
}

/// The effective deadline for a request: the client's millisecond value
/// clamped to `[0, MAX_DEADLINE_MS]`, the server default when absent or
/// non-finite. Never panics — a hostile `deadline_ms` (`1e300`, `NaN`,
/// negative) must degrade to a boring deadline, not unwind a worker.
fn request_deadline(ms: Option<f64>, default: Duration) -> Duration {
    let Some(ms) = ms else { return default };
    if !ms.is_finite() {
        return default;
    }
    Duration::try_from_secs_f64(ms.clamp(0.0, MAX_DEADLINE_MS) / 1000.0).unwrap_or(default)
}

/// Serves one job; returns whether this worker should keep running.
fn serve_one(shared: &Arc<Shared>, job: Job) -> bool {
    let deadline = request_deadline(job.req.op.deadline_ms(), shared.cfg.default_deadline);
    let waited = job.enqueued.elapsed();
    let mut keep_running = true;
    let body = if waited >= deadline {
        shared.deadline_expired.incr();
        Body::error(
            ErrorCode::DeadlineExceeded,
            format!("deadline ({deadline:?}) expired after {waited:?} in queue"),
        )
    } else {
        let token = CancellationToken::new();
        let _watchdog = Watchdog::arm(token.clone(), deadline - waited);
        let started = Instant::now();
        let routed = {
            let _quiet = QuietGuard::engage();
            catch_unwind(AssertUnwindSafe(|| route(shared, &job.req.op, &token)))
        };
        observe_service_time(shared, started.elapsed());
        match routed {
            Ok(Routed::Body(body)) => body,
            Ok(Routed::Kill(body)) => {
                keep_running = false;
                body
            }
            Err(panic) => {
                shared.panics.incr();
                shared.breaker.record_failure();
                Body::error(
                    ErrorCode::Internal,
                    format!("worker panicked: {}", panic_message(panic.as_ref())),
                )
            }
        }
    };
    shared.completed.incr();
    let _ = job.reply.send(Response { id: job.req.id, body });
    keep_running
}

impl Op {
    fn deadline_ms(&self) -> Option<f64> {
        match self {
            Op::Predict(q) => q.deadline_ms,
            Op::Recommend(q) => q.deadline_ms,
            Op::Optimize(q) => q.deadline_ms,
            Op::Stats | Op::Ping => None,
        }
    }
}

fn observe_service_time(shared: &Shared, elapsed: Duration) {
    let sample_us = elapsed.as_secs_f64() * 1e6;
    // Benign race: concurrent updates may drop a sample; the EWMA is an
    // admission heuristic, not an accounting value.
    let old = f64::from_bits(shared.ewma_us.load(Ordering::Relaxed));
    let new = if old == 0.0 { sample_us } else { 0.9 * old + 0.1 * sample_us };
    shared.ewma_us.store(new.to_bits(), Ordering::Relaxed);
}

fn route(shared: &Arc<Shared>, op: &Op, token: &CancellationToken) -> Routed {
    match op {
        Op::Ping => Routed::Body(Body::Pong),
        Op::Stats => Routed::Body(Body::Stats(shared.stats())),
        Op::Predict(q) => route_predict(shared, q, token),
        Op::Recommend(q) => Routed::Body(crate::recommend::run(shared, q, token)),
        Op::Optimize(q) => Routed::Body(crate::optimize::run(shared, q, token)),
    }
}

fn route_predict(shared: &Arc<Shared>, q: &PredictQuery, token: &CancellationToken) -> Routed {
    let Some(engine) = shared.engine(&q.device) else {
        shared.rejected.incr();
        return Routed::Body(Body::error(
            ErrorCode::NotFound,
            format!("unknown device `{}`", q.device),
        ));
    };
    let Some(entry) = shared.models.get(&q.model) else {
        shared.rejected.incr();
        return Routed::Body(Body::error(
            ErrorCode::NotFound,
            format!("unknown model `{}` (serving: {})", q.model, {
                let mut names: Vec<&str> = shared.models.keys().map(String::as_str).collect();
                names.sort_unstable();
                names.join(", ")
            }),
        ));
    };
    if q.batch == 0 || q.batch > (1 << 24) {
        shared.rejected.incr();
        return Routed::Body(Body::error(
            ErrorCode::BadRequest,
            format!("batch {} out of range [1, 2^24]", q.batch),
        ));
    }

    // Breaker open: answer from the roofline twin. No fault injection
    // here — degraded answers are the fallback path, not the flaky one.
    if shared.breaker.should_degrade() {
        let graph = entry.graph(q.batch);
        return Routed::Body(match graph.as_ref() {
            Err(e) => {
                shared.rejected.incr();
                Body::error(ErrorCode::BadRequest, format!("graph preparation failed: {e}"))
            }
            Ok(g) => match engine.degraded.predict_memoized_cancellable(
                g,
                &engine.degraded_cache,
                token,
            ) {
                Ok(p) => {
                    shared.degraded_answers.incr();
                    Body::Prediction(prediction_body(&p, "degraded"))
                }
                Err(PredictError::Cancelled) => {
                    shared.deadline_expired.incr();
                    Body::error(ErrorCode::DeadlineExceeded, "deadline expired mid-walk (degraded)")
                }
                Err(PredictError::Lower(e)) => {
                    Body::error(ErrorCode::Internal, format!("degraded lowering failed: {e}"))
                }
            },
        });
    }

    // Injected chaos, full-fidelity path only.
    if let Some(injector) = &shared.injector {
        let seq = shared.fault_seq.fetch_add(1, Ordering::SeqCst);
        match injector.worker_fault(site_key("serve.request"), seq, 0) {
            Some(WorkerFault::Panic) => panic!("injected worker panic (request seq {seq})"),
            Some(WorkerFault::Kill) => {
                shared.breaker.record_failure();
                return Routed::Kill(Body::error(
                    ErrorCode::Internal,
                    "worker killed (injected); pool respawning",
                ));
            }
            Some(WorkerFault::Hang) => {
                // A wedged dependency: burn wall-clock until the watchdog
                // fires, observing the token the way a real stall would.
                while !token.is_cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                shared.deadline_expired.incr();
                return Routed::Body(Body::error(
                    ErrorCode::DeadlineExceeded,
                    "deadline expired during injected hang",
                ));
            }
            None => {}
        }
    }

    let graph = entry.graph(q.batch);
    Routed::Body(match graph.as_ref() {
        Err(e) => {
            shared.rejected.incr();
            Body::error(ErrorCode::BadRequest, format!("graph preparation failed: {e}"))
        }
        Ok(g) => match engine.pipeline.predict_memoized_cancellable(g, &engine.cache, token) {
            Ok(p) => {
                shared.breaker.record_success();
                let confidence = if p.is_fully_calibrated() { "calibrated" } else { "degraded" };
                Body::Prediction(prediction_body(&p, confidence))
            }
            Err(PredictError::Cancelled) => {
                shared.deadline_expired.incr();
                Body::error(ErrorCode::DeadlineExceeded, "deadline expired mid-walk")
            }
            Err(PredictError::Lower(e)) => {
                shared.breaker.record_failure();
                Body::error(ErrorCode::Internal, format!("lowering failed: {e}"))
            }
        },
    })
}

pub(crate) fn prediction_body(
    p: &dlperf_core::Prediction,
    confidence: &str,
) -> PredictionBody {
    PredictionBody {
        e2e_us: p.e2e_us,
        active_us: p.active_us,
        cpu_us: p.cpu_us,
        gpu_us: p.gpu_us,
        utilization: p.utilization(),
        degraded_kernels: p.degraded_kernels,
        confidence: confidence.to_string(),
    }
}

/// Serializes a response line, with a hand-written fallback so even a
/// serializer failure yields valid JSON on the wire.
fn encode_response(resp: &Response) -> String {
    serde_json::to_string(resp).unwrap_or_else(|_| {
        r#"{"id": 0, "body": {"Error": {"code": 500, "kind": "internal", "message": "response serialization failed"}}}"#.to_string()
    })
}

/// Extracts the panic payload's message, like the supervisor does.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

thread_local! {
    static IN_REQUEST: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

static QUIET_HOOK: OnceLock<()> = OnceLock::new();

/// Installs (once per process) a panic hook that stays silent for panics
/// contained by the per-request `catch_unwind` boundary and defers to the
/// previous hook for everything else.
fn install_quiet_hook() {
    QUIET_HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_REQUEST.with(std::cell::Cell::get) {
                prev(info);
            }
        }));
    });
}

/// Marks the current thread as inside a request for the quiet hook.
struct QuietGuard;

impl QuietGuard {
    fn engage() -> QuietGuard {
        IN_REQUEST.with(|c| c.set(true));
        QuietGuard
    }
}

impl Drop for QuietGuard {
    fn drop(&mut self) {
        IN_REQUEST.with(|c| c.set(false));
    }
}
