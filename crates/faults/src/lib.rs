//! # dlperf-faults
//!
//! Deterministic fault injection for the simulated DLRM training stack.
//!
//! A performance model is only trustworthy if it degrades gracefully when
//! the world misbehaves: a straggler GPU, a thermally throttled card, a
//! flaky interconnect dropping collectives, a noisy neighbour stealing
//! host cycles. This crate provides the vocabulary for those scenarios:
//!
//! * [`FaultPlan`] — a pure-data, serde-serializable description of which
//!   faults are active and how severe they are. Plans can be stored next
//!   to the experiments that used them and replayed bit-for-bit.
//! * [`FaultInjector`] — turns a plan into concrete decisions. Every
//!   decision is keyed by a *stateless hash* of `(plan seed, site)` — e.g.
//!   `(seed, iteration, collective index, attempt)` — rather than by a
//!   stateful RNG, so outcomes do not depend on call order. Two engines
//!   evaluating the same plan always see the same faults, which is what
//!   makes fault runs bitwise reproducible.
//!
//! The consumers are `dlperf-gpusim` (per-kernel slowdown profiles built
//! by [`FaultInjector::slowdown_profile`]), `dlperf-trace` (host jitter),
//! and `dlperf-distrib` (straggler ranks and the collective
//! timeout/retry/backoff model via [`FaultInjector::collective_outcome`]).

use serde::{Deserialize, Serialize};

use dlperf_gpusim::{KernelFamily, SlowdownProfile, ThermalWindow};

/// A persistently slow rank (e.g. a card with a failing fan or a bad
/// PCIe link): all its kernels run `factor`× slower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Straggler {
    /// The affected rank.
    pub rank: usize,
    /// Slowdown multiplier (> 1 means slower).
    pub factor: f64,
}

/// Worker-process fault probabilities evaluated per supervised job step.
///
/// Consumed by `dlperf-runtime`'s supervisor: before each step it hashes
/// the site `(job key, step, attempt)` and, with these probabilities,
/// makes the worker panic, die, or hang — exercising panic isolation,
/// restart budgets, and hang watchdogs deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkerFaultPlan {
    /// Probability that a step panics before running.
    pub panic_prob: f64,
    /// Probability that the worker is killed before the step runs.
    pub kill_prob: f64,
    /// Probability that the worker hangs before the step runs (recovered
    /// only by an attempt watchdog).
    pub hang_prob: f64,
}

impl WorkerFaultPlan {
    /// Whether all probabilities are zero.
    pub fn is_healthy(&self) -> bool {
        self.panic_prob == 0.0 && self.kill_prob == 0.0 && self.hang_prob == 0.0
    }
}

/// A worker fault selected at one `(job, step, attempt)` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkerFault {
    /// The worker panics (caught by the supervisor's `catch_unwind`).
    Panic,
    /// The worker dies without unwinding (supervisor restarts it).
    Kill,
    /// The worker stops making progress (recovered by the hang watchdog).
    Hang,
}

/// Deterministic corruption model for trace-corpus files.
///
/// Consumed by the ingestion chaos harness: for each corpus file it
/// hashes the site `(corpus key, file index)` and, with these
/// probabilities, picks at most one corruption to apply to the file's
/// bytes — exercising the `trace::ingest` scanner's quarantine and
/// skip-budget paths reproducibly, the way worker faults exercise the
/// supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceFaultPlan {
    /// Probability that the file is cut short mid-byte-stream (a
    /// crashed writer).
    pub truncate_prob: f64,
    /// Probability that a few bits flip somewhere in the file
    /// (bit rot).
    pub bitflip_prob: f64,
    /// Probability that one event object is duplicated in place
    /// (a replayed log segment; duplicates its correlation id).
    pub duplicate_prob: f64,
    /// Probability that two adjacent events swap positions
    /// (out-of-order flush).
    pub reorder_prob: f64,
    /// Probability that a garbage line is spliced between two events.
    pub garbage_prob: f64,
}

impl TraceFaultPlan {
    /// Whether all probabilities are zero.
    pub fn is_healthy(&self) -> bool {
        self.truncate_prob == 0.0
            && self.bitflip_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reorder_prob == 0.0
            && self.garbage_prob == 0.0
    }
}

/// Interconnect degradation: a persistently derated link (dust in a
/// connector, a downtrained PCIe lane) plus intermittent "flapping"
/// (an NVLink renegotiating, briefly dropping to a fraction of its
/// bandwidth). Evaluated per `(iteration, collective)` site, so the same
/// plan degrades the same collectives on every replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultPlan {
    /// Persistent multiplier on every link's bandwidth, in `(0, 1]`
    /// (0.5 = the classic half-bandwidth wire).
    pub bandwidth_factor: f64,
    /// Probability that a given `(iteration, collective)` hits a flap.
    pub flap_prob: f64,
    /// Extra bandwidth multiplier while flapping, in `(0, 1]`.
    pub flap_factor: f64,
}

impl Default for LinkFaultPlan {
    fn default() -> Self {
        LinkFaultPlan { bandwidth_factor: 1.0, flap_prob: 0.0, flap_factor: 1.0 }
    }
}

impl LinkFaultPlan {
    /// Whether the plan degrades nothing.
    pub fn is_healthy(&self) -> bool {
        self.bandwidth_factor == 1.0 && (self.flap_prob == 0.0 || self.flap_factor == 1.0)
    }
}

/// A corpus fault selected at one `(corpus, file)` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceFault {
    /// The file is cut short.
    Truncate,
    /// A few bits are flipped.
    BitFlips,
    /// One event object is duplicated.
    DuplicateEvent,
    /// Two adjacent events swap positions.
    ReorderEvents,
    /// A garbage line is spliced between events.
    GarbageLine,
}

/// A complete, serializable fault scenario.
///
/// The default plan is healthy: no stragglers, no slowdowns, no drops, no
/// jitter. Builder methods add faults; [`FaultPlan::chaos`] builds a
/// scenario whose severity scales with a single intensity knob, which is
/// what the chaos-resilience harness sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for all stochastic fault decisions (dropped collectives).
    pub seed: u64,
    /// Persistently slow ranks.
    pub stragglers: Vec<Straggler>,
    /// Per-kernel-family slowdown multipliers applied on every rank.
    pub kernel_slowdowns: Vec<(KernelFamily, f64)>,
    /// Thermal-throttle windows applied on every rank.
    pub thermal_windows: Vec<ThermalWindow>,
    /// Uniform host-side jitter amplitude (µs) added to dispatch overheads.
    pub host_jitter_us: f64,
    /// Probability that one collective *attempt* times out and must be
    /// retried (clamped to `[0, 1]` when evaluated).
    pub collective_drop_prob: f64,
    /// Cost of one timed-out collective attempt (µs).
    pub collective_timeout_us: f64,
    /// Retries after the first attempt before the collective is declared
    /// dropped.
    pub max_retries: u32,
    /// Base of the exponential backoff added before retry `a`
    /// (`backoff_base_us × 2^a` µs).
    pub backoff_base_us: f64,
    /// Worker-process faults for supervised jobs. `None` means healthy, so
    /// plans serialized before this field existed still deserialize.
    pub worker: Option<WorkerFaultPlan>,
    /// Trace-corpus corruption for ingestion chaos. `None` means healthy,
    /// so plans serialized before this field existed still deserialize.
    pub trace: Option<TraceFaultPlan>,
    /// Interconnect bandwidth degradation. `None` means healthy, so plans
    /// serialized before this field existed still deserialize.
    pub link: Option<LinkFaultPlan>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::healthy(0)
    }
}

impl FaultPlan {
    /// A plan with no faults at all.
    pub fn healthy(seed: u64) -> Self {
        FaultPlan {
            seed,
            stragglers: Vec::new(),
            kernel_slowdowns: Vec::new(),
            thermal_windows: Vec::new(),
            host_jitter_us: 0.0,
            collective_drop_prob: 0.0,
            collective_timeout_us: 1_000.0,
            max_retries: 3,
            backoff_base_us: 50.0,
            worker: None,
            trace: None,
            link: None,
        }
    }

    /// A canonical chaos scenario whose severity scales with `intensity`
    /// in `[0, 1]`: at 0 it is exactly [`FaultPlan::healthy`]; at 1 rank 0
    /// runs 2.5× slow, GEMMs run 1.8× slow everywhere, a throttle window
    /// covers early execution, collectives drop 40% of attempts, and the
    /// host jitters up to 20 µs per overhead sample.
    pub fn chaos(seed: u64, intensity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&intensity),
            "chaos intensity must be in [0, 1], got {intensity}"
        );
        let mut plan = Self::healthy(seed);
        if intensity == 0.0 {
            return plan;
        }
        plan.stragglers.push(Straggler { rank: 0, factor: 1.0 + 1.5 * intensity });
        plan.kernel_slowdowns.push((KernelFamily::Gemm, 1.0 + 0.8 * intensity));
        plan.thermal_windows.push(ThermalWindow {
            start_us: 0.0,
            end_us: 5_000.0 * intensity,
            factor: 1.0 + 0.5 * intensity,
        });
        plan.host_jitter_us = 20.0 * intensity;
        plan.collective_drop_prob = 0.4 * intensity;
        plan.link = Some(LinkFaultPlan {
            bandwidth_factor: 1.0 - 0.4 * intensity,
            flap_prob: 0.3 * intensity,
            flap_factor: 0.5,
        });
        plan
    }

    /// Marks `rank` as a straggler (builder style).
    pub fn with_straggler(mut self, rank: usize, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "straggler factor must be positive and finite");
        self.stragglers.push(Straggler { rank, factor });
        self
    }

    /// Slows one kernel family on every rank (builder style).
    pub fn with_kernel_slowdown(mut self, family: KernelFamily, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "slowdown factor must be positive and finite");
        self.kernel_slowdowns.push((family, factor));
        self
    }

    /// Adds a thermal-throttle window on every rank (builder style).
    pub fn with_thermal_window(mut self, window: ThermalWindow) -> Self {
        self.thermal_windows.push(window);
        self
    }

    /// Sets the host-jitter amplitude (builder style).
    pub fn with_host_jitter(mut self, amplitude_us: f64) -> Self {
        assert!(
            amplitude_us >= 0.0 && amplitude_us.is_finite(),
            "jitter amplitude must be non-negative and finite"
        );
        self.host_jitter_us = amplitude_us;
        self
    }

    /// Configures the flaky-collective model (builder style).
    pub fn with_collective_faults(
        mut self,
        drop_prob: f64,
        timeout_us: f64,
        max_retries: u32,
        backoff_base_us: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob), "drop probability must be in [0, 1]");
        assert!(
            timeout_us >= 0.0 && backoff_base_us >= 0.0,
            "timeout and backoff must be non-negative"
        );
        self.collective_drop_prob = drop_prob;
        self.collective_timeout_us = timeout_us;
        self.max_retries = max_retries;
        self.backoff_base_us = backoff_base_us;
        self
    }

    /// Configures worker-process faults for supervised jobs (builder
    /// style). Probabilities are independent draws folded into one site
    /// sample; their sum must stay in `[0, 1]`.
    pub fn with_worker_faults(mut self, panic_prob: f64, kill_prob: f64, hang_prob: f64) -> Self {
        for (name, p) in
            [("panic", panic_prob), ("kill", kill_prob), ("hang", hang_prob)]
        {
            assert!((0.0..=1.0).contains(&p), "worker {name} probability must be in [0, 1]");
        }
        assert!(
            panic_prob + kill_prob + hang_prob <= 1.0,
            "worker fault probabilities must sum to at most 1"
        );
        self.worker = Some(WorkerFaultPlan { panic_prob, kill_prob, hang_prob });
        self
    }

    /// Configures trace-corpus corruption for ingestion chaos (builder
    /// style). Probabilities are folded into one site sample per file;
    /// their sum must stay in `[0, 1]`.
    pub fn with_trace_faults(mut self, plan: TraceFaultPlan) -> Self {
        for (name, p) in [
            ("truncate", plan.truncate_prob),
            ("bitflip", plan.bitflip_prob),
            ("duplicate", plan.duplicate_prob),
            ("reorder", plan.reorder_prob),
            ("garbage", plan.garbage_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "trace {name} probability must be in [0, 1]");
        }
        assert!(
            plan.truncate_prob
                + plan.bitflip_prob
                + plan.duplicate_prob
                + plan.reorder_prob
                + plan.garbage_prob
                <= 1.0,
            "trace fault probabilities must sum to at most 1"
        );
        self.trace = Some(plan);
        self
    }

    /// Configures interconnect degradation (builder style).
    ///
    /// # Panics
    /// Panics if `bandwidth_factor` or `flap_factor` is outside `(0, 1]`
    /// or `flap_prob` is outside `[0, 1]`.
    pub fn with_link_faults(
        mut self,
        bandwidth_factor: f64,
        flap_prob: f64,
        flap_factor: f64,
    ) -> Self {
        for (name, f) in [("bandwidth", bandwidth_factor), ("flap", flap_factor)] {
            assert!(
                f > 0.0 && f <= 1.0,
                "link {name} factor must be in (0, 1], got {f}"
            );
        }
        assert!((0.0..=1.0).contains(&flap_prob), "flap probability must be in [0, 1]");
        self.link = Some(LinkFaultPlan { bandwidth_factor, flap_prob, flap_factor });
        self
    }

    /// Whether the plan injects any fault at all.
    pub fn is_healthy(&self) -> bool {
        self.stragglers.is_empty()
            && self.kernel_slowdowns.is_empty()
            && self.thermal_windows.is_empty()
            && self.host_jitter_us == 0.0
            && self.collective_drop_prob == 0.0
            && self.worker.is_none_or(|w| w.is_healthy())
            && self.trace.is_none_or(|t| t.is_healthy())
            && self.link.is_none_or(|l| l.is_healthy())
    }
}

/// What happened to one collective under the timeout/retry model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveOutcome {
    /// Attempts made (1 = succeeded first try).
    pub attempts: u32,
    /// Retries after the first attempt (`attempts - 1`).
    pub retries: u32,
    /// Latency added by timeouts and exponential backoff (µs).
    pub added_latency_us: f64,
    /// All attempts timed out: the collective was abandoned after paying
    /// the full retry penalty (the engine degrades instead of hanging).
    pub dropped: bool,
    /// Total time of the collective including penalties (µs).
    pub total_us: f64,
}

/// Process-wide injection counters — totals across every injector
/// instance, surfaced through the `dlperf-obs` recorder. The decisions
/// themselves stay stateless; the counters only observe them.
struct InjectorCounters {
    _group: std::sync::Arc<dlperf_obs::CounterGroup>,
    worker_faults: dlperf_obs::CounterHandle,
    collective_retries: dlperf_obs::CounterHandle,
    collective_drops: dlperf_obs::CounterHandle,
    trace_faults: dlperf_obs::CounterHandle,
    link_faults: dlperf_obs::CounterHandle,
}

fn injector_counters() -> &'static InjectorCounters {
    static G: std::sync::OnceLock<InjectorCounters> = std::sync::OnceLock::new();
    G.get_or_init(|| {
        let group = dlperf_obs::CounterGroup::register(
            "faults.injector",
            &[
                "worker_faults",
                "collective_retries",
                "collective_drops",
                "trace_faults",
                "link_faults",
            ],
        );
        InjectorCounters {
            worker_faults: group.handle("worker_faults"),
            collective_retries: group.handle("collective_retries"),
            collective_drops: group.handle("collective_drops"),
            trace_faults: group.handle("trace_faults"),
            link_faults: group.handle("link_faults"),
            _group: group,
        }
    })
}

/// Turns a [`FaultPlan`] into per-site decisions.
///
/// Stateless by construction: every stochastic decision hashes
/// `(plan.seed, site words)`, so the same plan yields the same faults
/// regardless of how many ranks run, in what order, or on which thread.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

/// 64-bit finalizer (SplitMix64 / MurmurHash3 fmix64): a bijective
/// avalanche so consecutive site indices decorrelate fully.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 33)).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    z ^ (z >> 33)
}

/// Stateless hash of `(seed, site words)` — the scheme behind every
/// injector decision, exported so resumable jobs can derive independent
/// per-unit seeds (e.g. one RNG stream per microbenchmark chunk) that do
/// not depend on execution order or on where a resume happened.
pub fn derive_seed(seed: u64, site: &[u64]) -> u64 {
    let mut h = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &w in site {
        h = mix(h ^ w.wrapping_add(0x9e37_79b9_7f4a_7c15));
    }
    h
}

/// Hashes a textual site name (e.g. a supervised job's name) into one site
/// word, so string-keyed sites compose with [`derive_seed`].
pub fn site_key(name: &str) -> u64 {
    // FNV-1a over the bytes, then the avalanche finalizer.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(h)
}

impl FaultInjector {
    /// Creates an injector for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Deterministic uniform sample in `[0, 1)` keyed by the fault site.
    fn unit(&self, site: &[u64]) -> f64 {
        // 53 high bits → the unit interval, like rand's float conversion.
        (derive_seed(self.plan.seed, site) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Combined straggler multiplier for `rank` (1.0 when healthy).
    pub fn straggler_factor(&self, rank: usize) -> f64 {
        self.plan
            .stragglers
            .iter()
            .filter(|s| s.rank == rank)
            .map(|s| s.factor)
            .product::<f64>()
    }

    /// The slowdown profile `rank`'s GPU should run under: straggler
    /// factor as the global multiplier, plus the plan's per-family
    /// multipliers and thermal windows.
    pub fn slowdown_profile(&self, rank: usize) -> SlowdownProfile {
        SlowdownProfile {
            global: self.straggler_factor(rank),
            per_family: self.plan.kernel_slowdowns.clone(),
            thermal_windows: self.plan.thermal_windows.clone(),
        }
    }

    /// Host-jitter amplitude to install on each rank's engine (µs).
    pub fn host_jitter_us(&self) -> f64 {
        self.plan.host_jitter_us
    }

    /// Evaluates the timeout/retry model for one collective.
    ///
    /// Each attempt independently times out with the plan's drop
    /// probability (decided by the stateless site hash over
    /// `(iteration, collective, attempt)`). A timed-out attempt costs
    /// `collective_timeout_us` plus exponential backoff
    /// `backoff_base_us × 2^attempt`. After `max_retries` retries the
    /// collective is declared dropped: the penalty is kept, `dropped` is
    /// set, and the engine continues — degradation, not a hang.
    pub fn collective_outcome(
        &self,
        iteration: u64,
        collective: usize,
        base_us: f64,
    ) -> CollectiveOutcome {
        let p = self.plan.collective_drop_prob.clamp(0.0, 1.0);
        let mut added = 0.0;
        let mut attempts = 0u32;
        let mut dropped = true;
        while attempts <= self.plan.max_retries {
            let fails = p > 0.0
                && self.unit(&[0xC011, iteration, collective as u64, attempts as u64]) < p;
            attempts += 1;
            if !fails {
                dropped = false;
                break;
            }
            added += self.plan.collective_timeout_us
                + self.plan.backoff_base_us * f64::from(1u32 << (attempts - 1).min(20));
        }
        let outcome = CollectiveOutcome {
            attempts,
            retries: attempts - 1,
            added_latency_us: added,
            dropped,
            total_us: base_us + added,
        };
        record_collective(&outcome);
        outcome
    }

    /// Like [`FaultInjector::collective_outcome`], but with a retry
    /// deadline: once the accumulated timeout/backoff penalty would exceed
    /// `retry_budget_us` of simulated time, remaining retries are skipped,
    /// the penalty is capped at the budget (the engine waited exactly
    /// until its deadline), and the collective is declared dropped.
    ///
    /// Per-attempt outcomes hash the same sites as the unbudgeted model,
    /// so adding a budget never changes *which* attempts fail — only how
    /// long the engine is willing to keep retrying.
    pub fn collective_outcome_with_budget(
        &self,
        iteration: u64,
        collective: usize,
        base_us: f64,
        retry_budget_us: Option<f64>,
    ) -> CollectiveOutcome {
        let budget = match retry_budget_us {
            None => return self.collective_outcome(iteration, collective, base_us),
            Some(b) => {
                assert!(b >= 0.0 && b.is_finite(), "retry budget must be non-negative and finite");
                b
            }
        };
        let p = self.plan.collective_drop_prob.clamp(0.0, 1.0);
        let mut added = 0.0;
        let mut attempts = 0u32;
        let mut dropped = true;
        while attempts <= self.plan.max_retries {
            let fails = p > 0.0
                && self.unit(&[0xC011, iteration, collective as u64, attempts as u64]) < p;
            attempts += 1;
            if !fails {
                dropped = false;
                break;
            }
            let penalty = self.plan.collective_timeout_us
                + self.plan.backoff_base_us * f64::from(1u32 << (attempts - 1).min(20));
            if added + penalty >= budget {
                added = budget;
                break;
            }
            added += penalty;
        }
        let outcome = CollectiveOutcome {
            attempts,
            retries: attempts - 1,
            added_latency_us: added,
            dropped,
            total_us: base_us + added,
        };
        record_collective(&outcome);
        outcome
    }

    /// Evaluates the link-degradation model at the stateless site
    /// `(iteration, collective)`: the effective bandwidth multiplier the
    /// interconnect runs at for that collective (persistent derating,
    /// times the flap factor when the site's draw lands inside
    /// `flap_prob`). Returns `None` when no link plan is configured or
    /// the effective factor is exactly 1 — callers treat `None` as "wire
    /// is healthy, price normally".
    pub fn link_degradation(&self, iteration: u64, collective: usize) -> Option<f64> {
        let l = self.plan.link?;
        if l.is_healthy() {
            return None;
        }
        let mut factor = l.bandwidth_factor.clamp(0.0, 1.0);
        let flapping = l.flap_prob > 0.0
            && self.unit(&[0x11CC_FA57, iteration, collective as u64]) < l.flap_prob;
        if flapping {
            factor *= l.flap_factor.clamp(0.0, 1.0);
        }
        if factor < 1.0 {
            injector_counters().link_faults.incr();
            Some(factor)
        } else {
            None
        }
    }

    /// Evaluates the worker-fault model at the stateless site
    /// `(job key, step, attempt)`. Returns the fault to inject before the
    /// step runs, or `None` (the overwhelmingly common case).
    ///
    /// One uniform sample is split across the three probabilities, so a
    /// given site injects at most one fault kind, deterministically.
    pub fn worker_fault(&self, job_key: u64, step: u64, attempt: u32) -> Option<WorkerFault> {
        let w = self.plan.worker?;
        if w.is_healthy() {
            return None;
        }
        let u = self.unit(&[0x3013_57E9, job_key, step, u64::from(attempt)]);
        let (p_panic, p_kill, p_hang) = (
            w.panic_prob.clamp(0.0, 1.0),
            w.kill_prob.clamp(0.0, 1.0),
            w.hang_prob.clamp(0.0, 1.0),
        );
        let fault = if u < p_panic {
            Some(WorkerFault::Panic)
        } else if u < p_panic + p_kill {
            Some(WorkerFault::Kill)
        } else if u < p_panic + p_kill + p_hang {
            Some(WorkerFault::Hang)
        } else {
            None
        };
        if fault.is_some() {
            injector_counters().worker_faults.incr();
        }
        fault
    }

    /// Evaluates the trace-corruption model at the stateless site
    /// `(corpus_key, file_index)`: at most one fault per file, the same
    /// fault every time the site is asked. Returns `None` when no
    /// trace plan is configured or the draw lands on "healthy".
    pub fn trace_fault(&self, corpus_key: u64, file_index: u64) -> Option<TraceFault> {
        let t = self.plan.trace?;
        if t.is_healthy() {
            return None;
        }
        let u = self.unit(&[0x7EAC_E511, corpus_key, file_index]);
        let after_truncate = t.truncate_prob;
        let after_bitflip = after_truncate + t.bitflip_prob;
        let after_duplicate = after_bitflip + t.duplicate_prob;
        let after_reorder = after_duplicate + t.reorder_prob;
        let after_garbage = after_reorder + t.garbage_prob;
        let fault = if u < after_truncate {
            Some(TraceFault::Truncate)
        } else if u < after_bitflip {
            Some(TraceFault::BitFlips)
        } else if u < after_duplicate {
            Some(TraceFault::DuplicateEvent)
        } else if u < after_reorder {
            Some(TraceFault::ReorderEvents)
        } else if u < after_garbage {
            Some(TraceFault::GarbageLine)
        } else {
            None
        };
        if fault.is_some() {
            injector_counters().trace_faults.incr();
        }
        fault
    }

    /// Applies the site's selected fault (if any) to a serialized trace
    /// file in place, returning what was done. Purely deterministic:
    /// the fault kind and every corruption position derive from
    /// `(seed, corpus_key, file_index)`, never from the call sequence.
    ///
    /// Event boundaries are located by the `},{` byte pattern of the
    /// flat event serialization; files too small to carry a structural
    /// fault degrade to truncation so a selected fault never silently
    /// becomes a no-op.
    pub fn mangle_trace_bytes(
        &self,
        corpus_key: u64,
        file_index: u64,
        bytes: &mut Vec<u8>,
    ) -> Option<TraceFault> {
        let fault = self.trace_fault(corpus_key, file_index)?;
        if bytes.len() < 4 {
            return Some(fault);
        }
        let draw = |salt: u64| derive_seed(self.plan.seed, &[0x7EAC_E512, corpus_key, file_index, salt]);
        let boundaries: Vec<usize> = bytes
            .windows(3)
            .enumerate()
            .filter_map(|(i, w)| (w == b"},{").then_some(i))
            .collect();
        let truncate = |bytes: &mut Vec<u8>, r: u64| {
            let len = bytes.len();
            let cut = (len / 4 + (r as usize % (len / 2).max(1))).max(1);
            bytes.truncate(cut);
        };
        let applied = match fault {
            TraceFault::Truncate => {
                truncate(bytes, draw(1));
                TraceFault::Truncate
            }
            TraceFault::BitFlips => {
                let flips = 1 + (draw(2) % 4);
                for k in 0..flips {
                    let r = draw(3 + k);
                    let pos = r as usize % bytes.len();
                    let bit = (r >> 32) % 8;
                    bytes[pos] ^= 1 << bit;
                }
                TraceFault::BitFlips
            }
            TraceFault::DuplicateEvent if boundaries.len() >= 2 => {
                let i = draw(8) as usize % (boundaries.len() - 1);
                let (start, end) = (boundaries[i] + 2, boundaries[i + 1]);
                let event: Vec<u8> = bytes[start..=end].to_vec();
                let mut out = Vec::with_capacity(bytes.len() + event.len() + 1);
                out.extend_from_slice(&bytes[..=end]);
                out.push(b',');
                out.extend_from_slice(&event);
                out.extend_from_slice(&bytes[end + 1..]);
                *bytes = out;
                TraceFault::DuplicateEvent
            }
            TraceFault::ReorderEvents if boundaries.len() >= 3 => {
                let i = draw(9) as usize % (boundaries.len() - 2);
                let a: Vec<u8> = bytes[boundaries[i] + 2..=boundaries[i + 1]].to_vec();
                let b: Vec<u8> = bytes[boundaries[i + 1] + 2..=boundaries[i + 2]].to_vec();
                let mut out = Vec::with_capacity(bytes.len());
                out.extend_from_slice(&bytes[..boundaries[i] + 2]);
                out.extend_from_slice(&b);
                out.push(b',');
                out.extend_from_slice(&a);
                out.extend_from_slice(&bytes[boundaries[i + 2] + 1..]);
                *bytes = out;
                TraceFault::ReorderEvents
            }
            TraceFault::GarbageLine if !boundaries.is_empty() => {
                let i = draw(10) as usize % boundaries.len();
                let at = boundaries[i] + 1;
                let garbage = format!("\n<<corrupt segment {:016x}>>\n,", draw(11));
                let mut out = Vec::with_capacity(bytes.len() + garbage.len());
                out.extend_from_slice(&bytes[..at]);
                out.extend_from_slice(garbage.as_bytes());
                out.extend_from_slice(&bytes[at + 1..]);
                *bytes = out;
                TraceFault::GarbageLine
            }
            // Too few events for a structural fault: degrade to
            // truncation so the file is still visibly corrupted.
            TraceFault::DuplicateEvent | TraceFault::ReorderEvents | TraceFault::GarbageLine => {
                truncate(bytes, draw(12));
                TraceFault::Truncate
            }
        };
        Some(applied)
    }
}

/// Mirrors one collective outcome into the injector counters.
fn record_collective(outcome: &CollectiveOutcome) {
    let c = injector_counters();
    c.collective_retries.add(u64::from(outcome.retries));
    if outcome.dropped {
        c.collective_drops.incr();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::healthy(42));
        assert!(inj.plan().is_healthy());
        assert_eq!(inj.straggler_factor(0), 1.0);
        assert!(inj.slowdown_profile(3).is_identity());
        let o = inj.collective_outcome(0, 0, 100.0);
        assert_eq!(o.attempts, 1);
        assert_eq!(o.retries, 0);
        assert!(!o.dropped);
        assert_eq!(o.total_us, 100.0);
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = FaultPlan::healthy(7).with_collective_faults(0.5, 500.0, 4, 25.0);
        let a = FaultInjector::new(plan.clone());
        let b = FaultInjector::new(plan.clone());
        for it in 0..20 {
            for c in 0..3 {
                assert_eq!(a.collective_outcome(it, c, 10.0), b.collective_outcome(it, c, 10.0));
            }
        }
        let other = FaultInjector::new(FaultPlan { seed: 8, ..plan });
        let differs = (0..20).any(|it| {
            a.collective_outcome(it, 0, 10.0) != other.collective_outcome(it, 0, 10.0)
        });
        assert!(differs, "different seeds should produce different fault patterns");
    }

    #[test]
    fn drop_probability_one_always_drops() {
        let inj =
            FaultInjector::new(FaultPlan::healthy(1).with_collective_faults(1.0, 100.0, 2, 10.0));
        let o = inj.collective_outcome(5, 1, 50.0);
        assert!(o.dropped);
        assert_eq!(o.attempts, 3); // 1 try + 2 retries
        // 3 timeouts + backoff 10 + 20 + 40.
        assert!((o.added_latency_us - (300.0 + 70.0)).abs() < 1e-9);
        assert!(o.total_us.is_finite() && o.total_us > 0.0);
    }

    #[test]
    fn higher_drop_prob_means_more_retries() {
        let retries = |p: f64| -> u32 {
            let inj = FaultInjector::new(
                FaultPlan::healthy(3).with_collective_faults(p, 100.0, 5, 10.0),
            );
            (0..200).map(|it| inj.collective_outcome(it, 0, 1.0).retries).sum()
        };
        let (low, high) = (retries(0.1), retries(0.7));
        assert!(high > 2 * low, "retries at p=0.7 ({high}) vs p=0.1 ({low})");
    }

    #[test]
    fn straggler_applies_to_its_rank_only() {
        let inj = FaultInjector::new(FaultPlan::healthy(0).with_straggler(2, 2.5));
        assert_eq!(inj.straggler_factor(2), 2.5);
        assert_eq!(inj.straggler_factor(0), 1.0);
        assert_eq!(inj.slowdown_profile(2).global, 2.5);
        assert!(inj.slowdown_profile(1).is_identity());
    }

    #[test]
    fn chaos_scales_from_healthy() {
        assert!(FaultPlan::chaos(9, 0.0).is_healthy());
        let mild = FaultPlan::chaos(9, 0.2);
        let wild = FaultPlan::chaos(9, 1.0);
        assert!(!mild.is_healthy());
        assert!(wild.collective_drop_prob > mild.collective_drop_prob);
        assert!(wild.host_jitter_us > mild.host_jitter_us);
    }

    #[test]
    fn plan_serde_round_trips() {
        let plan = FaultPlan::chaos(1234, 0.8);
        let json = serde_json::to_string(&plan).expect("plan serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("plan deserializes");
        assert_eq!(plan, back);
        // Same plan after a round trip ⇒ same decisions.
        let (a, b) = (FaultInjector::new(plan), FaultInjector::new(back));
        assert_eq!(a.collective_outcome(3, 2, 7.0), b.collective_outcome(3, 2, 7.0));
    }

    #[test]
    #[should_panic(expected = "intensity must be in [0, 1]")]
    fn chaos_rejects_out_of_range_intensity() {
        FaultPlan::chaos(0, 1.5);
    }

    #[test]
    fn worker_faults_are_deterministic_and_cover_all_kinds() {
        let inj = FaultInjector::new(
            FaultPlan::healthy(11).with_worker_faults(0.2, 0.2, 0.2),
        );
        let key = site_key("grid-search");
        let mut seen = std::collections::BTreeMap::new();
        for step in 0..500u64 {
            let a = inj.worker_fault(key, step, 1);
            let b = inj.worker_fault(key, step, 1);
            assert_eq!(a, b, "same site must give the same decision");
            *seen.entry(format!("{a:?}")).or_insert(0u32) += 1;
        }
        assert!(seen.len() == 4, "panic, kill, hang and none should all occur: {seen:?}");
        // A retry of the same step is a different site.
        let differs =
            (0..500).any(|s| inj.worker_fault(key, s, 1) != inj.worker_fault(key, s, 2));
        assert!(differs, "attempt number must feed the site hash");
    }

    #[test]
    fn healthy_worker_plan_never_faults() {
        let inj = FaultInjector::new(FaultPlan::healthy(0));
        assert!((0..100).all(|s| inj.worker_fault(site_key("job"), s, 1).is_none()));
    }

    #[test]
    fn old_plan_json_without_worker_field_still_loads() {
        let json = serde_json::to_string(&FaultPlan::healthy(5)).expect("serializes");
        let legacy = json.replace(",\"worker\":null", "").replace(",\"trace\":null", "");
        assert_ne!(json, legacy, "the worker key must have been stripped");
        let back: FaultPlan = serde_json::from_str(&legacy).expect("legacy plan loads");
        assert!(back.worker.is_none());
        assert!(back.trace.is_none());
    }

    fn uniform_trace_plan() -> TraceFaultPlan {
        TraceFaultPlan {
            truncate_prob: 0.2,
            bitflip_prob: 0.2,
            duplicate_prob: 0.2,
            reorder_prob: 0.2,
            garbage_prob: 0.2,
        }
    }

    /// A flat events-array document with enough events for every
    /// structural fault to find its boundaries.
    fn trace_doc(events: usize) -> Vec<u8> {
        let elems: Vec<String> = (0..events)
            .map(|i| format!("{{\"name\":\"e{i}\",\"ts_us\":{i},\"correlation\":{}}}", i + 1))
            .collect();
        format!("{{\"workload\":\"w\",\"events\":[{}],\"span_us\":9}}", elems.join(","))
            .into_bytes()
    }

    #[test]
    fn trace_faults_are_deterministic_and_cover_all_kinds() {
        let inj = FaultInjector::new(
            FaultPlan::healthy(17).with_trace_faults(uniform_trace_plan()),
        );
        let key = site_key("corpus");
        let mut seen = std::collections::HashSet::new();
        for file in 0..200 {
            assert_eq!(inj.trace_fault(key, file), inj.trace_fault(key, file));
            let mut a = trace_doc(6);
            let mut b = trace_doc(6);
            let fa = inj.mangle_trace_bytes(key, file, &mut a);
            let fb = inj.mangle_trace_bytes(key, file, &mut b);
            assert_eq!(fa, fb);
            assert_eq!(a, b, "mangling must be bitwise reproducible");
            if let Some(f) = fa {
                assert_ne!(a, trace_doc(6), "a selected fault must change the bytes");
                seen.insert(format!("{f:?}"));
            }
        }
        assert_eq!(seen.len(), 5, "all five fault kinds appear: {seen:?}");
        let other = FaultInjector::new(
            FaultPlan::healthy(18).with_trace_faults(uniform_trace_plan()),
        );
        let differs = (0..200).any(|f| inj.trace_fault(key, f) != other.trace_fault(key, f));
        assert!(differs, "different seeds should corrupt different files");
    }

    #[test]
    fn structural_trace_faults_degrade_to_truncation_on_tiny_files() {
        let plan = TraceFaultPlan { duplicate_prob: 1.0, ..TraceFaultPlan::default() };
        let inj = FaultInjector::new(FaultPlan::healthy(4).with_trace_faults(plan));
        let mut doc = trace_doc(1); // no `},{` boundary at all
        let before = doc.len();
        let applied = inj.mangle_trace_bytes(site_key("c"), 0, &mut doc);
        assert_eq!(applied, Some(TraceFault::Truncate));
        assert!(doc.len() < before);
    }

    #[test]
    fn healthy_trace_plan_never_mangles() {
        let inj = FaultInjector::new(FaultPlan::healthy(9));
        let mut doc = trace_doc(4);
        let pristine = doc.clone();
        assert!(inj.mangle_trace_bytes(site_key("c"), 7, &mut doc).is_none());
        assert_eq!(doc, pristine);
    }

    #[test]
    fn retry_budget_caps_penalty_without_changing_attempt_outcomes() {
        let plan = FaultPlan::healthy(1).with_collective_faults(1.0, 100.0, 4, 10.0);
        let inj = FaultInjector::new(plan);
        let unbudgeted = inj.collective_outcome(2, 0, 50.0);
        assert!(unbudgeted.dropped);
        let no_budget = inj.collective_outcome_with_budget(2, 0, 50.0, None);
        assert_eq!(unbudgeted, no_budget);
        let capped = inj.collective_outcome_with_budget(2, 0, 50.0, Some(150.0));
        assert!(capped.dropped, "budget exhaustion is a drop");
        assert!((capped.added_latency_us - 150.0).abs() < 1e-9, "penalty capped at the budget");
        assert!(capped.attempts <= unbudgeted.attempts);
        // A generous budget reproduces the unbudgeted outcome exactly.
        let roomy = inj.collective_outcome_with_budget(2, 0, 50.0, Some(1e9));
        assert_eq!(roomy, unbudgeted);
    }

    #[test]
    fn link_degradation_is_deterministic_and_bounded() {
        let inj = FaultInjector::new(FaultPlan::healthy(21).with_link_faults(0.5, 0.5, 0.5));
        let mut saw_flap = false;
        for it in 0..50 {
            for c in 0..3 {
                let a = inj.link_degradation(it, c);
                assert_eq!(a, inj.link_degradation(it, c), "same site, same factor");
                let f = a.expect("a derated wire always degrades");
                assert!(f == 0.5 || f == 0.25, "factor {f} outside the plan's reach");
                if f == 0.25 {
                    saw_flap = true;
                }
            }
        }
        assert!(saw_flap, "flap_prob=0.5 over 150 sites must flap at least once");
        assert!(FaultInjector::new(FaultPlan::healthy(21)).link_degradation(0, 0).is_none());
        assert!(!FaultPlan::healthy(0).with_link_faults(0.5, 0.0, 1.0).is_healthy());
        assert!(
            FaultPlan::healthy(0).with_link_faults(1.0, 0.5, 1.0).is_healthy(),
            "flapping to full bandwidth degrades nothing"
        );
        assert!(FaultPlan::chaos(3, 0.5).link.is_some());
    }

    #[test]
    #[should_panic(expected = "bandwidth factor must be in (0, 1]")]
    fn link_fault_factor_out_of_range_panics() {
        FaultPlan::healthy(0).with_link_faults(1.5, 0.0, 1.0);
    }

    #[test]
    fn site_key_separates_names() {
        assert_ne!(site_key("grid-search"), site_key("microbench"));
        assert_eq!(site_key("grid-search"), site_key("grid-search"));
        // derive_seed gives distinct streams per site word.
        assert_ne!(derive_seed(7, &[0]), derive_seed(7, &[1]));
        assert_ne!(derive_seed(7, &[0]), derive_seed(8, &[0]));
    }

    #[test]
    #[should_panic(expected = "sum to at most 1")]
    fn worker_fault_probs_must_sum_to_one() {
        FaultPlan::healthy(0).with_worker_faults(0.5, 0.5, 0.5);
    }
}
