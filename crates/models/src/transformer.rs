//! Transformer encoder training-iteration graph (Vaswani et al., 2017) —
//! the high-GPU-utilization NLP workload of Fig. 1.

use dlperf_gpusim::MemcpyKind;
use dlperf_graph::{Graph, OpKind, TensorId, TensorMeta};

use crate::autodiff::Tape;

/// Transformer encoder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerConfig {
    /// Samples per batch.
    pub batch: u64,
    /// Tokens per sample.
    pub seq_len: u64,
    /// Model width.
    pub d_model: u64,
    /// Attention heads (must divide `d_model`).
    pub heads: u64,
    /// Feed-forward hidden width.
    pub ff: u64,
    /// Encoder layers.
    pub layers: u64,
    /// Token vocabulary size (embedding-table rows).
    pub vocab: u64,
}

impl TransformerConfig {
    /// The base encoder: 6 layers, d_model 512, 8 heads, FF 2048, seq 128.
    pub fn base(batch: u64) -> Self {
        TransformerConfig {
            batch,
            seq_len: 128,
            d_model: 512,
            heads: 8,
            ff: 2048,
            layers: 6,
            vocab: 30_522,
        }
    }

    /// Builds the training-iteration graph.
    ///
    /// # Panics
    /// Panics if `heads` does not divide `d_model` or any dimension is zero.
    pub fn build(&self) -> Graph {
        assert!(self.batch > 0 && self.seq_len > 0 && self.layers > 0, "dims must be positive");
        assert_eq!(self.d_model % self.heads, 0, "heads must divide d_model");
        let (b, s, d, h) = (self.batch, self.seq_len, self.d_model, self.heads);
        let bs = b * s;
        let bh = b * h;
        let dh = d / h;

        let mut g = Graph::new("Transformer");
        let mut tape = Tape::new();

        // Token ids H2D + embedding lookup.
        let ids_cpu = g.add_tensor(TensorMeta::index(&[bs, 1]));
        let ids = g.add_tensor(TensorMeta::index(&[bs, 1]));
        g.add_node("input::to_ids", OpKind::To { kind: MemcpyKind::HostToDevice }, vec![ids_cpu], vec![ids]);
        let emb_w = g.add_tensor(TensorMeta::weight(&[self.vocab, d]));
        let emb_out = g.add_tensor(TensorMeta::activation(&[bs, d]));
        g.add_node("embedding", OpKind::EmbeddingBag, vec![emb_w, ids], vec![emb_out]);

        let act = |g: &mut Graph, shape: &[u64]| g.add_tensor(TensorMeta::activation(shape));

        let mut x = emb_out;
        for layer in 0..self.layers {
            let p = |n: &str| format!("enc{layer}::{n}");

            // Self-attention projections.
            let proj = |g: &mut Graph, tape: &mut Tape, name: &str, input: TensorId, out_f: u64| {
                let w = g.add_tensor(TensorMeta::weight(&[out_f, d]));
                let bias = g.add_tensor(TensorMeta::weight(&[out_f]));
                let y = g.add_tensor(TensorMeta::activation(&[bs, out_f]));
                tape.linear(g, name, input, w, bias, y);
                y
            };
            let q = proj(&mut g, &mut tape, &p("q_proj"), x, d);
            let k = proj(&mut g, &mut tape, &p("k_proj"), x, d);
            let v = proj(&mut g, &mut tape, &p("v_proj"), x, d);

            let q3 = act(&mut g, &[bh, s, dh]);
            tape.reshape(&mut g, &p("q_heads"), q, q3);
            let k3 = act(&mut g, &[bh, s, dh]);
            tape.reshape(&mut g, &p("k_heads"), k, k3);
            let kt = act(&mut g, &[bh, dh, s]);
            tape.unary(&mut g, &p("k_transpose"), OpKind::Transpose, OpKind::Transpose, k3, kt, vec![]);
            let v3 = act(&mut g, &[bh, s, dh]);
            tape.reshape(&mut g, &p("v_heads"), v, v3);

            let scores = act(&mut g, &[bh, s, s]);
            tape.bmm(&mut g, &p("qk_bmm"), q3, kt, scores);
            let attn = act(&mut g, &[bh, s, s]);
            tape.unary(&mut g, &p("softmax"), OpKind::Softmax, OpKind::SoftmaxBackward, scores, attn, vec![attn]);
            let ctx = act(&mut g, &[bh, s, dh]);
            tape.bmm(&mut g, &p("av_bmm"), attn, v3, ctx);
            let ctx2 = act(&mut g, &[bs, d]);
            tape.reshape(&mut g, &p("merge_heads"), ctx, ctx2);
            let attn_out = proj(&mut g, &mut tape, &p("out_proj"), ctx2, d);

            let res1 = act(&mut g, &[bs, d]);
            tape.add(&mut g, &p("residual1"), x, attn_out, res1);
            let ln1 = act(&mut g, &[bs, d]);
            tape.unary(&mut g, &p("layer_norm1"), OpKind::LayerNorm, OpKind::LayerNormBackward, res1, ln1, vec![res1]);

            // Feed-forward.
            let ff_w1 = g.add_tensor(TensorMeta::weight(&[self.ff, d]));
            let ff_b1 = g.add_tensor(TensorMeta::weight(&[self.ff]));
            let ff_h = act(&mut g, &[bs, self.ff]);
            tape.linear(&mut g, &p("ff1"), ln1, ff_w1, ff_b1, ff_h);
            let gelu = act(&mut g, &[bs, self.ff]);
            tape.unary(&mut g, &p("gelu"), OpKind::Gelu, OpKind::GeluBackward, ff_h, gelu, vec![ff_h]);
            let ff_w2 = g.add_tensor(TensorMeta::weight(&[d, self.ff]));
            let ff_b2 = g.add_tensor(TensorMeta::weight(&[d]));
            let ff_out = act(&mut g, &[bs, d]);
            tape.linear(&mut g, &p("ff2"), gelu, ff_w2, ff_b2, ff_out);

            let res2 = act(&mut g, &[bs, d]);
            tape.add(&mut g, &p("residual2"), ln1, ff_out, res2);
            let ln2 = act(&mut g, &[bs, d]);
            tape.unary(&mut g, &p("layer_norm2"), OpKind::LayerNorm, OpKind::LayerNormBackward, res2, ln2, vec![res2]);
            x = ln2;
        }

        // LM head + loss.
        let head_w = g.add_tensor(TensorMeta::weight(&[self.vocab, d]));
        let head_b = g.add_tensor(TensorMeta::weight(&[self.vocab]));
        let logits = act(&mut g, &[bs, self.vocab]);
        tape.linear(&mut g, "lm_head", x, head_w, head_b, logits);
        let probs = act(&mut g, &[bs, self.vocab]);
        tape.unary(&mut g, "softmax_out", OpKind::Softmax, OpKind::SoftmaxBackward, logits, probs, vec![probs]);
        let labels = g.add_tensor(TensorMeta::activation(&[bs, self.vocab]));
        let loss = g.add_tensor(TensorMeta::activation(&[]));
        g.add_node("loss::mse_loss", OpKind::MseLoss, vec![probs, labels], vec![loss]);
        let g_probs = act(&mut g, &[bs, self.vocab]);
        g.add_node("loss::mse_loss_backward", OpKind::MseLossBackward, vec![loss, probs, labels], vec![g_probs]);

        let mut param_grads = Vec::new();
        let grads = tape.backward(&mut g, (probs, g_probs), &mut param_grads);

        // Token embedding backward (sparse update, fused SGD).
        if let Some(&g_emb) = grads.get(&emb_out) {
            g.add_node("embedding_backward", OpKind::EmbeddingBagBackward, vec![g_emb, emb_w, ids], vec![]);
        }
        g.add_node("optimizer::step", OpKind::OptimizerStep, param_grads, vec![]);

        debug_assert_eq!(g.validate(), Ok(()));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_graph::lower;
    use dlperf_gpusim::KernelFamily;

    #[test]
    fn builds_valid_graph() {
        let g = TransformerConfig::base(16).build();
        assert!(g.validate().is_ok());
        assert!(lower::lower_graph(&g).is_ok());
    }

    #[test]
    fn gemm_dominates_flops() {
        let g = TransformerConfig::base(16).build();
        let (mut gemm, mut total) = (0.0, 0.0);
        for (_, ks) in lower::lower_graph(&g).unwrap() {
            for k in ks {
                total += k.flops();
                if k.family() == KernelFamily::Gemm {
                    gemm += k.flops();
                }
            }
        }
        assert!(gemm / total > 0.9, "GEMM share {}", gemm / total);
    }

    #[test]
    fn layer_count_scales_nodes() {
        let small = TransformerConfig { layers: 2, ..TransformerConfig::base(4) }.build();
        let big = TransformerConfig { layers: 4, ..TransformerConfig::base(4) }.build();
        assert!(big.node_count() > small.node_count());
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn bad_heads_panics() {
        TransformerConfig { heads: 7, ..TransformerConfig::base(4) }.build();
    }
}
