//! # dlperf-models
//!
//! Execution-graph builders for the workloads the paper evaluates:
//!
//! * [`dlrm`] — the DLRM training iteration (forward, backward, optimizer)
//!   with the three open-source configurations of Table III
//!   (*DLRM_default*, *DLRM_MLPerf*, *DLRM_DDP*);
//! * [`cv`] — ResNet-50 and Inception-V3 training iterations (Fig. 10);
//! * [`transformer`] — a Transformer encoder training iteration (Fig. 1);
//! * [`criteo`] — a synthetic Criteo-like categorical index generator
//!   standing in for the Kaggle Criteo dataset.
//!
//! Every builder returns a validated [`dlperf_graph::Graph`] whose
//! activation tensors are batch-annotated, so the *resize* transformation
//! can retarget any captured graph to a new batch size.
//!
//! ## Example
//!
//! ```
//! use dlperf_models::dlrm::DlrmConfig;
//!
//! let graph = DlrmConfig::default_config(2048).build();
//! assert!(graph.validate().is_ok());
//! assert!(graph.node_count() > 30);
//! ```

pub mod autodiff;
pub mod common;
pub mod criteo;
pub mod cv;
pub mod dlrm;
pub mod rm_zoo;
pub mod transformer;
pub mod zoo;

pub use dlrm::DlrmConfig;
