//! DLRM training-iteration graphs.
//!
//! Builds the full per-batch execution graph of DLRM training — host-to-
//! device input copies, bottom MLP, (optionally batched) embedding lookups,
//! dot feature interaction (cat → reshape → transpose → bmm → tril → cat),
//! top MLP, sigmoid, MSE loss, the whole backward pass, and the optimizer
//! step — with the three open-source configurations of Table III.

use dlperf_gpusim::MemcpyKind;
use dlperf_graph::{Graph, OpKind, TensorId, TensorMeta};

use crate::common::{mlp_backward, mlp_forward};
use crate::criteo;

/// Configuration of a DLRM model (Table III columns plus batch size).
#[derive(Debug, Clone, PartialEq)]
pub struct DlrmConfig {
    /// Workload name, e.g. `"DLRM_default"`.
    pub name: String,
    /// Per-batch sample count.
    pub batch_size: u64,
    /// Bottom-MLP sizes including the dense input dimension as the first
    /// entry (the DLRM repository's `arch-mlp-bot` convention).
    pub bottom_mlp: Vec<u64>,
    /// Top-MLP hidden/output sizes; the input dimension is derived from the
    /// feature interaction.
    pub top_mlp: Vec<u64>,
    /// Row counts of the embedding tables (`EL Tables` × `Rows`).
    pub rows_per_table: Vec<u64>,
    /// Embedding vector length (`EL Dim`).
    pub embedding_dim: u64,
    /// Lookups per output vector (`L`, the pooling factor).
    pub lookups_per_table: u64,
    /// Whether to use the fused batched embedding op (Tulloch's kernel,
    /// which the paper integrates into DLRM) instead of per-table
    /// `embedding_bag` ops.
    pub batched_embedding: bool,
    /// Host-only accessory ops inserted before each device op, modelling the
    /// eager dispatcher's `view`/`empty`/`as_strided` swarm seen in real
    /// traces (0 disables; the default of 2 matches typical DLRM traces).
    pub host_accessory_ops: usize,
}

impl DlrmConfig {
    /// *DLRM_default*: Bot 512-512-64, 8 tables × 1 M rows, dim 64,
    /// Top 1024-1024-1024-1.
    pub fn default_config(batch_size: u64) -> Self {
        DlrmConfig {
            name: "DLRM_default".into(),
            batch_size,
            bottom_mlp: vec![512, 512, 64],
            top_mlp: vec![1024, 1024, 1024, 1],
            rows_per_table: vec![1_000_000; 8],
            embedding_dim: 64,
            lookups_per_table: 10,
            batched_embedding: true,
            host_accessory_ops: 2,
        }
    }

    /// *DLRM_MLPerf*: Bot 13-512-256-128, the 26 Criteo Kaggle tables (up
    /// to 14 M rows), Top 1024-1024-512-256-1, one-hot lookups.
    ///
    /// As in the paper, the sparse feature size is reduced from 128 to 32
    /// (so the model fits on the TITAN Xp and P100); the bottom MLP's last
    /// layer shrinks accordingly to keep the dot interaction well-formed.
    pub fn mlperf_config(batch_size: u64) -> Self {
        DlrmConfig {
            name: "DLRM_MLPerf".into(),
            batch_size,
            bottom_mlp: vec![13, 512, 256, 32],
            top_mlp: vec![1024, 1024, 512, 256, 1],
            rows_per_table: criteo::KAGGLE_TABLE_ROWS.to_vec(),
            embedding_dim: 32,
            lookups_per_table: 1,
            batched_embedding: true,
            host_accessory_ops: 2,
        }
    }

    /// *DLRM_DDP*: Bot 128-128-128-128, 8 tables × 80 k rows, dim 128,
    /// Top 512-512-512-256-1.
    pub fn ddp_config(batch_size: u64) -> Self {
        DlrmConfig {
            name: "DLRM_DDP".into(),
            batch_size,
            bottom_mlp: vec![128, 128, 128, 128],
            top_mlp: vec![512, 512, 512, 256, 1],
            rows_per_table: vec![80_000; 8],
            embedding_dim: 128,
            lookups_per_table: 10,
            batched_embedding: true,
            host_accessory_ops: 2,
        }
    }

    /// The three paper configurations at one batch size, in Table III order.
    pub fn paper_configs(batch_size: u64) -> Vec<Self> {
        vec![
            Self::default_config(batch_size),
            Self::mlperf_config(batch_size),
            Self::ddp_config(batch_size),
        ]
    }

    /// Number of embedding tables.
    pub fn num_tables(&self) -> u64 {
        self.rows_per_table.len() as u64
    }

    /// Average table row count (the paper's performance model uses the mean
    /// for the MLPerf model's non-constant table sizes).
    pub fn avg_rows(&self) -> u64 {
        (self.rows_per_table.iter().sum::<u64>() as f64 / self.rows_per_table.len() as f64)
            .round() as u64
    }

    /// Switches between batched and per-table embedding ops (builder style).
    pub fn with_batched_embedding(mut self, batched: bool) -> Self {
        self.batched_embedding = batched;
        self
    }

    /// Total embedding parameter count.
    pub fn embedding_params(&self) -> u64 {
        self.rows_per_table.iter().sum::<u64>() * self.embedding_dim
    }

    /// Builds the training-iteration execution graph.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (no tables, or the bottom
    /// MLP output differs from the embedding dimension, which the dot
    /// interaction requires).
    pub fn build(&self) -> Graph {
        self.build_graph(true)
    }

    /// Builds the forward-only (inference) execution graph: same forward
    /// structure, no loss, backward, or optimizer. At serving batch sizes
    /// this is the most overhead-dominated workload of all.
    ///
    /// # Panics
    /// Same conditions as [`DlrmConfig::build`].
    pub fn build_inference(&self) -> Graph {
        self.build_graph(false)
    }

    fn build_graph(&self, training: bool) -> Graph {
        assert!(!self.rows_per_table.is_empty(), "DLRM needs at least one embedding table");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert_eq!(
            *self.bottom_mlp.last().expect("bottom MLP non-empty"),
            self.embedding_dim,
            "dot interaction requires bottom-MLP output == embedding dim"
        );

        let b = self.batch_size;
        let t = self.num_tables();
        let d = self.embedding_dim;
        let l = self.lookups_per_table;
        let n_int = t + 1; // interaction features: T tables + bottom output
        let tri = n_int * (n_int - 1) / 2;

        let mut g = Graph::new(self.name.clone());

        // ---- Input copies (the `to` ops of the breakdown). ----
        let dense_cpu =
            g.add_tensor(TensorMeta::activation(&[b, self.bottom_mlp[0]]).with_batch_dim(0));
        let dense = g.add_tensor(TensorMeta::activation(&[b, self.bottom_mlp[0]]).with_batch_dim(0));
        g.add_node("input::to_dense", OpKind::To { kind: MemcpyKind::HostToDevice }, vec![dense_cpu], vec![dense]);
        let idx_cpu = g.add_tensor(TensorMeta::index(&[t, b, l]).with_batch_dim(1));
        let idx = g.add_tensor(TensorMeta::index(&[t, b, l]).with_batch_dim(1));
        g.add_node("input::to_indices", OpKind::To { kind: MemcpyKind::HostToDevice }, vec![idx_cpu], vec![idx]);
        let labels_cpu = g.add_tensor(TensorMeta::activation(&[b, 1]).with_batch_dim(0));
        let labels = g.add_tensor(TensorMeta::activation(&[b, 1]).with_batch_dim(0));
        g.add_node("input::to_labels", OpKind::To { kind: MemcpyKind::HostToDevice }, vec![labels_cpu], vec![labels]);

        // ---- Bottom MLP. ----
        let bot = mlp_forward(&mut g, "bot", dense, b, &self.bottom_mlp, true);

        // ---- Embedding lookups. ----
        let mut table_weights: Vec<TensorId> = Vec::new();
        let mut table_indices: Vec<TensorId> = Vec::new();
        let emb_out; // (b, t*d)
        let batched_weights: Option<TensorId>;
        if self.batched_embedding {
            let w = g.add_tensor(TensorMeta::weight(&[t, self.avg_rows(), d]));
            let out = g.add_tensor(TensorMeta::activation(&[b, t * d]).with_batch_dim(0));
            g.add_node("emb::batched_embedding", OpKind::BatchedEmbedding, vec![w, idx], vec![out]);
            emb_out = out;
            batched_weights = Some(w);
        } else {
            let mut outs = Vec::new();
            for (i, &rows) in self.rows_per_table.iter().enumerate() {
                let w = g.add_tensor(TensorMeta::weight(&[rows, d]));
                let per_idx = g.add_tensor(TensorMeta::index(&[b, l]).with_batch_dim(0));
                g.add_node(format!("emb::slice_indices_{i}"), OpKind::Reshape, vec![idx], vec![per_idx]);
                let out = g.add_tensor(TensorMeta::activation(&[b, d]).with_batch_dim(0));
                g.add_node(format!("emb::embedding_bag_{i}"), OpKind::EmbeddingBag, vec![w, per_idx], vec![out]);
                outs.push(out);
                table_weights.push(w);
                table_indices.push(per_idx);
            }
            let out = g.add_tensor(TensorMeta::activation(&[b, t * d]).with_batch_dim(0));
            g.add_node("emb::cat", OpKind::Cat { dim: 1 }, outs, vec![out]);
            emb_out = out;
            batched_weights = None;
        }

        // ---- Dot feature interaction. ----
        let cat_all = g.add_tensor(TensorMeta::activation(&[b, n_int * d]).with_batch_dim(0));
        g.add_node("int::cat", OpKind::Cat { dim: 1 }, vec![bot.output, emb_out], vec![cat_all]);
        let t3 = g.add_tensor(TensorMeta::activation(&[b, n_int, d]).with_batch_dim(0));
        g.add_node("int::reshape", OpKind::Reshape, vec![cat_all], vec![t3]);
        let t3t = g.add_tensor(TensorMeta::activation(&[b, d, n_int]).with_batch_dim(0));
        g.add_node("int::transpose", OpKind::Transpose, vec![t3], vec![t3t]);
        let z = g.add_tensor(TensorMeta::activation(&[b, n_int, n_int]).with_batch_dim(0));
        g.add_node("int::bmm", OpKind::Bmm, vec![t3, t3t], vec![z]);
        let zflat = g.add_tensor(TensorMeta::activation(&[b, tri]).with_batch_dim(0));
        g.add_node("int::tril", OpKind::Tril, vec![z], vec![zflat]);
        let top_in = g.add_tensor(TensorMeta::activation(&[b, d + tri]).with_batch_dim(0));
        g.add_node("int::cat_out", OpKind::Cat { dim: 1 }, vec![bot.output, zflat], vec![top_in]);

        // ---- Top MLP + sigmoid + loss. ----
        let mut top_sizes = vec![d + tri];
        top_sizes.extend_from_slice(&self.top_mlp);
        let top = mlp_forward(&mut g, "top", top_in, b, &top_sizes, false);
        let pred = g.add_tensor(TensorMeta::activation(&[b, 1]).with_batch_dim(0));
        g.add_node("loss::sigmoid", OpKind::Sigmoid, vec![top.output], vec![pred]);
        if !training {
            crate::common::add_host_accessories(&mut g, self.host_accessory_ops);
            debug_assert_eq!(g.validate(), Ok(()));
            return g;
        }
        let loss = g.add_tensor(TensorMeta::activation(&[]));
        g.add_node("loss::mse_loss", OpKind::MseLoss, vec![pred, labels], vec![loss]);

        // ================= Backward pass =================
        let mut param_grads: Vec<TensorId> = Vec::new();

        let g_pred = g.add_tensor(TensorMeta::activation(&[b, 1]).with_batch_dim(0));
        g.add_node("loss::mse_loss_backward", OpKind::MseLossBackward, vec![loss, pred, labels], vec![g_pred]);
        let g_top_out = g.add_tensor(TensorMeta::activation(&[b, 1]).with_batch_dim(0));
        g.add_node("loss::sigmoid_backward", OpKind::SigmoidBackward, vec![g_pred, pred], vec![g_top_out]);

        let g_top_in = mlp_backward(&mut g, "top", &top, b, g_top_out, &mut param_grads);

        // Interaction backward.
        let g_bot_direct = g.add_tensor(TensorMeta::activation(&[b, d]).with_batch_dim(0));
        let g_zflat = g.add_tensor(TensorMeta::activation(&[b, tri]).with_batch_dim(0));
        g.add_node("int::cat_out_backward", OpKind::CatBackward { dim: 1 }, vec![g_top_in], vec![g_bot_direct, g_zflat]);
        let g_z = g.add_tensor(TensorMeta::activation(&[b, n_int, n_int]).with_batch_dim(0));
        g.add_node("int::tril_backward", OpKind::TrilBackward, vec![g_zflat], vec![g_z]);
        let g_t3 = g.add_tensor(TensorMeta::activation(&[b, n_int, d]).with_batch_dim(0));
        let g_t3t = g.add_tensor(TensorMeta::activation(&[b, d, n_int]).with_batch_dim(0));
        g.add_node("int::bmm_backward", OpKind::BmmBackward, vec![g_z, t3, t3t], vec![g_t3, g_t3t]);
        let g_t3_from_t = g.add_tensor(TensorMeta::activation(&[b, n_int, d]).with_batch_dim(0));
        g.add_node("int::transpose_backward", OpKind::Transpose, vec![g_t3t], vec![g_t3_from_t]);
        let g_t3_sum = g.add_tensor(TensorMeta::activation(&[b, n_int, d]).with_batch_dim(0));
        g.add_node("int::add_grads", OpKind::Add, vec![g_t3, g_t3_from_t], vec![g_t3_sum]);
        let g_cat_all = g.add_tensor(TensorMeta::activation(&[b, n_int * d]).with_batch_dim(0));
        g.add_node("int::reshape_backward", OpKind::Reshape, vec![g_t3_sum], vec![g_cat_all]);
        let g_bot_from_int = g.add_tensor(TensorMeta::activation(&[b, d]).with_batch_dim(0));
        let g_emb = g.add_tensor(TensorMeta::activation(&[b, t * d]).with_batch_dim(0));
        g.add_node("int::cat_backward", OpKind::CatBackward { dim: 1 }, vec![g_cat_all], vec![g_bot_from_int, g_emb]);
        let g_bot = g.add_tensor(TensorMeta::activation(&[b, d]).with_batch_dim(0));
        g.add_node("int::add_bot_grads", OpKind::Add, vec![g_bot_direct, g_bot_from_int], vec![g_bot]);

        // Embedding backward (fused SGD update, so no param grads emitted).
        if self.batched_embedding {
            let w = batched_weights.expect("batched weights present");
            g.add_node(
                "emb::batched_embedding_backward",
                OpKind::BatchedEmbeddingBackward,
                vec![w, idx, g_emb],
                vec![],
            );
        } else {
            let mut slices = Vec::new();
            for _ in 0..t {
                slices.push(g.add_tensor(TensorMeta::activation(&[b, d]).with_batch_dim(0)));
            }
            g.add_node("emb::cat_backward", OpKind::CatBackward { dim: 1 }, vec![g_emb], slices.clone());
            for (i, ((w, per_idx), slice)) in
                table_weights.iter().zip(&table_indices).zip(&slices).enumerate()
            {
                g.add_node(
                    format!("emb::embedding_bag_backward_{i}"),
                    OpKind::EmbeddingBagBackward,
                    vec![*slice, *w, *per_idx],
                    vec![],
                );
            }
        }

        // Bottom MLP backward.
        mlp_backward(&mut g, "bot", &bot, b, g_bot, &mut param_grads);

        // Optimizer step over the dense parameters (one element-wise kernel
        // per parameter, driven by the gradients for data dependencies).
        g.add_node("optimizer::step", OpKind::OptimizerStep, param_grads, vec![]);

        crate::common::add_host_accessories(&mut g, self.host_accessory_ops);
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_graph::lower;
    use dlperf_gpusim::KernelFamily;

    #[test]
    fn all_paper_configs_build_valid_graphs() {
        for cfg in DlrmConfig::paper_configs(2048) {
            let g = cfg.build();
            assert!(g.validate().is_ok(), "{} invalid", cfg.name);
            assert!(lower::lower_graph(&g).is_ok(), "{} fails to lower", cfg.name);
        }
    }

    #[test]
    fn dominating_kernel_families_present() {
        let g = DlrmConfig::default_config(2048).build();
        let mut fams = std::collections::HashSet::new();
        for (_, ks) in lower::lower_graph(&g).unwrap() {
            for k in ks {
                fams.insert(k.family());
            }
        }
        // The paper's six dominating kernel families plus element-wise.
        for f in [
            KernelFamily::Gemm,
            KernelFamily::EmbeddingForward,
            KernelFamily::EmbeddingBackward,
            KernelFamily::Concat,
            KernelFamily::Memcpy,
            KernelFamily::Transpose,
            KernelFamily::TrilForward,
            KernelFamily::TrilBackward,
            KernelFamily::Elementwise,
        ] {
            assert!(fams.contains(&f), "missing family {f}");
        }
    }

    #[test]
    fn unbatched_variant_has_per_table_ops() {
        let cfg = DlrmConfig::default_config(512).with_batched_embedding(false);
        let g = cfg.build();
        let bags = g.nodes().iter().filter(|n| n.op == OpKind::EmbeddingBag).count();
        assert_eq!(bags, 8);
        let bag_bwd =
            g.nodes().iter().filter(|n| n.op == OpKind::EmbeddingBagBackward).count();
        assert_eq!(bag_bwd, 8);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn batched_variant_has_single_embedding_op() {
        let g = DlrmConfig::default_config(512).build();
        let batched = g.nodes().iter().filter(|n| n.op == OpKind::BatchedEmbedding).count();
        assert_eq!(batched, 1);
    }

    #[test]
    fn mlperf_uses_criteo_cardinalities() {
        let cfg = DlrmConfig::mlperf_config(2048);
        assert_eq!(cfg.num_tables(), 26);
        assert!(cfg.rows_per_table.iter().any(|&r| r > 10_000_000));
        assert_eq!(cfg.lookups_per_table, 1);
    }

    #[test]
    fn resize_works_on_built_graph() {
        let mut g = DlrmConfig::ddp_config(256).build();
        let old = dlperf_graph::transform::resize_batch(&mut g, 1024).unwrap();
        assert_eq!(old, 256);
        assert!(g.validate().is_ok());
        assert!(lower::lower_graph(&g).is_ok());
    }

    #[test]
    #[should_panic(expected = "bottom-MLP output == embedding dim")]
    fn mismatched_interaction_dims_panic() {
        let mut cfg = DlrmConfig::default_config(64);
        cfg.embedding_dim = 32;
        cfg.build();
    }

    #[test]
    fn inference_graph_is_forward_only() {
        let cfg = DlrmConfig::default_config(64);
        let inf = cfg.build_inference();
        assert!(inf.validate().is_ok());
        assert!(lower::lower_graph(&inf).is_ok());
        assert!(!inf.nodes().iter().any(|n| n.op.is_backward()));
        assert!(!inf.nodes().iter().any(|n| n.op == OpKind::OptimizerStep));
        assert!(inf.node_count() < cfg.build().node_count() / 2 + 10);
    }

    #[test]
    fn optimizer_step_depends_on_all_mlp_grads() {
        let cfg = DlrmConfig::default_config(128);
        let g = cfg.build();
        let opt = g.nodes().iter().find(|n| n.op == OpKind::OptimizerStep).unwrap();
        // bottom: 2 layers, top: 4 layers => 6 weight grads + 6 bias grads.
        assert_eq!(opt.inputs.len(), 2 * ((cfg.bottom_mlp.len() - 1) + cfg.top_mlp.len()));
    }
}
