//! Additional recommendation models beyond DLRM.
//!
//! The paper argues DLRM's embedding-lookup + MLP paradigm "generalizes to
//! RM design"; these builders exercise that claim on two other widely
//! deployed recommenders — Deep & Cross Network (Wang et al., ADKDD'17) and
//! Wide & Deep (Cheng et al., DLRS'16) — so the same pipeline prices them
//! without any new kernel models.

use dlperf_gpusim::MemcpyKind;
use dlperf_graph::{Graph, OpKind, TensorId, TensorMeta};

use crate::autodiff::Tape;

/// Configuration shared by the extra RMs.
#[derive(Debug, Clone, PartialEq)]
pub struct RmConfig {
    /// Per-batch sample count.
    pub batch: u64,
    /// Dense-feature dimension.
    pub dense_features: u64,
    /// Embedding tables: `(rows, dim)` — dims must all match for DCN's
    /// shared input stack.
    pub tables: Vec<(u64, u64)>,
    /// Lookups per sample per table.
    pub lookups: u64,
    /// Deep-branch MLP hidden sizes.
    pub deep_mlp: Vec<u64>,
    /// DCN only: number of cross layers.
    pub cross_layers: u64,
}

impl RmConfig {
    /// A mid-size CTR configuration (8 tables × 100 k rows × dim 16).
    pub fn ctr_default(batch: u64) -> Self {
        RmConfig {
            batch,
            dense_features: 13,
            tables: vec![(100_000, 16); 8],
            lookups: 1,
            deep_mlp: vec![256, 128, 64],
            cross_layers: 4,
        }
    }
}

/// Shared front end: input copies, per-table embedding lookups, and the
/// concat of dense + embedded features. Returns `(x0, x0_dim)`.
fn feature_stack(g: &mut Graph, tape: &mut Tape, cfg: &RmConfig) -> (TensorId, u64) {
    let b = cfg.batch;
    let dense_cpu = g.add_tensor(TensorMeta::activation(&[b, cfg.dense_features]).with_batch_dim(0));
    let dense = g.add_tensor(TensorMeta::activation(&[b, cfg.dense_features]).with_batch_dim(0));
    g.add_node("input::to_dense", OpKind::To { kind: MemcpyKind::HostToDevice }, vec![dense_cpu], vec![dense]);

    let mut parts = vec![dense];
    let mut dim = cfg.dense_features;
    for (i, &(rows, d)) in cfg.tables.iter().enumerate() {
        let w = g.add_tensor(TensorMeta::weight(&[rows, d]));
        let idx_cpu = g.add_tensor(TensorMeta::index(&[b, cfg.lookups]).with_batch_dim(0));
        let idx = g.add_tensor(TensorMeta::index(&[b, cfg.lookups]).with_batch_dim(0));
        g.add_node(
            format!("input::to_indices_{i}"),
            OpKind::To { kind: MemcpyKind::HostToDevice },
            vec![idx_cpu],
            vec![idx],
        );
        let out = g.add_tensor(TensorMeta::activation(&[b, d]).with_batch_dim(0));
        g.add_node(format!("emb::embedding_bag_{i}"), OpKind::EmbeddingBag, vec![w, idx], vec![out]);
        parts.push(out);
        dim += d;
    }
    let x0 = g.add_tensor(TensorMeta::activation(&[b, dim]).with_batch_dim(0));
    tape.cat(g, "features::cat", parts, x0, 1);
    (x0, dim)
}

/// Deep MLP branch on the tape. Returns its output tensor and width.
fn deep_branch(
    g: &mut Graph,
    tape: &mut Tape,
    x: TensorId,
    in_dim: u64,
    sizes: &[u64],
    batch: u64,
) -> (TensorId, u64) {
    let mut h = x;
    let mut prev = in_dim;
    for (i, &width) in sizes.iter().enumerate() {
        let w = g.add_tensor(TensorMeta::weight(&[width, prev]));
        let bias = g.add_tensor(TensorMeta::weight(&[width]));
        let y = g.add_tensor(TensorMeta::activation(&[batch, width]).with_batch_dim(0));
        tape.linear(g, &format!("deep::fc_{i}"), h, w, bias, y);
        let a = g.add_tensor(TensorMeta::activation(&[batch, width]).with_batch_dim(0));
        tape.unary(g, &format!("deep::relu_{i}"), OpKind::Relu, OpKind::ReluBackward, y, a, vec![a]);
        h = a;
        prev = width;
    }
    (h, prev)
}

/// Head: logit projection, sigmoid, MSE loss, backward, optimizer.
fn finish(g: &mut Graph, mut tape: Tape, x: TensorId, in_dim: u64, batch: u64) {
    let w = g.add_tensor(TensorMeta::weight(&[1, in_dim]));
    let bias = g.add_tensor(TensorMeta::weight(&[1]));
    let logit = g.add_tensor(TensorMeta::activation(&[batch, 1]).with_batch_dim(0));
    tape.linear(g, "head::fc", x, w, bias, logit);
    let prob = g.add_tensor(TensorMeta::activation(&[batch, 1]).with_batch_dim(0));
    tape.unary(g, "head::sigmoid", OpKind::Sigmoid, OpKind::SigmoidBackward, logit, prob, vec![prob]);
    let labels = g.add_tensor(TensorMeta::activation(&[batch, 1]).with_batch_dim(0));
    let loss = g.add_tensor(TensorMeta::activation(&[]));
    g.add_node("loss::mse_loss", OpKind::MseLoss, vec![prob, labels], vec![loss]);
    let g_prob = g.add_tensor(TensorMeta::activation(&[batch, 1]).with_batch_dim(0));
    g.add_node("loss::mse_loss_backward", OpKind::MseLossBackward, vec![loss, prob, labels], vec![g_prob]);

    let mut param_grads = Vec::new();
    let grads = tape.backward(g, (prob, g_prob), &mut param_grads);
    // Sparse embedding updates happen in their backward ops; here attach
    // backward ops for every embedding output that received a gradient.
    let emb_nodes: Vec<_> = g
        .nodes()
        .iter()
        .filter(|n| n.op == OpKind::EmbeddingBag)
        .map(|n| (n.inputs.clone(), n.outputs[0]))
        .collect();
    for (inputs, out) in emb_nodes {
        if let Some(&g_out) = grads.get(&out) {
            g.add_node(
                "emb::embedding_bag_backward",
                OpKind::EmbeddingBagBackward,
                vec![g_out, inputs[0], inputs[1]],
                vec![],
            );
        }
    }
    g.add_node("optimizer::step", OpKind::OptimizerStep, param_grads, vec![]);
}

/// Builds a Deep & Cross Network training iteration: the feature stack
/// feeds both a cross tower (`x_{l+1} = x0 ⊙ (x_l · w_l) + b_l + x_l`) and
/// a deep MLP tower, combined before the logit.
///
/// # Panics
/// Panics if the config has no tables or a zero batch.
pub fn dcn(cfg: &RmConfig) -> Graph {
    assert!(cfg.batch > 0 && !cfg.tables.is_empty(), "DCN needs a batch and tables");
    let b = cfg.batch;
    let mut g = Graph::new("DCN");
    let mut tape = Tape::new();
    let (x0, dim) = feature_stack(&mut g, &mut tape, cfg);

    // Cross tower.
    let mut xl = x0;
    for i in 0..cfg.cross_layers {
        // s = x_l · w (a skinny GEMM producing one scalar per sample).
        let w = g.add_tensor(TensorMeta::weight(&[1, dim]));
        let bias = g.add_tensor(TensorMeta::weight(&[1]));
        let s = g.add_tensor(TensorMeta::activation(&[b, 1]).with_batch_dim(0));
        tape.linear(&mut g, &format!("cross::matvec_{i}"), xl, w, bias, s);
        // x0 ⊙ s (broadcast multiply): element-wise over the full width.
        let scaled = g.add_tensor(TensorMeta::activation(&[b, dim]).with_batch_dim(0));
        tape.add(&mut g, &format!("cross::scale_{i}"), x0, s, scaled);
        // + x_l (residual).
        let next = g.add_tensor(TensorMeta::activation(&[b, dim]).with_batch_dim(0));
        tape.add(&mut g, &format!("cross::residual_{i}"), scaled, xl, next);
        xl = next;
    }

    // Deep tower + combine.
    let (deep, deep_dim) = deep_branch(&mut g, &mut tape, x0, dim, &cfg.deep_mlp, b);
    let combined = g.add_tensor(TensorMeta::activation(&[b, dim + deep_dim]).with_batch_dim(0));
    tape.cat(&mut g, "combine::cat", vec![xl, deep], combined, 1);
    finish(&mut g, tape, combined, dim + deep_dim, b);
    debug_assert_eq!(g.validate(), Ok(()));
    g
}

/// Builds a Wide & Deep training iteration: a wide sparse-linear part (a
/// dim-1 embedding lookup over a large cross-feature table) plus the deep
/// embedding-MLP part.
///
/// # Panics
/// Panics if the config has no tables or a zero batch.
pub fn wide_deep(cfg: &RmConfig) -> Graph {
    assert!(cfg.batch > 0 && !cfg.tables.is_empty(), "Wide&Deep needs a batch and tables");
    let b = cfg.batch;
    let mut g = Graph::new("WideDeep");
    let mut tape = Tape::new();

    // Wide part: scalar weights over a big cross-product table.
    let wide_table = g.add_tensor(TensorMeta::weight(&[5_000_000, 1]));
    let wide_idx_cpu = g.add_tensor(TensorMeta::index(&[b, 32]).with_batch_dim(0));
    let wide_idx = g.add_tensor(TensorMeta::index(&[b, 32]).with_batch_dim(0));
    g.add_node("input::to_wide_indices", OpKind::To { kind: MemcpyKind::HostToDevice }, vec![wide_idx_cpu], vec![wide_idx]);
    let wide_out = g.add_tensor(TensorMeta::activation(&[b, 1]).with_batch_dim(0));
    g.add_node("wide::embedding_bag", OpKind::EmbeddingBag, vec![wide_table, wide_idx], vec![wide_out]);

    // Deep part.
    let (x0, dim) = feature_stack(&mut g, &mut tape, cfg);
    let (deep, deep_dim) = deep_branch(&mut g, &mut tape, x0, dim, &cfg.deep_mlp, b);

    let combined = g.add_tensor(TensorMeta::activation(&[b, deep_dim + 1]).with_batch_dim(0));
    tape.cat(&mut g, "combine::cat", vec![deep, wide_out], combined, 1);
    finish(&mut g, tape, combined, deep_dim + 1, b);
    debug_assert_eq!(g.validate(), Ok(()));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_graph::lower;
    use dlperf_gpusim::KernelFamily;

    #[test]
    fn dcn_builds_and_lowers() {
        let g = dcn(&RmConfig::ctr_default(512));
        assert!(g.validate().is_ok());
        assert!(lower::lower_graph(&g).is_ok());
        // Cross layers present: 4 matvec AddMms named cross::matvec_*.
        assert_eq!(
            g.nodes().iter().filter(|n| n.name.starts_with("cross::matvec")).count(),
            4
        );
    }

    #[test]
    fn wide_deep_builds_and_lowers() {
        let g = wide_deep(&RmConfig::ctr_default(512));
        assert!(g.validate().is_ok());
        assert!(lower::lower_graph(&g).is_ok());
        // Wide table lookup + 8 deep tables, each with a backward.
        let fwd = g.nodes().iter().filter(|n| n.op == OpKind::EmbeddingBag).count();
        let bwd = g.nodes().iter().filter(|n| n.op == OpKind::EmbeddingBagBackward).count();
        assert_eq!(fwd, 9);
        assert!(bwd >= 8, "deep embeddings must have backward ops, got {bwd}");
    }

    #[test]
    fn rms_share_dlrm_kernel_families() {
        // No new kernel family is needed: the existing registry covers DCN
        // and Wide&Deep entirely (the paper's generality claim).
        let known = [
            KernelFamily::Gemm,
            KernelFamily::EmbeddingForward,
            KernelFamily::EmbeddingBackward,
            KernelFamily::Concat,
            KernelFamily::Memcpy,
            KernelFamily::Elementwise,
        ];
        for g in [dcn(&RmConfig::ctr_default(128)), wide_deep(&RmConfig::ctr_default(128))] {
            for (_, ks) in lower::lower_graph(&g).unwrap() {
                for k in ks {
                    assert!(known.contains(&k.family()), "unexpected family {} in {}", k.family(), g.name);
                }
            }
        }
    }

    #[test]
    fn both_resize_cleanly() {
        for mut g in [dcn(&RmConfig::ctr_default(256)), wide_deep(&RmConfig::ctr_default(256))] {
            dlperf_graph::transform::resize_batch(&mut g, 1024).unwrap();
            assert!(lower::lower_graph(&g).is_ok());
        }
    }
}
