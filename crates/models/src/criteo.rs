//! Synthetic Criteo-like categorical data.
//!
//! The paper trains *DLRM_MLPerf* on the Kaggle Criteo dataset. We have no
//! dataset here, but the performance model only depends on the index-stream
//! *statistics* (table cardinalities, lookups per sample, skew), so this
//! module provides the published Kaggle cardinalities plus a seeded
//! generator producing uniform or Zipf-distributed index batches.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

/// Cardinalities of the 26 categorical features of the Criteo Kaggle
/// display-advertising dataset (the embedding-table row counts of
/// *DLRM_MLPerf*; the largest is ≈10 M, "up to 14 M" with the full dataset).
pub const KAGGLE_TABLE_ROWS: [u64; 26] = [
    1_460, 583, 10_131_227, 2_202_608, 305, 24, 12_517, 633, 3, 93_145, 5_683, 8_351_593, 3_194,
    27, 14_992, 5_461_306, 10, 5_652, 2_173, 4, 7_046_547, 18, 15, 286_181, 105, 142_572,
];

/// Index-stream skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexDistribution {
    /// Uniform over the table.
    Uniform,
    /// Zipf with the given exponent (> 0); real CTR categorical features are
    /// heavily skewed.
    Zipf(f64),
}

/// A seeded generator of synthetic categorical index batches.
#[derive(Debug)]
pub struct IndexGenerator {
    rows_per_table: Vec<u64>,
    lookups: u64,
    distribution: IndexDistribution,
    rng: StdRng,
}

impl IndexGenerator {
    /// Creates a generator for the given tables, pooling factor, and skew.
    ///
    /// # Panics
    /// Panics if any table is empty, `lookups` is zero, or a non-positive
    /// Zipf exponent is requested.
    pub fn new(
        rows_per_table: &[u64],
        lookups: u64,
        distribution: IndexDistribution,
        seed: u64,
    ) -> Self {
        assert!(!rows_per_table.is_empty() && rows_per_table.iter().all(|&r| r > 0));
        assert!(lookups > 0, "lookups per sample must be positive");
        if let IndexDistribution::Zipf(s) = distribution {
            assert!(s > 0.0, "Zipf exponent must be positive");
        }
        IndexGenerator {
            rows_per_table: rows_per_table.to_vec(),
            lookups,
            distribution,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one batch: `indices[table][sample * lookups + j]`, each in
    /// `0..rows_per_table[table]`.
    pub fn batch(&mut self, batch_size: u64) -> Vec<Vec<u64>> {
        self.rows_per_table
            .clone()
            .iter()
            .map(|&rows| {
                (0..batch_size * self.lookups)
                    .map(|_| match self.distribution {
                        IndexDistribution::Uniform => self.rng.gen_range(0..rows),
                        IndexDistribution::Zipf(s) => {
                            let z = Zipf::new(rows, s).expect("valid zipf");
                            (z.sample(&mut self.rng) as u64).saturating_sub(1).min(rows - 1)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Fraction of *distinct* rows touched in a batch, per table — the
    /// locality statistic the embedding-lookup cache model depends on.
    pub fn distinct_fraction(&mut self, batch_size: u64) -> Vec<f64> {
        self.batch(batch_size)
            .into_iter()
            .map(|idx| {
                let total = idx.len() as f64;
                let mut unique = idx;
                unique.sort_unstable();
                unique.dedup();
                unique.len() as f64 / total
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaggle_tables_shape() {
        assert_eq!(KAGGLE_TABLE_ROWS.len(), 26);
        assert!(KAGGLE_TABLE_ROWS.iter().all(|&r| r >= 3));
        assert_eq!(KAGGLE_TABLE_ROWS.iter().max(), Some(&10_131_227));
    }

    #[test]
    fn batch_indices_in_range() {
        let mut gen = IndexGenerator::new(&[100, 10], 4, IndexDistribution::Uniform, 1);
        let batch = gen.batch(16);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].len(), 64);
        assert!(batch[0].iter().all(|&i| i < 100));
        assert!(batch[1].iter().all(|&i| i < 10));
    }

    #[test]
    fn zipf_is_more_concentrated_than_uniform() {
        let rows = [100_000u64];
        let mut uni = IndexGenerator::new(&rows, 1, IndexDistribution::Uniform, 7);
        let mut zip = IndexGenerator::new(&rows, 1, IndexDistribution::Zipf(1.2), 7);
        let u = uni.distinct_fraction(4096)[0];
        let z = zip.distinct_fraction(4096)[0];
        assert!(z < u, "zipf distinct {z} should be below uniform {u}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || IndexGenerator::new(&[1000], 2, IndexDistribution::Uniform, 42).batch(8);
        assert_eq!(mk(), mk());
    }

    #[test]
    #[should_panic(expected = "lookups per sample")]
    fn zero_lookups_panics() {
        IndexGenerator::new(&[10], 0, IndexDistribution::Uniform, 0);
    }
}
