//! A mini autograd tape for building backward passes.
//!
//! The CV and NLP model builders record each forward op on a [`Tape`]; a
//! single call to [`Tape::backward`] then emits the whole backward subgraph
//! in reverse order with correct gradient accumulation at fan-out points —
//! exactly the structure PyTorch's autograd produces and the paper's
//! execution-graph observer captures.

use std::collections::HashMap;

use dlperf_graph::{Graph, OpKind, TensorId, TensorMeta};

/// One recorded forward operation.
#[derive(Debug, Clone)]
enum Rec {
    /// Unary op: backward is `op_bwd(grad_y, extra...) -> grad_x`.
    Unary { op_bwd: OpKind, name: String, x: TensorId, y: TensorId, extra: Vec<TensorId> },
    /// Fully connected: `AddMmBackward(grad_y, x, w) -> (grad_x, grad_w)`.
    Linear { x: TensorId, w: TensorId, y: TensorId },
    /// Convolution: `Conv2dBackward(grad_y, x, w) -> (grad_x, grad_w)`.
    Conv { x: TensorId, w: TensorId, y: TensorId, stride: u64, pad: u64 },
    /// Residual add: gradient passes through to both operands.
    Add { a: TensorId, b: TensorId, y: TensorId },
    /// Concatenation: backward splits the gradient.
    Cat { xs: Vec<TensorId>, y: TensorId, dim: usize },
    /// Batched matmul: `BmmBackward(grad_y, a, b) -> (grad_a, grad_b)`.
    Bmm { a: TensorId, b: TensorId, y: TensorId },
    /// View change: gradient reshapes back, no kernels.
    Reshape { x: TensorId, y: TensorId },
}

/// Records forward ops and emits the matching backward subgraph.
#[derive(Debug, Default)]
pub struct Tape {
    records: Vec<Rec>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    fn grad_like(graph: &mut Graph, t: TensorId) -> TensorId {
        let meta = graph.tensor(t).clone();
        graph.add_tensor(TensorMeta {
            kind: dlperf_graph::TensorKind::Activation,
            ..meta
        })
    }

    /// Records a unary op `name(x) -> y` whose backward op is `op_bwd`,
    /// receiving `grad_y` plus `extra` saved tensors.
    #[allow(clippy::too_many_arguments)]
    pub fn unary(
        &mut self,
        graph: &mut Graph,
        name: &str,
        op_fwd: OpKind,
        op_bwd: OpKind,
        x: TensorId,
        y: TensorId,
        extra: Vec<TensorId>,
    ) {
        graph.add_node(name.to_string(), op_fwd, vec![x], vec![y]);
        self.records.push(Rec::Unary { op_bwd, name: name.to_string(), x, y, extra });
    }

    /// Records `addmm(x, w, b) -> y`.
    pub fn linear(
        &mut self,
        graph: &mut Graph,
        name: &str,
        x: TensorId,
        w: TensorId,
        bias: TensorId,
        y: TensorId,
    ) {
        graph.add_node(name.to_string(), OpKind::AddMm, vec![x, w, bias], vec![y]);
        self.records.push(Rec::Linear { x, w, y });
    }

    /// Records `conv2d(x, w) -> y`.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        &mut self,
        graph: &mut Graph,
        name: &str,
        x: TensorId,
        w: TensorId,
        y: TensorId,
        stride: u64,
        pad: u64,
    ) {
        graph.add_node(name.to_string(), OpKind::Conv2d { stride, pad }, vec![x, w], vec![y]);
        self.records.push(Rec::Conv { x, w, y, stride, pad });
    }

    /// Records `add(a, b) -> y` (residual connection).
    pub fn add(&mut self, graph: &mut Graph, name: &str, a: TensorId, b: TensorId, y: TensorId) {
        graph.add_node(name.to_string(), OpKind::Add, vec![a, b], vec![y]);
        self.records.push(Rec::Add { a, b, y });
    }

    /// Records `cat(xs) -> y` along `dim`.
    pub fn cat(&mut self, graph: &mut Graph, name: &str, xs: Vec<TensorId>, y: TensorId, dim: usize) {
        graph.add_node(name.to_string(), OpKind::Cat { dim }, xs.clone(), vec![y]);
        self.records.push(Rec::Cat { xs, y, dim });
    }

    /// Records `bmm(a, b) -> y`.
    pub fn bmm(&mut self, graph: &mut Graph, name: &str, a: TensorId, b: TensorId, y: TensorId) {
        graph.add_node(name.to_string(), OpKind::Bmm, vec![a, b], vec![y]);
        self.records.push(Rec::Bmm { a, b, y });
    }

    /// Records a host-only view change `reshape(x) -> y`.
    pub fn reshape(&mut self, graph: &mut Graph, name: &str, x: TensorId, y: TensorId) {
        graph.add_node(name.to_string(), OpKind::Reshape, vec![x], vec![y]);
        self.records.push(Rec::Reshape { x, y });
    }

    /// Emits the backward subgraph. `seed` maps the loss-side tensor to its
    /// gradient (usually the prediction's gradient from the loss backward).
    /// Weight gradients are appended to `param_grads`. Returns the map from
    /// forward tensors to their gradient tensors.
    pub fn backward(
        self,
        graph: &mut Graph,
        seed: (TensorId, TensorId),
        param_grads: &mut Vec<TensorId>,
    ) -> HashMap<TensorId, TensorId> {
        let mut grads: HashMap<TensorId, TensorId> = HashMap::new();
        grads.insert(seed.0, seed.1);

        fn accumulate(
            graph: &mut Graph,
            grads: &mut HashMap<TensorId, TensorId>,
            t: TensorId,
            g: TensorId,
        ) {
            if let Some(&existing) = grads.get(&t) {
                let sum = Tape::grad_like(graph, t);
                graph.add_node("grad::accumulate", OpKind::Add, vec![existing, g], vec![sum]);
                grads.insert(t, sum);
            } else {
                grads.insert(t, g);
            }
        }

        for rec in self.records.into_iter().rev() {
            match rec {
                Rec::Unary { op_bwd, name, x, y, extra } => {
                    let Some(&gy) = grads.get(&y) else { continue };
                    let gx = Self::grad_like(graph, x);
                    let mut inputs = vec![gy];
                    inputs.extend(extra);
                    graph.add_node(format!("{name}_backward"), op_bwd, inputs, vec![gx]);
                    accumulate(graph, &mut grads, x, gx);
                }
                Rec::Linear { x, w, y } => {
                    let Some(&gy) = grads.get(&y) else { continue };
                    let gx = Self::grad_like(graph, x);
                    let gw = Self::grad_like(graph, w);
                    graph.add_node(
                        "addmm_backward",
                        OpKind::AddMmBackward,
                        vec![gy, x, w],
                        vec![gx, gw],
                    );
                    param_grads.push(gw);
                    accumulate(graph, &mut grads, x, gx);
                }
                Rec::Conv { x, w, y, stride, pad } => {
                    let Some(&gy) = grads.get(&y) else { continue };
                    let gx = Self::grad_like(graph, x);
                    let gw = Self::grad_like(graph, w);
                    graph.add_node(
                        "conv2d_backward",
                        OpKind::Conv2dBackward { stride, pad },
                        vec![gy, x, w],
                        vec![gx, gw],
                    );
                    param_grads.push(gw);
                    accumulate(graph, &mut grads, x, gx);
                }
                Rec::Add { a, b, y } => {
                    let Some(&gy) = grads.get(&y) else { continue };
                    let ga = Self::grad_like(graph, a);
                    let gb = Self::grad_like(graph, b);
                    graph.add_node("add_backward", OpKind::AddBackward, vec![gy], vec![ga, gb]);
                    accumulate(graph, &mut grads, a, ga);
                    accumulate(graph, &mut grads, b, gb);
                }
                Rec::Cat { xs, y, dim } => {
                    let Some(&gy) = grads.get(&y) else { continue };
                    let gxs: Vec<TensorId> =
                        xs.iter().map(|&x| Self::grad_like(graph, x)).collect();
                    graph.add_node(
                        "cat_backward",
                        OpKind::CatBackward { dim },
                        vec![gy],
                        gxs.clone(),
                    );
                    for (x, gx) in xs.into_iter().zip(gxs) {
                        accumulate(graph, &mut grads, x, gx);
                    }
                }
                Rec::Bmm { a, b, y } => {
                    let Some(&gy) = grads.get(&y) else { continue };
                    let ga = Self::grad_like(graph, a);
                    let gb = Self::grad_like(graph, b);
                    graph.add_node("bmm_backward", OpKind::BmmBackward, vec![gy, a, b], vec![ga, gb]);
                    accumulate(graph, &mut grads, a, ga);
                    accumulate(graph, &mut grads, b, gb);
                }
                Rec::Reshape { x, y } => {
                    let Some(&gy) = grads.get(&y) else { continue };
                    let gx = Self::grad_like(graph, x);
                    graph.add_node("reshape_backward", OpKind::Reshape, vec![gy], vec![gx]);
                    accumulate(graph, &mut grads, x, gx);
                }
            }
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_graph::lower;

    #[test]
    fn residual_block_accumulates_gradients() {
        // x -> relu -> y ; add(x, y) -> z ; grad must accumulate at x.
        let mut g = Graph::new("res");
        let mut tape = Tape::new();
        let x = g.add_tensor(TensorMeta::activation(&[4, 8]).with_batch_dim(0));
        let y = g.add_tensor(TensorMeta::activation(&[4, 8]).with_batch_dim(0));
        tape.unary(&mut g, "relu", OpKind::Relu, OpKind::ReluBackward, x, y, vec![y]);
        let z = g.add_tensor(TensorMeta::activation(&[4, 8]).with_batch_dim(0));
        tape.add(&mut g, "residual", x, y, z);

        let gz = g.add_tensor(TensorMeta::activation(&[4, 8]).with_batch_dim(0));
        let mut params = Vec::new();
        let grads = tape.backward(&mut g, (z, gz), &mut params);
        assert!(g.validate().is_ok());
        assert!(grads.contains_key(&x));
        // One grad::accumulate node must exist (x receives two gradients).
        assert_eq!(
            g.nodes().iter().filter(|n| n.name == "grad::accumulate").count(),
            1
        );
        assert!(lower::lower_graph(&g).is_ok());
    }

    #[test]
    fn linear_chain_produces_param_grads() {
        let mut g = Graph::new("lin");
        let mut tape = Tape::new();
        let x = g.add_tensor(TensorMeta::activation(&[8, 4]).with_batch_dim(0));
        let w = g.add_tensor(TensorMeta::weight(&[16, 4]));
        let bias = g.add_tensor(TensorMeta::weight(&[16]));
        let y = g.add_tensor(TensorMeta::activation(&[8, 16]).with_batch_dim(0));
        tape.linear(&mut g, "fc", x, w, bias, y);
        let gy = g.add_tensor(TensorMeta::activation(&[8, 16]).with_batch_dim(0));
        let mut params = Vec::new();
        tape.backward(&mut g, (y, gy), &mut params);
        assert_eq!(params.len(), 1);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn cat_backward_splits() {
        let mut g = Graph::new("cat");
        let mut tape = Tape::new();
        let a = g.add_tensor(TensorMeta::activation(&[4, 2]).with_batch_dim(0));
        let b = g.add_tensor(TensorMeta::activation(&[4, 3]).with_batch_dim(0));
        let y = g.add_tensor(TensorMeta::activation(&[4, 5]).with_batch_dim(0));
        tape.cat(&mut g, "cat", vec![a, b], y, 1);
        let gy = g.add_tensor(TensorMeta::activation(&[4, 5]).with_batch_dim(0));
        let mut params = Vec::new();
        let grads = tape.backward(&mut g, (y, gy), &mut params);
        assert_eq!(g.tensor(grads[&a]).shape, vec![4, 2]);
        assert_eq!(g.tensor(grads[&b]).shape, vec![4, 3]);
    }

    #[test]
    fn unreached_records_skipped() {
        // An op whose output gradient never materializes is skipped.
        let mut g = Graph::new("skip");
        let mut tape = Tape::new();
        let a = g.add_tensor(TensorMeta::activation(&[4]));
        let b = g.add_tensor(TensorMeta::activation(&[4]));
        tape.unary(&mut g, "side", OpKind::Relu, OpKind::ReluBackward, a, b, vec![b]);
        let c = g.add_tensor(TensorMeta::activation(&[4]));
        let d = g.add_tensor(TensorMeta::activation(&[4]));
        tape.unary(&mut g, "main", OpKind::Sigmoid, OpKind::SigmoidBackward, c, d, vec![d]);
        let gd = g.add_tensor(TensorMeta::activation(&[4]));
        let mut params = Vec::new();
        let grads = tape.backward(&mut g, (d, gd), &mut params);
        assert!(grads.contains_key(&c));
        assert!(!grads.contains_key(&a));
    }
}
