//! Shared building blocks for model-graph construction.

use dlperf_graph::{Graph, OpKind, TensorId, TensorMeta};

/// Tracks MLP layer tensors so the backward pass can be emitted after the
/// forward pass completes, mirroring autograd's tape.
#[derive(Debug, Clone)]
pub struct MlpTape {
    /// `(input, weight, bias, pre-activation output)` per layer.
    pub layers: Vec<(TensorId, TensorId, TensorId, TensorId)>,
    /// Post-activation output of the MLP.
    pub output: TensorId,
    /// Whether each layer was followed by a ReLU.
    pub relu: Vec<bool>,
}

/// Appends a forward MLP (AddMm + ReLU per hidden layer; the last layer's
/// activation is controlled by `final_relu`) and returns its tape.
///
/// `sizes[0]` is the input feature dimension, as in the DLRM repository's
/// `arch-mlp-bot` convention.
///
/// # Panics
/// Panics if `sizes` has fewer than two entries.
pub fn mlp_forward(
    graph: &mut Graph,
    prefix: &str,
    input: TensorId,
    batch: u64,
    sizes: &[u64],
    final_relu: bool,
) -> MlpTape {
    assert!(sizes.len() >= 2, "an MLP needs at least input and output sizes");
    let mut x = input;
    let mut layers = Vec::new();
    let mut relu_flags = Vec::new();
    for (i, pair) in sizes.windows(2).enumerate() {
        let (inf, outf) = (pair[0], pair[1]);
        let w = graph.add_tensor(TensorMeta::weight(&[outf, inf]));
        let b = graph.add_tensor(TensorMeta::weight(&[outf]));
        // `linear` transposes the weight first — a host-only view op that
        // appears in real traces and contributes overheads.
        let wt = graph.add_tensor(TensorMeta::weight(&[outf, inf]));
        graph.add_node(format!("{prefix}::t_{i}"), OpKind::Reshape, vec![w], vec![wt]);
        let y = graph.add_tensor(TensorMeta::activation(&[batch, outf]).with_batch_dim(0));
        graph.add_node(format!("{prefix}::addmm_{i}"), OpKind::AddMm, vec![x, wt, b], vec![y]);
        layers.push((x, wt, b, y));
        let is_last = i + 2 == sizes.len();
        let with_relu = !is_last || final_relu;
        relu_flags.push(with_relu);
        x = if with_relu {
            let a = graph.add_tensor(TensorMeta::activation(&[batch, outf]).with_batch_dim(0));
            graph.add_node(format!("{prefix}::relu_{i}"), OpKind::Relu, vec![y], vec![a]);
            a
        } else {
            y
        };
    }
    MlpTape { layers, output: x, relu: relu_flags }
}

/// Appends the backward pass of a taped MLP, consuming `grad_out` (the
/// gradient of the MLP output) and returning the gradient of its input.
/// Weight-gradient tensors are appended to `param_grads` for the optimizer.
pub fn mlp_backward(
    graph: &mut Graph,
    prefix: &str,
    tape: &MlpTape,
    batch: u64,
    grad_out: TensorId,
    param_grads: &mut Vec<TensorId>,
) -> TensorId {
    let mut grad = grad_out;
    for (i, ((x, w, _b, y), with_relu)) in
        tape.layers.iter().zip(tape.relu.iter()).enumerate().rev()
    {
        if *with_relu {
            let y_meta = graph.tensor(*y).clone();
            let g = graph.add_tensor(y_meta);
            graph.add_node(format!("{prefix}::relu_backward_{i}"), OpKind::ReluBackward, vec![grad, *y], vec![g]);
            grad = g;
        }
        let x_shape = graph.tensor(*x).shape.clone();
        let w_shape = graph.tensor(*w).shape.clone();
        let gx = graph.add_tensor(TensorMeta::activation(&x_shape).with_batch_dim(0));
        let gw = graph.add_tensor(TensorMeta::weight(&w_shape));
        graph.add_node(
            format!("{prefix}::addmm_backward_{i}"),
            OpKind::AddMmBackward,
            vec![grad, *x, *w],
            vec![gx, gw],
        );
        param_grads.push(gw);
        // Bias gradient: a `sum` reduction over the batch, as autograd emits.
        let gb = graph.add_tensor(TensorMeta::weight(&[w_shape[0]]));
        graph.add_node(format!("{prefix}::sum_bias_{i}"), OpKind::Sum, vec![grad], vec![gb]);
        param_grads.push(gb);
        grad = gx;
    }
    let _ = batch;
    grad
}

/// Inserts `per_device_op` host-only accessory ops (`aten::view`-style)
/// before every op that launches kernels, modelling the dispatcher-op swarm
/// (`empty`, `view`, `as_strided`, `expand`, ...) visible in real eager-mode
/// traces. These ops launch nothing but pay T1/T5 overheads, which is what
/// makes DLRM's host side as slow as the paper measures.
pub fn add_host_accessories(graph: &mut Graph, per_device_op: usize) {
    if per_device_op == 0 {
        return;
    }
    let old_nodes: Vec<dlperf_graph::Node> = graph.nodes().to_vec();
    let mut new_nodes: Vec<dlperf_graph::Node> = Vec::with_capacity(old_nodes.len() * 2);
    let mut extra_tensors: Vec<(usize, TensorId)> = Vec::new();
    // First create the accessory output tensors (cannot mutate nodes while
    // borrowing tensors, so collect first).
    for node in &old_nodes {
        if node.op.has_device_work() && !node.inputs.is_empty() {
            for _ in 0..per_device_op {
                let meta = graph.tensor(node.inputs[0]).clone();
                let view = graph.add_tensor(meta);
                extra_tensors.push((node.id.0, view));
            }
        }
    }
    let mut iter = extra_tensors.into_iter().peekable();
    for node in old_nodes {
        while iter.peek().is_some_and(|(idx, _)| *idx == node.id.0) {
            let (_, view) = iter.next().expect("peeked");
            new_nodes.push(dlperf_graph::Node {
                id: dlperf_graph::NodeId(0),
                uid: 0,
                name: "aten::view".into(),
                op: OpKind::Reshape,
                inputs: vec![node.inputs[0]],
                outputs: vec![view],
                stream: 0,
            });
        }
        new_nodes.push(node);
    }
    graph.set_nodes(new_nodes);
    debug_assert_eq!(graph.validate(), Ok(()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_graph::lower;

    #[test]
    fn mlp_forward_backward_roundtrip_is_valid() {
        let mut g = Graph::new("mlp");
        let x = g.add_tensor(TensorMeta::activation(&[32, 16]).with_batch_dim(0));
        let tape = mlp_forward(&mut g, "bot", x, 32, &[16, 64, 8], true);
        let gout_meta = g.tensor(tape.output).clone();
        let gout = g.add_tensor(gout_meta);
        // Mark the loss-side gradient as an external input for this test.
        let mut grads = Vec::new();
        mlp_backward(&mut g, "bot", &tape, 32, gout, &mut grads);
        assert!(g.validate().is_ok());
        assert_eq!(grads.len(), 4); // 2 weight grads + 2 bias grads
        // fwd: 2 t + 2 addmm + 2 relu; bwd: 2 relu_bwd + 2 addmm_bwd + 2 sum.
        assert_eq!(g.node_count(), 12);
        assert!(lower::lower_graph(&g).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_needs_two_sizes() {
        let mut g = Graph::new("bad");
        let x = g.add_tensor(TensorMeta::activation(&[4, 4]).with_batch_dim(0));
        mlp_forward(&mut g, "m", x, 4, &[4], true);
    }
}
