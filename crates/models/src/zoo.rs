//! A name-indexed catalog over every workload builder in this crate.
//!
//! The CLI, the request server, and the examples all need "model name →
//! graph" resolution with identical spellings and identical builder
//! arguments; keeping the mapping here means a new workload becomes
//! servable everywhere by editing one match.

use dlperf_graph::Graph;

use crate::cv;
use crate::dlrm::DlrmConfig;
use crate::rm_zoo::{dcn, wide_deep, RmConfig};
use crate::transformer::TransformerConfig;

/// Every model name [`build`] resolves, in display order.
pub const MODEL_NAMES: [&str; 9] = [
    "dlrm-default",
    "dlrm-mlperf",
    "dlrm-ddp",
    "dlrm-default-infer",
    "dcn",
    "wide-deep",
    "resnet50",
    "inception",
    "transformer",
];

/// Builds the named workload at `batch`.
///
/// # Errors
/// An error message naming the valid spellings when `name` is unknown.
pub fn build(name: &str, batch: u64) -> Result<Graph, String> {
    Ok(match name {
        "dlrm-default" => DlrmConfig::default_config(batch).build(),
        "dlrm-mlperf" => DlrmConfig::mlperf_config(batch).build(),
        "dlrm-ddp" => DlrmConfig::ddp_config(batch).build(),
        "dlrm-default-infer" => DlrmConfig::default_config(batch).build_inference(),
        "dcn" => dcn(&RmConfig::ctr_default(batch)),
        "wide-deep" => wide_deep(&RmConfig::ctr_default(batch)),
        "resnet50" => cv::resnet50(batch),
        "inception" => cv::inception_v3(batch),
        "transformer" => TransformerConfig::base(batch).build(),
        other => {
            return Err(format!(
                "unknown model `{other}` (expected {})",
                MODEL_NAMES.join("|")
            ))
        }
    })
}

/// The [`DlrmConfig`] behind a DLRM catalog entry at `batch`, for tools
/// that need the table/MLP configuration rather than the built graph
/// (e.g. sharding-plan enumeration). `None` for non-DLRM models.
pub fn dlrm_config(name: &str, batch: u64) -> Option<DlrmConfig> {
    match name {
        "dlrm-default" | "dlrm-default-infer" => Some(DlrmConfig::default_config(batch)),
        "dlrm-mlperf" => Some(DlrmConfig::mlperf_config(batch)),
        "dlrm-ddp" => Some(DlrmConfig::ddp_config(batch)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_catalog_name_builds_and_validates() {
        for name in MODEL_NAMES {
            let g = build(name, 128).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(g.validate().is_ok(), "{name} must validate");
            assert!(g.node_count() > 0);
        }
    }

    #[test]
    fn unknown_name_lists_the_catalog() {
        let err = build("alexnet", 128).unwrap_err();
        assert!(err.contains("alexnet") && err.contains("dlrm-default"), "{err}");
    }

    #[test]
    fn dlrm_configs_cover_exactly_the_dlrm_entries() {
        let with_config: Vec<&str> =
            MODEL_NAMES.iter().copied().filter(|n| dlrm_config(n, 64).is_some()).collect();
        assert_eq!(
            with_config,
            ["dlrm-default", "dlrm-mlperf", "dlrm-ddp", "dlrm-default-infer"]
        );
        assert_eq!(dlrm_config("dlrm-mlperf", 64).unwrap().batch_size, 64);
    }
}
