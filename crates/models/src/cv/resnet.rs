//! ResNet-50 training-iteration graph (He et al., CVPR 2016).

use dlperf_graph::{Graph, TensorId};

use super::{Chw, ConvNet};

/// One bottleneck block: 1×1 reduce → 3×3 → 1×1 expand, with a projection
/// shortcut when shape changes.
fn bottleneck(
    net: &mut ConvNet,
    x: TensorId,
    in_chw: Chw,
    width: u64,
    c_out: u64,
    stride: u64,
) -> (TensorId, Chw) {
    let (c_in, _, _) = in_chw;
    let (h1, s1) = net.conv_bn(x, in_chw, width, 1, 1, 1, 0, true);
    let (h2, s2) = net.conv_bn(h1, s1, width, 3, 3, stride, 1, true);
    let (h3, s3) = net.conv_bn(h2, s2, c_out, 1, 1, 1, 0, false);

    let (short, _) = if c_in != c_out || stride != 1 {
        net.conv_bn(x, in_chw, c_out, 1, 1, stride, 0, false)
    } else {
        (x, in_chw)
    };

    let sum = net.act(s3);
    let name = format!("residual_add_{}", s3.0);
    net.tape.add(&mut net.g, &name, h3, short, sum);
    let out = net.act(s3);
    net.tape.unary(
        &mut net.g,
        "residual_relu",
        dlperf_graph::OpKind::Relu,
        dlperf_graph::OpKind::ReluBackward,
        sum,
        out,
        vec![out],
    );
    (out, s3)
}

/// Builds the ResNet-50 training iteration (forward + backward + optimizer)
/// for a `batch × 3 × 224 × 224` input.
///
/// # Panics
/// Panics if `batch` is zero.
pub fn resnet50(batch: u64) -> Graph {
    assert!(batch > 0, "batch size must be positive");
    let (mut net, x) = ConvNet::new("ResNet50", batch, (3, 224, 224));

    // Stem: 7x7/2 conv + 3x3/2 max pool.
    let (h, s) = net.conv_bn(x, (3, 224, 224), 64, 7, 7, 2, 3, true);
    let (mut h, mut s) = net.max_pool(h, s, 3, 2, 1);

    // The four stages: (blocks, width, out channels, first-block stride).
    let stages: [(usize, u64, u64, u64); 4] =
        [(3, 64, 256, 1), (4, 128, 512, 2), (6, 256, 1024, 2), (3, 512, 2048, 2)];
    for (blocks, width, c_out, stride) in stages {
        for i in 0..blocks {
            let st = if i == 0 { stride } else { 1 };
            let (nh, ns) = bottleneck(&mut net, h, s, width, c_out, st);
            h = nh;
            s = ns;
        }
    }

    net.finish_classifier(h, s, 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_graph::{lower, OpKind};
    use dlperf_gpusim::KernelFamily;

    #[test]
    fn builds_valid_graph() {
        let g = resnet50(32);
        assert!(g.validate().is_ok());
        assert!(lower::lower_graph(&g).is_ok());
    }

    #[test]
    fn has_53_forward_convolutions() {
        let g = resnet50(8);
        let convs = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::Conv2d { .. }))
            .count();
        // 1 stem + 16 blocks × 3 + 4 projection shortcuts = 53.
        assert_eq!(convs, 53);
        let conv_bwd = g
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::Conv2dBackward { .. }))
            .count();
        assert_eq!(conv_bwd, 53);
    }

    #[test]
    fn compute_dominated_by_conv_kernels() {
        let g = resnet50(8);
        let mut conv_flops = 0.0;
        let mut total_flops = 0.0;
        for (_, ks) in lower::lower_graph(&g).unwrap() {
            for k in ks {
                total_flops += k.flops();
                if k.family() == KernelFamily::Conv2d {
                    conv_flops += k.flops();
                }
            }
        }
        assert!(conv_flops / total_flops > 0.9, "conv share {}", conv_flops / total_flops);
    }

    #[test]
    fn batch_resize_supported() {
        let mut g = resnet50(16);
        dlperf_graph::transform::resize_batch(&mut g, 64).unwrap();
        assert!(lower::lower_graph(&g).is_ok());
    }
}
