//! CV model builders: ResNet-50 and Inception-V3 (the Fig. 10 workloads).
//!
//! Both builders share a small convnet construction context that records
//! every op on an autograd [`crate::autodiff::Tape`], then emits the
//! full backward pass and the optimizer step.

pub mod inception;
pub mod resnet;

pub use inception::inception_v3;
pub use resnet::resnet50;

use dlperf_gpusim::MemcpyKind;
use dlperf_graph::{Graph, OpKind, TensorId, TensorMeta};

use crate::autodiff::Tape;

/// Channel/height/width of a feature map.
pub(crate) type Chw = (u64, u64, u64);

/// Shared construction state for convolutional models.
pub(crate) struct ConvNet {
    pub g: Graph,
    pub tape: Tape,
    pub b: u64,
    counter: usize,
}

impl ConvNet {
    /// Starts a convnet graph with an H2D input copy of a
    /// `b × c × h × w` image batch. Returns the device-side input tensor.
    pub fn new(name: &str, b: u64, input: Chw) -> (Self, TensorId) {
        let mut g = Graph::new(name);
        let (c, h, w) = input;
        let cpu = g.add_tensor(TensorMeta::activation(&[b, c, h, w]).with_batch_dim(0));
        let dev = g.add_tensor(TensorMeta::activation(&[b, c, h, w]).with_batch_dim(0));
        g.add_node("input::to", OpKind::To { kind: MemcpyKind::HostToDevice }, vec![cpu], vec![dev]);
        (ConvNet { g, tape: Tape::new(), b, counter: 0 }, dev)
    }

    fn fresh(&mut self, tag: &str) -> String {
        self.counter += 1;
        format!("{tag}_{}", self.counter)
    }

    /// Activation tensor of shape `b × c × h × w`.
    pub fn act(&mut self, chw: Chw) -> TensorId {
        let (c, h, w) = chw;
        self.g
            .add_tensor(TensorMeta::activation(&[self.b, c, h, w]).with_batch_dim(0))
    }

    /// conv → batch-norm → (optional) ReLU. Returns the output tensor and
    /// its shape.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_bn(
        &mut self,
        x: TensorId,
        in_chw: Chw,
        c_out: u64,
        kh: u64,
        kw: u64,
        stride: u64,
        pad: u64,
        relu: bool,
    ) -> (TensorId, Chw) {
        let (c_in, h, w) = in_chw;
        let (oh, ow) = dlperf_gpusim::conv::conv_out_hw(h, w, kh, kw, stride, pad);
        let weight = self.g.add_tensor(TensorMeta::weight(&[c_out, c_in, kh, kw]));
        let conv_out = self.act((c_out, oh, ow));
        let name = self.fresh("conv2d");
        self.tape.conv(&mut self.g, &name, x, weight, conv_out, stride, pad);

        let bn_out = self.act((c_out, oh, ow));
        let name = self.fresh("batch_norm");
        self.tape.unary(
            &mut self.g,
            &name,
            OpKind::BatchNorm,
            OpKind::BatchNormBackward,
            conv_out,
            bn_out,
            vec![conv_out],
        );
        if !relu {
            return (bn_out, (c_out, oh, ow));
        }
        let relu_out = self.act((c_out, oh, ow));
        let name = self.fresh("relu");
        self.tape.unary(
            &mut self.g,
            &name,
            OpKind::Relu,
            OpKind::ReluBackward,
            bn_out,
            relu_out,
            vec![relu_out],
        );
        (relu_out, (c_out, oh, ow))
    }

    /// Max pooling.
    pub fn max_pool(&mut self, x: TensorId, in_chw: Chw, k: u64, stride: u64, pad: u64) -> (TensorId, Chw) {
        let (c, h, w) = in_chw;
        let (oh, ow) = dlperf_gpusim::conv::conv_out_hw(h, w, k, k, stride, pad);
        let y = self.act((c, oh, ow));
        let name = self.fresh("max_pool2d");
        self.tape.unary(
            &mut self.g,
            &name,
            OpKind::MaxPool { k, stride },
            OpKind::MaxPoolBackward,
            x,
            y,
            vec![x],
        );
        (y, (c, oh, ow))
    }

    /// 3×3 stride-1 average pooling that keeps the spatial size (the
    /// Inception "pool" branch).
    pub fn avg_pool_same(&mut self, x: TensorId, in_chw: Chw) -> (TensorId, Chw) {
        let y = self.act(in_chw);
        let name = self.fresh("avg_pool2d");
        self.tape
            .unary(&mut self.g, &name, OpKind::AvgPool, OpKind::AvgPool, x, y, vec![]);
        (y, in_chw)
    }

    /// Concatenates feature maps along the channel dimension.
    pub fn cat_channels(&mut self, parts: Vec<(TensorId, Chw)>) -> (TensorId, Chw) {
        let (_, h, w) = parts[0].1;
        debug_assert!(parts.iter().all(|(_, (_, ph, pw))| *ph == h && *pw == w));
        let c: u64 = parts.iter().map(|(_, (pc, _, _))| pc).sum();
        let y = self.act((c, h, w));
        let xs: Vec<TensorId> = parts.iter().map(|(t, _)| *t).collect();
        let name = self.fresh("cat");
        self.tape.cat(&mut self.g, &name, xs, y, 1);
        (y, (c, h, w))
    }

    /// Global average pool + flatten + FC classifier + softmax + MSE loss,
    /// then the full backward pass and the optimizer step. Consumes the
    /// builder and returns the finished graph.
    pub fn finish_classifier(mut self, x: TensorId, in_chw: Chw, classes: u64) -> Graph {
        let (c, _, _) = in_chw;
        let pooled = self.act((c, 1, 1));
        let name = self.fresh("avg_pool2d");
        self.tape
            .unary(&mut self.g, &name, OpKind::AvgPool, OpKind::AvgPool, x, pooled, vec![]);
        let flat = self
            .g
            .add_tensor(TensorMeta::activation(&[self.b, c]).with_batch_dim(0));
        self.tape.reshape(&mut self.g, "flatten", pooled, flat);

        let w = self.g.add_tensor(TensorMeta::weight(&[classes, c]));
        let bias = self.g.add_tensor(TensorMeta::weight(&[classes]));
        let logits = self
            .g
            .add_tensor(TensorMeta::activation(&[self.b, classes]).with_batch_dim(0));
        self.tape.linear(&mut self.g, "fc", flat, w, bias, logits);

        let probs = self
            .g
            .add_tensor(TensorMeta::activation(&[self.b, classes]).with_batch_dim(0));
        self.tape.unary(
            &mut self.g,
            "softmax",
            OpKind::Softmax,
            OpKind::SoftmaxBackward,
            logits,
            probs,
            vec![probs],
        );

        let labels = self
            .g
            .add_tensor(TensorMeta::activation(&[self.b, classes]).with_batch_dim(0));
        let loss = self.g.add_tensor(TensorMeta::activation(&[]));
        self.g
            .add_node("loss::mse_loss", OpKind::MseLoss, vec![probs, labels], vec![loss]);
        let g_probs = self
            .g
            .add_tensor(TensorMeta::activation(&[self.b, classes]).with_batch_dim(0));
        self.g.add_node(
            "loss::mse_loss_backward",
            OpKind::MseLossBackward,
            vec![loss, probs, labels],
            vec![g_probs],
        );

        let mut param_grads = Vec::new();
        self.tape.backward(&mut self.g, (probs, g_probs), &mut param_grads);
        self.g.add_node("optimizer::step", OpKind::OptimizerStep, param_grads, vec![]);

        debug_assert_eq!(self.g.validate(), Ok(()));
        self.g
    }
}
