//! Inception-V3 training-iteration graph (Szegedy et al., CVPR 2016).
//!
//! Faithful at the module level: the stem, three Inception-A modules, the
//! grid reduction, four Inception-B modules with the factorized 1×7 / 7×1
//! convolutions (the filters the paper points to when MLPredict fails), a
//! second reduction, and two Inception-C modules.

use dlperf_graph::{Graph, TensorId};

use super::{Chw, ConvNet};

/// Inception-A: 1×1, 5×5 (factored through 1×1), double-3×3, and pool
/// branches concatenated.
fn inception_a(net: &mut ConvNet, x: TensorId, s: Chw, pool_c: u64) -> (TensorId, Chw) {
    let b1 = net.conv_bn(x, s, 64, 1, 1, 1, 0, true);
    let (b2a, s2a) = net.conv_bn(x, s, 48, 1, 1, 1, 0, true);
    let b2 = net.conv_bn(b2a, s2a, 64, 5, 5, 1, 2, true);
    let (b3a, s3a) = net.conv_bn(x, s, 64, 1, 1, 1, 0, true);
    let (b3b, s3b) = net.conv_bn(b3a, s3a, 96, 3, 3, 1, 1, true);
    let b3 = net.conv_bn(b3b, s3b, 96, 3, 3, 1, 1, true);
    let (p, sp) = net.avg_pool_same(x, s);
    let b4 = net.conv_bn(p, sp, pool_c, 1, 1, 1, 0, true);
    net.cat_channels(vec![b1, b2, b3, b4])
}

/// Grid reduction 35×35 → 17×17.
fn reduction_a(net: &mut ConvNet, x: TensorId, s: Chw) -> (TensorId, Chw) {
    let b1 = net.conv_bn(x, s, 384, 3, 3, 2, 0, true);
    let (b2a, s2a) = net.conv_bn(x, s, 64, 1, 1, 1, 0, true);
    let (b2b, s2b) = net.conv_bn(b2a, s2a, 96, 3, 3, 1, 1, true);
    let b2 = net.conv_bn(b2b, s2b, 96, 3, 3, 2, 0, true);
    let b3 = net.max_pool(x, s, 3, 2, 0);
    net.cat_channels(vec![b1, b2, b3])
}

/// Inception-B with factorized 7×7 convolutions (1×7 then 7×1).
fn inception_b(net: &mut ConvNet, x: TensorId, s: Chw, c7: u64) -> (TensorId, Chw) {
    let b1 = net.conv_bn(x, s, 192, 1, 1, 1, 0, true);

    let (b2a, s2a) = net.conv_bn(x, s, c7, 1, 1, 1, 0, true);
    let (b2b, s2b) = net.conv_bn(b2a, s2a, c7, 1, 7, 1, 3, true);
    let b2 = net.conv_bn(b2b, s2b, 192, 7, 1, 1, 3, true);

    let (b3a, s3a) = net.conv_bn(x, s, c7, 1, 1, 1, 0, true);
    let (b3b, s3b) = net.conv_bn(b3a, s3a, c7, 7, 1, 1, 3, true);
    let (b3c, s3c) = net.conv_bn(b3b, s3b, c7, 1, 7, 1, 3, true);
    let (b3d, s3d) = net.conv_bn(b3c, s3c, c7, 7, 1, 1, 3, true);
    let b3 = net.conv_bn(b3d, s3d, 192, 1, 7, 1, 3, true);

    let (p, sp) = net.avg_pool_same(x, s);
    let b4 = net.conv_bn(p, sp, 192, 1, 1, 1, 0, true);
    net.cat_channels(vec![b1, b2, b3, b4])
}

/// Grid reduction 17×17 → 8×8.
fn reduction_b(net: &mut ConvNet, x: TensorId, s: Chw) -> (TensorId, Chw) {
    let (b1a, s1a) = net.conv_bn(x, s, 192, 1, 1, 1, 0, true);
    let b1 = net.conv_bn(b1a, s1a, 320, 3, 3, 2, 0, true);
    let (b2a, s2a) = net.conv_bn(x, s, 192, 1, 1, 1, 0, true);
    let (b2b, s2b) = net.conv_bn(b2a, s2a, 192, 1, 7, 1, 3, true);
    let (b2c, s2c) = net.conv_bn(b2b, s2b, 192, 7, 1, 1, 3, true);
    let b2 = net.conv_bn(b2c, s2c, 192, 3, 3, 2, 0, true);
    let b3 = net.max_pool(x, s, 3, 2, 0);
    net.cat_channels(vec![b1, b2, b3])
}

/// Inception-C (expanded 8×8 modules with split 1×3 / 3×1 branches).
fn inception_c(net: &mut ConvNet, x: TensorId, s: Chw) -> (TensorId, Chw) {
    let b1 = net.conv_bn(x, s, 320, 1, 1, 1, 0, true);

    let (b2a, s2a) = net.conv_bn(x, s, 384, 1, 1, 1, 0, true);
    let b2l = net.conv_bn(b2a, s2a, 384, 1, 3, 1, 1, true);
    let b2r = net.conv_bn(b2a, s2a, 384, 3, 1, 1, 1, true);

    let (b3a, s3a) = net.conv_bn(x, s, 448, 1, 1, 1, 0, true);
    let (b3b, s3b) = net.conv_bn(b3a, s3a, 384, 3, 3, 1, 1, true);
    let b3l = net.conv_bn(b3b, s3b, 384, 1, 3, 1, 1, true);
    let b3r = net.conv_bn(b3b, s3b, 384, 3, 1, 1, 1, true);

    let (p, sp) = net.avg_pool_same(x, s);
    let b4 = net.conv_bn(p, sp, 192, 1, 1, 1, 0, true);
    net.cat_channels(vec![b1, b2l, b2r, b3l, b3r, b4])
}

/// Builds the Inception-V3 training iteration for a `batch × 3 × 299 × 299`
/// input.
///
/// # Panics
/// Panics if `batch` is zero.
pub fn inception_v3(batch: u64) -> Graph {
    assert!(batch > 0, "batch size must be positive");
    let (mut net, x) = ConvNet::new("InceptionV3", batch, (3, 299, 299));

    // Stem.
    let (h, s) = net.conv_bn(x, (3, 299, 299), 32, 3, 3, 2, 0, true); // 149
    let (h, s) = net.conv_bn(h, s, 32, 3, 3, 1, 0, true); // 147
    let (h, s) = net.conv_bn(h, s, 64, 3, 3, 1, 1, true); // 147
    let (h, s) = net.max_pool(h, s, 3, 2, 0); // 73
    let (h, s) = net.conv_bn(h, s, 80, 1, 1, 1, 0, true);
    let (h, s) = net.conv_bn(h, s, 192, 3, 3, 1, 0, true); // 71
    let (h, s) = net.max_pool(h, s, 3, 2, 0); // 35

    // 3 × Inception-A.
    let (h, s) = inception_a(&mut net, h, s, 32);
    let (h, s) = inception_a(&mut net, h, s, 64);
    let (h, s) = inception_a(&mut net, h, s, 64);
    // Reduction.
    let (h, s) = reduction_a(&mut net, h, s); // 17
    // 4 × Inception-B with 1×7 / 7×1 filters.
    let (h, s) = inception_b(&mut net, h, s, 128);
    let (h, s) = inception_b(&mut net, h, s, 160);
    let (h, s) = inception_b(&mut net, h, s, 160);
    let (h, s) = inception_b(&mut net, h, s, 192);
    // Reduction.
    let (h, s) = reduction_b(&mut net, h, s); // 8
    // 2 × Inception-C.
    let (h, s) = inception_c(&mut net, h, s);
    let (h, s) = inception_c(&mut net, h, s);

    net.finish_classifier(h, s, 1000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_graph::{lower, OpKind};

    #[test]
    fn builds_valid_graph() {
        let g = inception_v3(32);
        assert!(g.validate().is_ok());
        assert!(lower::lower_graph(&g).is_ok());
    }

    #[test]
    fn contains_factorized_filters() {
        let g = inception_v3(8);
        let mut has_1x7 = false;
        let mut has_7x1 = false;
        for (_, ks) in lower::lower_graph(&g).unwrap() {
            for k in ks {
                if let dlperf_gpusim::KernelSpec::Conv2d { kh, kw, .. } = k {
                    has_1x7 |= kh == 1 && kw == 7;
                    has_7x1 |= kh == 7 && kw == 1;
                }
            }
        }
        assert!(has_1x7 && has_7x1, "Inception must contain 1x7 and 7x1 convolutions");
    }

    #[test]
    fn final_channels_are_2048() {
        let g = inception_v3(4);
        // The classifier FC weight must be 1000 × 2048.
        let fc = g
            .nodes()
            .iter()
            .find(|n| n.name == "fc" && n.op == OpKind::AddMm)
            .expect("fc layer present");
        assert_eq!(g.tensor(fc.inputs[1]).shape, vec![1000, 2048]);
    }

    #[test]
    fn deeper_than_resnet_in_op_count() {
        let inc = inception_v3(4).node_count();
        let res = super::super::resnet50(4).node_count();
        assert!(inc > res, "inception {inc} vs resnet {res}");
    }
}
