//! Trace-calibrated scaling of kernel models.
//!
//! The Habitat-style transfer step of ROADMAP item 4: when a corpus of
//! real traces from some device is ingested, the robust calibration in
//! `dlperf-core` fits one multiplicative scale factor per kernel family
//! (observed median over reference median, after MAD outlier
//! rejection). [`ScaledModel`] applies such a factor on top of an
//! existing [`KernelPerfModel`] without retraining it, and
//! [`crate::ModelRegistry::with_scale_factors`] rewraps a whole registry
//! so every downstream predictor picks the correction up transparently.

use std::sync::Arc;

use dlperf_gpusim::KernelSpec;

use crate::registry::KernelPerfModel;

/// A [`KernelPerfModel`] whose predictions are multiplied by a fixed,
/// trace-fitted scale factor.
///
/// The batched path maps the inner model's batched path and scales each
/// element with the identical `f64` multiply, so the bitwise
/// scalar/batch equivalence contract of [`KernelPerfModel`] is
/// preserved by construction.
pub struct ScaledModel {
    inner: Arc<dyn KernelPerfModel>,
    scale: f64,
}

impl ScaledModel {
    /// Wraps `inner`, multiplying every prediction by `scale`.
    ///
    /// # Panics
    /// `scale` must be positive and finite — a non-positive scale would
    /// silently invert or zero the model instead of correcting it.
    pub fn new(inner: Arc<dyn KernelPerfModel>, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale factor must be positive and finite");
        ScaledModel { inner, scale }
    }

    /// The trace-fitted multiplier.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl KernelPerfModel for ScaledModel {
    fn predict(&self, kernel: &KernelSpec) -> f64 {
        self.scale * self.inner.predict(kernel)
    }

    fn predict_batch(&self, kernels: &[KernelSpec]) -> Vec<f64> {
        self.inner.predict_batch(kernels).into_iter().map(|t| self.scale * t).collect()
    }

    fn name(&self) -> String {
        format!("{} ×{:.3}", self.inner.name(), self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CalibrationEffort, ModelRegistry};
    use dlperf_gpusim::{DeviceSpec, KernelFamily};

    struct Flat;
    impl KernelPerfModel for Flat {
        fn predict(&self, _k: &KernelSpec) -> f64 {
            10.0
        }
        fn name(&self) -> String {
            "flat".into()
        }
    }

    #[test]
    fn scales_scalar_and_batch_identically() {
        let m = ScaledModel::new(Arc::new(Flat), 1.5);
        let k = KernelSpec::gemm(8, 8, 8);
        assert_eq!(m.predict(&k), 15.0);
        let batch = m.predict_batch(&[k.clone(), k.clone()]);
        assert_eq!(batch, vec![m.predict(&k); 2], "batch stays bitwise equal to scalar");
        assert!(m.name().contains("flat"));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn rejects_nonpositive_scale() {
        let _ = ScaledModel::new(Arc::new(Flat), 0.0);
    }

    #[test]
    fn registry_rewrap_scales_only_named_families() {
        let dev = DeviceSpec::v100();
        let reg = ModelRegistry::calibrate(&dev, CalibrationEffort::Quick, 5);
        let k = KernelSpec::gemm(256, 128, 64);
        let base = reg.try_predict(&k).expect("family covered");
        let scaled = reg.with_scale_factors(&[(KernelFamily::Gemm, 2.0)]);
        assert_eq!(scaled.try_predict(&k).expect("still covered"), 2.0 * base);
        // An untouched family predicts exactly as before.
        let copy = KernelSpec::memcpy_d2d(1 << 20);
        assert_eq!(
            scaled.try_predict(&copy).expect("covered"),
            reg.try_predict(&copy).expect("covered"),
        );
    }
}
