//! # dlperf-kernels
//!
//! Kernel performance models for the dominating kernels of DLRM training,
//! following the paper's two-pronged approach (§III-B):
//!
//! * **Heuristic models** for kernels whose implementation is accessible or
//!   trivial: the batched embedding-lookup forward/backward models (plain
//!   DRAM-traffic and L2-hit-rate-enhanced variants) and roofline models for
//!   element-wise / concat / memcpy kernels, with the "corrected peak
//!   bandwidth" calibrated from microbenchmark data.
//! * **ML-based models** for opaque kernels (cuBLAS GEMM, JIT-generated
//!   transpose, tril forward/backward, cuDNN conv): MLP regressors trained
//!   on microbenchmark sweeps with log-preprocessed features.
//!
//! [`microbench`] generates the sweeps against the simulated GPU;
//! [`registry::ModelRegistry`] assembles one model per kernel family —
//! shared across all ops that call that family, which is the paper's
//! microbenchmark-cost-saving insight — and [`error`] computes the GMAE /
//! mean / std statistics of Table IV.
//!
//! ## Example
//!
//! ```
//! use dlperf_gpusim::{DeviceSpec, KernelSpec};
//! use dlperf_kernels::registry::{CalibrationEffort, ModelRegistry};
//!
//! let registry = ModelRegistry::calibrate(&DeviceSpec::v100(), CalibrationEffort::Quick, 7);
//! let t = registry.try_predict(&KernelSpec::gemm(1024, 1024, 1024)).unwrap();
//! assert!(t > 0.0);
//! ```

pub mod error;
pub mod heuristic;
pub mod memo;
pub mod microbench;
pub mod mlbased;
pub mod persist;
pub mod registry;
pub mod scaled;

pub use error::{ErrorStats, ErrorStatsError};
pub use memo::{CachePadded, MemoCache, MemoCacheStats, MemoKey, MemoScratch};
pub use microbench::{MicrobenchHarness, MicrobenchJob, Microbenchmark, Sample};
pub use persist::RegistryBundle;
pub use registry::{
    CalibrationEffort, Confidence, KernelPerfModel, MissingModelError, ModelRegistry,
};
pub use scaled::ScaledModel;
