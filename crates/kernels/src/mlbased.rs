//! ML-based kernel performance models (§III-B-2).
//!
//! One MLP regressor per opaque kernel family, trained on microbenchmark
//! sweeps: input features are the kernel's shape parameters, the output is
//! its execution time, both log-preprocessed (handled by `dlperf-nn`).

use dlperf_gpusim::{KernelFamily, KernelSpec};
use dlperf_nn::arena::ScratchArena;
use dlperf_nn::dataset::Dataset;
use dlperf_nn::gridsearch::{grid_search, SearchSpace};
use dlperf_nn::train::{train, TrainConfig, TrainedModel};

use crate::error::ErrorStats;
use crate::microbench::Sample;

/// Shape features of a kernel, used as MLP inputs.
///
/// Alignment residues are included for transpose/tril, whose performance
/// depends on how the inner dimension meets sector and bank boundaries —
/// information a pure log-magnitude feature cannot carry.
pub fn features(kernel: &KernelSpec) -> Vec<f64> {
    let mut out = Vec::new();
    features_into(kernel, &mut out);
    out
}

/// Appends [`features`] of `kernel` to `out` — the allocation-free form
/// used to stage family-grouped feature matrices in arena buffers.
pub fn features_into(kernel: &KernelSpec, out: &mut Vec<f64>) {
    match *kernel {
        KernelSpec::Gemm { m, n, k, batch } => {
            // Tile counts at the two dominant cuBLAS tilings let the MLP
            // learn wave quantization (time steps with ceil(tiles / #SM)),
            // which raw log-magnitudes smooth over.
            let tiles128 = (m.div_ceil(128) * n.div_ceil(128) * batch) as f64;
            let tiles64 = (m.div_ceil(64) * n.div_ceil(64) * batch) as f64;
            out.extend_from_slice(&[
                m as f64,
                n as f64,
                k as f64,
                batch as f64,
                kernel.flops(),
                tiles128,
                tiles64,
            ]);
        }
        KernelSpec::Transpose { batch, rows, cols } => out.extend_from_slice(&[
            batch as f64,
            rows as f64,
            cols as f64,
            (cols % 32) as f64,
            (cols % 8) as f64,
        ]),
        KernelSpec::TrilForward { batch, n } | KernelSpec::TrilBackward { batch, n } => {
            out.extend_from_slice(&[batch as f64, n as f64, (n % 32) as f64])
        }
        KernelSpec::Conv2d { kh, kw, c_in, .. } => {
            // The implicit-GEMM shape is the natural coordinate system for
            // conv cost; filter geometry and input depth add the lowering
            // efficiency the GEMM dims cannot see.
            let (m, n, k, batch) = dlperf_gpusim::conv::implicit_gemm_shape(kernel);
            out.extend_from_slice(&[
                m as f64,
                n as f64,
                k as f64,
                batch as f64,
                kh as f64,
                kw as f64,
                c_in as f64,
                kernel.flops(),
            ]);
        }
        KernelSpec::EmbeddingForward { b, e, t, l, d, .. }
        | KernelSpec::EmbeddingBackward { b, e, t, l, d, .. } => {
            out.extend_from_slice(&[b as f64, e as f64, t as f64, l as f64, d as f64])
        }
        KernelSpec::Concat { bytes } | KernelSpec::Memcpy { bytes, .. } => {
            out.push(bytes as f64)
        }
        KernelSpec::Elementwise { elems, flops_per_elem, bytes_per_elem } => {
            out.extend_from_slice(&[elems as f64, flops_per_elem, bytes_per_elem])
        }
    }
}

/// Converts microbenchmark samples of one family into a training dataset.
///
/// # Panics
/// Panics if samples are empty or span multiple families.
pub fn dataset_of(samples: &[Sample]) -> Dataset {
    assert!(!samples.is_empty(), "no samples to train on");
    let fam = samples[0].kernel.family();
    assert!(
        samples.iter().all(|s| s.kernel.family() == fam),
        "samples must share one kernel family"
    );
    let rows: Vec<Vec<f64>> = samples.iter().map(|s| features(&s.kernel)).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.time_us).collect();
    Dataset::from_rows(&rows, &ys).expect("consistent feature rows")
}

/// A trained MLP kernel model for one family.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct MlKernelModel {
    family: KernelFamily,
    model: TrainedModel,
    /// Post-hoc multiplicative recalibration: MSE training in log space
    /// shrinks predictions toward the mean, leaving a systematic geometric
    /// bias; multiplying by the training set's geometric mean ratio
    /// `actual / predicted` removes it without touching the GMAE.
    correction: f64,
    /// Training-set error statistics of the final (corrected, clamped)
    /// model, measured at train time and persisted with the bundle.
    /// `None` for bundles written before stats were recorded.
    #[serde(default)]
    stats: Option<ErrorStats>,
}

impl MlKernelModel {
    /// Trains a model with fixed hyperparameters.
    ///
    /// # Panics
    /// Panics on empty or mixed-family samples.
    pub fn train(samples: &[Sample], cfg: &TrainConfig, seed: u64) -> Self {
        let family = samples[0].kernel.family();
        let data = dataset_of(samples);
        let model = train(&data, cfg, seed);
        let log_ratio_sum: f64 = samples
            .iter()
            .map(|s| {
                let pred = model.predict_one(&features(&s.kernel)).max(1e-9);
                (s.time_us / pred).ln()
            })
            .sum();
        let correction = (log_ratio_sum / samples.len() as f64).exp();
        let mut m = MlKernelModel { family, model, correction, stats: None };
        m.stats = m.measure_stats(samples);
        m
    }

    /// Trains via the Table II grid search, keeping the configuration with
    /// the lowest validation error.
    pub fn train_with_search(
        samples: &[Sample],
        space: &SearchSpace,
        epochs: usize,
        threads: usize,
        seed: u64,
    ) -> Self {
        let family = samples[0].kernel.family();
        let data = dataset_of(samples);
        let result = grid_search(&data, space, epochs, threads, seed);
        let model = result.model;
        let log_ratio_sum: f64 = samples
            .iter()
            .map(|s| {
                let pred = model.predict_one(&features(&s.kernel)).max(1e-9);
                (s.time_us / pred).ln()
            })
            .sum();
        let correction = (log_ratio_sum / samples.len() as f64).exp();
        let mut m = MlKernelModel { family, model, correction, stats: None };
        m.stats = m.measure_stats(samples);
        m
    }

    /// Error statistics of the finished model over its own training set —
    /// prediction exactly as served (correction and clamp included).
    fn measure_stats(&self, samples: &[Sample]) -> Option<ErrorStats> {
        let preds: Vec<f64> = samples.iter().map(|s| self.predict(&s.kernel)).collect();
        let actual: Vec<f64> = samples.iter().map(|s| s.time_us).collect();
        ErrorStats::try_from_pairs(&preds, &actual).ok()
    }

    /// The training-time error statistics, if this model (or the bundle it
    /// was loaded from) recorded them.
    pub fn error_stats(&self) -> Option<ErrorStats> {
        self.stats
    }

    /// The family this model predicts.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// Validation MAPE of the underlying regressor.
    pub fn val_mape(&self) -> f64 {
        self.model.val_mape
    }

    /// Predicted kernel time (µs).
    ///
    /// # Panics
    /// Panics if the kernel belongs to a different family.
    pub fn predict(&self, kernel: &KernelSpec) -> f64 {
        assert_eq!(kernel.family(), self.family, "family mismatch in MlKernelModel::predict");
        (self.model.predict_one(&features(kernel)) * self.correction).max(0.01)
    }

    /// Predicted kernel times for a batch, via one batched MLP forward pass
    /// over the stacked feature matrix instead of per-kernel scalar
    /// inference. Bitwise identical to mapping [`MlKernelModel::predict`]
    /// (the planned MLP forward is bitwise equal to the scalar one, and the
    /// correction/clamp are element-wise).
    ///
    /// # Panics
    /// Panics if any kernel belongs to a different family.
    pub fn predict_batch(&self, kernels: &[KernelSpec]) -> Vec<f64> {
        let mut arena = ScratchArena::new();
        let mut out = Vec::with_capacity(kernels.len());
        self.predict_batch_into(kernels, &mut arena, &mut out);
        out
    }

    /// The zero-allocation batch path: stages the stacked feature matrix in
    /// an arena buffer and appends one prediction per kernel to `out`.
    /// Bitwise identical to [`MlKernelModel::predict_batch`].
    ///
    /// # Panics
    /// Panics if any kernel belongs to a different family.
    pub fn predict_batch_into(
        &self,
        kernels: &[KernelSpec],
        arena: &mut ScratchArena,
        out: &mut Vec<f64>,
    ) {
        if kernels.is_empty() {
            return;
        }
        let mut feats = arena.take();
        for k in kernels {
            assert_eq!(k.family(), self.family, "family mismatch in MlKernelModel::predict_batch");
            features_into(k, &mut feats);
        }
        let start = out.len();
        self.model.predict_flat_into(feats, kernels.len(), arena, out);
        for p in &mut out[start..] {
            *p = (*p * self.correction).max(0.01);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorStats;
    use crate::microbench::{gemm_specs, Microbenchmark};
    use dlperf_gpusim::DeviceSpec;

    #[test]
    fn gemm_model_learns_the_surface() {
        let dev = DeviceSpec::v100();
        let mut mb = Microbenchmark::new(&dev, 1, 5);
        let train_samples = mb.measure(&gemm_specs(250, 10));
        let cfg = TrainConfig { epochs: 150, width: 64, hidden_layers: 3, ..Default::default() };
        let model = MlKernelModel::train(&train_samples, &cfg, 3);

        let eval = mb.measure(&gemm_specs(60, 99));
        let preds: Vec<f64> = eval.iter().map(|s| model.predict(&s.kernel)).collect();
        let actual: Vec<f64> = eval.iter().map(|s| s.time_us).collect();
        let stats = ErrorStats::from_pairs(&preds, &actual);
        assert!(stats.gmae < 0.30, "GEMM model too inaccurate: {stats}");
    }

    #[test]
    fn features_distinguish_alignment() {
        let aligned = KernelSpec::Transpose { batch: 8, rows: 64, cols: 64 };
        let odd = KernelSpec::Transpose { batch: 8, rows: 64, cols: 63 };
        assert_ne!(features(&aligned), features(&odd));
    }

    #[test]
    #[should_panic(expected = "one kernel family")]
    fn mixed_families_rejected() {
        let samples = vec![
            Sample { kernel: KernelSpec::gemm(8, 8, 8), time_us: 1.0 },
            Sample { kernel: KernelSpec::memcpy_d2d(64), time_us: 1.0 },
        ];
        dataset_of(&samples);
    }

    #[test]
    #[should_panic(expected = "family mismatch")]
    fn predict_wrong_family_panics() {
        let dev = DeviceSpec::v100();
        let mut mb = Microbenchmark::new(&dev, 1, 3);
        let samples = mb.measure(&gemm_specs(30, 1));
        let cfg = TrainConfig { epochs: 5, width: 16, ..Default::default() };
        let model = MlKernelModel::train(&samples, &cfg, 0);
        model.predict(&KernelSpec::memcpy_d2d(64));
    }
}
