//! Roofline models for element-wise, concat, and memcpy kernels
//! (§III-B-1b): `t = max(FLOP / peak_throughput, bytes / peak_BW)`, with
//! two corrections calibrated from microbenchmark data, as the paper does
//! ("we use the maximum measured bandwidth of the benchmark as the
//! corrected peak bandwidth"):
//!
//! * the *corrected peak bandwidth* — the maximum bandwidth any measured
//!   sample achieved, per memory domain (device memory vs PCIe);
//! * a *latency floor* — the fastest measured sample per domain, which is
//!   what a launch-dominated small kernel costs.

use dlperf_gpusim::{DeviceSpec, KernelSpec, MemcpyKind};

/// A calibrated roofline model for memory-movement and element-wise kernels.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RooflineModel {
    peak_flop_per_us: f64,
    /// Corrected device-memory bandwidth (bytes/µs).
    dram_bytes_per_us: f64,
    /// Corrected host-device bandwidth (bytes/µs).
    pcie_bytes_per_us: f64,
    /// Latency floor for device-memory kernels (µs).
    dram_latency_us: f64,
    /// Latency floor for host-device transfers (µs).
    pcie_latency_us: f64,
}

impl RooflineModel {
    /// Builds an uncalibrated model from datasheet numbers (corrected
    /// bandwidth defaults to the datasheet peak, latency floors to zero).
    pub fn from_datasheet(device: &DeviceSpec) -> Self {
        RooflineModel {
            peak_flop_per_us: device.flop_per_us(),
            dram_bytes_per_us: device.dram_bw_gbs * 1e3,
            pcie_bytes_per_us: device.pcie_bytes_per_us(),
            dram_latency_us: 0.0,
            pcie_latency_us: 0.0,
        }
    }

    /// Calibrates corrected peak bandwidths (maximum achieved) and latency
    /// floors (minimum sample time) from measured `(kernel, time µs)`
    /// samples, per memory domain. Samples of non-memory families are
    /// ignored.
    pub fn calibrate(device: &DeviceSpec, samples: &[(KernelSpec, f64)]) -> Self {
        let mut model = Self::from_datasheet(device);
        let (mut best_dram, mut best_pcie) = (0.0f64, 0.0f64);
        let (mut lat_dram, mut lat_pcie) = (f64::INFINITY, f64::INFINITY);
        for (k, t) in samples {
            if *t <= 0.0 {
                continue;
            }
            let bw = k.bytes() / t;
            match k {
                KernelSpec::Memcpy { kind: MemcpyKind::HostToDevice | MemcpyKind::DeviceToHost, .. } => {
                    best_pcie = best_pcie.max(bw);
                    lat_pcie = lat_pcie.min(*t);
                }
                KernelSpec::Memcpy { .. } | KernelSpec::Concat { .. } | KernelSpec::Elementwise { .. } => {
                    best_dram = best_dram.max(bw);
                    lat_dram = lat_dram.min(*t);
                }
                _ => {}
            }
        }
        if best_dram > 0.0 {
            model.dram_bytes_per_us = best_dram;
            model.dram_latency_us = lat_dram;
        }
        if best_pcie > 0.0 {
            model.pcie_bytes_per_us = best_pcie;
            model.pcie_latency_us = lat_pcie;
        }
        model
    }

    /// The corrected device-memory bandwidth in bytes/µs.
    pub fn corrected_dram_bytes_per_us(&self) -> f64 {
        self.dram_bytes_per_us
    }

    /// The calibrated device-memory latency floor in µs.
    pub fn dram_latency_us(&self) -> f64 {
        self.dram_latency_us
    }

    /// Predicted kernel time in microseconds.
    ///
    /// # Panics
    /// Panics if `kernel` is not a memory-movement or element-wise spec.
    pub fn predict(&self, kernel: &KernelSpec) -> f64 {
        match kernel {
            KernelSpec::Elementwise { .. } | KernelSpec::Concat { .. } => {
                let t_mem = kernel.bytes() / self.dram_bytes_per_us;
                let t_compute = kernel.flops() / self.peak_flop_per_us;
                t_mem.max(t_compute) + self.dram_latency_us
            }
            KernelSpec::Memcpy { kind, .. } => {
                let (bw, lat) = match kind {
                    MemcpyKind::HostToDevice | MemcpyKind::DeviceToHost => {
                        (self.pcie_bytes_per_us, self.pcie_latency_us)
                    }
                    MemcpyKind::DeviceToDevice => (self.dram_bytes_per_us, self.dram_latency_us),
                };
                kernel.bytes() / bw + lat
            }
            _ => panic!("RooflineModel::predict called with {kernel:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_gpusim::Gpu;

    fn calibrated(dev: &DeviceSpec) -> RooflineModel {
        let gpu = Gpu::noiseless(dev.clone());
        let mut samples = Vec::new();
        for s in 10..28 {
            for mk in [KernelSpec::memcpy_d2d(1 << s), KernelSpec::memcpy_h2d(1 << s)] {
                let t = gpu.kernel_time_noiseless(&mk);
                samples.push((mk, t));
            }
            let c = KernelSpec::Concat { bytes: 1 << s };
            let t = gpu.kernel_time_noiseless(&c);
            samples.push((c, t));
        }
        RooflineModel::calibrate(dev, &samples)
    }

    #[test]
    fn calibration_uses_max_measured_bandwidth() {
        let dev = DeviceSpec::v100();
        let m = calibrated(&dev);
        assert!(m.corrected_dram_bytes_per_us() < dev.dram_bw_gbs * 1e3);
        assert!(m.corrected_dram_bytes_per_us() > 0.6 * dev.dram_bw_gbs * 1e3);
        assert!(m.dram_latency_us() > 0.0);
    }

    #[test]
    fn large_copies_predicted_accurately() {
        let dev = DeviceSpec::p100();
        let gpu = Gpu::noiseless(dev.clone());
        let m = calibrated(&dev);
        let k = KernelSpec::memcpy_d2d(32 << 20);
        let truth = gpu.kernel_time_noiseless(&k);
        let pred = m.predict(&k);
        assert!(((pred - truth) / truth).abs() < 0.15, "pred {pred} vs {truth}");
    }

    #[test]
    fn small_copies_hit_latency_floor() {
        let dev = DeviceSpec::v100();
        let gpu = Gpu::noiseless(dev.clone());
        let m = calibrated(&dev);
        for k in [KernelSpec::memcpy_d2d(1024), KernelSpec::memcpy_h2d(1024)] {
            let truth = gpu.kernel_time_noiseless(&k);
            let pred = m.predict(&k);
            assert!(
                ((pred - truth) / truth).abs() < 0.3,
                "{k:?}: pred {pred} vs truth {truth}"
            );
        }
    }

    #[test]
    fn compute_bound_elementwise_uses_flop_roof() {
        let dev = DeviceSpec::v100();
        let m = RooflineModel::from_datasheet(&dev);
        let k = KernelSpec::Elementwise { elems: 1 << 20, flops_per_elem: 1e4, bytes_per_elem: 8.0 };
        let t = m.predict(&k);
        assert!((t - k.flops() / dev.flop_per_us()).abs() / t < 1e-9);
    }
}
