//! Heuristic (analytic) kernel performance models.

pub mod embedding;
pub mod gemm_naive;
pub mod roofline;

pub use embedding::{EmbeddingModel, EmbeddingModelKind};
pub use gemm_naive::NaiveGemmModel;
pub use roofline::RooflineModel;
