//! The paper's heuristic performance model for batched embedding-lookup
//! kernels (§III-B-1a), in both variants:
//!
//! * **Plain**: all weight-row traffic is charged to DRAM:
//!   `t = B·T·(per-warp traffic) / peak_DRAM_BW`.
//! * **Enhanced**: an analytic L2 hit-rate estimate `p` splits the weight
//!   traffic between L2 and DRAM:
//!   `t = B·T·(tr_DRAM / peak_DRAM_BW + tr_L2 / peak_L2_BW)`.
//!
//! Per-warp traffic follows the paper's accounting (32 B for table offsets,
//! 64 B for offsets, sector-quantized indices and rows), with the weight
//! term carrying the `L` lookups a warp actually performs. The hit rate is
//! the paper's occupancy argument: with `rows_per_block × #SM / B` tables
//! simultaneously resident, `avg_cached_rows_per_table = min(L2 /
//! (num_tables · 4D), E)` rows of each table fit in L2, and the probability
//! that a lookup's `L` rows are all cached is the hypergeometric ratio
//! `C(cached, L) / C(E, L)`.

use dlperf_gpusim::embedding::sectors;
use dlperf_gpusim::{DeviceSpec, KernelSpec};

/// Which variant of the embedding model to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EmbeddingModelKind {
    /// DRAM-only traffic accounting.
    Plain,
    /// With the analytic L2 hit-rate estimate.
    Enhanced,
}

/// The heuristic embedding-lookup model, parameterized by the device's
/// benchmarked hardware constants (the paper obtains them with the
/// Konstantinidis–Cotronis microbenchmark suite).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EmbeddingModel {
    kind: EmbeddingModelKind,
    sm_count: f64,
    l2_size_bytes: f64,
    dram_bytes_per_us: f64,
    l2_bytes_per_us: f64,
}

impl EmbeddingModel {
    /// Builds the model for a device.
    pub fn new(device: &DeviceSpec, kind: EmbeddingModelKind) -> Self {
        EmbeddingModel {
            kind,
            sm_count: device.sm_count as f64,
            l2_size_bytes: device.l2_size_bytes as f64,
            dram_bytes_per_us: device.dram_bytes_per_us(),
            l2_bytes_per_us: device.l2_bytes_per_us(),
        }
    }

    /// The variant in use.
    pub fn kind(&self) -> EmbeddingModelKind {
        self.kind
    }

    /// Analytic L2 hit probability for the weight-row accesses.
    pub fn hit_rate(&self, b: u64, e: u64, l: u64, d: u64, rows_per_block: u64) -> f64 {
        // Number of tables with data simultaneously resident in L2.
        let num_tables = ((rows_per_block as f64 * self.sm_count) / b as f64).max(1e-9);
        let cached = (self.l2_size_bytes / (num_tables * (4 * d) as f64)).min(e as f64);
        // P(all L sampled rows are among the cached ones): C(c, L) / C(E, L).
        if cached < l as f64 {
            return 0.0;
        }
        let mut p = 1.0;
        for i in 0..l {
            p *= (cached - i as f64) / ((e - i).max(1) as f64);
        }
        p.clamp(0.0, 1.0)
    }

    /// Predicted kernel time in microseconds.
    ///
    /// # Panics
    /// Panics if `kernel` is not an embedding forward/backward spec.
    pub fn predict(&self, kernel: &KernelSpec) -> f64 {
        let (b, e, t, l, d, rpb, backward) = match *kernel {
            KernelSpec::EmbeddingForward { b, e, t, l, d, rows_per_block } => {
                (b, e, t, l, d, rows_per_block, false)
            }
            KernelSpec::EmbeddingBackward { b, e, t, l, d, rows_per_block } => {
                (b, e, t, l, d, rows_per_block, true)
            }
            _ => panic!("EmbeddingModel::predict called with {kernel:?}"),
        };

        // Per-warp traffic, paper accounting (bytes).
        let tr_table_offsets = 32.0;
        let tr_offsets = 64.0;
        let tr_indices = sectors(4 * l) as f64;
        let tr_outputs = sectors(4 * d) as f64;
        let tr_weights = if backward {
            sectors(2 * 4 * l * d) as f64
        } else {
            l as f64 * sectors(4 * d) as f64
        };

        let warps = (b * t) as f64;
        match self.kind {
            EmbeddingModelKind::Plain => {
                let per_warp =
                    tr_table_offsets + tr_offsets + tr_indices + tr_outputs + tr_weights;
                warps * per_warp / self.dram_bytes_per_us
            }
            EmbeddingModelKind::Enhanced => {
                let p = self.hit_rate(b, e, l, d, rpb);
                let tr_l2 = tr_table_offsets + tr_offsets + p * tr_weights;
                let tr_dram = tr_indices + tr_outputs + (1.0 - p) * tr_weights;
                warps * (tr_dram / self.dram_bytes_per_us + tr_l2 / self.l2_bytes_per_us)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_gpusim::Gpu;

    fn models() -> (EmbeddingModel, EmbeddingModel) {
        let d = DeviceSpec::v100();
        (
            EmbeddingModel::new(&d, EmbeddingModelKind::Plain),
            EmbeddingModel::new(&d, EmbeddingModelKind::Enhanced),
        )
    }

    #[test]
    fn hit_rate_limits() {
        let (_, enh) = models();
        // Tiny table: everything cached.
        assert!(enh.hit_rate(2048, 500, 10, 64, 32) > 0.95);
        // Huge table: essentially nothing cached.
        assert!(enh.hit_rate(2048, 10_000_000, 10, 64, 32) < 0.01);
    }

    #[test]
    fn plain_overestimates_small_tables() {
        // The Table IV story: without the hit-rate model, small tables (L2
        // resident on the real device) are grossly overestimated.
        let (plain, enhanced) = models();
        let gpu = Gpu::noiseless(DeviceSpec::v100());
        let k = KernelSpec::embedding_forward(2048, 1_000, 8, 10, 64);
        let truth = gpu.kernel_time_noiseless(&k);
        let p = plain.predict(&k);
        let e = enhanced.predict(&k);
        assert!(p > 2.0 * truth, "plain {p} should far exceed truth {truth}");
        assert!(
            (e - truth).abs() < (p - truth).abs(),
            "enhanced {e} must beat plain {p} vs truth {truth}"
        );
    }

    #[test]
    fn plain_accurate_for_large_tables() {
        let (plain, _) = models();
        let gpu = Gpu::noiseless(DeviceSpec::v100());
        let k = KernelSpec::embedding_forward(2048, 10_000_000, 8, 10, 64);
        let truth = gpu.kernel_time_noiseless(&k);
        let p = plain.predict(&k);
        assert!(
            ((p - truth) / truth).abs() < 0.3,
            "plain {p} vs truth {truth} for big tables"
        );
    }

    #[test]
    fn backward_exceeds_forward() {
        let (_, enh) = models();
        let f = enh.predict(&KernelSpec::embedding_forward(1024, 1_000_000, 8, 10, 64));
        let b = enh.predict(&KernelSpec::embedding_backward(1024, 1_000_000, 8, 10, 64));
        assert!(b > f);
    }

    #[test]
    #[should_panic(expected = "EmbeddingModel::predict")]
    fn wrong_kernel_panics() {
        models().0.predict(&KernelSpec::gemm(8, 8, 8));
    }
}
