//! A naive heuristic GEMM model — the approach the paper *rejects*.
//!
//! §II-B argues that heuristic modeling of cuBLAS GEMM is infeasible: the
//! library's tile and wave quantization are invisible without source
//! access, so a roofline-style model with a calibrated efficiency cannot
//! track the staircase surface, "and therefore an ML-based performance
//! model is more suitable". This model exists to *demonstrate* that claim:
//! it calibrates a single compute-efficiency factor from microbenchmark
//! data (the best a heuristic can do without the tile tables) and is
//! measurably worse than the ML model near quantization cliffs.

use dlperf_gpusim::{DeviceSpec, KernelSpec};

use crate::microbench::Sample;

/// Roofline GEMM with one calibrated efficiency: the best source-free
/// heuristic.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NaiveGemmModel {
    flop_per_us: f64,
    dram_bytes_per_us: f64,
    /// Median achieved fraction of peak over the calibration sweep.
    pub efficiency: f64,
    /// Median fixed offset (launch + epilogue) over the sweep (µs).
    pub offset_us: f64,
}

impl NaiveGemmModel {
    /// Calibrates the efficiency factor from GEMM microbenchmark samples:
    /// the median of achieved/peak throughput on compute-bound points.
    ///
    /// # Panics
    /// Panics if no GEMM samples are provided.
    pub fn calibrate(device: &DeviceSpec, samples: &[Sample]) -> Self {
        let mut effs: Vec<f64> = samples
            .iter()
            .filter(|s| matches!(s.kernel, KernelSpec::Gemm { .. }))
            .filter(|s| s.kernel.flops() > 1e8) // compute-bound points only
            .map(|s| (s.kernel.flops() / s.time_us) / device.flop_per_us())
            .collect();
        assert!(!effs.is_empty(), "need GEMM samples to calibrate");
        effs.sort_by(|a, b| a.total_cmp(b));
        let efficiency = effs[effs.len() / 2].clamp(0.05, 1.0);
        let mut offsets: Vec<f64> = samples
            .iter()
            .filter(|s| s.kernel.flops() < 1e7)
            .map(|s| s.time_us)
            .collect();
        offsets.sort_by(|a, b| a.total_cmp(b));
        let offset_us = offsets.get(offsets.len() / 2).copied().unwrap_or(2.0);
        NaiveGemmModel {
            flop_per_us: device.flop_per_us(),
            dram_bytes_per_us: device.dram_bytes_per_us(),
            efficiency,
            offset_us,
        }
    }

    /// Predicted GEMM time (µs).
    ///
    /// # Panics
    /// Panics on non-GEMM kernels.
    pub fn predict(&self, kernel: &KernelSpec) -> f64 {
        assert!(
            matches!(kernel, KernelSpec::Gemm { .. }),
            "NaiveGemmModel::predict needs a GEMM, got {kernel:?}"
        );
        let t_compute = kernel.flops() / (self.flop_per_us * self.efficiency);
        let t_mem = kernel.bytes() / self.dram_bytes_per_us;
        t_compute.max(t_mem) + self.offset_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorStats;
    use crate::microbench::{gemm_specs, Microbenchmark};
    use crate::mlbased::MlKernelModel;
    use dlperf_nn::train::TrainConfig;

    /// The §II-B claim, demonstrated: on the same sweep the source-free
    /// heuristic is far less accurate than the ML model, because it cannot
    /// express tile/wave quantization.
    #[test]
    fn naive_heuristic_much_worse_than_ml_model() {
        let dev = DeviceSpec::v100();
        let mut mb = Microbenchmark::new(&dev, 3, 9);
        let train = mb.measure(&gemm_specs(300, 11));
        let eval = mb.measure(&gemm_specs(120, 909));

        let naive = NaiveGemmModel::calibrate(&dev, &train);
        let cfg = TrainConfig { epochs: 150, width: 64, hidden_layers: 3, ..Default::default() };
        let ml = MlKernelModel::train(&train, &cfg, 4);

        let actual: Vec<f64> = eval.iter().map(|s| s.time_us).collect();
        let naive_preds: Vec<f64> = eval.iter().map(|s| naive.predict(&s.kernel)).collect();
        let ml_preds: Vec<f64> = eval.iter().map(|s| ml.predict(&s.kernel)).collect();
        let e_naive = ErrorStats::from_pairs(&naive_preds, &actual);
        let e_ml = ErrorStats::from_pairs(&ml_preds, &actual);
        assert!(
            e_naive.gmae > 1.5 * e_ml.gmae,
            "naive {e_naive} should be much worse than ML {e_ml}"
        );
    }

    #[test]
    fn calibrated_efficiency_is_plausible() {
        let dev = DeviceSpec::v100();
        let mut mb = Microbenchmark::new(&dev, 5, 9);
        let samples = mb.measure(&gemm_specs(200, 21));
        let naive = NaiveGemmModel::calibrate(&dev, &samples);
        assert!((0.2..0.95).contains(&naive.efficiency), "eff {}", naive.efficiency);
        assert!(naive.offset_us > 0.0);
    }

    #[test]
    #[should_panic(expected = "needs a GEMM")]
    fn non_gemm_panics() {
        let dev = DeviceSpec::v100();
        let mut mb = Microbenchmark::new(&dev, 5, 5);
        let samples = mb.measure(&gemm_specs(50, 21));
        NaiveGemmModel::calibrate(&dev, &samples).predict(&KernelSpec::memcpy_d2d(64));
    }
}
