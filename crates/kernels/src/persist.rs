//! Persistence of calibrated kernel-model assets.
//!
//! Calibration (microbenchmarks + training) is the expensive half of the
//! pipeline; the paper's workflow stores its assets — kernel models and
//! overhead databases — so that "subsequent DLRM models simply go through
//! the Prediction Track". [`RegistryBundle`] is the serializable form of a
//! calibrated [`ModelRegistry`]: save it once per device, reload in
//! milliseconds.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dlperf_gpusim::{DeviceSpec, KernelFamily};

use crate::heuristic::embedding::EmbeddingModel;
use crate::heuristic::roofline::RooflineModel;
use crate::mlbased::MlKernelModel;
use crate::registry::ModelRegistry;

/// A serializable snapshot of every model a calibrated registry holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryBundle {
    /// The device the bundle was calibrated for.
    pub device: DeviceSpec,
    /// Roofline for memcpy / concat / element-wise.
    pub roofline: RooflineModel,
    /// Embedding-lookup forward model.
    pub embedding_forward: EmbeddingModel,
    /// Embedding-lookup backward model.
    pub embedding_backward: EmbeddingModel,
    /// ML models for the opaque kernels.
    pub gemm: MlKernelModel,
    /// Batched transpose.
    pub transpose: MlKernelModel,
    /// `tril` forward.
    pub tril_forward: MlKernelModel,
    /// `tril` backward.
    pub tril_backward: MlKernelModel,
    /// Convolution (for the CV-model experiments).
    pub conv: MlKernelModel,
}

impl RegistryBundle {
    /// Assembles a working [`ModelRegistry`] from the bundle.
    pub fn into_registry(self) -> ModelRegistry {
        let mut reg = ModelRegistry::empty(self.device);
        let roofline = Arc::new(self.roofline);
        reg.insert(KernelFamily::Memcpy, roofline.clone());
        reg.insert(KernelFamily::Concat, roofline.clone());
        reg.insert(KernelFamily::Elementwise, roofline);
        reg.insert(KernelFamily::EmbeddingForward, Arc::new(self.embedding_forward));
        reg.insert(KernelFamily::EmbeddingBackward, Arc::new(self.embedding_backward));
        reg.insert(KernelFamily::Gemm, Arc::new(self.gemm));
        reg.insert(KernelFamily::Transpose, Arc::new(self.transpose));
        reg.insert(KernelFamily::TrilForward, Arc::new(self.tril_forward));
        reg.insert(KernelFamily::TrilBackward, Arc::new(self.tril_backward));
        reg.insert(KernelFamily::Conv2d, Arc::new(self.conv));
        reg
    }

    /// Serializes the bundle to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("bundle serialization cannot fail")
    }

    /// Deserializes a bundle from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Saves the bundle to a file.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a bundle from a file.
    ///
    /// # Errors
    /// Propagates I/O and parse errors.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(Self::from_json(&std::fs::read_to_string(path)?)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CalibrationEffort;
    use dlperf_gpusim::KernelSpec;

    #[test]
    fn bundle_round_trips_and_predicts_identically() {
        let dev = DeviceSpec::v100();
        let bundle = ModelRegistry::calibrate_bundle(&dev, CalibrationEffort::Quick, 5);
        let json = bundle.to_json();
        let reloaded = RegistryBundle::from_json(&json).unwrap();

        let a = bundle.into_registry();
        let b = reloaded.into_registry();
        for k in [
            KernelSpec::gemm(1024, 512, 256),
            KernelSpec::embedding_forward(512, 100_000, 8, 10, 64),
            KernelSpec::memcpy_d2d(4 << 20),
            KernelSpec::Transpose { batch: 512, rows: 9, cols: 64 },
            KernelSpec::TrilForward { batch: 512, n: 9 },
        ] {
            assert_eq!(a.predict(&k), b.predict(&k), "mismatch on {k:?}");
        }
    }

    #[test]
    fn bundle_saves_and_loads_from_disk() {
        let dev = DeviceSpec::p100();
        let bundle = ModelRegistry::calibrate_bundle(&dev, CalibrationEffort::Quick, 6);
        let dir = std::env::temp_dir().join("dlperf-bundle-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p100.json");
        bundle.save(&path).unwrap();
        let loaded = RegistryBundle::load(&path).unwrap();
        assert_eq!(loaded.device.name, "Tesla P100");
        std::fs::remove_file(path).ok();
    }
}
