//! Persistence of calibrated kernel-model assets.
//!
//! Calibration (microbenchmarks + training) is the expensive half of the
//! pipeline; the paper's workflow stores its assets — kernel models and
//! overhead databases — so that "subsequent DLRM models simply go through
//! the Prediction Track". [`RegistryBundle`] is the serializable form of a
//! calibrated [`ModelRegistry`]: save it once per device, reload in
//! milliseconds.
//!
//! Saved bundles are untrusted input when they come back: files get
//! truncated by interrupted copies, hand-edited, or produced by an older
//! build. Bundles therefore travel inside the `dlperf-runtime` snapshot
//! envelope — schema name, format version, FNV-1a payload checksum — and
//! [`RegistryBundle::from_json`] refuses anything that does not verify,
//! with a typed [`PersistError`] saying exactly what was wrong.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dlperf_gpusim::{DeviceSpec, KernelFamily};
use dlperf_runtime::SnapshotError;

use crate::heuristic::embedding::EmbeddingModel;
use crate::heuristic::roofline::RooflineModel;
use crate::mlbased::MlKernelModel;
use crate::registry::ModelRegistry;

/// Schema name bundles are sealed under.
pub const BUNDLE_SCHEMA: &str = "dlperf.registry-bundle";
/// Current bundle format version. Version 1 was the bare (envelope-less)
/// JSON written before checksums existed; see
/// [`RegistryBundle::from_json`] for how it is still accepted.
pub const BUNDLE_VERSION: u32 = 2;

/// Why a bundle could not be saved or loaded.
#[derive(Debug)]
pub enum PersistError {
    /// The file failed schema/version/checksum verification or did not
    /// parse (truncation, corruption, incompatible build).
    Snapshot(SnapshotError),
    /// Reading or writing the bundle file failed.
    Io(std::io::Error),
    /// The bundle was produced under a different lane-reduction width than
    /// this build's contract ([`dlperf_nn::LANES`]); its models would not
    /// reproduce their validation bits here.
    LaneWidth {
        /// Width recorded in the bundle.
        found: usize,
        /// Width this build's contract requires.
        expected: usize,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Snapshot(e) => write!(f, "bundle rejected: {e}"),
            PersistError::Io(e) => write!(f, "bundle I/O failed: {e}"),
            PersistError::LaneWidth { found, expected } => write!(
                f,
                "bundle rejected: lane width {found} does not match this \
                 build's accumulation contract (W={expected})"
            ),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Snapshot(e) => Some(e),
            PersistError::Io(e) => Some(e),
            PersistError::LaneWidth { .. } => None,
        }
    }
}

impl From<SnapshotError> for PersistError {
    fn from(e: SnapshotError) -> Self {
        PersistError::Snapshot(e)
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// A serializable snapshot of every model a calibrated registry holds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryBundle {
    /// Lane width of the `dlperf-nn` accumulation contract
    /// ([`dlperf_nn::LANES`], DESIGN.md §9.3) the bundle's MLP weights were
    /// trained and validated under. Frozen into every new bundle so a build
    /// whose contract width differs refuses the checkpoint instead of
    /// silently producing different bits. `0` marks bundles written before
    /// the lane contract existed; they still verify (the stored weights are
    /// raw parameters, and the pre-contract serial order is what the W=4
    /// contract was derived from — see DESIGN.md §9.3).
    #[serde(default)]
    pub lane_width: usize,
    /// The device the bundle was calibrated for.
    pub device: DeviceSpec,
    /// Roofline for memcpy / concat / element-wise.
    pub roofline: RooflineModel,
    /// Embedding-lookup forward model.
    pub embedding_forward: EmbeddingModel,
    /// Embedding-lookup backward model.
    pub embedding_backward: EmbeddingModel,
    /// ML models for the opaque kernels.
    pub gemm: MlKernelModel,
    /// Batched transpose.
    pub transpose: MlKernelModel,
    /// `tril` forward.
    pub tril_forward: MlKernelModel,
    /// `tril` backward.
    pub tril_backward: MlKernelModel,
    /// Convolution (for the CV-model experiments).
    pub conv: MlKernelModel,
}

impl RegistryBundle {
    /// Assembles a working [`ModelRegistry`] from the bundle.
    pub fn into_registry(self) -> ModelRegistry {
        let mut reg = ModelRegistry::empty(self.device);
        let roofline = Arc::new(self.roofline);
        reg.insert(KernelFamily::Memcpy, roofline.clone());
        reg.insert(KernelFamily::Concat, roofline.clone());
        reg.insert(KernelFamily::Elementwise, roofline);
        reg.insert(KernelFamily::EmbeddingForward, Arc::new(self.embedding_forward));
        reg.insert(KernelFamily::EmbeddingBackward, Arc::new(self.embedding_backward));
        reg.insert(KernelFamily::Gemm, Arc::new(self.gemm));
        reg.insert(KernelFamily::Transpose, Arc::new(self.transpose));
        reg.insert(KernelFamily::TrilForward, Arc::new(self.tril_forward));
        reg.insert(KernelFamily::TrilBackward, Arc::new(self.tril_backward));
        reg.insert(KernelFamily::Conv2d, Arc::new(self.conv));
        reg
    }

    /// Serializes the bundle into a sealed, checksummed envelope.
    pub fn to_json(&self) -> String {
        dlperf_runtime::seal(BUNDLE_SCHEMA, BUNDLE_VERSION, self)
            .expect("bundle serialization cannot fail")
    }

    /// Deserializes a bundle, verifying schema, version, and checksum.
    ///
    /// Version-1 files (bare JSON written before the envelope existed) are
    /// still accepted: anything that is valid JSON but not an envelope is
    /// retried as a legacy bare bundle.
    ///
    /// # Errors
    /// A typed [`PersistError::Snapshot`] naming the failure: parse error
    /// (truncated file), schema mismatch (not a bundle), version mismatch
    /// (incompatible build), or checksum mismatch (corruption).
    pub fn from_json(s: &str) -> Result<Self, PersistError> {
        let bundle: RegistryBundle = match dlperf_runtime::open(BUNDLE_SCHEMA, BUNDLE_VERSION, s) {
            Ok(bundle) => bundle,
            // A legacy bare bundle parses as JSON but has no envelope
            // fields; only that specific shape falls through.
            Err(SnapshotError::Parse(_)) => {
                serde_json::from_str(s).map_err(|e| PersistError::from(SnapshotError::Parse(e)))?
            }
            Err(e) => return Err(e.into()),
        };
        // Pre-contract bundles (lane_width 0, the serde default) still
        // verify; anything else must match this build's contract width.
        if bundle.lane_width != 0 && bundle.lane_width != dlperf_nn::LANES {
            return Err(PersistError::LaneWidth {
                found: bundle.lane_width,
                expected: dlperf_nn::LANES,
            });
        }
        Ok(bundle)
    }

    /// Saves the sealed bundle to a file, atomically (temp file + rename),
    /// so an interrupted save never leaves a truncated bundle behind.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), PersistError> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and verifies a bundle from a file.
    ///
    /// # Errors
    /// [`PersistError::Io`] if the file cannot be read,
    /// [`PersistError::Snapshot`] if it fails verification.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, PersistError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::CalibrationEffort;
    use dlperf_gpusim::KernelSpec;

    #[test]
    fn bundle_round_trips_and_predicts_identically() {
        let dev = DeviceSpec::v100();
        let bundle = ModelRegistry::calibrate_bundle(&dev, CalibrationEffort::Quick, 5);
        let json = bundle.to_json();
        let reloaded = RegistryBundle::from_json(&json).unwrap();

        let a = bundle.into_registry();
        let b = reloaded.into_registry();
        for k in [
            KernelSpec::gemm(1024, 512, 256),
            KernelSpec::embedding_forward(512, 100_000, 8, 10, 64),
            KernelSpec::memcpy_d2d(4 << 20),
            KernelSpec::Transpose { batch: 512, rows: 9, cols: 64 },
            KernelSpec::TrilForward { batch: 512, n: 9 },
        ] {
            assert_eq!(a.try_predict(&k).unwrap(), b.try_predict(&k).unwrap(), "mismatch on {k:?}");
        }
    }

    #[test]
    fn bundle_saves_and_loads_from_disk() {
        let dev = DeviceSpec::p100();
        let bundle = ModelRegistry::calibrate_bundle(&dev, CalibrationEffort::Quick, 6);
        let dir = std::env::temp_dir().join("dlperf-bundle-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p100.json");
        bundle.save(&path).unwrap();
        let loaded = RegistryBundle::load(&path).unwrap();
        assert_eq!(loaded.device.name, "Tesla P100");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_bundle_is_a_typed_error() {
        let bundle =
            ModelRegistry::calibrate_bundle(&DeviceSpec::v100(), CalibrationEffort::Quick, 5);
        let json = bundle.to_json();
        match RegistryBundle::from_json(&json[..json.len() / 3]) {
            Err(PersistError::Snapshot(SnapshotError::Parse(_))) => {}
            other => panic!("expected Snapshot(Parse), got {other:?}"),
        }
    }

    #[test]
    fn corrupted_bundle_fails_the_checksum() {
        let bundle =
            ModelRegistry::calibrate_bundle(&DeviceSpec::v100(), CalibrationEffort::Quick, 5);
        let json = bundle.to_json();
        // Damage the payload without breaking the JSON structure.
        let corrupted = json.replacen("Tesla V100", "Tesla X100", 1);
        assert_ne!(json, corrupted, "corruption must land");
        match RegistryBundle::from_json(&corrupted) {
            Err(PersistError::Snapshot(SnapshotError::ChecksumMismatch { .. })) => {}
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_is_rejected_with_the_found_version() {
        let bundle =
            ModelRegistry::calibrate_bundle(&DeviceSpec::v100(), CalibrationEffort::Quick, 5);
        let json = bundle.to_json();
        let future = json.replacen(
            &format!("\"version\":{BUNDLE_VERSION}"),
            &format!("\"version\":{}", BUNDLE_VERSION + 1),
            1,
        );
        assert_ne!(json, future);
        match RegistryBundle::from_json(&future) {
            Err(PersistError::Snapshot(SnapshotError::VersionMismatch { found, .. })) => {
                assert_eq!(found, BUNDLE_VERSION + 1);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn foreign_lane_width_is_rejected_legacy_zero_accepted() {
        let bundle =
            ModelRegistry::calibrate_bundle(&DeviceSpec::v100(), CalibrationEffort::Quick, 5);
        assert_eq!(bundle.lane_width, dlperf_nn::LANES);

        // A bundle sealed under a different contract width must not load.
        let mut foreign = bundle.clone();
        foreign.lane_width = dlperf_nn::LANES * 2;
        match RegistryBundle::from_json(&foreign.to_json()) {
            Err(PersistError::LaneWidth { found, expected }) => {
                assert_eq!(found, dlperf_nn::LANES * 2);
                assert_eq!(expected, dlperf_nn::LANES);
            }
            other => panic!("expected LaneWidth rejection, got {other:?}"),
        }

        // Pre-contract bundles (no lane_width field → serde default 0)
        // still verify.
        let mut legacy = bundle;
        legacy.lane_width = 0;
        let loaded = RegistryBundle::from_json(&legacy.to_json()).expect("legacy width accepted");
        assert_eq!(loaded.lane_width, 0);
    }

    #[test]
    fn legacy_bare_bundle_still_loads() {
        let bundle =
            ModelRegistry::calibrate_bundle(&DeviceSpec::v100(), CalibrationEffort::Quick, 5);
        // What `to_json` produced before the envelope existed.
        let legacy = serde_json::to_string(&bundle).unwrap();
        let loaded = RegistryBundle::from_json(&legacy).expect("legacy bundles remain readable");
        assert_eq!(loaded.device.name, bundle.device.name);
    }
}
