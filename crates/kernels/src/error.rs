//! Prediction-error statistics: the GMAE / mean / std columns of Table IV.

/// Error statistics over a set of (prediction, actual) pairs, as absolute
/// relative errors.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ErrorStats {
    /// Geometric mean of the absolute relative errors (the paper's GMAE).
    pub gmae: f64,
    /// Arithmetic mean of the absolute relative errors.
    pub mean: f64,
    /// Standard deviation of the absolute relative errors.
    pub std: f64,
    /// Number of pairs.
    pub count: usize,
}

/// Why a set of (prediction, actual) pairs cannot yield error statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorStatsError {
    /// The two slices have different lengths.
    LengthMismatch {
        /// Number of predictions.
        pred: usize,
        /// Number of ground-truth values.
        actual: usize,
    },
    /// No pairs were given.
    Empty,
    /// An actual value was zero or negative (relative error undefined).
    NonPositiveActual {
        /// Index of the offending pair.
        index: usize,
        /// The offending actual value.
        value: f64,
    },
}

impl std::fmt::Display for ErrorStatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorStatsError::LengthMismatch { pred, actual } => {
                write!(f, "paired slices must match: {pred} predictions vs {actual} actuals")
            }
            ErrorStatsError::Empty => write!(f, "need at least one pair"),
            ErrorStatsError::NonPositiveActual { index, value } => {
                write!(f, "actual values must be positive: pair {index} is {value}")
            }
        }
    }
}

impl std::error::Error for ErrorStatsError {}

impl ErrorStats {
    /// Computes error statistics from paired predictions and ground truth.
    ///
    /// # Errors
    /// Returns [`ErrorStatsError`] if the slices differ in length, are
    /// empty, or an actual value is not positive.
    pub fn try_from_pairs(pred: &[f64], actual: &[f64]) -> Result<Self, ErrorStatsError> {
        if pred.len() != actual.len() {
            return Err(ErrorStatsError::LengthMismatch { pred: pred.len(), actual: actual.len() });
        }
        if pred.is_empty() {
            return Err(ErrorStatsError::Empty);
        }
        let mut errs = Vec::with_capacity(pred.len());
        for (i, (p, a)) in pred.iter().zip(actual).enumerate() {
            if *a <= 0.0 {
                return Err(ErrorStatsError::NonPositiveActual { index: i, value: *a });
            }
            errs.push(((p - a) / a).abs().max(1e-9));
        }
        let n = errs.len() as f64;
        let mean = errs.iter().sum::<f64>() / n;
        let std = (errs.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / n).sqrt();
        let gmae = (errs.iter().map(|e| e.ln()).sum::<f64>() / n).exp();
        Ok(ErrorStats { gmae, mean, std, count: errs.len() })
    }

    /// Computes error statistics from paired predictions and ground truth.
    ///
    /// Thin panicking wrapper over [`ErrorStats::try_from_pairs`] for
    /// contexts where malformed pairs are a programming error.
    ///
    /// # Panics
    /// Panics if the slices differ in length, are empty, or an actual value
    /// is not positive.
    pub fn from_pairs(pred: &[f64], actual: &[f64]) -> Self {
        Self::try_from_pairs(pred, actual).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Formats as the paper's percentage triple, e.g. `"5.80% 10.00% 10.33%"`.
    pub fn as_percent_row(&self) -> String {
        format!("{:6.2}% {:7.2}% {:7.2}%", self.gmae * 100.0, self.mean * 100.0, self.std * 100.0)
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GMAE {:.2}% mean {:.2}% std {:.2}% (n={})",
            self.gmae * 100.0,
            self.mean * 100.0,
            self.std * 100.0,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_zero_error() {
        let s = ErrorStats::from_pairs(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert!(s.gmae < 1e-8);
        assert!(s.mean < 1e-8);
    }

    #[test]
    fn known_errors() {
        // +10% and -10% errors: GMAE = mean = 10%.
        let s = ErrorStats::from_pairs(&[1.1, 0.9], &[1.0, 1.0]);
        assert!((s.gmae - 0.1).abs() < 1e-9);
        assert!((s.mean - 0.1).abs() < 1e-9);
        assert!(s.std < 1e-9);
    }

    #[test]
    fn gmae_below_mean_for_skewed_errors() {
        // One large outlier: the geometric mean is robust, the mean is not.
        let s = ErrorStats::from_pairs(&[1.01, 1.01, 1.01, 3.0], &[1.0; 4]);
        assert!(s.gmae < s.mean);
    }

    #[test]
    fn try_from_pairs_reports_typed_errors() {
        assert_eq!(
            ErrorStats::try_from_pairs(&[1.0], &[1.0, 2.0]),
            Err(ErrorStatsError::LengthMismatch { pred: 1, actual: 2 })
        );
        assert_eq!(ErrorStats::try_from_pairs(&[], &[]), Err(ErrorStatsError::Empty));
        assert_eq!(
            ErrorStats::try_from_pairs(&[1.0, 2.0], &[1.0, -3.0]),
            Err(ErrorStatsError::NonPositiveActual { index: 1, value: -3.0 })
        );
    }

    #[test]
    fn try_from_pairs_matches_panicking_wrapper() {
        let (p, a) = ([1.1, 0.9, 2.0], [1.0, 1.0, 2.5]);
        assert_eq!(ErrorStats::try_from_pairs(&p, &a).unwrap(), ErrorStats::from_pairs(&p, &a));
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_lengths_panic() {
        ErrorStats::from_pairs(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_actual_panics() {
        ErrorStats::from_pairs(&[1.0], &[0.0]);
    }
}
