//! Prediction-error statistics: the GMAE / mean / std columns of Table IV.

/// Error statistics over a set of (prediction, actual) pairs, as absolute
/// relative errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// Geometric mean of the absolute relative errors (the paper's GMAE).
    pub gmae: f64,
    /// Arithmetic mean of the absolute relative errors.
    pub mean: f64,
    /// Standard deviation of the absolute relative errors.
    pub std: f64,
    /// Number of pairs.
    pub count: usize,
}

impl ErrorStats {
    /// Computes error statistics from paired predictions and ground truth.
    ///
    /// # Panics
    /// Panics if the slices differ in length, are empty, or an actual value
    /// is not positive.
    pub fn from_pairs(pred: &[f64], actual: &[f64]) -> Self {
        assert_eq!(pred.len(), actual.len(), "paired slices must match");
        assert!(!pred.is_empty(), "need at least one pair");
        let errs: Vec<f64> = pred
            .iter()
            .zip(actual)
            .map(|(p, a)| {
                assert!(*a > 0.0, "actual values must be positive");
                ((p - a) / a).abs().max(1e-9)
            })
            .collect();
        let n = errs.len() as f64;
        let mean = errs.iter().sum::<f64>() / n;
        let std = (errs.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / n).sqrt();
        let gmae = (errs.iter().map(|e| e.ln()).sum::<f64>() / n).exp();
        ErrorStats { gmae, mean, std, count: errs.len() }
    }

    /// Formats as the paper's percentage triple, e.g. `"5.80% 10.00% 10.33%"`.
    pub fn as_percent_row(&self) -> String {
        format!("{:6.2}% {:7.2}% {:7.2}%", self.gmae * 100.0, self.mean * 100.0, self.std * 100.0)
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "GMAE {:.2}% mean {:.2}% std {:.2}% (n={})",
            self.gmae * 100.0,
            self.mean * 100.0,
            self.std * 100.0,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_is_zero_error() {
        let s = ErrorStats::from_pairs(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]);
        assert!(s.gmae < 1e-8);
        assert!(s.mean < 1e-8);
    }

    #[test]
    fn known_errors() {
        // +10% and -10% errors: GMAE = mean = 10%.
        let s = ErrorStats::from_pairs(&[1.1, 0.9], &[1.0, 1.0]);
        assert!((s.gmae - 0.1).abs() < 1e-9);
        assert!((s.mean - 0.1).abs() < 1e-9);
        assert!(s.std < 1e-9);
    }

    #[test]
    fn gmae_below_mean_for_skewed_errors() {
        // One large outlier: the geometric mean is robust, the mean is not.
        let s = ErrorStats::from_pairs(&[1.01, 1.01, 1.01, 3.0], &[1.0; 4]);
        assert!(s.gmae < s.mean);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn mismatched_lengths_panic() {
        ErrorStats::from_pairs(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_actual_panics() {
        ErrorStats::from_pairs(&[1.0], &[0.0]);
    }
}
