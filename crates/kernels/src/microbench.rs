//! Microbenchmark sweeps against the simulated GPU.
//!
//! The paper sweeps up to 30 k tensor shapes per kernel family, warming up
//! for 5 iterations and timing 30. Here each sample is the median of a few
//! noisy simulator measurements; sweeps are seeded and therefore fully
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dlperf_faults::{derive_seed, site_key};
use dlperf_gpusim::{DeviceSpec, Gpu, KernelSpec};
use dlperf_runtime::{
    JobContext, JobError, ResumableJob, RunReport, StepOutcome, Supervisor, SupervisorError,
};

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sample {
    /// The benchmarked kernel.
    pub kernel: KernelSpec,
    /// Median measured time (µs).
    pub time_us: f64,
}

/// A microbenchmark session bound to one device.
#[derive(Debug)]
pub struct Microbenchmark {
    gpu: Gpu,
    timed_iters: usize,
}

impl Microbenchmark {
    /// Creates a session. `timed_iters` is the number of timed repetitions
    /// whose median becomes the sample (the paper uses 30).
    pub fn new(device: &DeviceSpec, seed: u64, timed_iters: usize) -> Self {
        assert!(timed_iters > 0, "need at least one timed iteration");
        Microbenchmark { gpu: Gpu::with_seed(device.clone(), seed), timed_iters }
    }

    /// Measures every spec (5 warm-up iterations discarded, median of the
    /// timed iterations kept).
    pub fn measure(&mut self, specs: &[KernelSpec]) -> Vec<Sample> {
        specs
            .iter()
            .map(|k| {
                for _ in 0..5 {
                    let _ = self.gpu.kernel_time(k); // warm-up
                }
                Sample { kernel: k.clone(), time_us: self.gpu.benchmark(k, self.timed_iters) }
            })
            .collect()
    }
}

/// A resumable microbenchmark harness: the sweep is split into fixed-size
/// chunks of specs, and each chunk is measured on a **fresh** simulated GPU
/// whose seed is the stateless hash `derive_seed(seed, [site, chunk])`.
///
/// [`Microbenchmark`] carries GPU RNG state across the whole sweep, so its
/// results depend on every measurement that came before — fine for a
/// one-shot calibration, fatal for resume (a run killed mid-sweep could
/// never rebuild the RNG state it lost). Hash-keyed per-chunk seeds make
/// every chunk independent: measuring chunks 0..k, dying, and re-measuring
/// from chunk k yields bitwise-identical samples to a straight-through
/// sweep.
#[derive(Debug, Clone)]
pub struct MicrobenchHarness {
    device: DeviceSpec,
    seed: u64,
    timed_iters: usize,
    chunk_size: usize,
}

impl MicrobenchHarness {
    /// Creates a harness. `chunk_size` is the number of specs measured
    /// between checkpoints when run under a supervisor.
    pub fn new(device: &DeviceSpec, seed: u64, timed_iters: usize, chunk_size: usize) -> Self {
        assert!(timed_iters > 0, "need at least one timed iteration");
        assert!(chunk_size > 0, "need at least one spec per chunk");
        MicrobenchHarness { device: device.clone(), seed, timed_iters, chunk_size }
    }

    /// Number of chunks a sweep over `n_specs` splits into.
    pub fn chunk_count(&self, n_specs: usize) -> usize {
        n_specs.div_ceil(self.chunk_size)
    }

    /// Measures one chunk of the sweep on a fresh, hash-seeded GPU.
    /// `chunk_index` alone determines the RNG stream, so chunks can be
    /// measured in any order (or re-measured after a crash) with identical
    /// results.
    pub fn measure_chunk(&self, specs: &[KernelSpec], chunk_index: usize) -> Vec<Sample> {
        let lo = chunk_index * self.chunk_size;
        let hi = (lo + self.chunk_size).min(specs.len());
        assert!(lo < specs.len(), "chunk {chunk_index} is out of range");
        let chunk_seed =
            derive_seed(self.seed, &[site_key("kernels.microbench"), chunk_index as u64]);
        let mut gpu = Gpu::with_seed(self.device.clone(), chunk_seed);
        specs[lo..hi]
            .iter()
            .map(|k| {
                for _ in 0..5 {
                    let _ = gpu.kernel_time(k); // warm-up
                }
                Sample { kernel: k.clone(), time_us: gpu.benchmark(k, self.timed_iters) }
            })
            .collect()
    }

    /// Measures every spec chunk by chunk (the uninterrupted baseline the
    /// supervised sweep is bitwise-compared against).
    pub fn measure(&self, specs: &[KernelSpec]) -> Vec<Sample> {
        (0..self.chunk_count(specs.len()))
            .flat_map(|c| self.measure_chunk(specs, c))
            .collect()
    }

    /// Wraps this harness and a spec list into a [`ResumableJob`] whose
    /// step measures one chunk.
    pub fn job<'a>(&'a self, specs: &'a [KernelSpec]) -> MicrobenchJob<'a> {
        MicrobenchJob { harness: self, specs }
    }

    /// Runs the sweep under `supervisor`, checkpointing per completed
    /// chunk.
    pub fn measure_supervised(
        &self,
        specs: &[KernelSpec],
        supervisor: &mut Supervisor,
    ) -> (Result<Vec<Sample>, SupervisorError>, RunReport) {
        supervisor.run(&self.job(specs))
    }
}

/// The chunked microbenchmark sweep as a [`ResumableJob`].
#[derive(Debug)]
pub struct MicrobenchJob<'a> {
    harness: &'a MicrobenchHarness,
    specs: &'a [KernelSpec],
}

impl ResumableJob for MicrobenchJob<'_> {
    /// Samples measured so far, in spec order.
    type State = Vec<Sample>;
    type Output = Vec<Sample>;

    fn name(&self) -> &str {
        "kernels.microbench"
    }

    fn initial_state(&self) -> Vec<Sample> {
        Vec::new()
    }

    fn step(&self, state: &mut Vec<Sample>, ctx: &JobContext) -> Result<StepOutcome, JobError> {
        if self.specs.is_empty() {
            return Ok(StepOutcome::Done);
        }
        let chunk_index = ctx.step as usize;
        let expected = chunk_index * self.harness.chunk_size;
        if state.len() != expected {
            return Err(JobError::Failed(format!(
                "checkpoint holds {} samples but chunk {chunk_index} starts at {expected}",
                state.len()
            )));
        }
        state.extend(self.harness.measure_chunk(self.specs, chunk_index));
        Ok(if state.len() == self.specs.len() { StepOutcome::Done } else { StepOutcome::Continue })
    }

    fn finish(&self, state: Vec<Sample>) -> Vec<Sample> {
        state
    }
}

fn pick<T: Copy>(rng: &mut StdRng, xs: &[T]) -> T {
    xs[rng.gen_range(0..xs.len())]
}

/// Near-exponential size grid with light jitter, as real sweeps use.
fn exp_sizes(rng: &mut StdRng, lo_pow: u32, hi_pow: u32) -> u64 {
    let base = 1u64 << rng.gen_range(lo_pow..=hi_pow);
    // Occasionally perturb off the power of two to expose quantization.
    match rng.gen_range(0..4) {
        0 => base,
        1 => base + base / 4,
        2 => base - base / 8,
        _ => base + rng.gen_range(0..(base / 2).max(1)),
    }
}

/// GEMM shapes (`addmm`/`bmm`/`linear` all share this sweep).
pub fn gemm_specs(n: usize, seed: u64) -> Vec<KernelSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let batch = pick(&mut rng, &[1u64, 1, 1, 1, 8, 64, 256, 2048]);
            let hi = if batch > 1 { 9 } else { 13 };
            KernelSpec::Gemm {
                m: exp_sizes(&mut rng, 5, hi),
                n: exp_sizes(&mut rng, 5, hi),
                k: exp_sizes(&mut rng, 5, hi),
                batch,
            }
        })
        .collect()
}

/// Embedding-lookup shapes spanning the paper's parameter ranges
/// (`E` from hundreds to tens of millions, `L ≤ 100`).
pub fn embedding_specs(n: usize, backward: bool, seed: u64) -> Vec<KernelSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let b = pick(&mut rng, &[64u64, 128, 256, 512, 1024, 2048, 4096]);
            let e = pick(
                &mut rng,
                &[500u64, 1_000, 5_000, 20_000, 80_000, 300_000, 1_000_000, 4_000_000, 10_000_000],
            );
            let t = pick(&mut rng, &[1u64, 2, 4, 8, 16, 26]);
            let l = pick(&mut rng, &[1u64, 2, 5, 10, 30, 100]);
            let d = pick(&mut rng, &[16u64, 32, 64, 128, 256]);
            if backward {
                KernelSpec::embedding_backward(b, e, t, l, d)
            } else {
                KernelSpec::embedding_forward(b, e, t, l, d)
            }
        })
        .collect()
}

/// Memory sweeps: D2D copies, H2D copies, concats, and element-wise sizes.
pub fn memory_specs(n: usize, seed: u64) -> Vec<KernelSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let bytes = exp_sizes(&mut rng, 10, 27);
            match i % 4 {
                0 => KernelSpec::memcpy_d2d(bytes),
                1 => KernelSpec::memcpy_h2d(bytes),
                2 => KernelSpec::Concat { bytes },
                _ => KernelSpec::Elementwise {
                    elems: bytes / 8,
                    flops_per_elem: pick(&mut rng, &[1.0, 2.0, 4.0]),
                    bytes_per_elem: pick(&mut rng, &[8.0, 12.0, 16.0]),
                },
            }
        })
        .collect()
}

/// Batched-transpose shapes (the only permutation DLRM uses).
pub fn transpose_specs(n: usize, seed: u64) -> Vec<KernelSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| KernelSpec::Transpose {
            batch: pick(&mut rng, &[1u64, 64, 256, 1024, 2048, 4096]),
            rows: exp_sizes(&mut rng, 3, 9),
            cols: exp_sizes(&mut rng, 3, 9),
        })
        .collect()
}

/// `tril` shapes: interaction matrices are `(T+1) × (T+1)` with `T ≤ ~64`.
pub fn tril_specs(n: usize, backward: bool, seed: u64) -> Vec<KernelSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let batch = pick(&mut rng, &[64u64, 256, 512, 1024, 2048, 4096]);
            let nn = rng.gen_range(3..64u64);
            if backward {
                KernelSpec::TrilBackward { batch, n: nn }
            } else {
                KernelSpec::TrilForward { batch, n: nn }
            }
        })
        .collect()
}

/// Convolution shapes covering ResNet/Inception layers (including the 1×7
/// and 7×1 factorized filters).
pub fn conv_specs(n: usize, seed: u64) -> Vec<KernelSpec> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let (kh, kw) =
                pick(&mut rng, &[(1u64, 1u64), (3, 3), (5, 5), (7, 7), (1, 7), (7, 1), (1, 3), (3, 1)]);
            let hw = pick(&mut rng, &[7u64, 8, 14, 17, 28, 35, 56, 112, 149]);
            KernelSpec::Conv2d {
                batch: pick(&mut rng, &[8u64, 16, 32, 64]),
                c_in: pick(&mut rng, &[3u64, 32, 64, 128, 256, 512, 1024, 1280, 2048]),
                h: hw,
                w: hw,
                c_out: pick(&mut rng, &[32u64, 64, 128, 192, 256, 384, 448, 512, 640]),
                kh,
                kw,
                stride: pick(&mut rng, &[1u64, 1, 1, 2]),
                pad: kh.max(kw) / 2,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_gpusim::KernelFamily;

    #[test]
    fn sweeps_are_deterministic() {
        assert_eq!(gemm_specs(20, 7), gemm_specs(20, 7));
        assert_ne!(gemm_specs(20, 7), gemm_specs(20, 8));
    }

    #[test]
    fn measure_returns_positive_medians() {
        let mut mb = Microbenchmark::new(&DeviceSpec::v100(), 1, 7);
        let samples = mb.measure(&gemm_specs(5, 2));
        assert_eq!(samples.len(), 5);
        assert!(samples.iter().all(|s| s.time_us > 0.0));
    }

    #[test]
    fn memory_sweep_covers_all_kinds() {
        let specs = memory_specs(16, 3);
        let fams: std::collections::HashSet<KernelFamily> =
            specs.iter().map(|s| s.family()).collect();
        assert!(fams.contains(&KernelFamily::Memcpy));
        assert!(fams.contains(&KernelFamily::Concat));
        assert!(fams.contains(&KernelFamily::Elementwise));
    }

    #[test]
    fn embedding_sweep_spans_small_and_large_tables() {
        let specs = embedding_specs(200, false, 4);
        let es: Vec<u64> = specs
            .iter()
            .map(|s| match s {
                KernelSpec::EmbeddingForward { e, .. } => *e,
                _ => unreachable!(),
            })
            .collect();
        assert!(es.iter().any(|&e| e < 10_000));
        assert!(es.iter().any(|&e| e > 1_000_000));
    }

    #[test]
    #[should_panic(expected = "timed iteration")]
    fn zero_iters_panics() {
        Microbenchmark::new(&DeviceSpec::v100(), 0, 0);
    }

    #[test]
    fn harness_chunks_are_order_independent() {
        let harness = MicrobenchHarness::new(&DeviceSpec::v100(), 9, 5, 4);
        let specs = gemm_specs(10, 3);
        assert_eq!(harness.chunk_count(specs.len()), 3);
        let straight = harness.measure(&specs);
        assert_eq!(straight.len(), 10);
        // Re-measuring any chunk in isolation reproduces its samples bitwise.
        for c in (0..3).rev() {
            let again = harness.measure_chunk(&specs, c);
            let lo = c * 4;
            for (a, b) in again.iter().zip(&straight[lo..]) {
                assert_eq!(a.kernel, b.kernel);
                assert_eq!(a.time_us.to_bits(), b.time_us.to_bits());
            }
        }
    }

    #[test]
    fn supervised_sweep_matches_straight_sweep_bitwise() {
        let harness = MicrobenchHarness::new(&DeviceSpec::v100(), 17, 5, 3);
        let specs = gemm_specs(8, 5);
        let straight = harness.measure(&specs);
        let mut sup =
            dlperf_runtime::Supervisor::new(dlperf_runtime::SupervisorConfig::default());
        let (out, report) = harness.measure_supervised(&specs, &mut sup);
        let supervised = out.expect("supervised sweep completes");
        assert_eq!(report.steps_run, 3, "ceil(8/3) chunks");
        assert_eq!(supervised.len(), straight.len());
        for (a, b) in supervised.iter().zip(&straight) {
            assert_eq!(a.time_us.to_bits(), b.time_us.to_bits());
        }
    }
}
