//! Memoization of kernel-model evaluations.
//!
//! A what-if sweep prices thousands of execution graphs against the same
//! calibrated [`ModelRegistry`], and the critical-path walk re-evaluates
//! the *same* GEMM / embedding / roofline queries over and over — across
//! scenarios that share a device and batch size, most kernels are
//! identical. [`MemoCache`] is a sharded concurrent map from a
//! [`MemoKey`] (kernel family + quantized model inputs) to the model's
//! `(time, confidence)` output, with hit/miss counters so sweeps can
//! report their cache efficiency.
//!
//! ## Why quantized-feature keys are safe
//!
//! Every kernel performance model in this workspace is a *pure function*
//! of the [`KernelSpec`] it is given (the registry's trait is `&self` and
//! [`Send`]` + `[`Sync`]; the MLP inference path never mutates weights).
//! The key derived here includes **every field a model can read**:
//! integer shape parameters verbatim, and `f64` parameters quantized to
//! their IEEE-754 bit pattern (`to_bits`), which is the finest — and
//! therefore lossless — quantization grid. Two specs that collide on a
//! [`MemoKey`] are indistinguishable to every model, so replaying a
//! cached value is *bitwise identical* to re-evaluating the model. A
//! coarser grid (e.g. bucketing sizes to powers of two) would raise hit
//! rates but break the sweep engine's bitwise cache-on/cache-off
//! equivalence contract, so it is deliberately not offered.
//!
//! One cache serves **one registry**: predictions depend on the device
//! the registry was calibrated for, and the key does not include the
//! device. The sweep engine therefore keeps one cache per pipeline.
//!
//! ## Bounded caches
//!
//! A long-lived service answering millions of *distinct* queries must not
//! grow without bound, so the cache supports a hard capacity cap
//! ([`MemoCache::with_capacity`]) with LRU-by-epoch eviction: every
//! access stamps its entry from a global epoch counter, and inserting
//! into a full shard evicts that shard's least-recently-stamped entry
//! (found in O(log n) via a per-shard recency index, never by scanning).
//! Eviction changes *hit rates* only, never values — a re-miss recomputes
//! the same pure function bit-for-bit — so the bitwise determinism
//! contract is unaffected by capacity.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dlperf_gpusim::{KernelFamily, KernelSpec, MemcpyKind};
use dlperf_obs::{CounterGroup, CounterHandle};
use serde::{Deserialize, Serialize};

use dlperf_nn::arena::ScratchArena;

use crate::registry::{Confidence, ModelRegistry};

/// Number of independently locked shards; a small power of two keeps
/// contention low at sweep-level thread counts without bloating the map.
const SHARDS: usize = 16;

/// Pads its contents to a 64-byte cache line so two frequently-written
/// atomics (the cache's hit/miss counters, the sweep engine's work-claim
/// counter) never share a line — false sharing turns every counter bump
/// into cross-core cache-line ping-pong. Wrap each hot atomic separately;
/// access the value through `.0`.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// The cache key: kernel family plus every model-visible input field.
///
/// Integer fields are keyed verbatim; `f64` fields by bit pattern (see
/// the module docs for why this exact quantization is the only level
/// compatible with bitwise determinism). Unused slots are zero — the
/// family discriminant keeps variants with different arities apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemoKey {
    family: KernelFamily,
    fields: [u64; 9],
}

impl MemoKey {
    /// Derives the key for a kernel invocation.
    pub fn of(kernel: &KernelSpec) -> Self {
        let mut fields = [0u64; 9];
        match *kernel {
            KernelSpec::Gemm { m, n, k, batch } => fields[..4].copy_from_slice(&[m, n, k, batch]),
            KernelSpec::EmbeddingForward { b, e, t, l, d, rows_per_block }
            | KernelSpec::EmbeddingBackward { b, e, t, l, d, rows_per_block } => {
                fields[..6].copy_from_slice(&[b, e, t, l, d, rows_per_block]);
            }
            KernelSpec::Concat { bytes } => fields[0] = bytes,
            KernelSpec::Memcpy { bytes, kind } => {
                fields[0] = bytes;
                fields[1] = match kind {
                    MemcpyKind::HostToDevice => 1,
                    MemcpyKind::DeviceToHost => 2,
                    MemcpyKind::DeviceToDevice => 3,
                };
            }
            KernelSpec::Transpose { batch, rows, cols } => {
                fields[..3].copy_from_slice(&[batch, rows, cols]);
            }
            KernelSpec::TrilForward { batch, n } | KernelSpec::TrilBackward { batch, n } => {
                fields[..2].copy_from_slice(&[batch, n]);
            }
            KernelSpec::Elementwise { elems, flops_per_elem, bytes_per_elem } => {
                fields[..3].copy_from_slice(&[
                    elems,
                    flops_per_elem.to_bits(),
                    bytes_per_elem.to_bits(),
                ]);
            }
            KernelSpec::Conv2d { batch, c_in, h, w, c_out, kh, kw, stride, pad } => {
                fields.copy_from_slice(&[batch, c_in, h, w, c_out, kh, kw, stride, pad]);
            }
        }
        MemoKey { family: kernel.family(), fields }
    }

    /// The kernel family this key belongs to.
    pub fn family(&self) -> KernelFamily {
        self.family
    }

    /// A process-independent shard/bucket index: an FNV-1a fold over the
    /// fields (std's `RandomState` would re-seed per process, which is
    /// harmless for correctness but makes shard load untestable).
    fn shard(&self) -> usize {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        mix(self.family as u64);
        for &f in &self.fields {
            mix(f);
        }
        (h % SHARDS as u64) as usize
    }
}

/// Snapshot of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MemoCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to evaluate the model.
    pub misses: u64,
    /// Distinct keys currently stored.
    pub entries: usize,
    /// Entries dropped by the LRU-by-epoch capacity cap (0 on unbounded
    /// caches).
    pub evictions: u64,
}

impl MemoCacheStats {
    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges counters from several caches (e.g. one per device).
    pub fn merged(all: &[MemoCacheStats]) -> MemoCacheStats {
        all.iter().fold(MemoCacheStats::default(), |a, s| MemoCacheStats {
            hits: a.hits + s.hits,
            misses: a.misses + s.misses,
            entries: a.entries + s.entries,
            evictions: a.evictions + s.evictions,
        })
    }
}

impl std::fmt::Display for MemoCacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate, {} entries, {} evicted)",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.evictions
        )
    }
}

/// A thread-safe memo table for kernel-model evaluations.
///
/// Sharded `Mutex<HashMap>`s: lookups lock one shard briefly; the model
/// evaluation on a miss runs *outside* the lock, so concurrent misses on
/// different keys never serialize on each other. Two threads racing on
/// the same key may both evaluate the model — both compute the identical
/// pure-function result, so last-write-wins is benign and keeps the
/// fast path lock-short.
///
/// Built unbounded by [`MemoCache::new`] or with a hard capacity cap by
/// [`MemoCache::with_capacity`]; see the module docs for the eviction
/// policy.
/// A memoized evaluation plus the epoch stamp of its last access.
type StampedEntry = ((f64, Confidence), u64);

/// One independently locked slice of the cache. Bounded caches also keep
/// a stamp→key recency index so eviction pops the exact LRU entry in
/// O(log n) instead of scanning the whole shard under the lock — at the
/// serve default of 16K entries per shard, a full scan per miss would
/// serialize every worker on precisely the diverse-request load the cap
/// exists to absorb. Stamps come from a shared atomic counter, so they
/// are unique and the index is a bijection with the map's entries.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<MemoKey, StampedEntry>,
    /// Recency index; kept empty (and unmaintained) on unbounded caches,
    /// which never evict and so never need it.
    by_stamp: BTreeMap<u64, MemoKey>,
}

#[derive(Debug)]
pub struct MemoCache {
    /// Each entry carries the value and its last-access epoch stamp.
    shards: Vec<Mutex<Shard>>,
    /// Global access clock: every probe hit and every store draws a fresh
    /// stamp, so per-shard minimum-stamp eviction is exactly LRU within
    /// the shard. Relaxed ordering suffices — stamps only order accesses,
    /// they guard nothing.
    epoch: CachePadded<AtomicU64>,
    /// Total entry cap (`None` = unbounded). Enforced per shard as
    /// `capacity / SHARDS`, so the whole cache can never exceed the cap.
    capacity: Option<usize>,
    per_shard_cap: usize,
    /// The hit/miss/eviction counts live in a `dlperf-obs` counter group
    /// (each `obs::Counter` is cache-line padded), so recorder flushes
    /// export them alongside every other subsystem's counters;
    /// [`MemoCacheStats`] is a point-in-time view over the same atomics.
    obs: Arc<CounterGroup>,
    hits: CounterHandle,
    misses: CounterHandle,
    evictions: CounterHandle,
}

impl Default for MemoCache {
    fn default() -> Self {
        Self::new()
    }
}

impl MemoCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// An empty cache holding at most `capacity` entries, evicting
    /// LRU-by-epoch once full. The cap is distributed across the shards
    /// (`capacity / SHARDS` each), so total occupancy never exceeds
    /// `capacity`.
    ///
    /// # Panics
    /// Panics if `capacity < 16` (one entry per shard is the smallest
    /// enforceable cap).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= SHARDS, "memo capacity must be at least {SHARDS}");
        Self::build(Some(capacity))
    }

    fn build(capacity: Option<usize>) -> Self {
        let obs = CounterGroup::register("kernels.memo", &["hits", "misses", "evictions"]);
        let hits = obs.handle("hits");
        let misses = obs.handle("misses");
        let evictions = obs.handle("evictions");
        MemoCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            epoch: CachePadded(AtomicU64::new(0)),
            capacity,
            per_shard_cap: capacity.map_or(usize::MAX, |c| c / SHARDS),
            obs,
            hits,
            misses,
            evictions,
        }
    }

    /// The configured entry cap (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// This cache's recorder counter group.
    pub fn counters(&self) -> &Arc<CounterGroup> {
        &self.obs
    }

    /// Looks up `key` without counting, refreshing its LRU stamp (and
    /// recency-index slot, on bounded caches) on a hit.
    fn probe(&self, key: &MemoKey) -> Option<(f64, Confidence)> {
        let mut guard = self.shards[key.shard()].lock().expect("memo shard poisoned");
        let shard = &mut *guard;
        let entry = shard.map.get_mut(key)?;
        if self.capacity.is_some() {
            let stamp = self.epoch.0.fetch_add(1, Ordering::Relaxed);
            shard.by_stamp.remove(&entry.1);
            entry.1 = stamp;
            shard.by_stamp.insert(stamp, *key);
        }
        Some(entry.0)
    }

    /// Stores `key → value` without counting, evicting the shard's
    /// least-recently-stamped entry first when a *new* key would push the
    /// shard past its cap.
    fn store(&self, key: MemoKey, value: (f64, Confidence)) {
        let stamp = self.epoch.0.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.shards[key.shard()].lock().expect("memo shard poisoned");
        let shard = &mut *guard;
        if self.capacity.is_none() {
            shard.map.insert(key, (value, stamp));
            return;
        }
        if let Some(&(_, old_stamp)) = shard.map.get(&key) {
            // Re-store of a resident key: retire its old index slot so the
            // index never holds a stale stamp for a live entry.
            shard.by_stamp.remove(&old_stamp);
        } else if shard.map.len() >= self.per_shard_cap {
            if let Some((_, victim)) = shard.by_stamp.pop_first() {
                shard.map.remove(&victim);
                self.evictions.incr();
            }
        }
        shard.map.insert(key, (value, stamp));
        shard.by_stamp.insert(stamp, key);
    }

    /// Looks up `key`, evaluating `compute` and storing its result on a
    /// miss. The computation runs outside the shard lock.
    pub fn get_or_insert_with(
        &self,
        key: MemoKey,
        compute: impl FnOnce() -> (f64, Confidence),
    ) -> (f64, Confidence) {
        if let Some(v) = self.probe(&key) {
            self.hits.incr();
            return v;
        }
        let v = compute();
        self.misses.incr();
        self.store(key, v);
        v
    }

    /// Current counters.
    pub fn stats(&self) -> MemoCacheStats {
        MemoCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("memo shard poisoned").map.len())
                .sum(),
            evictions: self.evictions.get(),
        }
    }

    /// Drops all entries and zeroes the counters.
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock().expect("memo shard poisoned");
            shard.map.clear();
            shard.by_stamp.clear();
        }
        self.hits.reset();
        self.misses.reset();
        self.evictions.reset();
    }
}

impl From<&MemoCache> for MemoCacheStats {
    fn from(cache: &MemoCache) -> Self {
        cache.stats()
    }
}

impl ModelRegistry {
    /// Like [`ModelRegistry::predict_with_confidence`], but answered from
    /// `cache` when the (family, quantized inputs) key has been evaluated
    /// before. The cache must be dedicated to this registry — keys do not
    /// include the calibration device.
    pub fn predict_memoized(&self, cache: &MemoCache, kernel: &KernelSpec) -> (f64, Confidence) {
        cache.get_or_insert_with(MemoKey::of(kernel), || self.predict_with_confidence(kernel))
    }

    /// Batched [`ModelRegistry::predict_memoized`]: probes the cache for
    /// every kernel up front, evaluates all misses in one
    /// [`ModelRegistry::predict_batch_with_confidence`] call (one blocked
    /// MLP forward pass per family), inserts them, and returns results in
    /// input order.
    ///
    /// Counter semantics replicate the scalar sequence exactly: the first
    /// occurrence of an absent key counts one miss, every duplicate of it
    /// later in the batch counts a hit (as it would had the batch been a
    /// loop of scalar calls), so cache statistics do not depend on which
    /// path performed the lookups. Values are bitwise identical to the
    /// scalar path because every model is pure and every batched override
    /// is pinned bit-for-bit to its scalar twin.
    pub fn predict_batch_memoized(
        &self,
        cache: &MemoCache,
        kernels: &[KernelSpec],
    ) -> Vec<(f64, Confidence)> {
        let mut scratch = MemoScratch::default();
        let mut arena = ScratchArena::new();
        let mut out = Vec::with_capacity(kernels.len());
        self.predict_batch_memoized_into(cache, kernels, &mut scratch, &mut arena, &mut out);
        out
    }

    /// The zero-allocation form of
    /// [`ModelRegistry::predict_batch_memoized`]: appends one
    /// `(time, confidence)` per kernel to `out`, reusing `scratch` for key
    /// probing / miss dedup and `arena` for the model-side feature
    /// matrices. Bitwise identical results and identical counter
    /// semantics; in an all-hit steady state nothing here touches the heap.
    pub fn predict_batch_memoized_into(
        &self,
        cache: &MemoCache,
        kernels: &[KernelSpec],
        scratch: &mut MemoScratch,
        arena: &mut ScratchArena,
        out: &mut Vec<(f64, Confidence)>,
    ) {
        let MemoScratch { keys, slots, first, miss_idx, dup_idx, specs, values } = scratch;
        keys.clear();
        keys.extend(kernels.iter().map(MemoKey::of));
        slots.clear();
        let mut hits = 0u64;
        for key in keys.iter() {
            let probe = cache.probe(key);
            if probe.is_some() {
                hits += 1;
            }
            slots.push(probe);
        }
        // First occurrence of each absent key is a miss to evaluate;
        // duplicates resolve from the first's result and count as hits,
        // exactly as a scalar loop (insert, then hit) would count them.
        first.clear();
        miss_idx.clear();
        dup_idx.clear();
        for (i, slot) in slots.iter().enumerate() {
            if slot.is_none() {
                match first.entry(keys[i]) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        hits += 1;
                        dup_idx.push(i);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(i);
                        miss_idx.push(i);
                    }
                }
            }
        }
        if hits > 0 {
            cache.hits.add(hits);
        }
        if !miss_idx.is_empty() {
            cache.misses.add(miss_idx.len() as u64);
            specs.clear();
            specs.extend(miss_idx.iter().map(|&i| kernels[i].clone()));
            values.clear();
            self.predict_batch_with_confidence_into(specs, arena, values);
            for (&i, &v) in miss_idx.iter().zip(values.iter()) {
                cache.store(keys[i], v);
                slots[i] = Some(v);
            }
            for &i in dup_idx.iter() {
                let j = first[&keys[i]];
                slots[i] = slots[j];
            }
        }
        out.extend(slots.iter().map(|v| v.expect("every kernel resolved")));
    }
}

/// Reusable buffers for [`ModelRegistry::predict_batch_memoized_into`]:
/// every transient container of the batched memo probe keeps its capacity
/// across calls, so steady-state (all-hit) batches are allocation-free.
#[derive(Debug, Default)]
pub struct MemoScratch {
    keys: Vec<MemoKey>,
    slots: Vec<Option<(f64, Confidence)>>,
    first: HashMap<MemoKey, usize>,
    miss_idx: Vec<usize>,
    dup_idx: Vec<usize>,
    specs: Vec<KernelSpec>,
    values: Vec<(f64, Confidence)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlperf_gpusim::DeviceSpec;

    #[test]
    fn key_separates_families_and_fields() {
        let a = MemoKey::of(&KernelSpec::gemm(64, 64, 64));
        let b = MemoKey::of(&KernelSpec::gemm(64, 64, 65));
        let c = MemoKey::of(&KernelSpec::Transpose { batch: 64, rows: 64, cols: 64 });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, MemoKey::of(&KernelSpec::gemm(64, 64, 64)));
    }

    #[test]
    fn tril_directions_do_not_collide() {
        let f = MemoKey::of(&KernelSpec::TrilForward { batch: 8, n: 27 });
        let b = MemoKey::of(&KernelSpec::TrilBackward { batch: 8, n: 27 });
        assert_ne!(f, b, "same fields, different family");
    }

    #[test]
    fn memcpy_kinds_do_not_collide() {
        let h2d = MemoKey::of(&KernelSpec::memcpy_h2d(1 << 20));
        let d2d = MemoKey::of(&KernelSpec::memcpy_d2d(1 << 20));
        assert_ne!(h2d, d2d);
    }

    #[test]
    fn elementwise_float_params_are_exact() {
        let a = MemoKey::of(&KernelSpec::Elementwise {
            elems: 1024,
            flops_per_elem: 1.0,
            bytes_per_elem: 8.0,
        });
        let b = MemoKey::of(&KernelSpec::Elementwise {
            elems: 1024,
            flops_per_elem: 1.0 + f64::EPSILON,
            bytes_per_elem: 8.0,
        });
        assert_ne!(a, b, "bit-level quantization must distinguish any two floats");
    }

    #[test]
    fn cached_prediction_is_bitwise_identical_and_counted() {
        let reg = ModelRegistry::calibrate(&DeviceSpec::v100(), crate::CalibrationEffort::Quick, 3);
        let cache = MemoCache::new();
        let k = KernelSpec::gemm(512, 256, 128);
        let direct = reg.predict_with_confidence(&k);
        let miss = reg.predict_memoized(&cache, &k);
        let hit = reg.predict_memoized(&cache, &k);
        assert_eq!(direct.0.to_bits(), miss.0.to_bits());
        assert_eq!(direct.0.to_bits(), hit.0.to_bits());
        assert_eq!(direct.1, hit.1);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let cache = MemoCache::new();
        cache.get_or_insert_with(MemoKey::of(&KernelSpec::gemm(8, 8, 8)), || {
            (1.0, Confidence::Calibrated)
        });
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }

    #[test]
    fn batch_memoized_matches_scalar_values_and_counters() {
        let reg = ModelRegistry::calibrate(&DeviceSpec::v100(), crate::CalibrationEffort::Quick, 9);
        // A mixed-family batch with an in-batch duplicate and a repeat of
        // an already-cached key.
        let warm = KernelSpec::gemm(256, 128, 64);
        let batch = vec![
            warm.clone(),
            KernelSpec::gemm(512, 256, 128),
            KernelSpec::Transpose { batch: 64, rows: 9, cols: 64 },
            KernelSpec::gemm(512, 256, 128), // duplicate within the batch
            KernelSpec::memcpy_h2d(1 << 20),
            KernelSpec::TrilForward { batch: 64, n: 27 },
        ];

        // Scalar reference: fresh cache, warm one key, then loop.
        let scalar_cache = MemoCache::new();
        reg.predict_memoized(&scalar_cache, &warm);
        let scalar: Vec<(u64, Confidence)> = batch
            .iter()
            .map(|k| {
                let (t, c) = reg.predict_memoized(&scalar_cache, k);
                (t.to_bits(), c)
            })
            .collect();
        let scalar_stats = scalar_cache.stats();

        // Batched path over an identically prepared cache.
        let batch_cache = MemoCache::new();
        reg.predict_memoized(&batch_cache, &warm);
        let batched: Vec<(u64, Confidence)> = reg
            .predict_batch_memoized(&batch_cache, &batch)
            .into_iter()
            .map(|(t, c)| (t.to_bits(), c))
            .collect();
        let batch_stats = batch_cache.stats();

        assert_eq!(batched, scalar, "batched values must be bitwise identical");
        assert_eq!(batch_stats, scalar_stats, "counter semantics must match the scalar loop");
        // Re-running the same batch must add only hits.
        reg.predict_batch_memoized(&batch_cache, &batch);
        let again = batch_cache.stats();
        assert_eq!(again.misses, batch_stats.misses);
        assert_eq!(again.hits, batch_stats.hits + batch.len() as u64);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let reg = ModelRegistry::empty(DeviceSpec::v100());
        let cache = MemoCache::new();
        assert!(reg.predict_batch_memoized(&cache, &[]).is_empty());
        assert_eq!(cache.stats(), MemoCacheStats::default());
    }

    #[test]
    fn cache_padding_aligns_counters() {
        use std::sync::atomic::AtomicU64;
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert_eq!(std::mem::size_of::<CachePadded<AtomicU64>>(), 64);
        // The obs counters backing the memo stats carry the same padding.
        assert_eq!(std::mem::align_of::<dlperf_obs::Counter>(), 64);
    }

    #[test]
    fn stats_view_is_a_conversion_over_recorder_counters() {
        let cache = MemoCache::new();
        cache.get_or_insert_with(MemoKey::of(&KernelSpec::gemm(8, 8, 8)), || {
            (1.0, Confidence::Calibrated)
        });
        cache.get_or_insert_with(MemoKey::of(&KernelSpec::gemm(8, 8, 8)), || {
            unreachable!("second lookup must hit")
        });
        let view = MemoCacheStats::from(&cache);
        assert_eq!(view, cache.stats());
        assert_eq!(cache.counters().value("hits"), view.hits);
        assert_eq!(cache.counters().value("misses"), view.misses);
    }

    #[test]
    fn capped_cache_never_exceeds_capacity_and_counts_evictions() {
        let cache = MemoCache::with_capacity(16); // one entry per shard
        assert_eq!(cache.capacity(), Some(16));
        for i in 0..500u64 {
            cache.get_or_insert_with(MemoKey::of(&KernelSpec::gemm(8 + i, 8, 8)), || {
                (i as f64, Confidence::Calibrated)
            });
            assert!(cache.stats().entries <= 16, "cap breached at insert {i}");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 500);
        assert!(stats.evictions > 0, "500 distinct keys into 16 slots must evict");
        assert_eq!(
            stats.entries as u64 + stats.evictions,
            500,
            "every miss either occupies a slot or displaced someone"
        );
        assert_eq!(cache.counters().value("evictions"), stats.evictions);
    }

    #[test]
    fn evicted_key_recomputes_bitwise_identical() {
        let reg = ModelRegistry::calibrate(&DeviceSpec::v100(), crate::CalibrationEffort::Quick, 3);
        let cache = MemoCache::with_capacity(16);
        let k = KernelSpec::gemm(512, 256, 128);
        let first = reg.predict_memoized(&cache, &k);
        // Flood with distinct keys until the original is evicted.
        for i in 0..200u64 {
            reg.predict_memoized(&cache, &KernelSpec::gemm(16 + i, 8, 8));
        }
        let again = reg.predict_memoized(&cache, &k);
        assert_eq!(first.0.to_bits(), again.0.to_bits(), "re-miss must recompute same bits");
        assert_eq!(first.1, again.1);
    }

    #[test]
    fn touched_entry_survives_eviction_pressure() {
        // Per-shard cap of 2: the hot key shares its shard with at most one
        // churn key, and, being re-stamped every iteration, is never the
        // LRU entry when the next churn insert needs a slot.
        let cache = MemoCache::with_capacity(32);
        let hot = MemoKey::of(&KernelSpec::gemm(1, 1, 1));
        cache.get_or_insert_with(hot, || (42.0, Confidence::Calibrated));
        // Keep the hot key recently stamped while churning others through.
        for i in 0..300u64 {
            cache.get_or_insert_with(MemoKey::of(&KernelSpec::gemm(8 + i, 8, 8)), || {
                (0.0, Confidence::Calibrated)
            });
            let (v, _) = cache.get_or_insert_with(hot, || {
                panic!("hot key evicted despite being the most recently used")
            });
            assert_eq!(v.to_bits(), 42.0f64.to_bits());
        }
    }

    #[test]
    fn batch_path_respects_capacity() {
        let reg = ModelRegistry::calibrate(&DeviceSpec::v100(), crate::CalibrationEffort::Quick, 5);
        let cache = MemoCache::with_capacity(16);
        let batch: Vec<KernelSpec> = (0..100).map(|i| KernelSpec::gemm(8 + i, 8, 8)).collect();
        let direct: Vec<u64> =
            batch.iter().map(|k| reg.predict_with_confidence(k).0.to_bits()).collect();
        let via: Vec<u64> = reg
            .predict_batch_memoized(&cache, &batch)
            .into_iter()
            .map(|(t, _)| t.to_bits())
            .collect();
        assert_eq!(via, direct, "capacity pressure must not change values");
        assert!(cache.stats().entries <= 16);
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    #[should_panic(expected = "memo capacity must be at least")]
    fn sub_shard_capacity_rejected() {
        let _ = MemoCache::with_capacity(3);
    }

    #[test]
    fn recency_index_stays_bijective_with_the_map() {
        let cache = MemoCache::with_capacity(16); // one entry per shard
        let hot = MemoKey::of(&KernelSpec::gemm(1, 1, 1));
        cache.store(hot, (1.0, Confidence::Calibrated));
        // A racing re-store of a resident key must retire the old index
        // slot, not leave a stale stamp behind.
        cache.store(hot, (2.0, Confidence::Calibrated));
        for i in 0..100u64 {
            cache.store(MemoKey::of(&KernelSpec::gemm(8 + i, 8, 8)), (0.0, Confidence::Calibrated));
            let _ = cache.probe(&hot);
        }
        assert!(cache.stats().entries <= 16);
        for s in &cache.shards {
            let s = s.lock().unwrap();
            assert_eq!(s.map.len(), s.by_stamp.len(), "index desynced from map");
            for (stamp, key) in &s.by_stamp {
                assert_eq!(
                    s.map.get(key).map(|&(_, st)| st),
                    Some(*stamp),
                    "index stamp disagrees with entry stamp"
                );
            }
        }
    }

    #[test]
    fn concurrent_hits_agree() {
        let reg = std::sync::Arc::new(ModelRegistry::calibrate(
            &DeviceSpec::v100(),
            crate::CalibrationEffort::Quick,
            5,
        ));
        let cache = std::sync::Arc::new(MemoCache::new());
        let specs: Vec<KernelSpec> =
            (0..32).map(|i| KernelSpec::gemm(64 + i % 4, 64, 64)).collect();
        let baseline: Vec<u64> =
            specs.iter().map(|k| reg.predict_with_confidence(k).0.to_bits()).collect();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (reg, cache, specs, baseline) =
                (reg.clone(), cache.clone(), specs.clone(), baseline.clone());
            handles.push(std::thread::spawn(move || {
                for (k, &want) in specs.iter().zip(&baseline) {
                    let (t, _) = reg.predict_memoized(&cache, k);
                    assert_eq!(t.to_bits(), want);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(cache.stats().entries, 4, "four distinct GEMM shapes");
    }
}
