//! The kernel-model registry: one performance model per kernel family.
//!
//! This is the asset store of the paper's prediction pipeline (the blue
//! cylinders of Fig. 3): calibrating it once per device runs the
//! microbenchmarks, fits the ML models, and instantiates the heuristic
//! models; afterwards any op that lowers to a known family can be predicted
//! without touching the (simulated) hardware again. Ops sharing kernel
//! types — `addmm`, `bmm`, `linear` and all their backwards — automatically
//! share the single GEMM model, the paper's cost-saving observation.

use std::collections::HashMap;
use std::sync::Arc;

use dlperf_gpusim::{DeviceSpec, KernelFamily, KernelSpec, MemcpyKind};
use dlperf_nn::arena::ScratchArena;
use dlperf_nn::train::TrainConfig;

use crate::error::ErrorStats;
use crate::heuristic::embedding::{EmbeddingModel, EmbeddingModelKind};
use crate::heuristic::roofline::RooflineModel;
use crate::microbench::{self, Microbenchmark};
use crate::mlbased::MlKernelModel;

/// How a [`ModelRegistry`] prediction was produced.
///
/// The registry's graceful-degradation contract: a lookup that finds no
/// model for the kernel's family does not abort the caller — it falls back
/// to an uncalibrated datasheet roofline and *tags* the number as
/// [`Confidence::Degraded`], so downstream reports can distinguish a
/// trusted prediction from a best-effort estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Confidence {
    /// A model calibrated for the kernel's family produced the number.
    Calibrated,
    /// No model was registered for the family; a datasheet roofline
    /// heuristic filled in (expect substantially larger error).
    Degraded,
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Confidence::Calibrated => "calibrated",
            Confidence::Degraded => "degraded",
        })
    }
}

/// Uncalibrated datasheet roofline: `max(FLOP/peak, bytes/BW) + launch`.
/// Unlike [`RooflineModel`], which is calibrated for (and restricted to)
/// memory-movement kernels, this handles *every* kernel family — it is the
/// universal fallback behind [`ModelRegistry::predict_with_confidence`].
fn datasheet_roofline(device: &DeviceSpec, kernel: &KernelSpec) -> f64 {
    let bw = match kernel {
        KernelSpec::Memcpy { kind: MemcpyKind::HostToDevice | MemcpyKind::DeviceToHost, .. } => {
            device.pcie_bytes_per_us()
        }
        _ => device.dram_bw_gbs * 1e3,
    };
    let t_compute = kernel.flops() / device.flop_per_us();
    let t_mem = kernel.bytes() / bw;
    t_compute.max(t_mem) + device.kernel_start_us
}

/// A prediction was requested for a family with no registered model.
///
/// Returned by [`ModelRegistry::try_predict`]; callers that prefer a
/// best-effort estimate over an error use
/// [`ModelRegistry::predict_with_confidence`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissingModelError {
    /// The family that had no model.
    pub family: KernelFamily,
}

impl std::fmt::Display for MissingModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no model registered for family {}", self.family)
    }
}

impl std::error::Error for MissingModelError {}

/// A kernel performance model: predicts the execution time of one family.
pub trait KernelPerfModel: Send + Sync {
    /// Predicted time in microseconds.
    fn predict(&self, kernel: &KernelSpec) -> f64;
    /// Predicted times for a batch of same-family kernels. The default maps
    /// [`KernelPerfModel::predict`]; models with a cheaper batched path
    /// (e.g. MLP inference over a stacked feature matrix) override it, and
    /// every override must stay bitwise identical to the scalar map — the
    /// memo cache and sweep determinism contracts depend on it.
    fn predict_batch(&self, kernels: &[KernelSpec]) -> Vec<f64> {
        kernels.iter().map(|k| self.predict(k)).collect()
    }
    /// Appends predicted times for a batch of same-family kernels to `out`,
    /// staging transient buffers in `arena` so steady-state callers stay
    /// allocation-free. The default maps [`KernelPerfModel::predict`];
    /// overrides must stay bitwise identical to that map.
    fn predict_batch_into(
        &self,
        kernels: &[KernelSpec],
        arena: &mut ScratchArena,
        out: &mut Vec<f64>,
    ) {
        let _ = arena;
        out.extend(kernels.iter().map(|k| self.predict(k)));
    }
    /// Short model name for reports, e.g. `"ML(GEMM)"`.
    fn name(&self) -> String;
    /// Validation-error statistics from calibration, when the model kept
    /// them. Heuristic models (roofline, embedding) have no training set
    /// and return `None`; ML models trained by recent calibrations return
    /// the stats their training run measured. Consumers (the optimization
    /// search) use these to attach confidence intervals to predictions.
    fn error_stats(&self) -> Option<ErrorStats> {
        None
    }
}

impl KernelPerfModel for EmbeddingModel {
    fn predict(&self, kernel: &KernelSpec) -> f64 {
        EmbeddingModel::predict(self, kernel)
    }
    fn name(&self) -> String {
        match self.kind() {
            EmbeddingModelKind::Plain => "heuristic(EL, plain)".into(),
            EmbeddingModelKind::Enhanced => "heuristic(EL, hit-rate)".into(),
        }
    }
}

impl KernelPerfModel for RooflineModel {
    fn predict(&self, kernel: &KernelSpec) -> f64 {
        RooflineModel::predict(self, kernel)
    }
    fn name(&self) -> String {
        "roofline".into()
    }
}

impl KernelPerfModel for MlKernelModel {
    fn predict(&self, kernel: &KernelSpec) -> f64 {
        MlKernelModel::predict(self, kernel)
    }
    fn predict_batch(&self, kernels: &[KernelSpec]) -> Vec<f64> {
        MlKernelModel::predict_batch(self, kernels)
    }
    fn predict_batch_into(
        &self,
        kernels: &[KernelSpec],
        arena: &mut ScratchArena,
        out: &mut Vec<f64>,
    ) {
        MlKernelModel::predict_batch_into(self, kernels, arena, out)
    }
    fn name(&self) -> String {
        format!("ML({})", self.family())
    }
    fn error_stats(&self) -> Option<ErrorStats> {
        MlKernelModel::error_stats(self)
    }
}

/// How much microbenchmarking/training work calibration performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibrationEffort {
    /// Small sweeps and short training: seconds, for tests and examples.
    Quick,
    /// Paper-scale sweeps and training: for the benchmark harness.
    Full,
}

impl CalibrationEffort {
    fn samples(self, quick: usize, full: usize) -> usize {
        match self {
            CalibrationEffort::Quick => quick,
            CalibrationEffort::Full => full,
        }
    }

    fn train_config(self) -> TrainConfig {
        match self {
            CalibrationEffort::Quick => {
                TrainConfig { epochs: 120, width: 48, hidden_layers: 3, ..Default::default() }
            }
            CalibrationEffort::Full => {
                TrainConfig { epochs: 240, width: 96, hidden_layers: 3, patience: 30, batch_size: 128, ..Default::default() }
            }
        }
    }
}

/// One performance model per kernel family.
#[derive(Clone)]
pub struct ModelRegistry {
    models: HashMap<KernelFamily, Arc<dyn KernelPerfModel>>,
    device: DeviceSpec,
    /// Dispatch counters, shared across clones of this registry (clones
    /// serve the same calibration, so their traffic aggregates).
    obs: Arc<dlperf_obs::CounterGroup>,
    degraded: dlperf_obs::CounterHandle,
    batch_calls: dlperf_obs::CounterHandle,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<String> =
            self.models.iter().map(|(fam, m)| format!("{fam}: {}", m.name())).collect();
        names.sort();
        f.debug_struct("ModelRegistry")
            .field("device", &self.device.name)
            .field("models", &names)
            .finish()
    }
}

impl ModelRegistry {
    /// An empty registry for manual assembly.
    pub fn empty(device: DeviceSpec) -> Self {
        let obs = dlperf_obs::CounterGroup::register(
            format!("kernels.registry/{}", device.name),
            &["degraded", "batch_calls"],
        );
        let degraded = obs.handle("degraded");
        let batch_calls = obs.handle("batch_calls");
        ModelRegistry { models: HashMap::new(), device, obs, degraded, batch_calls }
    }

    /// This registry's dispatch counters (degraded fallbacks, batched
    /// calls), shared by every clone.
    pub fn counters(&self) -> &Arc<dlperf_obs::CounterGroup> {
        &self.obs
    }

    /// The device this registry was calibrated for.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Installs (or replaces) the model for a family.
    pub fn insert(&mut self, family: KernelFamily, model: Arc<dyn KernelPerfModel>) {
        self.models.insert(family, model);
    }

    /// The model registered for a family.
    pub fn get(&self, family: KernelFamily) -> Option<&Arc<dyn KernelPerfModel>> {
        self.models.get(&family)
    }

    /// Calibration error statistics aggregated across every registered
    /// model that kept them, count-weighted. Families are visited in
    /// [`KernelFamily::ALL`] order — never `HashMap` iteration order — so
    /// the aggregate is a deterministic function of the registry contents
    /// and the confidence intervals derived from it are reproducible bit
    /// for bit.
    ///
    /// Returns `None` when no model carries stats (heuristic-only
    /// registries, or bundles persisted before stats were recorded).
    pub fn error_stats(&self) -> Option<ErrorStats> {
        let mut gmae_log = 0.0f64;
        let mut mean_acc = 0.0f64;
        let mut var_acc = 0.0f64;
        let mut count = 0usize;
        for family in KernelFamily::ALL {
            let Some(stats) = self.models.get(&family).and_then(|m| m.error_stats()) else {
                continue;
            };
            let n = stats.count as f64;
            // Count-weighted pooling: GMAE combines in log space (it is a
            // geometric mean), mean and variance arithmetically.
            gmae_log += n * stats.gmae.max(f64::MIN_POSITIVE).ln();
            mean_acc += n * stats.mean;
            var_acc += n * stats.std * stats.std;
            count += stats.count;
        }
        if count == 0 {
            return None;
        }
        let n = count as f64;
        Some(ErrorStats {
            gmae: (gmae_log / n).exp(),
            mean: mean_acc / n,
            std: (var_acc / n).sqrt(),
            count,
        })
    }

    /// Predicted execution time of `kernel` in microseconds, or an error
    /// when no model is registered for the kernel's family.
    ///
    /// # Errors
    /// [`MissingModelError`] naming the uncovered family.
    pub fn try_predict(&self, kernel: &KernelSpec) -> Result<f64, MissingModelError> {
        match self.models.get(&kernel.family()) {
            Some(model) => Ok(model.predict(kernel)),
            None => Err(MissingModelError { family: kernel.family() }),
        }
    }

    /// Predicted execution time of `kernel` in microseconds.
    ///
    /// # Panics
    /// Panics if no model is registered for the kernel's family.
    #[deprecated(
        note = "panics on uncovered families; use `try_predict` (error) or \
                `predict_with_confidence` (degraded fallback) instead"
    )]
    pub fn predict(&self, kernel: &KernelSpec) -> f64 {
        self.try_predict(kernel).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Predicted execution time plus the confidence of the prediction.
    ///
    /// Unlike [`ModelRegistry::predict`], a missing family model does not
    /// panic: the datasheet roofline fills in and the result is tagged
    /// [`Confidence::Degraded`]. Use this in resilient analysis paths
    /// where one uncalibrated kernel must not abort a whole workload.
    pub fn predict_with_confidence(&self, kernel: &KernelSpec) -> (f64, Confidence) {
        match self.models.get(&kernel.family()) {
            Some(model) => (model.predict(kernel), Confidence::Calibrated),
            None => {
                self.degraded.incr();
                (datasheet_roofline(&self.device, kernel), Confidence::Degraded)
            }
        }
    }

    /// Batched [`ModelRegistry::predict_with_confidence`]: groups the
    /// kernels by family, answers each group through that family's
    /// [`KernelPerfModel::predict_batch`] (one blocked MLP forward pass
    /// for the ML-backed families), and returns results in input order.
    /// Bitwise identical to mapping the scalar call — every model is a
    /// pure function and every batched override is pinned to its scalar
    /// path bit-for-bit.
    pub fn predict_batch_with_confidence(&self, kernels: &[KernelSpec]) -> Vec<(f64, Confidence)> {
        let mut arena = ScratchArena::new();
        let mut out = Vec::with_capacity(kernels.len());
        self.predict_batch_with_confidence_into(kernels, &mut arena, &mut out);
        out
    }

    /// The zero-allocation form of
    /// [`ModelRegistry::predict_batch_with_confidence`]: appends one
    /// `(time, confidence)` per kernel to `out`, staging the family-grouped
    /// feature matrices and per-model times in `arena` buffers. Bitwise
    /// identical results.
    pub fn predict_batch_with_confidence_into(
        &self,
        kernels: &[KernelSpec],
        arena: &mut ScratchArena,
        out: &mut Vec<(f64, Confidence)>,
    ) {
        self.batch_calls.incr();
        // Single-family batches (the common shape once a walker has grouped
        // its misses) skip the grouping, clone, and scatter entirely.
        if let Some(first) = kernels.first() {
            let fam = first.family();
            if kernels.iter().all(|k| k.family() == fam) {
                match self.models.get(&fam) {
                    Some(model) => {
                        let mut times = arena.take();
                        model.predict_batch_into(kernels, arena, &mut times);
                        out.extend(times.iter().map(|&t| (t, Confidence::Calibrated)));
                        arena.give(times);
                    }
                    None => {
                        self.degraded.add(kernels.len() as u64);
                        out.extend(
                            kernels
                                .iter()
                                .map(|k| (datasheet_roofline(&self.device, k), Confidence::Degraded)),
                        );
                    }
                }
                return;
            }
        }
        // Mixed-family batches (rare on the walker path) still group with
        // transient containers; only the per-family feature matrices are
        // arena-staged.
        let start = out.len();
        out.resize(start + kernels.len(), (0.0, Confidence::Degraded));
        let mut order: Vec<KernelFamily> = Vec::new();
        let mut groups: HashMap<KernelFamily, Vec<usize>> = HashMap::new();
        for (i, k) in kernels.iter().enumerate() {
            let fam = k.family();
            match groups.entry(fam) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    order.push(fam);
                    e.insert(vec![i]);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().push(i),
            }
        }
        for fam in order {
            let idxs = &groups[&fam];
            match self.models.get(&fam) {
                Some(model) => {
                    let specs: Vec<KernelSpec> =
                        idxs.iter().map(|&i| kernels[i].clone()).collect();
                    let mut times = arena.take();
                    model.predict_batch_into(&specs, arena, &mut times);
                    for (&i, &t) in idxs.iter().zip(times.iter()) {
                        out[start + i] = (t, Confidence::Calibrated);
                    }
                    arena.give(times);
                }
                None => {
                    self.degraded.add(idxs.len() as u64);
                    for &i in idxs {
                        out[start + i] =
                            (datasheet_roofline(&self.device, &kernels[i]), Confidence::Degraded);
                    }
                }
            }
        }
    }

    /// Rewraps this registry with trace-fitted per-family scale factors
    /// (see [`crate::scaled::ScaledModel`]): each named family's model
    /// is multiplied by its factor, every other family is shared
    /// untouched. The original registry is not modified — callers keep
    /// the uncorrected registry for comparison reports.
    ///
    /// # Panics
    /// Panics if a factor is non-positive or non-finite (the
    /// [`crate::scaled::ScaledModel`] contract).
    pub fn with_scale_factors(&self, factors: &[(KernelFamily, f64)]) -> Self {
        let mut out = self.clone();
        for &(family, scale) in factors {
            if let Some(model) = self.models.get(&family) {
                out.insert(family, Arc::new(crate::scaled::ScaledModel::new(model.clone(), scale)));
            }
        }
        out
    }

    /// Runs the full analysis track against a device: microbenchmark sweeps,
    /// roofline calibration, heuristic instantiation, and ML training.
    ///
    /// `Quick` effort calibrates in seconds for tests; `Full` matches the
    /// paper's sweep scale (minutes).
    pub fn calibrate(device: &DeviceSpec, effort: CalibrationEffort, seed: u64) -> Self {
        Self::calibrate_bundle(device, effort, seed).into_registry()
    }

    /// Like [`ModelRegistry::calibrate`], but returns the serializable
    /// [`crate::persist::RegistryBundle`] so the expensive calibration can
    /// be stored and reloaded.
    pub fn calibrate_bundle(
        device: &DeviceSpec,
        effort: CalibrationEffort,
        seed: u64,
    ) -> crate::persist::RegistryBundle {
        let _span = dlperf_obs::span_with(dlperf_obs::SpanKind::Phase, || {
            format!("registry.calibrate/{}", device.name)
        });
        let mut mb = Microbenchmark::new(device, seed, 15);
        let cfg = effort.train_config();

        // Memory families: roofline with corrected peak bandwidth + latency.
        let mem = mb.measure(&microbench::memory_specs(effort.samples(48, 240), seed ^ 1));
        let mem_pairs: Vec<(KernelSpec, f64)> =
            mem.iter().map(|s| (s.kernel.clone(), s.time_us)).collect();
        let roofline = RooflineModel::calibrate(device, &mem_pairs);

        // GEMM gets extra capacity: its wave-quantized surface on small-SM
        // devices needs a deeper net to avoid regional bias.
        let gemm_cfg = match effort {
            CalibrationEffort::Quick => cfg.clone(),
            CalibrationEffort::Full => TrainConfig {
                epochs: 400,
                width: 160,
                hidden_layers: 4,
                patience: 50,
                batch_size: 128,
                ..Default::default()
            },
        };

        // Opaque kernels: ML models trained on sweeps.
        let mut train_ml = |specs: Vec<KernelSpec>, train_cfg: &TrainConfig, seed: u64| {
            let samples = mb.measure(&specs);
            MlKernelModel::train(&samples, train_cfg, seed)
        };
        let gemm =
            train_ml(microbench::gemm_specs(effort.samples(260, 1600), seed ^ 2), &gemm_cfg, seed ^ 2);
        let transpose =
            train_ml(microbench::transpose_specs(effort.samples(200, 700), seed ^ 3), &cfg, seed ^ 3);
        let tril_forward =
            train_ml(microbench::tril_specs(effort.samples(160, 500), false, seed ^ 4), &cfg, seed ^ 4);
        let tril_backward =
            train_ml(microbench::tril_specs(effort.samples(160, 500), true, seed ^ 5), &cfg, seed ^ 5);
        let conv = train_ml(microbench::conv_specs(effort.samples(220, 800), seed ^ 6), &cfg, seed ^ 6);

        crate::persist::RegistryBundle {
            lane_width: dlperf_nn::LANES,
            device: device.clone(),
            roofline,
            // The enhanced heuristic model, adopted for E2E prediction after
            // the Table IV comparison.
            embedding_forward: EmbeddingModel::new(device, EmbeddingModelKind::Enhanced),
            embedding_backward: EmbeddingModel::new(device, EmbeddingModelKind::Enhanced),
            gemm,
            transpose,
            tril_forward,
            tril_backward,
            conv,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorStats;
    use dlperf_gpusim::Gpu;

    #[test]
    fn calibrated_registry_covers_every_dlrm_family() {
        let reg = ModelRegistry::calibrate(&DeviceSpec::v100(), CalibrationEffort::Quick, 7);
        for fam in [
            KernelFamily::Gemm,
            KernelFamily::EmbeddingForward,
            KernelFamily::EmbeddingBackward,
            KernelFamily::Concat,
            KernelFamily::Memcpy,
            KernelFamily::Transpose,
            KernelFamily::TrilForward,
            KernelFamily::TrilBackward,
            KernelFamily::Elementwise,
            KernelFamily::Conv2d,
        ] {
            assert!(reg.get(fam).is_some(), "missing model for {fam}");
        }
    }

    #[test]
    fn quick_registry_predicts_within_band() {
        let dev = DeviceSpec::v100();
        let reg = ModelRegistry::calibrate(&dev, CalibrationEffort::Quick, 11);
        let gpu = Gpu::noiseless(dev);
        let eval = [
            KernelSpec::gemm(2048, 1024, 512),
            KernelSpec::Transpose { batch: 2048, rows: 9, cols: 64 },
            KernelSpec::TrilForward { batch: 2048, n: 27 },
            KernelSpec::memcpy_d2d(4 << 20),
            KernelSpec::embedding_forward(2048, 1_000_000, 8, 10, 64),
        ];
        let preds: Vec<f64> =
            eval.iter().map(|k| reg.try_predict(k).expect("family covered")).collect();
        let actual: Vec<f64> = eval.iter().map(|k| gpu.kernel_time_noiseless(k)).collect();
        let stats = ErrorStats::from_pairs(&preds, &actual);
        assert!(stats.mean < 0.5, "quick calibration too far off: {stats}");
    }

    #[test]
    #[should_panic(expected = "no model registered")]
    #[allow(deprecated)]
    fn missing_family_panics() {
        let reg = ModelRegistry::empty(DeviceSpec::v100());
        reg.predict(&KernelSpec::gemm(8, 8, 8));
    }

    #[test]
    fn missing_family_is_a_typed_error_from_try_predict() {
        let reg = ModelRegistry::empty(DeviceSpec::v100());
        let err = reg.try_predict(&KernelSpec::gemm(8, 8, 8)).unwrap_err();
        assert_eq!(err.family, KernelFamily::Gemm);
        assert!(err.to_string().contains("no model registered"));
    }

    #[test]
    fn degraded_fallbacks_are_counted() {
        let reg = ModelRegistry::empty(DeviceSpec::v100());
        let before = reg.counters().value("degraded");
        let _ = reg.predict_with_confidence(&KernelSpec::gemm(8, 8, 8));
        let _ = reg.predict_batch_with_confidence(&[
            KernelSpec::gemm(8, 8, 8),
            KernelSpec::memcpy_d2d(1 << 10),
        ]);
        assert_eq!(reg.counters().value("degraded") - before, 3);
        assert_eq!(reg.counters().value("batch_calls"), 1);
    }

    #[test]
    fn missing_family_degrades_instead_of_panicking() {
        let reg = ModelRegistry::empty(DeviceSpec::v100());
        for k in [
            KernelSpec::gemm(512, 512, 512),
            KernelSpec::memcpy_h2d(1 << 20),
            KernelSpec::embedding_forward(256, 100_000, 4, 10, 32),
            KernelSpec::Transpose { batch: 8, rows: 128, cols: 128 },
        ] {
            let (t, conf) = reg.predict_with_confidence(&k);
            assert_eq!(conf, Confidence::Degraded);
            assert!(t.is_finite() && t > 0.0, "degraded estimate for {k:?}: {t}");
        }
    }

    #[test]
    fn calibrated_family_matches_predict() {
        let dev = DeviceSpec::v100();
        let reg = ModelRegistry::calibrate(&dev, CalibrationEffort::Quick, 12);
        let k = KernelSpec::gemm(1024, 512, 256);
        let (t, conf) = reg.predict_with_confidence(&k);
        assert_eq!(conf, Confidence::Calibrated);
        assert_eq!(t, reg.try_predict(&k).expect("family covered"));
    }

    #[test]
    fn debug_lists_models() {
        let reg = ModelRegistry::calibrate(&DeviceSpec::p100(), CalibrationEffort::Quick, 3);
        let dbg = format!("{reg:?}");
        assert!(dbg.contains("GEMM"));
        assert!(dbg.contains("roofline"));
    }
}
