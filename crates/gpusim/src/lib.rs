//! # dlperf-gpusim
//!
//! An analytic GPU timing simulator that stands in for the real NVIDIA GPUs
//! (Tesla V100, Tesla P100, GeForce GTX TITAN Xp) used in the ISPASS 2022
//! paper *"Building a Performance Model for Deep Learning Recommendation
//! Model Training on GPUs"*.
//!
//! The paper measures kernel execution times on hardware; this crate provides
//! the measurement substrate for the reproduction. It is intentionally a
//! *richer* model than the closed-form performance models in
//! `dlperf-kernels`: it models tile and wave quantization for GEMM kernels,
//! an L2-cache reuse model for embedding lookups, size-dependent bandwidth
//! ramp curves for memory-bound kernels, and multiplicative measurement
//! noise. The performance models under evaluation therefore exhibit
//! realistic, non-trivial prediction error against it.
//!
//! All times are in **microseconds** (`f64`), matching the magnitudes the
//! paper reports for per-kernel and per-batch quantities.
//!
//! ## Example
//!
//! ```
//! use dlperf_gpusim::{Gpu, DeviceSpec, KernelSpec};
//!
//! let gpu = Gpu::noiseless(DeviceSpec::v100());
//! let gemm = KernelSpec::gemm(2048, 1024, 1024);
//! let t = gpu.kernel_time_noiseless(&gemm);
//! assert!(t > 0.0);
//! ```

pub mod collective;
pub mod conv;
pub mod device;
pub mod elementwise;
pub mod embedding;
pub mod gemm;
pub mod interconnect;
pub mod kernel;
pub mod memory;
pub mod noise;
pub mod slowdown;
pub mod transpose;

pub use collective::{CollectiveKind, CollectiveSpec};
pub use device::DeviceSpec;
pub use interconnect::{CollectiveAlgo, Link, LinkGraph, LinkSpec};
pub use kernel::{KernelFamily, KernelSpec, MemcpyKind};
pub use noise::NoiseModel;
pub use slowdown::{SlowdownProfile, ThermalWindow};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A simulated GPU: a device specification plus a measurement-noise model.
///
/// `Gpu` is the only entry point other crates need: hand it a
/// [`KernelSpec`] and it returns the simulated execution time in
/// microseconds, either noiseless (the "true" analytic time) or with the
/// measurement noise a profiler would observe.
#[derive(Debug, Clone)]
pub struct Gpu {
    spec: DeviceSpec,
    noise: NoiseModel,
    slowdown: SlowdownProfile,
    rng: StdRng,
}

impl Gpu {
    /// Creates a simulated GPU with the default noise model and a fixed seed.
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_seed(spec, 0x5eed)
    }

    /// Creates a simulated GPU with the default noise model and a caller
    /// chosen seed, so independent experiments observe independent noise.
    pub fn with_seed(spec: DeviceSpec, seed: u64) -> Self {
        Gpu {
            spec,
            noise: NoiseModel::default(),
            slowdown: SlowdownProfile::identity(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Creates a simulated GPU whose measurements carry no noise at all.
    ///
    /// Useful in tests that need exact reproducibility of the analytic model.
    pub fn noiseless(spec: DeviceSpec) -> Self {
        Gpu {
            spec,
            noise: NoiseModel::disabled(),
            slowdown: SlowdownProfile::identity(),
            rng: StdRng::seed_from_u64(0),
        }
    }

    /// The device specification of this GPU.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Replaces the noise model.
    pub fn set_noise(&mut self, noise: NoiseModel) {
        self.noise = noise;
    }

    /// Installs a fault-induced slowdown profile; kernel times are scaled
    /// by it (see [`Gpu::kernel_time_at`]).
    pub fn set_slowdown(&mut self, slowdown: SlowdownProfile) {
        self.slowdown = slowdown;
    }

    /// The active slowdown profile.
    pub fn slowdown(&self) -> &SlowdownProfile {
        &self.slowdown
    }

    /// Simulated execution time of `kernel` in microseconds, without noise.
    ///
    /// This is the deterministic analytic time: calling it repeatedly with
    /// the same kernel always returns the same value.
    pub fn kernel_time_noiseless(&self, kernel: &KernelSpec) -> f64 {
        kernel::simulate(&self.spec, kernel)
    }

    /// Simulated *measured* execution time of `kernel` in microseconds.
    ///
    /// Applies the noise model on top of the analytic time, emulating the
    /// run-to-run variation a profiler observes on real hardware.
    pub fn kernel_time(&mut self, kernel: &KernelSpec) -> f64 {
        let t = self.kernel_time_noiseless(kernel) * self.slowdown.factor_at(kernel.family(), 0.0);
        self.noise.perturb(t, &mut self.rng)
    }

    /// Like [`Gpu::kernel_time`], but evaluated at simulated time `t_us` so
    /// the slowdown profile's thermal-throttle windows apply. With the
    /// identity profile this is exactly `kernel_time` (same noise stream).
    pub fn kernel_time_at(&mut self, kernel: &KernelSpec, t_us: f64) -> f64 {
        let t = self.kernel_time_noiseless(kernel) * self.slowdown.factor_at(kernel.family(), t_us);
        self.noise.perturb(t, &mut self.rng)
    }

    /// Median of `iters` noisy measurements, emulating the paper's
    /// benchmarking methodology (warm-up followed by repeated timing).
    pub fn benchmark(&mut self, kernel: &KernelSpec, iters: usize) -> f64 {
        assert!(iters > 0, "benchmark requires at least one iteration");
        let mut samples: Vec<f64> = (0..iters).map(|_| self.kernel_time(kernel)).collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_is_deterministic() {
        let gpu = Gpu::noiseless(DeviceSpec::v100());
        let k = KernelSpec::gemm(512, 512, 512);
        assert_eq!(gpu.kernel_time_noiseless(&k), gpu.kernel_time_noiseless(&k));
    }

    #[test]
    fn noisy_measurements_vary_but_stay_close() {
        let mut gpu = Gpu::new(DeviceSpec::v100());
        let k = KernelSpec::gemm(1024, 1024, 1024);
        let base = gpu.kernel_time_noiseless(&k);
        let a = gpu.kernel_time(&k);
        let b = gpu.kernel_time(&k);
        assert_ne!(a, b);
        for t in [a, b] {
            assert!((t - base).abs() / base < 0.5, "noise too large: {t} vs {base}");
        }
    }

    #[test]
    fn benchmark_median_reduces_noise() {
        let mut gpu = Gpu::new(DeviceSpec::p100());
        let k = KernelSpec::memcpy_d2d(1 << 20);
        let base = gpu.kernel_time_noiseless(&k);
        let med = gpu.benchmark(&k, 31);
        assert!((med - base).abs() / base < 0.1);
    }

    #[test]
    fn slowdown_scales_kernel_time() {
        let k = KernelSpec::gemm(512, 512, 512);
        let mut healthy = Gpu::noiseless(DeviceSpec::v100());
        let mut slow = Gpu::noiseless(DeviceSpec::v100());
        slow.set_slowdown(SlowdownProfile::uniform(2.0));
        let t = healthy.kernel_time_at(&k, 0.0);
        assert!((slow.kernel_time_at(&k, 0.0) - 2.0 * t).abs() < 1e-9);
    }

    #[test]
    fn thermal_window_applies_only_inside_span() {
        let k = KernelSpec::gemm(256, 256, 256);
        let mut gpu = Gpu::noiseless(DeviceSpec::v100());
        let base = gpu.kernel_time_noiseless(&k);
        gpu.set_slowdown(SlowdownProfile::identity().with_thermal_window(ThermalWindow {
            start_us: 1000.0,
            end_us: 2000.0,
            factor: 1.5,
        }));
        assert!((gpu.kernel_time_at(&k, 500.0) - base).abs() < 1e-9);
        assert!((gpu.kernel_time_at(&k, 1500.0) - 1.5 * base).abs() < 1e-9);
        assert!((gpu.kernel_time_at(&k, 2500.0) - base).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn benchmark_zero_iters_panics() {
        let mut gpu = Gpu::new(DeviceSpec::titan_xp());
        gpu.benchmark(&KernelSpec::gemm(8, 8, 8), 0);
    }
}
