//! Measurement-noise model.
//!
//! Profiled kernel times on real hardware vary run to run (clock residency,
//! scheduling, DVFS). The paper controls this by fixing application clocks
//! and disabling turbo boost, leaving a few percent of jitter. The model
//! here is multiplicative log-normal noise plus a small additive jitter so
//! that very short kernels show proportionally larger variation, as they do
//! in practice.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Multiplicative + additive measurement noise applied to simulated times.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of the log of the multiplicative factor.
    pub sigma: f64,
    /// Additive jitter amplitude in microseconds (uniform ±).
    pub jitter_us: f64,
    /// Whether noise is applied at all.
    pub enabled: bool,
}

impl Default for NoiseModel {
    /// Default calibration: ≈2.5% multiplicative, ±0.15 µs additive.
    fn default() -> Self {
        NoiseModel { sigma: 0.025, jitter_us: 0.15, enabled: true }
    }
}

impl NoiseModel {
    /// A noise model that never perturbs anything.
    pub fn disabled() -> Self {
        NoiseModel { sigma: 0.0, jitter_us: 0.0, enabled: false }
    }

    /// A noise model with custom multiplicative sigma and additive jitter.
    pub fn new(sigma: f64, jitter_us: f64) -> Self {
        assert!(sigma >= 0.0 && jitter_us >= 0.0, "noise parameters must be non-negative");
        NoiseModel { sigma, jitter_us, enabled: true }
    }

    /// Applies the noise to a time `t_us`, never returning a negative value.
    pub fn perturb<R: Rng + ?Sized>(&self, t_us: f64, rng: &mut R) -> f64 {
        if !self.enabled {
            return t_us;
        }
        let mult = if self.sigma > 0.0 {
            LogNormal::new(0.0, self.sigma).expect("valid lognormal").sample(rng)
        } else {
            1.0
        };
        let add = if self.jitter_us > 0.0 {
            rng.gen_range(-self.jitter_us..self.jitter_us)
        } else {
            0.0
        };
        (t_us * mult + add).max(0.01)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn disabled_noise_is_identity() {
        let n = NoiseModel::disabled();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(n.perturb(42.0, &mut rng), 42.0);
    }

    #[test]
    fn noise_is_unbiased_to_first_order() {
        let n = NoiseModel::default();
        let mut rng = StdRng::seed_from_u64(7);
        let base = 100.0;
        let mean: f64 = (0..20_000).map(|_| n.perturb(base, &mut rng)).sum::<f64>() / 20_000.0;
        assert!((mean - base).abs() / base < 0.01, "mean {mean} drifted from {base}");
    }

    #[test]
    fn never_negative() {
        let n = NoiseModel::new(0.5, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(n.perturb(0.02, &mut rng) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_panics() {
        NoiseModel::new(-0.1, 0.0);
    }
}
