//! Fault-induced slowdown profiles.
//!
//! A [`SlowdownProfile`] describes how a degraded GPU deviates from its
//! healthy analytic timing: a global multiplier (straggler ranks, dusty
//! heatsinks), per-kernel-family multipliers (e.g. a contended memory
//! subsystem slowing only bandwidth-bound kernels), and thermal-throttle
//! windows during which clocks drop for a span of simulated time. The
//! profile is pure data — serializable, clonable, and deterministic — so a
//! fault scenario can be stored next to the experiment that used it.
//!
//! [`crate::Gpu::kernel_time_at`] consults the profile with the kernel's
//! scheduled start time, which is how time-windowed throttling composes
//! with the discrete-event engines in `dlperf-trace` / `dlperf-distrib`.

use serde::{Deserialize, Serialize};

use crate::kernel::KernelFamily;

/// A span of simulated time during which the GPU runs slower (DVFS
/// throttling after a thermal or power excursion).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalWindow {
    /// Window start (µs on the engine's simulated clock).
    pub start_us: f64,
    /// Window end (µs, exclusive).
    pub end_us: f64,
    /// Multiplier applied to kernel times started inside the window (≥ 1).
    pub factor: f64,
}

impl ThermalWindow {
    /// Whether `t_us` falls inside this window.
    pub fn contains(&self, t_us: f64) -> bool {
        t_us >= self.start_us && t_us < self.end_us
    }
}

/// A deterministic description of how a GPU's kernel times are inflated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlowdownProfile {
    /// Multiplier applied to every kernel (1 = healthy).
    pub global: f64,
    /// Extra multipliers for specific kernel families.
    pub per_family: Vec<(KernelFamily, f64)>,
    /// Time-windowed throttle spans.
    pub thermal_windows: Vec<ThermalWindow>,
}

impl Default for SlowdownProfile {
    fn default() -> Self {
        Self::identity()
    }
}

impl SlowdownProfile {
    /// The no-op profile: every factor is 1.
    pub fn identity() -> Self {
        SlowdownProfile { global: 1.0, per_family: Vec::new(), thermal_windows: Vec::new() }
    }

    /// A uniform slowdown of every kernel by `factor`.
    pub fn uniform(factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "slowdown factor must be positive and finite");
        SlowdownProfile { global: factor, ..Self::identity() }
    }

    /// Adds (or compounds) a per-family multiplier (builder style).
    pub fn with_family(mut self, family: KernelFamily, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "slowdown factor must be positive and finite");
        match self.per_family.iter_mut().find(|(f, _)| *f == family) {
            Some((_, existing)) => *existing *= factor,
            None => self.per_family.push((family, factor)),
        }
        self
    }

    /// Adds a thermal-throttle window (builder style).
    pub fn with_thermal_window(mut self, window: ThermalWindow) -> Self {
        assert!(
            window.start_us < window.end_us && window.factor > 0.0 && window.factor.is_finite(),
            "thermal window must have positive span and factor"
        );
        self.thermal_windows.push(window);
        self
    }

    /// Whether this profile changes nothing.
    pub fn is_identity(&self) -> bool {
        self.global == 1.0 && self.per_family.is_empty() && self.thermal_windows.is_empty()
    }

    /// The combined multiplier for a kernel of `family` starting at `t_us`.
    pub fn factor_at(&self, family: KernelFamily, t_us: f64) -> f64 {
        let mut f = self.global;
        for (fam, factor) in &self.per_family {
            if *fam == family {
                f *= factor;
            }
        }
        for w in &self.thermal_windows {
            if w.contains(t_us) {
                f *= w.factor;
            }
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_one_everywhere() {
        let p = SlowdownProfile::identity();
        assert!(p.is_identity());
        assert_eq!(p.factor_at(KernelFamily::Gemm, 0.0), 1.0);
        assert_eq!(p.factor_at(KernelFamily::Memcpy, 1e9), 1.0);
    }

    #[test]
    fn factors_compose_multiplicatively() {
        let p = SlowdownProfile::uniform(2.0)
            .with_family(KernelFamily::Gemm, 1.5)
            .with_thermal_window(ThermalWindow { start_us: 100.0, end_us: 200.0, factor: 3.0 });
        assert_eq!(p.factor_at(KernelFamily::Gemm, 0.0), 3.0);
        assert_eq!(p.factor_at(KernelFamily::Memcpy, 0.0), 2.0);
        assert_eq!(p.factor_at(KernelFamily::Gemm, 150.0), 9.0);
        // Window end is exclusive.
        assert_eq!(p.factor_at(KernelFamily::Gemm, 200.0), 3.0);
    }

    #[test]
    fn repeated_family_entries_compound() {
        let p = SlowdownProfile::identity()
            .with_family(KernelFamily::Gemm, 2.0)
            .with_family(KernelFamily::Gemm, 3.0);
        assert_eq!(p.factor_at(KernelFamily::Gemm, 0.0), 6.0);
    }

    #[test]
    fn serde_round_trips() {
        let p = SlowdownProfile::uniform(1.7)
            .with_family(KernelFamily::EmbeddingForward, 2.0)
            .with_thermal_window(ThermalWindow { start_us: 0.0, end_us: 50.0, factor: 1.3 });
        let json = serde_json::to_string(&p).unwrap();
        let back: SlowdownProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_factor_panics() {
        SlowdownProfile::uniform(0.0);
    }
}
