//! Batched matrix transpose and `tril` (lower-triangular extraction)
//! kernels.
//!
//! The paper models both with MLPs because their JIT-generated
//! implementations are opaque and their performance depends on alignment in
//! non-obvious ways. The simulator reproduces that character: achieved
//! bandwidth depends on how the inner dimension aligns with 32-element
//! sectors and shared-memory banks, producing a piecewise surface that is
//! awkward for closed forms but learnable by an MLP.

use crate::device::DeviceSpec;
use crate::kernel::KernelSpec;
use crate::memory::ramped_bandwidth;

const HALF_SAT_BYTES: f64 = 512.0 * 1024.0;

/// Alignment-dependent efficiency of strided global-memory access with an
/// inner dimension of `cols` FP32 elements.
pub fn alignment_efficiency(cols: u64) -> f64 {
    if cols.is_multiple_of(32) {
        0.90
    } else if cols.is_multiple_of(16) {
        0.78
    } else if cols.is_multiple_of(8) {
        0.66
    } else if cols.is_multiple_of(4) {
        0.52
    } else {
        0.38
    }
}

/// Simulates the batched `rows × cols` transpose of `batch` matrices.
pub fn simulate_transpose(device: &DeviceSpec, kernel: &KernelSpec) -> f64 {
    let KernelSpec::Transpose { batch, rows, cols } = *kernel else {
        panic!("simulate_transpose called with {kernel:?}");
    };
    assert!(batch > 0 && rows > 0 && cols > 0, "transpose dims must be positive");
    let traffic = 8.0 * (batch * rows * cols) as f64; // read + write, FP32
    let eff = alignment_efficiency(cols).min(alignment_efficiency(rows) + 0.12);
    let bw = eff * ramped_bandwidth(device.dram_bytes_per_us(), traffic, HALF_SAT_BYTES);
    traffic / bw.max(1e-9) + device.kernel_start_us
}

/// Simulates the `tril` forward (gather) and backward (scatter) kernels used
/// by DLRM's feature interaction.
pub fn simulate_tril(device: &DeviceSpec, kernel: &KernelSpec) -> f64 {
    let (batch, n, backward) = match *kernel {
        KernelSpec::TrilForward { batch, n } => (batch, n, false),
        KernelSpec::TrilBackward { batch, n } => (batch, n, true),
        _ => panic!("simulate_tril called with {kernel:?}"),
    };
    assert!(batch > 0 && n > 1, "tril needs batch > 0 and n > 1");
    let tri = n * (n - 1) / 2;
    // Forward reads the full matrix, writes the triangle; backward reads the
    // triangle gradient and scatters into a zeroed full matrix.
    let traffic = 4.0 * (batch * (n * n + tri)) as f64;
    // Row-length-dependent coalescing: rows of the triangle have ragged
    // lengths, so efficiency degrades for small n and odd alignments.
    let base_eff = alignment_efficiency(n).max(0.45) * (0.55 + 0.45 * (n as f64 / (n as f64 + 24.0)));
    let eff = if backward { base_eff * 0.8 } else { base_eff };
    let bw = eff * ramped_bandwidth(device.dram_bytes_per_us(), traffic, HALF_SAT_BYTES);
    traffic / bw.max(1e-9) + device.kernel_start_us
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_transpose_faster_than_misaligned() {
        let d = DeviceSpec::v100();
        let aligned = simulate_transpose(&d, &KernelSpec::Transpose { batch: 256, rows: 128, cols: 128 });
        let odd = simulate_transpose(&d, &KernelSpec::Transpose { batch: 256, rows: 128, cols: 127 });
        // Slightly less data but visibly slower per byte.
        let aligned_per_byte = aligned / (128.0 * 128.0);
        let odd_per_byte = odd / (128.0 * 127.0);
        assert!(odd_per_byte > 1.1 * aligned_per_byte);
    }

    #[test]
    fn tril_backward_slower_than_forward() {
        let d = DeviceSpec::p100();
        let f = simulate_tril(&d, &KernelSpec::TrilForward { batch: 2048, n: 27 });
        let b = simulate_tril(&d, &KernelSpec::TrilBackward { batch: 2048, n: 27 });
        assert!(b > f);
    }

    #[test]
    fn alignment_efficiency_tiers() {
        assert_eq!(alignment_efficiency(64), 0.90);
        assert_eq!(alignment_efficiency(48), 0.78);
        assert_eq!(alignment_efficiency(24), 0.66);
        assert_eq!(alignment_efficiency(12), 0.52);
        assert_eq!(alignment_efficiency(7), 0.38);
    }

    #[test]
    #[should_panic(expected = "n > 1")]
    fn tril_n1_panics() {
        simulate_tril(&DeviceSpec::v100(), &KernelSpec::TrilForward { batch: 4, n: 1 });
    }
}
