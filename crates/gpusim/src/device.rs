//! Device specifications for the GPUs evaluated in the paper.
//!
//! The catalog carries the published hardware parameters of the three GPUs
//! the paper benchmarks (Tesla V100, Tesla P100, GeForce GTX TITAN Xp). The
//! paper obtains the corresponding parameters of the real devices with the
//! micro-benchmark suite of Konstantinidis & Cotronis; here they are fixed
//! constants of the simulator.

use serde::{Deserialize, Serialize};

/// Static hardware parameters of a simulated GPU.
///
/// Bandwidths are in GB/s, clocks in MHz, capacities in bytes, and compute
/// throughput in GFLOP/s (FP32 FMA counted as two operations).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"Tesla V100"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Peak single-precision throughput in GFLOP/s.
    pub fp32_gflops: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bw_gbs: f64,
    /// Achievable fraction of peak DRAM bandwidth for large streaming
    /// transfers (STREAM-like efficiency, typically 0.75–0.88).
    pub dram_efficiency: f64,
    /// L2 cache capacity in bytes.
    pub l2_size_bytes: u64,
    /// Peak L2 cache bandwidth in GB/s.
    pub l2_bw_gbs: f64,
    /// Host-device interconnect (PCIe) bandwidth in GB/s.
    pub pcie_bw_gbs: f64,
    /// Fixed device-side cost of starting any kernel, in microseconds. This
    /// is the on-device ramp (block scheduling, not the host-side
    /// `cudaLaunchKernel` overhead, which `dlperf-trace` models as T4).
    pub kernel_start_us: f64,
    /// SM core clock in MHz (used for per-SM issue-rate derivations).
    pub core_clock_mhz: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Per-direction inter-GPU interconnect bandwidth in GB/s (NVLink for
    /// the Teslas, PCIe for the TITAN Xp).
    pub interconnect_bw_gbs: f64,
    /// Per-hop interconnect latency in microseconds.
    pub interconnect_latency_us: f64,
}

impl DeviceSpec {
    /// NVIDIA Tesla V100 (SXM2 16GB): 80 SMs, HBM2.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "Tesla V100".to_string(),
            sm_count: 80,
            fp32_gflops: 15_700.0,
            dram_bw_gbs: 900.0,
            dram_efficiency: 0.84,
            l2_size_bytes: 6 * 1024 * 1024,
            l2_bw_gbs: 2_155.0,
            pcie_bw_gbs: 12.0,
            kernel_start_us: 1.6,
            core_clock_mhz: 1380.0,
            memory_bytes: 16 * 1024 * 1024 * 1024,
            interconnect_bw_gbs: 130.0, // NVLink 2.0
            interconnect_latency_us: 5.0,
        }
    }

    /// NVIDIA Tesla P100 (PCIe 16GB): 56 SMs, HBM2.
    pub fn p100() -> Self {
        DeviceSpec {
            name: "Tesla P100".to_string(),
            sm_count: 56,
            fp32_gflops: 9_300.0,
            dram_bw_gbs: 732.0,
            dram_efficiency: 0.78,
            l2_size_bytes: 4 * 1024 * 1024,
            l2_bw_gbs: 1_624.0,
            pcie_bw_gbs: 12.0,
            kernel_start_us: 1.9,
            core_clock_mhz: 1303.0,
            memory_bytes: 16 * 1024 * 1024 * 1024,
            interconnect_bw_gbs: 64.0, // NVLink 1.0
            interconnect_latency_us: 6.0,
        }
    }

    /// NVIDIA GeForce GTX TITAN Xp: 30 SMs (GP102), GDDR5X.
    pub fn titan_xp() -> Self {
        DeviceSpec {
            name: "TITAN Xp".to_string(),
            sm_count: 30,
            fp32_gflops: 12_150.0,
            dram_bw_gbs: 547.6,
            dram_efficiency: 0.74,
            l2_size_bytes: 3 * 1024 * 1024,
            l2_bw_gbs: 1_400.0,
            pcie_bw_gbs: 12.0,
            kernel_start_us: 2.1,
            core_clock_mhz: 1582.0,
            memory_bytes: 12 * 1024 * 1024 * 1024,
            interconnect_bw_gbs: 11.0, // PCIe peer-to-peer
            interconnect_latency_us: 9.0,
        }
    }

    /// NVIDIA A100 (SXM4 40GB): the "how much do we gain with new GPUs"
    /// what-if target of the paper's introduction (question 2).
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100".to_string(),
            sm_count: 108,
            fp32_gflops: 19_500.0,
            dram_bw_gbs: 1_555.0,
            dram_efficiency: 0.86,
            l2_size_bytes: 40 * 1024 * 1024,
            l2_bw_gbs: 4_500.0,
            pcie_bw_gbs: 24.0,
            kernel_start_us: 1.4,
            core_clock_mhz: 1410.0,
            memory_bytes: 40 * 1024 * 1024 * 1024,
            interconnect_bw_gbs: 300.0, // NVLink 3.0
            interconnect_latency_us: 4.0,
        }
    }

    /// NVIDIA T4: a small inference-class device.
    pub fn t4() -> Self {
        DeviceSpec {
            name: "T4".to_string(),
            sm_count: 40,
            fp32_gflops: 8_100.0,
            dram_bw_gbs: 320.0,
            dram_efficiency: 0.78,
            l2_size_bytes: 4 * 1024 * 1024,
            l2_bw_gbs: 1_100.0,
            pcie_bw_gbs: 12.0,
            kernel_start_us: 2.0,
            core_clock_mhz: 1590.0,
            memory_bytes: 16 * 1024 * 1024 * 1024,
            interconnect_bw_gbs: 11.0,
            interconnect_latency_us: 9.0,
        }
    }

    /// The three devices evaluated in the paper, in the order the paper's
    /// tables present them (V100, TITAN Xp, P100).
    pub fn paper_devices() -> Vec<DeviceSpec> {
        vec![Self::v100(), Self::titan_xp(), Self::p100()]
    }

    /// Looks a paper device up by (case-insensitive) name fragment.
    ///
    /// Accepts `"v100"`, `"p100"`, `"titan"`/`"titan xp"`/`"xp"`.
    pub fn by_name(name: &str) -> Option<DeviceSpec> {
        let lower = name.to_ascii_lowercase();
        if lower.contains("v100") {
            Some(Self::v100())
        } else if lower.contains("p100") {
            Some(Self::p100())
        } else if lower.contains("titan") || lower.contains("xp") {
            Some(Self::titan_xp())
        } else if lower.contains("a100") {
            Some(Self::a100())
        } else if lower.contains("t4") {
            Some(Self::t4())
        } else {
            None
        }
    }

    /// Effective sustained DRAM bandwidth in bytes/us (= GB/s × efficiency ×
    /// 1e3 bytes-per-us conversion).
    pub fn dram_bytes_per_us(&self) -> f64 {
        self.dram_bw_gbs * self.dram_efficiency * 1e3
    }

    /// Peak L2 bandwidth in bytes/us.
    pub fn l2_bytes_per_us(&self) -> f64 {
        self.l2_bw_gbs * 1e3
    }

    /// Peak FP32 throughput in FLOP/us.
    pub fn flop_per_us(&self) -> f64 {
        self.fp32_gflops * 1e3
    }

    /// PCIe bandwidth in bytes/us.
    pub fn pcie_bytes_per_us(&self) -> f64 {
        self.pcie_bw_gbs * 1e3
    }

    /// Inter-GPU interconnect bandwidth in bytes/us.
    pub fn interconnect_bytes_per_us(&self) -> f64 {
        self.interconnect_bw_gbs * 1e3
    }

    /// The device's GPU-to-GPU link as an α–β [`crate::interconnect::LinkSpec`].
    pub fn link(&self) -> crate::interconnect::LinkSpec {
        crate::interconnect::LinkSpec::of(self)
    }

    /// Whether the device's peer link is NVLink-class (direct mesh links)
    /// rather than PCIe-class (peer traffic through switches and the root
    /// complex). The catalog's NVLink parts all sit well above 50 GB/s and
    /// its PCIe parts well below, so the threshold classifies every known
    /// device correctly and errs toward the congested (tree) shape for
    /// unknown mid-range links — degraded, not wrong.
    pub fn has_nvlink(&self) -> bool {
        self.interconnect_bw_gbs >= 50.0
    }

    /// A hypothetical variant with DRAM bandwidth scaled by `factor`
    /// (§V-A style "what if memory were faster" questions). The name is
    /// suffixed so sweep labels stay distinguishable.
    ///
    /// # Panics
    /// Panics if `factor` is not finite and positive.
    pub fn scaled_dram(&self, factor: f64) -> DeviceSpec {
        assert!(factor.is_finite() && factor > 0.0, "bad DRAM scale {factor}");
        let mut d = self.clone();
        d.dram_bw_gbs *= factor;
        d.name = format!("{} (dram x{factor})", self.name);
        d
    }

    /// A hypothetical variant with FP32 throughput scaled by `factor`.
    ///
    /// # Panics
    /// Panics if `factor` is not finite and positive.
    pub fn scaled_compute(&self, factor: f64) -> DeviceSpec {
        assert!(factor.is_finite() && factor > 0.0, "bad compute scale {factor}");
        let mut d = self.clone();
        d.fp32_gflops *= factor;
        d.name = format!("{} (fp32 x{factor})", self.name);
        d
    }

    /// The device axis of a what-if sweep: every paper device plus, for
    /// each listed scale factor, DRAM- and compute-scaled variants of this
    /// device. Enumeration order is deterministic (paper devices first,
    /// then scales in the given order, DRAM before compute).
    pub fn whatif_grid(&self, scales: &[f64]) -> Vec<DeviceSpec> {
        let mut grid = Self::paper_devices();
        for &s in scales {
            grid.push(self.scaled_dram(s));
            grid.push(self.scaled_compute(s));
        }
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_ordered_by_compute() {
        let v100 = DeviceSpec::v100();
        let p100 = DeviceSpec::p100();
        let xp = DeviceSpec::titan_xp();
        assert!(v100.fp32_gflops > xp.fp32_gflops);
        assert!(xp.fp32_gflops > p100.fp32_gflops);
        assert!(v100.dram_bw_gbs > p100.dram_bw_gbs);
        assert!(p100.dram_bw_gbs > xp.dram_bw_gbs);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(DeviceSpec::by_name("Tesla V100").unwrap().sm_count, 80);
        assert_eq!(DeviceSpec::by_name("titan xp").unwrap().sm_count, 30);
        assert_eq!(DeviceSpec::by_name("p100").unwrap().sm_count, 56);
        assert_eq!(DeviceSpec::by_name("a100").unwrap().sm_count, 108);
        assert_eq!(DeviceSpec::by_name("t4").unwrap().sm_count, 40);
        assert!(DeviceSpec::by_name("mi300").is_none());
    }

    #[test]
    fn unit_conversions() {
        let v = DeviceSpec::v100();
        assert!((v.flop_per_us() - 15_700_000.0).abs() < 1.0);
        // 900 GB/s * 0.84 = 756 GB/s = 756_000 bytes/us.
        assert!((v.dram_bytes_per_us() - 756_000.0).abs() < 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let v = DeviceSpec::v100();
        let s = serde_json::to_string(&v).unwrap();
        let back: DeviceSpec = serde_json::from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn whatif_grid_scales_and_labels() {
        let v = DeviceSpec::v100();
        let grid = v.whatif_grid(&[2.0]);
        assert_eq!(grid.len(), DeviceSpec::paper_devices().len() + 2);
        let dram = &grid[grid.len() - 2];
        let comp = &grid[grid.len() - 1];
        assert!((dram.dram_bw_gbs - 2.0 * v.dram_bw_gbs).abs() < 1e-9);
        assert_eq!(dram.fp32_gflops, v.fp32_gflops);
        assert!((comp.fp32_gflops - 2.0 * v.fp32_gflops).abs() < 1e-9);
        assert_eq!(comp.dram_bw_gbs, v.dram_bw_gbs);
        assert_ne!(dram.name, comp.name);
        assert_eq!(grid, v.whatif_grid(&[2.0]), "enumeration is deterministic");
    }
}
