//! 2-D convolution kernels, lowered to implicit GEMM as cuDNN does.
//!
//! Convolutions are not part of DLRM, but the paper extends its
//! microbenchmarks to convolution and batch normalization in order to
//! predict ResNet-50 and Inception-V3 (Fig. 10). The simulator maps a conv
//! onto the GEMM timing model with a shape-dependent efficiency discount
//! (im2col addressing, halo reads), so small or skewed filters (1×7, 7×1)
//! behave worse than square 3×3 ones — the effect the paper blames for
//! MLPredict's failures on Inception.

use crate::device::DeviceSpec;
use crate::gemm;
use crate::kernel::KernelSpec;

/// Output spatial size of a convolution along one axis.
///
/// The padding is clamped to `(k − 1) / 2` on each axis, so a single `pad`
/// value expresses "same" padding for asymmetric filters too: a 1×7 filter
/// with `pad = 3` pads only the width.
pub fn out_dim(input: u64, k: u64, stride: u64, pad: u64) -> u64 {
    let pad = pad.min((k - 1) / 2);
    (input + 2 * pad - k) / stride + 1
}

/// Output `(height, width)` of a conv/pool window — the shape helper model
/// builders use so graph tensor shapes agree with the simulator.
pub fn conv_out_hw(h: u64, w: u64, kh: u64, kw: u64, stride: u64, pad: u64) -> (u64, u64) {
    (out_dim(h, kh, stride, pad), out_dim(w, kw, stride, pad))
}

/// The implicit-GEMM problem `(m, n, k, batch)` a conv lowers to:
/// `m = OH·OW`, `n = C_out`, `k = C_in·KH·KW`, batched over images.
pub fn implicit_gemm_shape(kernel: &KernelSpec) -> (u64, u64, u64, u64) {
    let KernelSpec::Conv2d { batch, c_in, h, w, c_out, kh, kw, stride, pad } = *kernel else {
        panic!("implicit_gemm_shape called with {kernel:?}");
    };
    let (oh, ow) = conv_out_hw(h, w, kh, kw, stride, pad);
    (oh * ow, c_out, c_in * kh * kw, batch)
}

/// Shape-dependent efficiency of the implicit-GEMM lowering relative to a
/// plain GEMM of the same size.
fn lowering_efficiency(kh: u64, kw: u64, c_in: u64) -> f64 {
    // Square 3x3 over deep channels is the sweet spot; 1xN / Nx1 filters and
    // shallow inputs pay heavily for poor data reuse in the implicit GEMM.
    let aspect = (kh.max(kw) as f64 / kh.min(kw) as f64).min(8.0);
    let aspect_penalty = 1.0 / (1.0 + 0.22 * (aspect - 1.0));
    let depth_bonus = (c_in as f64 / (c_in as f64 + 16.0)).max(0.3);
    (0.92 * aspect_penalty * depth_bonus).clamp(0.25, 0.92)
}

/// Simulates a 2-D convolution.
pub fn simulate(device: &DeviceSpec, kernel: &KernelSpec) -> f64 {
    let KernelSpec::Conv2d { kh, kw, c_in, .. } = *kernel else {
        panic!("conv::simulate called with {kernel:?}");
    };
    let (m, n, k, batch) = implicit_gemm_shape(kernel);
    assert!(m > 0 && n > 0 && k > 0, "convolution produced an empty GEMM");
    let gemm_time = gemm::simulate(device, &KernelSpec::Gemm { m, n, k, batch });
    // Remove the GEMM launch floor before scaling, then re-apply it once.
    let body = (gemm_time - device.kernel_start_us).max(0.0);
    body / lowering_efficiency(kh, kw, c_in) + device.kernel_start_us
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(batch: u64, c_in: u64, hw: u64, c_out: u64, k: u64) -> KernelSpec {
        KernelSpec::Conv2d {
            batch,
            c_in,
            h: hw,
            w: hw,
            c_out,
            kh: k,
            kw: k,
            stride: 1,
            pad: k / 2,
        }
    }

    #[test]
    fn out_dim_formula() {
        assert_eq!(out_dim(56, 3, 1, 1), 56);
        assert_eq!(out_dim(224, 7, 2, 3), 112);
        assert_eq!(out_dim(28, 1, 1, 0), 28);
    }

    #[test]
    fn asymmetric_filter_same_padding() {
        // 1x7 filter with pad 3: height unchanged (pad clamped to 0 on the
        // k=1 axis), width unchanged (pad 3 on the k=7 axis).
        assert_eq!(conv_out_hw(17, 17, 1, 7, 1, 3), (17, 17));
        assert_eq!(conv_out_hw(17, 17, 7, 1, 1, 3), (17, 17));
    }

    #[test]
    fn implicit_gemm_shape_of_resnet_block() {
        let k = conv(32, 64, 56, 64, 3);
        let (m, n, kk, b) = implicit_gemm_shape(&k);
        assert_eq!((m, n, kk, b), (56 * 56, 64, 64 * 9, 32));
    }

    #[test]
    fn skewed_filters_less_efficient() {
        let d = DeviceSpec::v100();
        let square = KernelSpec::Conv2d {
            batch: 32, c_in: 128, h: 17, w: 17, c_out: 128, kh: 3, kw: 3, stride: 1, pad: 1,
        };
        let skew = KernelSpec::Conv2d {
            batch: 32, c_in: 128, h: 17, w: 17, c_out: 128, kh: 1, kw: 7, stride: 1, pad: 0,
        };
        let sq_t = simulate(&d, &square);
        let sk_t = simulate(&d, &skew);
        let sq_per_flop = sq_t / square.flops();
        let sk_per_flop = sk_t / skew.flops();
        assert!(sk_per_flop > sq_per_flop, "1x7 should be less efficient per flop");
    }

    #[test]
    fn conv_time_positive_and_scales_with_batch() {
        let d = DeviceSpec::titan_xp();
        let t32 = simulate(&d, &conv(32, 64, 56, 64, 3));
        let t64 = simulate(&d, &conv(64, 64, 56, 64, 3));
        assert!(t32 > 0.0);
        assert!(t64 > 1.5 * t32);
    }
}
